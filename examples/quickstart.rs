//! Quickstart: build an approximate engine over a synthetic taxi workload
//! and compare a distance-bounded approximate aggregation against the exact
//! answer.
//!
//! Run with:
//! ```text
//! cargo run --release -p dbsa --example quickstart
//! ```

use dbsa::prelude::*;

fn main() {
    // 1. A synthetic workload: 100k clustered pickup points and 64 regions
    //    over a 40 km x 40 km city extent (see dbsa-datagen for how these
    //    substitute the NYC taxi / polygon datasets of the paper).
    let taxi = TaxiPointGenerator::new(city_extent(), 2021).generate(100_000);
    let points: Vec<Point> = taxi.iter().map(|t| t.location).collect();
    let fares: Vec<f64> = taxi.iter().map(|t| t.fare).collect();
    let regions = PolygonSetGenerator::new(city_extent(), 64, 30, 7).generate();

    // 2. Build the engine with a 5 m distance bound: every approximate
    //    answer is guaranteed to misclassify only points within 5 m of a
    //    region boundary.
    let engine = ApproximateEngine::builder()
        .distance_bound(DistanceBound::meters(5.0))
        .extent(city_extent())
        .points(points, fares)
        .regions(regions)
        .build();

    let stats = engine.stats();
    println!(
        "engine: {} points, {} regions, ε = {} m",
        stats.points, stats.regions, stats.epsilon
    );
    println!(
        "        region raster cells: {}, region index: {:.1} MB, point index: {:.1} MB",
        stats.region_raster_cells,
        stats.region_index_bytes as f64 / (1024.0 * 1024.0),
        stats.point_index_bytes as f64 / (1024.0 * 1024.0),
    );

    // 3. Run the aggregation both ways and compare.
    let t0 = std::time::Instant::now();
    let approx = engine.aggregate_by_region();
    let t_approx = t0.elapsed();

    let t0 = std::time::Instant::now();
    let exact = engine.aggregate_by_region_exact();
    let t_exact = t0.elapsed();

    let summary = ErrorSummary::from_pairs(
        approx
            .regions
            .iter()
            .zip(&exact.regions)
            .map(|(a, e)| (a.count as f64, e.count as f64)),
    );

    println!();
    println!(
        "approximate join: {:>10.2?}  (0 point-in-polygon tests)",
        t_approx
    );
    println!(
        "exact join:       {:>10.2?}  ({} point-in-polygon tests)",
        t_exact, exact.pip_tests
    );
    println!("count error:      {summary}");
    println!();
    println!("region | approx count | exact count | guaranteed range");
    println!("-------+--------------+-------------+-----------------");
    for (i, (a, e)) in approx
        .regions
        .iter()
        .zip(&exact.regions)
        .enumerate()
        .take(10)
    {
        let range = ResultRange::count_range(a);
        println!(
            "{:>6} | {:>12} | {:>11} | [{:>7.0}, {:>7.0}]",
            i, a.count, e.count, range.lower, range.upper
        );
    }
    println!("(first 10 regions shown)");
}

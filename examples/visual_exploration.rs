//! Level-of-detail visual exploration (the Uber-Movement-style scenario the
//! paper's introduction motivates).
//!
//! A visualization client zooms from a city-wide overview into a
//! neighbourhood. At every zoom level it re-runs the same aggregation with
//! a distance bound matched to the pixel size on screen: coarse bounds for
//! the overview (fast, slightly approximate), tight bounds when zoomed in
//! (slower, almost exact). The Bounded Raster Join evaluates each frame on
//! the rasterized canvas.
//!
//! Run with:
//! ```text
//! cargo run --release -p dbsa --example visual_exploration
//! ```

use dbsa::prelude::*;
use std::time::Instant;

fn main() {
    let taxi = TaxiPointGenerator::new(city_extent(), 9).generate(300_000);
    let points: Vec<Point> = taxi.iter().map(|t| t.location).collect();
    let fares: Vec<f64> = taxi.iter().map(|t| t.fare).collect();
    let regions =
        PolygonSetGenerator::from_profile(city_extent(), DatasetProfile::Neighborhoods, 5)
            .generate();
    let device = SimulatedDevice::gtx1060_like();

    // Reference: the exact answer (computed once; a real client never would).
    let baseline = GpuBaseline::build(&points, &city_extent());
    let (exact, _) = baseline.aggregate(&points, Some(&fares), &regions);

    println!(
        "visual exploration: {} pickups, {} neighbourhood regions",
        points.len(),
        regions.len()
    );
    println!();
    println!("zoom level        | screen pixel ≈ bound | frame time | median count error | tiles");
    println!("------------------+----------------------+------------+--------------------+------");

    // A 1000-pixel-wide viewport over 40 km is 40 m per pixel; each zoom
    // halves the world extent per pixel.
    for (label, bound_m) in [
        ("city overview", 40.0),
        ("borough", 20.0),
        ("district", 10.0),
        ("neighbourhood", 5.0),
        ("street block", 2.5),
    ] {
        let brj = BoundedRasterJoin::new(&device, DistanceBound::meters(bound_m));
        let t = Instant::now();
        let (approx, stats) = brj.execute(&points, Some(&fares), &regions, &city_extent());
        let frame = t.elapsed();

        let mut errors: Vec<f64> = approx
            .iter()
            .zip(&exact)
            .filter(|(_, e)| e.count > 0.0)
            .map(|(a, e)| (a.count - e.count).abs() / e.count)
            .collect();
        errors.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median_err = errors.get(errors.len() / 2).copied().unwrap_or(0.0);

        println!(
            "{:<17} | {:>18.1} m | {:>10.2?} | {:>17.3}% | {:>5}",
            label,
            bound_m,
            frame,
            median_err * 100.0,
            stats.tiles_per_axis * stats.tiles_per_axis,
        );
    }

    println!();
    println!(
        "the bound tracks the on-screen pixel size: the overview is answered fastest and\n\
         every error stays below what a single pixel could show anyway."
    );
}

//! Sharded serving: Z-order range-partitioned storage, snapshot-based
//! concurrent reads, and incremental ingest with compaction.
//!
//! Run with:
//! ```text
//! cargo run --release -p dbsa --example sharded_serving
//! ```

use dbsa::prelude::*;
use std::sync::Arc;

fn main() {
    // 1. The same synthetic city workload as `quickstart`, but served by
    //    the sharded engine: the point table is split into shards along
    //    weighted Morton key ranges, each with its own linearized table.
    let taxi = TaxiPointGenerator::new(city_extent(), 2021).generate(100_000);
    let points: Vec<Point> = taxi.iter().map(|t| t.location).collect();
    let fares: Vec<f64> = taxi.iter().map(|t| t.fare).collect();
    let regions = PolygonSetGenerator::new(city_extent(), 64, 30, 7).generate();

    let engine = Arc::new(
        ShardedEngine::builder()
            .distance_bound(DistanceBound::meters(5.0))
            .extent(city_extent())
            .points(points, fares)
            .regions(regions)
            .shards(8)
            .build(),
    );

    let stats = engine.stats();
    println!(
        "sharded engine: {} points, {} regions, ε = {} m, {} shards",
        stats.points,
        stats.regions,
        stats.epsilon,
        stats.per_shard.len()
    );
    for (i, shard) in stats.per_shard.iter().enumerate() {
        println!(
            "  shard {i}: {:>6} points, {:>8} index bytes, keys {}",
            shard.points, shard.point_index_bytes, shard.key_range
        );
    }

    // 2. Concurrent clients: every client clones a snapshot Arc and runs
    //    its queries lock-free; the per-shard partials merge in shard
    //    order, so each client's answer is deterministic.
    let clients: Vec<_> = (0..4)
        .map(|c| {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                let snapshot = engine.snapshot();
                let result = snapshot.aggregate_by_region_parallel(2);
                (c, result.total_matched(), snapshot.generation())
            })
        })
        .collect();
    for handle in clients {
        let (c, matched, generation) = handle.join().expect("client panicked");
        println!("client {c}: {matched} points matched (snapshot generation {generation})");
    }

    // 3. Incremental ingest: append a fresh batch (immediately visible in
    //    new snapshots as a delta shard), then compact back to balanced
    //    shards.
    let late = TaxiPointGenerator::new(city_extent(), 4711).generate(10_000);
    engine.append_points(
        late.iter().map(|t| t.location).collect(),
        late.iter().map(|t| t.fare).collect(),
    );
    let with_delta = engine.snapshot();
    println!(
        "after append: {} points ({} pending in the delta shard)",
        with_delta.point_count(),
        engine.pending_points()
    );

    engine.compact();
    let compacted = engine.snapshot();
    println!(
        "after compact: {} points in {} balanced shards (generation {})",
        compacted.point_count(),
        compacted.shard_count(),
        compacted.generation()
    );

    // 4. The distance bound still holds shard-by-shard: the approximate
    //    aggregate over all shards vs. the exact count.
    let result = engine.aggregate_by_region_parallel(8);
    let (all_points, _) = compacted.all_rows();
    let exact: u64 = compacted
        .regions()
        .iter()
        .map(|r| all_points.iter().filter(|p| r.contains_point(p)).count() as u64)
        .sum();
    println!(
        "approximate matched: {} vs exact in-region points: {exact} (ε-bounded difference)",
        result.total_matched()
    );
}

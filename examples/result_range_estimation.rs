//! Result-range estimation (paper Section 6): turning an approximate count
//! into a guaranteed interval.
//!
//! With a conservative raster approximation, every counting error comes from
//! a boundary cell, so `[α − β, α]` (α = approximate count, β = count from
//! boundary cells) contains the exact answer with 100 % confidence. This
//! example runs the approximate join, prints the intervals and checks them
//! against the exact counts.
//!
//! Run with:
//! ```text
//! cargo run --release -p dbsa --example result_range_estimation
//! ```

use dbsa::prelude::*;

fn main() {
    let taxi = TaxiPointGenerator::new(city_extent(), 77).generate(150_000);
    let points: Vec<Point> = taxi.iter().map(|t| t.location).collect();
    let fares: Vec<f64> = taxi.iter().map(|t| t.fare).collect();
    let regions = PolygonSetGenerator::new(city_extent(), 25, 40, 3).generate();

    println!(
        "result-range estimation over {} regions, {} points",
        regions.len(),
        points.len()
    );
    println!();
    println!("bound ε | avg interval width | avg relative width | exact inside interval");
    println!("--------+--------------------+--------------------+----------------------");

    for eps in [50.0, 20.0, 10.0, 5.0] {
        let engine = ApproximateEngine::builder()
            .distance_bound(DistanceBound::meters(eps))
            .extent(city_extent())
            .points(points.clone(), fares.clone())
            .regions(regions.clone())
            .build();

        let approx = engine.aggregate_by_region();
        let exact = engine.aggregate_by_region_exact();

        let ranges: Vec<ResultRange> = approx
            .regions
            .iter()
            .map(ResultRange::count_range)
            .collect();
        let covered = ranges
            .iter()
            .zip(&exact.regions)
            .filter(|(r, e)| r.contains(e.count as f64))
            .count();
        let avg_width: f64 =
            ranges.iter().map(ResultRange::width).sum::<f64>() / ranges.len() as f64;
        let avg_rel: f64 =
            ranges.iter().map(ResultRange::relative_width).sum::<f64>() / ranges.len() as f64;

        println!(
            "{:>5.1} m | {:>18.1} | {:>17.2} % | {covered}/{} regions",
            eps,
            avg_width,
            avg_rel * 100.0,
            ranges.len()
        );
    }

    println!();
    println!("a tighter ε shrinks the guaranteed interval; the exact count is always inside it.");

    // Detailed view at ε = 10 m for a few regions.
    let engine = ApproximateEngine::builder()
        .distance_bound(DistanceBound::meters(10.0))
        .extent(city_extent())
        .points(points, fares)
        .regions(regions)
        .build();
    let approx = engine.aggregate_by_region();
    let exact = engine.aggregate_by_region_exact();
    println!();
    println!("region | approximate α | boundary β | interval [α-β, α] | exact");
    println!("-------+---------------+------------+-------------------+------");
    for i in 0..8 {
        let agg = &approx.regions[i];
        let range = ResultRange::count_range(agg);
        println!(
            "{:>6} | {:>13} | {:>10} | [{:>6.0}, {:>6.0}] | {:>5}",
            i, agg.count, agg.boundary_count, range.lower, range.upper, exact.regions[i].count
        );
    }
}

//! Spatial aggregation over neighbourhood regions (the Figure 6 workload,
//! example-sized): `SELECT COUNT(*), AVG(fare) FROM trips, regions WHERE
//! trips.pickup INSIDE regions.geometry GROUP BY regions.id`.
//!
//! Compares three evaluation strategies:
//! * the approximate ACT join (distance-bounded, no PIP tests),
//! * the exact R-tree join (MBR filter + PIP refinement),
//! * the exact shape-index join (coarse cells + PIP refinement on
//!   boundaries).
//!
//! Run with:
//! ```text
//! cargo run --release -p dbsa --example taxi_aggregation
//! ```

use dbsa::prelude::*;
use std::time::Instant;

fn main() {
    let n_points = 200_000;
    let profile = DatasetProfile::Neighborhoods;
    println!(
        "workload: {n_points} synthetic pickups, {} regions ({} profile, ~{} vertices each)",
        profile.scaled_region_count(),
        profile.name(),
        profile.vertices_per_polygon()
    );

    let taxi = TaxiPointGenerator::new(city_extent(), 42).generate(n_points);
    let points: Vec<Point> = taxi.iter().map(|t| t.location).collect();
    let fares: Vec<f64> = taxi.iter().map(|t| t.fare).collect();
    let regions = PolygonSetGenerator::from_profile(city_extent(), profile, 11).generate();
    let extent = GridExtent::covering(&city_extent());
    let bound = DistanceBound::meters(4.0); // the paper's 4 m join bound

    // Build all three join indexes (build time is part of the story: ACT
    // trades memory and build work for refinement-free queries).
    let t = Instant::now();
    let act_join = ApproximateCellJoin::build(&regions, &extent, bound);
    let act_build = t.elapsed();
    let t = Instant::now();
    let rtree_join = RTreeExactJoin::build(&regions);
    let rtree_build = t.elapsed();
    let t = Instant::now();
    let shape_join = ShapeIndexExactJoin::build(&regions, &extent);
    let shape_build = t.elapsed();

    // Execute.
    let t = Instant::now();
    let act_res = act_join.execute(&points, &fares);
    let act_time = t.elapsed();
    let t = Instant::now();
    let rtree_res = rtree_join.execute(&points, &fares);
    let rtree_time = t.elapsed();
    let t = Instant::now();
    let shape_res = shape_join.execute(&points, &fares);
    let shape_time = t.elapsed();

    let err = ErrorSummary::from_pairs(
        act_res
            .regions
            .iter()
            .zip(&rtree_res.regions)
            .map(|(a, e)| (a.count as f64, e.count as f64)),
    );

    println!();
    println!("strategy          |  build time |  join time | PIP tests | index memory | count error vs exact");
    println!("------------------+-------------+------------+-----------+--------------+---------------------");
    println!(
        "ACT (approximate) | {:>11.2?} | {:>10.2?} | {:>9} | {:>12} | {}",
        act_build,
        act_time,
        act_res.pip_tests,
        human_bytes(act_join.memory_bytes()),
        err
    );
    println!(
        "R-tree (exact)    | {:>11.2?} | {:>10.2?} | {:>9} | {:>12} | exact",
        rtree_build,
        rtree_time,
        rtree_res.pip_tests,
        human_bytes(rtree_join.memory_bytes()),
    );
    println!(
        "ShapeIndex (exact)| {:>11.2?} | {:>10.2?} | {:>9} | {:>12} | exact",
        shape_build,
        shape_time,
        shape_res.pip_tests,
        human_bytes(shape_join.memory_bytes()),
    );

    // Show a few per-region rows, AVG(fare) included.
    println!();
    println!("region | ACT count | exact count | ACT avg fare | exact avg fare");
    println!("-------+-----------+-------------+--------------+---------------");
    for i in 0..8.min(regions.len()) {
        println!(
            "{:>6} | {:>9} | {:>11} | {:>12.2} | {:>14.2}",
            i,
            act_res.regions[i].count,
            rtree_res.regions[i].count,
            act_res.regions[i].avg().unwrap_or(0.0),
            rtree_res.regions[i].avg().unwrap_or(0.0),
        );
    }
    println!("(first 8 regions shown)");
}

fn human_bytes(b: usize) -> String {
    if b >= 1024 * 1024 {
        format!("{:.1} MB", b as f64 / (1024.0 * 1024.0))
    } else if b >= 1024 {
        format!("{:.1} KB", b as f64 / 1024.0)
    } else {
        format!("{b} B")
    }
}

//! The concurrent serving tier: clients submit queries to a
//! `QueryService`, the scheduler batches them *across* queries over one
//! snapshot per batch, and every ticket comes back with the answer plus
//! its latency accounting — bit-for-bit what each query would return
//! alone.
//!
//! The client loop also shows the fault-tolerance surface: per-query
//! deadlines (`with_deadline`), the `degraded` marker on answers served
//! approximate under deadline pressure, and the production retry idiom —
//! retry `Overloaded` rejections with jittered exponential backoff.
//!
//! Run with:
//! ```text
//! cargo run --release -p dbsa --example serving_tier
//! ```

use dbsa::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// Deterministic per-client jitter in `[0, cap_ms)` milliseconds — a tiny
/// xorshift so the example stays dependency-free.
fn jitter_ms(state: &mut u64, cap_ms: u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state % cap_ms.max(1)
}

fn main() {
    // 1. A sharded engine over the synthetic city workload.
    let taxi = TaxiPointGenerator::new(city_extent(), 2021).generate(100_000);
    let points: Vec<Point> = taxi.iter().map(|t| t.location).collect();
    let fares: Vec<f64> = taxi.iter().map(|t| t.fare).collect();
    let regions = PolygonSetGenerator::new(city_extent(), 64, 30, 7).generate();
    let engine = Arc::new(
        ShardedEngine::builder()
            .distance_bound(DistanceBound::meters(4.0))
            .extent(city_extent())
            .points(points, fares)
            .regions(regions)
            .shards(8)
            .build(),
    );

    // 2. Start the serving tier: a bounded admission queue in front of a
    //    scheduler that drains batches and executes each over exactly one
    //    published snapshot. While one batch runs, new submissions queue
    //    up — the batch window — so under load batches grow naturally and
    //    identical or same-level queries share one index walk. The default
    //    DegradePolicy::Deadline lets exact queries trade accuracy for
    //    latency when their deadline budget runs short — never silently:
    //    the answer carries its guaranteed bound.
    let service = Arc::new(engine.serve(ServingConfig {
        queue_capacity: 256,
        max_batch: 32,
        threads: 1,
        ..ServingConfig::default()
    }));

    // 3. Concurrent clients with a mixed workload: bounded and exact
    //    aggregates (the exact one under a deadline), a within-distance
    //    semi-join, and a kNN probe. Overloaded rejections retry with
    //    jittered exponential backoff — the production client idiom.
    let clients: Vec<_> = (0..4u64)
        .map(|c| {
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                let probe = Point::new(11_000.0 + 800.0 * c as f64, 13_500.0);
                let menu = [
                    QueryRequest::aggregate(QuerySpec::within_meters(16.0)),
                    QueryRequest::aggregate(QuerySpec::within_meters(64.0)),
                    QueryRequest::aggregate(QuerySpec::exact())
                        .with_deadline(Duration::from_millis(250)),
                    QueryRequest::within_distance(DistanceSpec::within(50.0).expect("valid")),
                    QueryRequest::knn(probe, 3),
                ];
                let mut rng = 0x9e37_79b9 ^ (c + 1);
                let mut lines = Vec::new();
                for round in 0..menu.len() {
                    let request = menu[(round + c as usize) % menu.len()];
                    let mut backoff_ms = 1u64;
                    let ticket = loop {
                        match service.submit(request) {
                            Ok(ticket) => break Some(ticket),
                            Err(QueryError::Overloaded { .. }) if backoff_ms <= 64 => {
                                // Jittered exponential backoff: desynchronizes
                                // retrying clients instead of re-bursting.
                                let wait = backoff_ms + jitter_ms(&mut rng, backoff_ms);
                                std::thread::sleep(Duration::from_millis(wait));
                                backoff_ms *= 2;
                            }
                            Err(e) => {
                                lines.push(format!("client {c}: rejected — {e}"));
                                break None;
                            }
                        }
                    };
                    let Some(ticket) = ticket else { continue };
                    let done = ticket.wait();
                    match done.outcome {
                        Ok(response) => {
                            let what = match response {
                                QueryResponse::Aggregate { plan, result } => format!(
                                    "aggregate at level {} → {} matched",
                                    plan.level,
                                    result.total_matched()
                                ),
                                QueryResponse::WithinDistance { plan, result } => format!(
                                    "within-distance at level {} → {} matched",
                                    plan.level,
                                    result.total_matched()
                                ),
                                QueryResponse::Knn { neighbors } => {
                                    format!("knn → {} neighbors", neighbors.len())
                                }
                            };
                            let degraded = match done.degraded {
                                Some(bound) => format!(", DEGRADED to {bound}"),
                                None => String::new(),
                            };
                            lines.push(format!(
                                "client {c}: {what}{degraded} \
                                 (batch of {}, queued {:?}, total {:?}, generation {})",
                                done.batch_size, done.queued, done.total, done.generation
                            ));
                        }
                        Err(e) => lines.push(format!("client {c}: failed — {e}")),
                    }
                }
                lines
            })
        })
        .collect();
    for handle in clients {
        for line in handle.join().expect("client panicked") {
            println!("{line}");
        }
    }

    // 4. Graceful shutdown, then the engine-lifetime serving counters —
    //    including the fault-tolerance ledger.
    service.shutdown().expect("clean shutdown");
    let serving = engine.stats().serving;
    println!(
        "serving stats: {} admitted, {} completed, {} rejected, \
         {} batches (mean occupancy {:.2}, peak {}), last generation {}",
        serving.admitted,
        serving.completed,
        serving.rejected,
        serving.batches,
        serving.mean_batch(),
        serving.max_batch,
        serving.last_generation
    );
    println!(
        "fault ledger: {} deadline-missed, {} degraded, {} cancelled, \
         {} isolated panics, {} scheduler restarts",
        serving.deadline_missed,
        serving.degraded,
        serving.cancelled,
        serving.isolated_panics,
        serving.scheduler_restarts
    );
    assert_eq!(serving.completed + serving.cancelled, serving.admitted);
    assert_eq!(serving.isolated_panics, 0);
    assert_eq!(serving.scheduler_restarts, 0);
}

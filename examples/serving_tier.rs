//! The concurrent serving tier: clients submit queries to a
//! `QueryService`, the scheduler batches them *across* queries over one
//! snapshot per batch, and every ticket comes back with the answer plus
//! its latency accounting — bit-for-bit what each query would return
//! alone.
//!
//! Run with:
//! ```text
//! cargo run --release -p dbsa --example serving_tier
//! ```

use dbsa::prelude::*;
use std::sync::Arc;

fn main() {
    // 1. A sharded engine over the synthetic city workload.
    let taxi = TaxiPointGenerator::new(city_extent(), 2021).generate(100_000);
    let points: Vec<Point> = taxi.iter().map(|t| t.location).collect();
    let fares: Vec<f64> = taxi.iter().map(|t| t.fare).collect();
    let regions = PolygonSetGenerator::new(city_extent(), 64, 30, 7).generate();
    let engine = Arc::new(
        ShardedEngine::builder()
            .distance_bound(DistanceBound::meters(4.0))
            .extent(city_extent())
            .points(points, fares)
            .regions(regions)
            .shards(8)
            .build(),
    );

    // 2. Start the serving tier: a bounded admission queue in front of a
    //    scheduler that drains batches and executes each over exactly one
    //    published snapshot. While one batch runs, new submissions queue
    //    up — the batch window — so under load batches grow naturally and
    //    identical or same-level queries share one index walk.
    let service = Arc::new(engine.serve(ServingConfig {
        queue_capacity: 256,
        max_batch: 32,
        threads: 1,
    }));

    // 3. Concurrent clients with a mixed workload: bounded and exact
    //    aggregates, a within-distance semi-join, and a kNN probe.
    let clients: Vec<_> = (0..4u64)
        .map(|c| {
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                let probe = Point::new(11_000.0 + 800.0 * c as f64, 13_500.0);
                let menu = [
                    QueryRequest::Aggregate(QuerySpec::within_meters(16.0)),
                    QueryRequest::Aggregate(QuerySpec::within_meters(64.0)),
                    QueryRequest::Aggregate(QuerySpec::exact()),
                    QueryRequest::WithinDistance(DistanceSpec::within(50.0).expect("valid")),
                    QueryRequest::Knn { probe, k: 3 },
                ];
                let mut lines = Vec::new();
                for round in 0..menu.len() {
                    let request = menu[(round + c as usize) % menu.len()];
                    match service.submit(request) {
                        Ok(ticket) => {
                            let done = ticket.wait();
                            let what = match done.outcome.expect("query succeeded") {
                                QueryResponse::Aggregate { plan, result } => format!(
                                    "aggregate at level {} → {} matched",
                                    plan.level,
                                    result.total_matched()
                                ),
                                QueryResponse::WithinDistance { plan, result } => format!(
                                    "within-distance at level {} → {} matched",
                                    plan.level,
                                    result.total_matched()
                                ),
                                QueryResponse::Knn { neighbors } => {
                                    format!("knn → {} neighbors", neighbors.len())
                                }
                            };
                            lines.push(format!(
                                "client {c}: {what} \
                                 (batch of {}, queued {:?}, total {:?}, generation {})",
                                done.batch_size, done.queued, done.total, done.generation
                            ));
                        }
                        Err(QueryError::Overloaded { queued, capacity }) => lines.push(format!(
                            "client {c}: rejected — queue full ({queued}/{capacity})"
                        )),
                        Err(e) => lines.push(format!("client {c}: rejected — {e}")),
                    }
                }
                lines
            })
        })
        .collect();
    for handle in clients {
        for line in handle.join().expect("client panicked") {
            println!("{line}");
        }
    }

    // 4. Graceful shutdown, then the engine-lifetime serving counters.
    service.shutdown();
    let serving = engine.stats().serving;
    println!(
        "serving stats: {} admitted, {} completed, {} rejected, \
         {} batches (mean occupancy {:.2}, peak {}), last generation {}",
        serving.admitted,
        serving.completed,
        serving.rejected,
        serving.batches,
        serving.mean_batch(),
        serving.max_batch,
        serving.last_generation
    );
    assert_eq!(serving.completed, serving.admitted);
}

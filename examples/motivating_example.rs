//! Reproduction of the paper's motivating example (Figure 2).
//!
//! A taxi service wants the count of trips originating inside a region P.
//! The exact count is 18. The MBR-based approximation reports 22 — closer
//! numerically, but its extra points are far away from P. The
//! distance-bounded raster approximation reports 28 — every extra point is
//! within ε of P's boundary, which is the more meaningful answer for
//! exploratory analysis.
//!
//! Run with:
//! ```text
//! cargo run -p dbsa --example motivating_example
//! ```

use dbsa::datagen::figure2::PointColor;
use dbsa::prelude::*;
use dbsa::raster::{BoundaryPolicy, UniformRaster};

fn main() {
    let example = Figure2Example::new();
    let polygon = example.polygon();

    println!("Figure 2: approximate counts and what they mean");
    println!("================================================");
    println!(
        "polygon P: {} vertices, area {:.0}",
        polygon.exterior().len(),
        polygon.area()
    );
    println!("distance bound ε = {} m", example.epsilon());
    println!();

    // The three counts of the figure.
    println!(
        "exact count of points in P:          {}",
        example.exact_count()
    );
    println!(
        "count over the MBR approximation:    {}",
        example.mbr_count()
    );
    println!(
        "count over the ε-raster approximation: {}",
        example.raster_count()
    );
    println!();

    // Where do the errors come from?
    let mbr = polygon.bbox();
    let mut far_false_positives = 0;
    let mut near_false_positives = 0;
    for (p, color) in example.points() {
        match color {
            PointColor::Red => {
                far_false_positives += 1;
                assert!(mbr.contains_point(p));
            }
            PointColor::Violet => near_false_positives += 1,
            PointColor::Black => {}
        }
    }
    println!("MBR false positives:    {far_false_positives} points, all farther than ε from P");
    println!("raster false positives: {near_false_positives} points, all within ε of P's boundary");
    println!();

    // Build the actual uniform raster at the bound and verify the guarantee.
    let extent = GridExtent::covering(&example.extent());
    let raster = UniformRaster::with_bound(
        polygon,
        &extent,
        DistanceBound::meters(example.epsilon()),
        BoundaryPolicy::Conservative,
    );
    println!(
        "uniform raster at ε = {} m: {} cells ({} boundary), guaranteed Hausdorff bound {:.2} m",
        example.epsilon(),
        raster.cell_count(),
        raster.boundary_cell_count(),
        raster.guaranteed_bound()
    );

    let mut raster_count = 0;
    for (p, _) in example.points() {
        if raster.contains_point(p) {
            raster_count += 1;
        }
    }
    println!("count answered by the raster itself: {raster_count}");
    println!();
    println!(
        "takeaway: the raster's answer can only differ from the exact answer by points\n\
         within {} m of P — the MBR's answer gives no such guarantee.",
        example.epsilon()
    );
}

//! Per-query distance bounds: one frozen index build, any bound, exact on
//! demand.
//!
//! The engine is built once at a tight 4 m bound. Each request then carries
//! its own accuracy spec: a loose 64 m dashboard query is planned onto a
//! coarse truncation level of the level-stacked trie (cheap probes, wider
//! result ranges), a 4 m analytical query runs at the finest level, and an
//! exact billing query reuses the same index as a filter — interior-cell
//! matches accepted wholesale, boundary-cell matches refined with exact
//! point-in-polygon tests.
//!
//! ```sh
//! cargo run --release -p dbsa --example query_bounds
//! ```

use dbsa::prelude::*;

fn main() {
    let n_points = 60_000;
    let taxi = TaxiPointGenerator::new(city_extent(), 42).generate(n_points);
    let points: Vec<Point> = taxi.iter().map(|t| t.location).collect();
    let values: Vec<f64> = taxi.iter().map(|t| t.fare).collect();
    let regions =
        PolygonSetGenerator::from_profile(city_extent(), DatasetProfile::Neighborhoods, 9)
            .generate();

    // One build, at the tightest bound any consumer will request.
    let engine = ShardedEngine::builder()
        .distance_bound(DistanceBound::meters(4.0))
        .extent(city_extent())
        .points(points, values)
        .regions(regions)
        .shards(4)
        .build();
    let snapshot = engine.snapshot();

    println!(
        "one frozen index build ({} points, {} regions, built at ε = 4 m)",
        n_points,
        snapshot.regions().len()
    );
    println!();
    println!(
        "{:<26} | {:>5} | {:>12} | {:>12} | {:>11} | {:>9}",
        "request", "level", "guaranteed", "est. nodes", "uncertain", "PIP tests"
    );
    println!(
        "{:-<26}-+-{:-<5}-+-{:-<12}-+-{:-<12}-+-{:-<11}-+-{:-<9}",
        "", "", "", "", "", ""
    );

    for (name, spec) in [
        ("dashboard (ε ≤ 64 m)", QuerySpec::within_meters(64.0)),
        ("reporting (ε ≤ 16 m)", QuerySpec::within_meters(16.0)),
        ("analytics (ε ≤ 4 m)", QuerySpec::within_meters(4.0)),
        ("billing (exact)", QuerySpec::exact()),
    ] {
        let (plan, result) = snapshot.aggregate_by_region_spec(&spec, 4);
        let uncertain: u64 = result.regions.iter().map(|r| r.boundary_count).sum();
        println!(
            "{:<26} | {:>5} | {:>12} | {:>12} | {:>11} | {:>9}",
            name,
            plan.level,
            if plan.exact_refinement {
                "exact".to_string()
            } else {
                format!("{:.2} m", plan.guaranteed_bound)
            },
            plan.estimated_nodes,
            uncertain,
            result.pip_tests,
        );
    }

    // The exact spec's answer matches a from-scratch exact join.
    let (rows, row_values) = snapshot.all_rows();
    let reference = RTreeExactJoin::build(snapshot.regions()).execute(&rows, &row_values);
    let (_, exact) = snapshot.aggregate_by_region_spec(&QuerySpec::exact(), 4);
    assert_eq!(exact.unmatched, reference.unmatched);
    for (a, b) in exact.regions.iter().zip(&reference.regions) {
        assert_eq!(a.count, b.count);
    }
    println!();
    println!(
        "exact spec verified against RTreeExactJoin: {} matched, {} unmatched, {} vs {} PIP tests",
        exact.total_matched(),
        exact.unmatched,
        exact.pip_tests,
        reference.pip_tests,
    );

    // Result ranges widen as the requested bound loosens — the accuracy
    // knob the application turns per request.
    let (_, tight) = snapshot.count_ranges_spec(&QuerySpec::within_meters(4.0), 4);
    let (_, loose) = snapshot.count_ranges_spec(&QuerySpec::within_meters(64.0), 4);
    let width = |rs: &[ResultRange]| rs.iter().map(|r| r.width()).sum::<f64>();
    println!(
        "total count-range width: {:.0} at 4 m vs {:.0} at 64 m",
        width(&tight),
        width(&loose)
    );
}

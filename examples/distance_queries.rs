//! The distance query family on one containment build: within-distance
//! joins and k-nearest-region queries with printed guaranteed intervals.
//!
//! The engine is built once, for containment, at a 4 m bound — and the
//! same distance-annotated frozen index then answers `WITHIN_DISTANCE(d)`
//! semi-joins (approximate at any tolerance, or exact with counted
//! segment-distance refinements of straddling cells only) and approximate
//! kNN with intervals guaranteed to contain the exact distance.
//!
//! ```sh
//! cargo run --release -p dbsa --example distance_queries
//! ```

use dbsa::prelude::*;

fn main() {
    let n_points = 40_000;
    let taxi = TaxiPointGenerator::new(city_extent(), 7).generate(n_points);
    let points: Vec<Point> = taxi.iter().map(|t| t.location).collect();
    let values: Vec<f64> = taxi.iter().map(|t| t.fare).collect();
    let regions =
        PolygonSetGenerator::from_profile(city_extent(), DatasetProfile::Neighborhoods, 5)
            .generate();

    let engine = ApproximateEngine::builder()
        .distance_bound(DistanceBound::meters(4.0))
        .extent(city_extent())
        .points(points.clone(), values)
        .regions(regions)
        .build();

    println!(
        "one containment build ({} points, {} regions, ε = 4 m) now serving distance queries",
        n_points,
        engine.regions().len()
    );

    // --- WITHIN_DISTANCE(d) at several accuracies ------------------------
    let d = 250.0;
    println!();
    println!("WITHIN_DISTANCE({d} m) semi-join:");
    println!(
        "{:<24} | {:>5} | {:>12} | {:>9} | {:>10}",
        "accuracy", "level", "matched", "unmatched", "dist tests"
    );
    println!(
        "{:-<24}-+-{:-<5}-+-{:-<12}-+-{:-<9}-+-{:-<10}",
        "", "", "", "", ""
    );
    for (name, spec) in [
        (
            "±64 m (dashboard)",
            DistanceSpec::within_bounded(d, 64.0).expect("valid spec"),
        ),
        (
            "±16 m (reporting)",
            DistanceSpec::within_bounded(d, 16.0).expect("valid spec"),
        ),
        (
            "exact (billing)",
            DistanceSpec::within(d).expect("valid spec"),
        ),
    ] {
        let (plan, result) = engine.within_distance(&spec);
        println!(
            "{:<24} | {:>5} | {:>12} | {:>9} | {:>10}",
            name,
            plan.level,
            result.total_matched(),
            result.unmatched,
            result.dist_tests,
        );
    }

    // The exact spec equals the brute-force all-pairs baseline.
    let (_, exact) = engine.within_distance(&DistanceSpec::within(d).expect("valid spec"));
    let brute = engine.within_distance_exact(d);
    assert_eq!(exact.unmatched, brute.unmatched);
    for (a, b) in exact.regions.iter().zip(&brute.regions) {
        assert_eq!(a.count, b.count);
    }
    println!();
    println!(
        "exact verified against brute force: {} matched, {} vs {} exact distance tests ({}x fewer)",
        exact.total_matched(),
        exact.dist_tests,
        brute.dist_tests,
        brute.dist_tests / exact.dist_tests.max(1),
    );

    // --- kNN with guaranteed intervals -----------------------------------
    println!();
    println!("3 nearest regions for 4 probe points (intervals contain the exact distance):");
    for p in points.iter().step_by(n_points / 4).take(4) {
        let neighbors = engine.knn(p, 3).expect("k >= 1");
        let exact = engine.knn_exact(p, 3).expect("k >= 1");
        print!("  probe ({:8.1}, {:8.1}):", p.x, p.y);
        for n in &neighbors {
            print!(
                "  R{} in [{:.1}, {:.1}] m",
                n.region,
                n.lo,
                n.hi.min(99_999.0)
            );
        }
        println!();
        // Guarantee check: the exact distance of every reported region
        // falls inside its reported interval.
        for e in &exact {
            if let Some(n) = neighbors.iter().find(|n| n.region == e.region) {
                assert!(n.contains(e.lo), "interval must contain the exact distance");
            }
        }
    }

    // Typed errors instead of panics for invalid specs.
    let err = DistanceSpec::within(f64::NAN).unwrap_err();
    println!();
    println!("invalid spec rejected with a typed error: {err}");
}

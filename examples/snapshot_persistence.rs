//! Snapshot persistence: save a serving engine to one file, cold-start a
//! fresh process-equivalent engine from it without rebuilding anything,
//! and hand a single shard to another engine via a shard file.
//!
//! Run with:
//! ```text
//! cargo run --release -p dbsa --example snapshot_persistence
//! ```

use dbsa::prelude::*;
use std::time::Instant;

fn main() {
    let dir = std::env::temp_dir().join("dbsa-snapshot-example");
    std::fs::create_dir_all(&dir).expect("temp dir");

    // 1. Build a sharded engine the expensive way: rasterize the regions,
    //    freeze the trie, sort and index every shard.
    let taxi = TaxiPointGenerator::new(city_extent(), 2021).generate(100_000);
    let points: Vec<Point> = taxi.iter().map(|t| t.location).collect();
    let fares: Vec<f64> = taxi.iter().map(|t| t.fare).collect();
    let regions = PolygonSetGenerator::new(city_extent(), 64, 30, 7).generate();

    let build_start = Instant::now();
    let engine = ShardedEngine::builder()
        .distance_bound(DistanceBound::meters(5.0))
        .extent(city_extent())
        .points(points, fares)
        .regions(regions)
        .shards(8)
        .build();
    let build_time = build_start.elapsed();
    let baseline = engine.aggregate_by_region();
    println!(
        "built from scratch in {build_time:?}: {} points, {} regions",
        engine.snapshot().point_count(),
        engine.regions().len()
    );

    // 2. Persist the whole serving state to one checksummed file.
    let path = dir.join("engine.snapshot");
    engine.save_snapshot(&path).expect("save snapshot");
    let file_bytes = std::fs::metadata(&path).expect("stat").len();
    println!(
        "saved to {} ({:.1} MiB)",
        path.display(),
        file_bytes as f64 / (1024.0 * 1024.0)
    );

    // 3. Cold start: reconstitute the engine from the file. No
    //    re-rasterize, no re-freeze, no re-sort — one contiguous pass per
    //    column, then serve.
    let load_start = Instant::now();
    let loaded = ShardedEngine::load_snapshot(&path).expect("load snapshot");
    let load_time = load_start.elapsed();
    let reloaded = loaded.aggregate_by_region();
    assert_eq!(baseline, reloaded, "loaded engine must answer identically");
    println!(
        "cold-started from snapshot in {load_time:?} ({:.0}x faster), answers bit-for-bit equal",
        build_time.as_secs_f64() / load_time.as_secs_f64()
    );

    // 4. Shard handoff: write one shard as a standalone file stamped with
    //    the compaction generation; a receiver demands that generation and
    //    rejects anything stale.
    let snapshot = engine.snapshot();
    let shard_path = dir.join("shard-3.snapshot");
    snapshot.shards()[3]
        .save(&shard_path, snapshot.generation())
        .expect("save shard");
    let handed_off = EngineShard::load(&shard_path, Some(snapshot.generation()))
        .expect("load shard at the right generation");
    println!(
        "handed off shard 3: {} points, keys {}",
        handed_off.len(),
        handed_off.key_range()
    );
    let stale = EngineShard::load(&shard_path, Some(snapshot.generation() + 1));
    println!(
        "demanding a newer generation: {}",
        stale.err().expect("stale")
    );

    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&shard_path).ok();
}

//! Simulated rendering-device limits.
//!
//! The paper's Figure 7 explains the performance cliff of the Bounded Raster
//! Join at tight distance bounds: when the bound forces a canvas resolution
//! above what the GPU supports, the canvas has to be split into tiles and
//! the join repeated per tile. This module models exactly that resource
//! limit so the reproduction exhibits the same crossover, and tracks how
//! much "device memory" a canvas would occupy.

use parking_lot::Mutex;

/// Resource limits of the simulated rendering device.
#[derive(Debug)]
pub struct SimulatedDevice {
    /// Maximum canvas width/height in pixels (per render target).
    max_canvas_dim: usize,
    /// Bytes of device memory available for canvases.
    memory_budget_bytes: usize,
    /// Total pixels rendered so far (for reports); interior mutability so
    /// rendering code can log against a shared device handle.
    rendered_pixels: Mutex<u64>,
}

impl SimulatedDevice {
    /// Defaults mirroring the paper's mobile GTX 1060 setup: 3 GB of usable
    /// device memory and a practical 8192² maximum render-target size.
    pub fn gtx1060_like() -> Self {
        SimulatedDevice::new(8192, 3 * 1024 * 1024 * 1024)
    }

    /// A small device for tests: forces tiling early.
    pub fn tiny(max_canvas_dim: usize) -> Self {
        SimulatedDevice::new(max_canvas_dim, 64 * 1024 * 1024)
    }

    /// Creates a device with explicit limits.
    pub fn new(max_canvas_dim: usize, memory_budget_bytes: usize) -> Self {
        assert!(
            max_canvas_dim >= 16,
            "device must support at least 16x16 canvases"
        );
        SimulatedDevice {
            max_canvas_dim,
            memory_budget_bytes,
            rendered_pixels: Mutex::new(0),
        }
    }

    /// Maximum canvas dimension supported by the device.
    pub fn max_canvas_dim(&self) -> usize {
        self.max_canvas_dim
    }

    /// Device memory budget in bytes.
    pub fn memory_budget_bytes(&self) -> usize {
        self.memory_budget_bytes
    }

    /// Number of tiles (per axis) needed to cover a required resolution.
    ///
    /// A requirement within the device limit needs a single tile; beyond it,
    /// the extent must be subdivided — this is what makes BRJ slower than
    /// the baseline at very tight bounds (Figure 7's 1 m point).
    pub fn tiles_for_resolution(&self, required_resolution: usize) -> usize {
        required_resolution.div_ceil(self.max_canvas_dim).max(1)
    }

    /// Whether a `dim x dim` canvas fits on the device in one piece.
    pub fn fits(&self, dim: usize) -> bool {
        dim <= self.max_canvas_dim
            && dim * dim * std::mem::size_of::<[f64; 4]>() <= self.memory_budget_bytes
    }

    /// Records that `pixels` were rendered (called by the join operators).
    pub fn record_rendered(&self, pixels: u64) {
        *self.rendered_pixels.lock() += pixels;
    }

    /// Total pixels rendered on this device so far.
    pub fn rendered_pixels(&self) -> u64 {
        *self.rendered_pixels.lock()
    }
}

impl Default for SimulatedDevice {
    fn default() -> Self {
        Self::gtx1060_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_device_matches_paper_setup() {
        let d = SimulatedDevice::default();
        assert_eq!(d.max_canvas_dim(), 8192);
        assert_eq!(d.memory_budget_bytes(), 3 * 1024 * 1024 * 1024);
        assert!(d.fits(4096));
        assert!(!d.fits(10_000));
    }

    #[test]
    fn tiling_kicks_in_past_the_limit() {
        let d = SimulatedDevice::tiny(1024);
        assert_eq!(d.tiles_for_resolution(512), 1);
        assert_eq!(d.tiles_for_resolution(1024), 1);
        assert_eq!(d.tiles_for_resolution(1025), 2);
        assert_eq!(d.tiles_for_resolution(5000), 5);
        assert_eq!(d.tiles_for_resolution(0), 1);
    }

    #[test]
    fn memory_budget_limits_single_canvas() {
        // 64 MB budget: a 2048x2048 canvas of 32-byte pixels is 128 MB.
        let d = SimulatedDevice::tiny(4096);
        assert!(d.fits(1024));
        assert!(!d.fits(2048));
    }

    #[test]
    fn rendered_pixel_accounting() {
        let d = SimulatedDevice::tiny(256);
        assert_eq!(d.rendered_pixels(), 0);
        d.record_rendered(1000);
        d.record_rendered(24);
        assert_eq!(d.rendered_pixels(), 1024);
    }

    #[test]
    #[should_panic(expected = "at least 16x16")]
    fn rejects_degenerate_device() {
        let _ = SimulatedDevice::new(8, 1024);
    }
}

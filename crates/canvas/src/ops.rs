//! The canvas operator algebra: blend, mask and affine transforms.
//!
//! These are the three operator families of the GPU-friendly spatial algebra
//! (Doraiswamy & Freire) that the paper adapts to distance-bounded
//! approximate queries (Section 4, Figure 5). Every spatial query plan in
//! the canvas model is a composition of these operators; because the canvas
//! is already a bound-derived raster, none of them needs to handle geometric
//! boundary conditions.

use crate::canvas::{Canvas, CHANNELS};
use dbsa_geom::BoundingBox;

/// A per-channel blend function combining two pixel values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlendFn {
    /// Channel-wise addition (used to merge partial point aggregates).
    Add,
    /// Channel-wise maximum.
    Max,
    /// Channel-wise minimum.
    Min,
    /// Keep the second canvas wherever it is non-zero, else the first
    /// ("over" composition for coverage layers).
    Over,
}

impl BlendFn {
    /// Applies the blend to one pair of pixel values.
    pub fn apply(&self, a: &[f64; CHANNELS], b: &[f64; CHANNELS]) -> [f64; CHANNELS] {
        let mut out = [0.0; CHANNELS];
        match self {
            BlendFn::Add => {
                for c in 0..CHANNELS {
                    out[c] = a[c] + b[c];
                }
            }
            BlendFn::Max => {
                for c in 0..CHANNELS {
                    out[c] = a[c].max(b[c]);
                }
            }
            BlendFn::Min => {
                for c in 0..CHANNELS {
                    out[c] = a[c].min(b[c]);
                }
            }
            BlendFn::Over => {
                let b_nonzero = b.iter().any(|&v| v != 0.0);
                out = if b_nonzero { *b } else { *a };
            }
        }
        out
    }
}

/// Blends two canvases pixel-by-pixel into a new canvas.
///
/// # Panics
/// Panics if the canvases have different dimensions or viewports (the
/// optimizer is responsible for aligning canvases before blending, exactly
/// like the GPU implementation requires equal render-target sizes).
pub fn blend(a: &Canvas, b: &Canvas, f: BlendFn) -> Canvas {
    assert_eq!(a.width(), b.width(), "blend requires equal widths");
    assert_eq!(a.height(), b.height(), "blend requires equal heights");
    assert_eq!(a.viewport(), b.viewport(), "blend requires equal viewports");
    let mut out = Canvas::new(a.width(), a.height(), *a.viewport());
    for (o, (pa, pb)) in out
        .pixels_mut()
        .iter_mut()
        .zip(a.pixels().iter().zip(b.pixels().iter()))
    {
        *o = f.apply(pa, pb);
    }
    out
}

/// Masks canvas `a` by a predicate over the mask canvas `m`: pixels where
/// the predicate holds keep their value from `a`, the rest become zero.
///
/// # Panics
/// Panics on dimension or viewport mismatch.
pub fn mask<F: Fn(&[f64; CHANNELS]) -> bool>(a: &Canvas, m: &Canvas, predicate: F) -> Canvas {
    assert_eq!(a.width(), m.width(), "mask requires equal widths");
    assert_eq!(a.height(), m.height(), "mask requires equal heights");
    assert_eq!(a.viewport(), m.viewport(), "mask requires equal viewports");
    let mut out = Canvas::new(a.width(), a.height(), *a.viewport());
    for (o, (pa, pm)) in out
        .pixels_mut()
        .iter_mut()
        .zip(a.pixels().iter().zip(m.pixels().iter()))
    {
        *o = if predicate(pm) { *pa } else { [0.0; CHANNELS] };
    }
    out
}

/// Affine transform: re-samples canvas `a` onto a new viewport and
/// resolution using nearest-neighbour sampling (translation + scaling, the
/// transforms the aggregation plan needs when combining tile canvases).
pub fn translate_scale(a: &Canvas, viewport: BoundingBox, width: usize, height: usize) -> Canvas {
    let mut out = Canvas::new(width, height, viewport);
    for py in 0..height {
        for px in 0..width {
            let center = out.pixel_center(px, py);
            if let Some((sx, sy)) = a.world_to_pixel(&center) {
                out.set(px, py, a.get(sx, sy));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbsa_geom::Point;

    fn viewport() -> BoundingBox {
        BoundingBox::from_bounds(0.0, 0.0, 10.0, 10.0)
    }

    fn canvas_with(values: &[((usize, usize), [f64; 4])]) -> Canvas {
        let mut c = Canvas::new(10, 10, viewport());
        for ((x, y), v) in values {
            c.set(*x, *y, *v);
        }
        c
    }

    #[test]
    fn blend_add_merges_partial_aggregates() {
        let a = canvas_with(&[
            ((1, 1), [1.0, 10.0, 0.0, 0.0]),
            ((2, 2), [2.0, 5.0, 0.0, 0.0]),
        ]);
        let b = canvas_with(&[((1, 1), [3.0, 1.0, 0.0, 0.0])]);
        let merged = blend(&a, &b, BlendFn::Add);
        assert_eq!(merged.get(1, 1), [4.0, 11.0, 0.0, 0.0]);
        assert_eq!(merged.get(2, 2), [2.0, 5.0, 0.0, 0.0]);
        assert_eq!(merged.get(5, 5), [0.0; 4]);
        // Blending preserves total mass for Add.
        assert_eq!(
            merged.reduce_sum()[0],
            a.reduce_sum()[0] + b.reduce_sum()[0]
        );
    }

    #[test]
    fn blend_max_min_over() {
        let a = canvas_with(&[((0, 0), [1.0, 5.0, 0.0, 0.0])]);
        let b = canvas_with(&[((0, 0), [3.0, 2.0, 0.0, 0.0])]);
        assert_eq!(blend(&a, &b, BlendFn::Max).get(0, 0), [3.0, 5.0, 0.0, 0.0]);
        assert_eq!(blend(&a, &b, BlendFn::Min).get(0, 0), [1.0, 2.0, 0.0, 0.0]);
        assert_eq!(blend(&a, &b, BlendFn::Over).get(0, 0), [3.0, 2.0, 0.0, 0.0]);
        // Over keeps `a` where `b` is zero.
        let zero_b = Canvas::new(10, 10, viewport());
        assert_eq!(
            blend(&a, &zero_b, BlendFn::Over).get(0, 0),
            [1.0, 5.0, 0.0, 0.0]
        );
    }

    #[test]
    #[should_panic(expected = "equal widths")]
    fn blend_rejects_mismatched_canvases() {
        let a = Canvas::new(10, 10, viewport());
        let b = Canvas::new(20, 10, viewport());
        let _ = blend(&a, &b, BlendFn::Add);
    }

    #[test]
    fn mask_keeps_only_covered_pixels() {
        // Point aggregates in `a`; polygon coverage in `m` channel 3.
        let a = canvas_with(&[
            ((1, 1), [5.0, 0.0, 0.0, 0.0]),
            ((8, 8), [7.0, 0.0, 0.0, 0.0]),
        ]);
        let m = canvas_with(&[((1, 1), [0.0, 0.0, 0.0, 1.0])]);
        let masked = mask(&a, &m, |p| p[3] > 0.0);
        assert_eq!(masked.get(1, 1)[0], 5.0);
        assert_eq!(masked.get(8, 8)[0], 0.0);
        assert_eq!(masked.reduce_sum()[0], 5.0);
    }

    #[test]
    fn translate_scale_resamples() {
        let mut a = Canvas::new(10, 10, viewport());
        a.set(3, 4, [9.0, 0.0, 0.0, 0.0]);
        // Zoom into the quarter viewport around that pixel at double resolution.
        let zoom = translate_scale(&a, BoundingBox::from_bounds(2.0, 3.0, 5.0, 6.0), 6, 6);
        assert_eq!(zoom.width(), 6);
        // The world point (3.5, 4.5) is the center of source pixel (3,4).
        let (px, py) = zoom.world_to_pixel(&Point::new(3.5, 4.5)).unwrap();
        assert_eq!(zoom.get(px, py)[0], 9.0);
        // Pixels mapping to empty source pixels stay zero.
        assert_eq!(zoom.get(0, 0)[0], 0.0);
    }

    #[test]
    fn translate_scale_outside_source_is_zero() {
        let a = canvas_with(&[((9, 9), [1.0, 0.0, 0.0, 0.0])]);
        let shifted = translate_scale(&a, BoundingBox::from_bounds(50.0, 50.0, 60.0, 60.0), 10, 10);
        assert_eq!(shifted.reduce_sum(), [0.0; 4]);
    }
}

//! Software rasterization: scanline polygon fill and point scattering.
//!
//! This module is the substitute for the GPU rasterization stage: it turns
//! geometries into canvas pixels exactly like the graphics pipeline would
//! (pixel-center sampling for polygons, one fragment per point), just on the
//! CPU. The benchmark harness uses it to generate the canvases consumed by
//! the blend/mask algebra and the Bounded Raster Join.

use crate::canvas::Canvas;
use dbsa_geom::{MultiPolygon, Point, Polygon};

/// Channel used for polygon coverage masks.
pub const COVERAGE_CHANNEL: usize = 3;

/// Scatters points onto a canvas: for each point inside the viewport, the
/// containing pixel's channel 0 is incremented by 1 (COUNT) and channel 1 by
/// the point's `value` (SUM).
///
/// Returns the number of points that fell inside the viewport.
pub fn scatter_points(canvas: &mut Canvas, points: &[Point], values: Option<&[f64]>) -> usize {
    if let Some(v) = values {
        assert_eq!(v.len(), points.len(), "one value per point required");
    }
    let mut scattered = 0;
    for (i, p) in points.iter().enumerate() {
        if let Some((px, py)) = canvas.world_to_pixel(p) {
            let value = values.map(|v| v[i]).unwrap_or(0.0);
            canvas.accumulate(px, py, [1.0, value, 0.0, 0.0]);
            scattered += 1;
        }
    }
    scattered
}

/// Rasterizes a polygon's coverage into the [`COVERAGE_CHANNEL`] of a canvas
/// using scanline filling with pixel-center sampling: a pixel is covered if
/// its center lies inside the polygon (the GPU's default fill convention).
///
/// Returns the number of covered pixels.
pub fn rasterize_polygon_coverage(canvas: &mut Canvas, polygon: &Polygon) -> usize {
    rasterize_rings(canvas, polygon, 1.0)
}

/// Rasterizes every part of a multi-polygon.
pub fn rasterize_multipolygon_coverage(canvas: &mut Canvas, mp: &MultiPolygon) -> usize {
    mp.polygons()
        .iter()
        .map(|p| rasterize_polygon_coverage(canvas, p))
        .sum()
}

/// Visits (without materializing a canvas) every pixel of `canvas` whose
/// center lies inside the polygon. This is the fused mask+reduce used by the
/// Bounded Raster Join: instead of rendering a polygon canvas and blending,
/// the aggregation is applied directly to the covered pixels of the point
/// canvas — the same pixels the mask operator would retain.
pub fn for_each_covered_pixel<F: FnMut(usize, usize)>(
    canvas: &Canvas,
    polygon: &Polygon,
    mut f: F,
) {
    scanline_spans(canvas, polygon, |y, x_start, x_end| {
        for x in x_start..x_end {
            f(x, y);
        }
    });
}

/// Core scanline algorithm: for every pixel row intersecting the polygon's
/// bounding box, computes the crossings of the row's center line with the
/// polygon edges and emits the covered pixel spans.
fn scanline_spans<F: FnMut(usize, usize, usize)>(canvas: &Canvas, polygon: &Polygon, mut emit: F) {
    let bbox = polygon.bbox();
    if bbox.is_empty() || !bbox.intersects(canvas.viewport()) {
        return;
    }
    let vp = canvas.viewport();
    let ph = canvas.pixel_height();
    let pw = canvas.pixel_width();

    // Pixel row range overlapping the polygon bbox (clamped to the canvas).
    let y_lo = (((bbox.min.y - vp.min.y) / ph).floor().max(0.0)) as usize;
    let y_hi = (((bbox.max.y - vp.min.y) / ph).ceil()).min(canvas.height() as f64) as usize;

    // Collect all edges once (exterior + holes); holes flip parity naturally.
    let edges: Vec<(Point, Point)> = polygon.edges().map(|e| (e.start, e.end)).collect();

    let mut crossings: Vec<f64> = Vec::with_capacity(16);
    for row in y_lo..y_hi {
        let scan_y = vp.min.y + (row as f64 + 0.5) * ph;
        crossings.clear();
        for (a, b) in &edges {
            // Half-open rule avoids double counting at shared vertices.
            if (a.y <= scan_y && b.y > scan_y) || (b.y <= scan_y && a.y > scan_y) {
                let t = (scan_y - a.y) / (b.y - a.y);
                crossings.push(a.x + t * (b.x - a.x));
            }
        }
        if crossings.is_empty() {
            continue;
        }
        crossings.sort_by(|p, q| p.partial_cmp(q).expect("finite crossing"));
        // Fill between pairs of crossings.
        for pair in crossings.chunks(2) {
            if pair.len() < 2 {
                break;
            }
            let (x0, x1) = (pair[0], pair[1]);
            // Pixels whose center lies in [x0, x1).
            let start = ((x0 - vp.min.x) / pw - 0.5).ceil().max(0.0) as usize;
            let end = (((x1 - vp.min.x) / pw - 0.5).floor() + 1.0).max(0.0) as usize;
            let start = start.min(canvas.width());
            let end = end.min(canvas.width());
            if start < end {
                emit(row, start, end);
            }
        }
    }
}

fn rasterize_rings(canvas: &mut Canvas, polygon: &Polygon, coverage: f64) -> usize {
    let mut covered = 0usize;
    let width = canvas.width();
    // Collect spans first to avoid borrowing issues, then write.
    let mut spans: Vec<(usize, usize, usize)> = Vec::new();
    scanline_spans(canvas, polygon, |y, x0, x1| spans.push((y, x0, x1)));
    for (y, x0, x1) in spans {
        for x in x0..x1.min(width) {
            let mut v = canvas.get(x, y);
            v[COVERAGE_CHANNEL] = coverage;
            canvas.set(x, y, v);
            covered += 1;
        }
    }
    covered
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbsa_geom::{BoundingBox, Ring};
    use proptest::prelude::*;

    fn viewport() -> BoundingBox {
        BoundingBox::from_bounds(0.0, 0.0, 100.0, 100.0)
    }

    #[test]
    fn scatter_counts_and_sums() {
        let mut canvas = Canvas::new(10, 10, viewport());
        let points = vec![
            Point::new(5.0, 5.0),
            Point::new(5.5, 5.5), // same pixel as the first
            Point::new(55.0, 75.0),
            Point::new(150.0, 50.0), // outside
        ];
        let values = vec![10.0, 20.0, 5.0, 99.0];
        let n = scatter_points(&mut canvas, &points, Some(&values));
        assert_eq!(n, 3);
        assert_eq!(canvas.get(0, 0), [2.0, 30.0, 0.0, 0.0]);
        assert_eq!(canvas.get(5, 7), [1.0, 5.0, 0.0, 0.0]);
        assert_eq!(canvas.reduce_sum()[0], 3.0);
        assert_eq!(canvas.reduce_sum()[1], 35.0);
    }

    #[test]
    fn scatter_without_values_only_counts() {
        let mut canvas = Canvas::new(10, 10, viewport());
        let points = vec![Point::new(1.0, 1.0), Point::new(99.0, 99.0)];
        assert_eq!(scatter_points(&mut canvas, &points, None), 2);
        assert_eq!(canvas.reduce_sum(), [2.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "one value per point")]
    fn scatter_rejects_mismatched_values() {
        let mut canvas = Canvas::new(10, 10, viewport());
        let _ = scatter_points(&mut canvas, &[Point::new(1.0, 1.0)], Some(&[1.0, 2.0]));
    }

    #[test]
    fn rasterized_square_covers_expected_pixels() {
        // A 40x40 square on a 100x100 viewport with 100x100 pixels covers
        // ~1600 pixels (pixel-center sampling makes it exactly 40x40).
        let mut canvas = Canvas::new(100, 100, viewport());
        let square =
            Polygon::from_coords(&[(20.0, 20.0), (60.0, 20.0), (60.0, 60.0), (20.0, 60.0)]);
        let covered = rasterize_polygon_coverage(&mut canvas, &square);
        assert_eq!(covered, 1600);
        assert_eq!(canvas.count_pixels(|p| p[COVERAGE_CHANNEL] > 0.0), 1600);
        // Spot checks.
        assert!(canvas.get(30, 30)[COVERAGE_CHANNEL] > 0.0);
        assert!(canvas.get(10, 30)[COVERAGE_CHANNEL] == 0.0);
    }

    #[test]
    fn rasterized_triangle_approximates_area() {
        let mut canvas = Canvas::new(200, 200, viewport());
        let tri = Polygon::from_coords(&[(10.0, 10.0), (90.0, 10.0), (10.0, 90.0)]);
        let covered = rasterize_polygon_coverage(&mut canvas, &tri);
        let pixel_area = canvas.pixel_width() * canvas.pixel_height();
        let raster_area = covered as f64 * pixel_area;
        assert!(
            (raster_area - tri.area()).abs() / tri.area() < 0.03,
            "raster area {raster_area} vs exact {}",
            tri.area()
        );
    }

    #[test]
    fn polygon_with_hole_excludes_hole_pixels() {
        let exterior = Ring::new(vec![
            Point::new(10.0, 10.0),
            Point::new(90.0, 10.0),
            Point::new(90.0, 90.0),
            Point::new(10.0, 90.0),
        ]);
        let hole = Ring::new(vec![
            Point::new(40.0, 40.0),
            Point::new(60.0, 40.0),
            Point::new(60.0, 60.0),
            Point::new(40.0, 60.0),
        ]);
        let poly = Polygon::with_holes(exterior, vec![hole]);
        let mut canvas = Canvas::new(100, 100, viewport());
        let covered = rasterize_polygon_coverage(&mut canvas, &poly);
        assert_eq!(covered, 80 * 80 - 20 * 20);
        assert_eq!(
            canvas.get(50, 50)[COVERAGE_CHANNEL],
            0.0,
            "hole center must be uncovered"
        );
        assert!(canvas.get(20, 20)[COVERAGE_CHANNEL] > 0.0);
    }

    #[test]
    fn coverage_outside_viewport_is_clipped() {
        let mut canvas = Canvas::new(50, 50, viewport());
        let poly =
            Polygon::from_coords(&[(80.0, 80.0), (200.0, 80.0), (200.0, 200.0), (80.0, 200.0)]);
        let covered = rasterize_polygon_coverage(&mut canvas, &poly);
        // Only the 20x20 world-unit corner inside the viewport is covered
        // (each pixel is 2x2 world units => 10x10 pixels).
        assert_eq!(covered, 100);
        // A polygon entirely outside covers nothing.
        let mut canvas2 = Canvas::new(50, 50, viewport());
        let far = Polygon::from_coords(&[(200.0, 200.0), (300.0, 200.0), (300.0, 300.0)]);
        assert_eq!(rasterize_polygon_coverage(&mut canvas2, &far), 0);
    }

    #[test]
    fn multipolygon_coverage_sums_parts() {
        let mp = MultiPolygon::new(vec![
            Polygon::from_coords(&[(0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0)]),
            Polygon::from_coords(&[(50.0, 50.0), (60.0, 50.0), (60.0, 60.0), (50.0, 60.0)]),
        ]);
        let mut canvas = Canvas::new(100, 100, viewport());
        let covered = rasterize_multipolygon_coverage(&mut canvas, &mp);
        assert_eq!(covered, 200);
    }

    #[test]
    fn for_each_covered_pixel_matches_rasterization() {
        let poly = Polygon::from_coords(&[(15.0, 20.0), (70.0, 25.0), (55.0, 80.0), (20.0, 65.0)]);
        let mut canvas = Canvas::new(80, 80, viewport());
        let covered = rasterize_polygon_coverage(&mut canvas, &poly);
        let mut visited = 0usize;
        for_each_covered_pixel(&canvas, &poly, |x, y| {
            visited += 1;
            assert!(canvas.get(x, y)[COVERAGE_CHANNEL] > 0.0);
        });
        assert_eq!(visited, covered);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn prop_covered_pixels_have_centers_near_or_inside_polygon(
            w in 10f64..60.0, h in 10f64..60.0, ox in 5f64..30.0, oy in 5f64..30.0,
        ) {
            let poly = Polygon::from_coords(&[(ox, oy), (ox + w, oy), (ox + w, oy + h), (ox, oy + h)]);
            let mut canvas = Canvas::new(64, 64, viewport());
            rasterize_polygon_coverage(&mut canvas, &poly);
            for py in 0..canvas.height() {
                for px in 0..canvas.width() {
                    if canvas.get(px, py)[COVERAGE_CHANNEL] > 0.0 {
                        let center = canvas.pixel_center(px, py);
                        // Pixel-center sampling: every covered pixel's center
                        // is inside the polygon (within numerical slack).
                        prop_assert!(poly.contains_point(&center)
                            || poly.boundary_distance(&center) < 1e-6);
                    }
                }
            }
        }

        #[test]
        fn prop_scattered_mass_is_preserved(
            pts in proptest::collection::vec((0f64..100.0, 0f64..100.0), 0..200),
        ) {
            let points: Vec<Point> = pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let mut canvas = Canvas::new(32, 32, viewport());
            let n = scatter_points(&mut canvas, &points, None);
            prop_assert_eq!(n, points.len());
            prop_assert!((canvas.reduce_sum()[0] - points.len() as f64).abs() < 1e-9);
        }
    }
}

//! Bounded Raster Join (BRJ) — approximate spatial aggregation on the
//! rasterized canvas model (paper Section 5.2, Figure 7).
//!
//! The plan, expressed in the canvas algebra:
//!
//! 1. **Scatter + blend** all points into one canvas of partial aggregates
//!    (each pixel keeps the COUNT and SUM of the points that fall in it).
//! 2. For every polygon, **rasterize** its coverage at the bound-derived
//!    resolution and **mask** the point canvas with it.
//! 3. **Reduce** the masked pixels into the polygon's aggregate.
//!
//! The canvas resolution is `extent / (ε / √2)` so that a pixel's diagonal
//! is at most ε; when that resolution exceeds the simulated device limit the
//! extent is processed in tiles and the partial aggregates are blended
//! (added) across tiles — reproducing the paper's explanation of why BRJ
//! loses its advantage at a 1 m bound on a 6 GB GPU.

use crate::canvas::Canvas;
use crate::device::SimulatedDevice;
use crate::rasterize::{for_each_covered_pixel, scatter_points};
use dbsa_geom::{BoundingBox, MultiPolygon, Point};
use dbsa_raster::DistanceBound;

/// Per-polygon aggregate produced by the join.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct JoinAggregate {
    /// Number of points assigned to the polygon.
    pub count: f64,
    /// Sum of the aggregated attribute over those points.
    pub sum: f64,
}

impl JoinAggregate {
    /// Average of the aggregated attribute (0 when the count is 0).
    pub fn avg(&self) -> f64 {
        if self.count == 0.0 {
            0.0
        } else {
            self.sum / self.count
        }
    }
}

/// Execution statistics of one BRJ run, reported alongside the aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BrjStats {
    /// Canvas resolution (pixels per axis) required by the bound.
    pub required_resolution: usize,
    /// Number of tiles the extent was split into (per axis).
    pub tiles_per_axis: usize,
    /// Total pixels rendered across all tiles and polygons.
    pub rendered_pixels: u64,
}

/// The Bounded Raster Join operator.
#[derive(Debug)]
pub struct BoundedRasterJoin<'d> {
    device: &'d SimulatedDevice,
    bound: DistanceBound,
}

impl<'d> BoundedRasterJoin<'d> {
    /// Creates a join operator for a device and a distance bound.
    pub fn new(device: &'d SimulatedDevice, bound: DistanceBound) -> Self {
        BoundedRasterJoin { device, bound }
    }

    /// The distance bound the join guarantees.
    pub fn bound(&self) -> DistanceBound {
        self.bound
    }

    /// Canvas resolution (pixels per axis) needed to satisfy the bound over
    /// the given extent.
    pub fn required_resolution(&self, extent: &BoundingBox) -> usize {
        let side = extent.width().max(extent.height());
        (side / self.bound.max_cell_side()).ceil().max(1.0) as usize
    }

    /// Executes the join: aggregates `values` (COUNT and SUM) of the points
    /// into every polygon, entirely on the rasterized canvas.
    ///
    /// Returns one [`JoinAggregate`] per polygon plus execution statistics.
    pub fn execute(
        &self,
        points: &[Point],
        values: Option<&[f64]>,
        polygons: &[MultiPolygon],
        extent: &BoundingBox,
    ) -> (Vec<JoinAggregate>, BrjStats) {
        assert!(!extent.is_empty(), "join extent must not be empty");
        let required = self.required_resolution(extent);
        let tiles = self.device.tiles_for_resolution(required);
        let tile_resolution = required.div_ceil(tiles).min(self.device.max_canvas_dim());
        let tile_world_w = extent.width() / tiles as f64;
        let tile_world_h = extent.height() / tiles as f64;

        let mut aggregates = vec![JoinAggregate::default(); polygons.len()];
        let mut rendered: u64 = 0;

        for ty in 0..tiles {
            for tx in 0..tiles {
                let viewport = BoundingBox::from_bounds(
                    extent.min.x + tx as f64 * tile_world_w,
                    extent.min.y + ty as f64 * tile_world_h,
                    extent.min.x + (tx + 1) as f64 * tile_world_w,
                    extent.min.y + (ty + 1) as f64 * tile_world_h,
                );
                // Step 1: blend all points of this tile into a partial
                // aggregate canvas.
                let mut point_canvas = Canvas::new(tile_resolution, tile_resolution, viewport);
                let scattered = scatter_points(&mut point_canvas, points, values);
                rendered += scattered as u64;
                if scattered == 0 {
                    continue;
                }
                // Steps 2+3: for each polygon, mask the point canvas with the
                // polygon's coverage and reduce. The mask+reduce is fused:
                // covered pixels are visited directly instead of producing an
                // intermediate canvas (same pixels, same result).
                for (pid, polygon) in polygons.iter().enumerate() {
                    if !polygon.bbox().intersects(&viewport) {
                        continue;
                    }
                    let mut count = 0.0;
                    let mut sum = 0.0;
                    let mut covered_pixels: u64 = 0;
                    for part in polygon.polygons() {
                        for_each_covered_pixel(&point_canvas, part, |x, y| {
                            let px = point_canvas.get(x, y);
                            count += px[0];
                            sum += px[1];
                            covered_pixels += 1;
                        });
                    }
                    rendered += covered_pixels;
                    aggregates[pid].count += count;
                    aggregates[pid].sum += sum;
                }
            }
        }
        self.device.record_rendered(rendered);
        (
            aggregates,
            BrjStats {
                required_resolution: required,
                tiles_per_axis: tiles,
                rendered_pixels: rendered,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbsa_geom::Polygon;
    use proptest::prelude::*;
    use rand::prelude::*;

    fn extent() -> BoundingBox {
        BoundingBox::from_bounds(0.0, 0.0, 1000.0, 1000.0)
    }

    fn regions() -> Vec<MultiPolygon> {
        vec![
            MultiPolygon::from(Polygon::from_coords(&[
                (100.0, 100.0),
                (400.0, 100.0),
                (400.0, 400.0),
                (100.0, 400.0),
            ])),
            MultiPolygon::from(Polygon::from_coords(&[
                (600.0, 600.0),
                (900.0, 600.0),
                (900.0, 900.0),
                (600.0, 900.0),
            ])),
            // A triangle overlapping neither square.
            MultiPolygon::from(Polygon::from_coords(&[
                (600.0, 100.0),
                (900.0, 100.0),
                (750.0, 350.0),
            ])),
        ]
    }

    fn random_points(n: usize, seed: u64) -> (Vec<Point>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts: Vec<Point> = (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)))
            .collect();
        let vals: Vec<f64> = (0..n).map(|_| rng.gen_range(1.0..20.0)).collect();
        (pts, vals)
    }

    fn exact_aggregates(
        points: &[Point],
        values: &[f64],
        polygons: &[MultiPolygon],
    ) -> Vec<JoinAggregate> {
        polygons
            .iter()
            .map(|poly| {
                let mut agg = JoinAggregate::default();
                for (p, v) in points.iter().zip(values) {
                    if poly.contains_point(p) {
                        agg.count += 1.0;
                        agg.sum += v;
                    }
                }
                agg
            })
            .collect()
    }

    #[test]
    fn brj_count_is_close_to_exact_at_moderate_bound() {
        let device = SimulatedDevice::gtx1060_like();
        let (points, values) = random_points(20_000, 7);
        let polys = regions();
        let brj = BoundedRasterJoin::new(&device, DistanceBound::meters(10.0));
        let (approx, stats) = brj.execute(&points, Some(&values), &polys, &extent());
        let exact = exact_aggregates(&points, &values, &polys);
        assert_eq!(stats.tiles_per_axis, 1);
        assert!(stats.required_resolution >= 100);
        for (a, e) in approx.iter().zip(&exact) {
            let rel = (a.count - e.count).abs() / e.count.max(1.0);
            assert!(
                rel < 0.05,
                "relative count error {rel} too large ({} vs {})",
                a.count,
                e.count
            );
            let rel_sum = (a.sum - e.sum).abs() / e.sum.max(1.0);
            assert!(rel_sum < 0.05, "relative sum error {rel_sum} too large");
        }
    }

    #[test]
    fn tighter_bound_gives_higher_accuracy() {
        let device = SimulatedDevice::gtx1060_like();
        let (points, values) = random_points(8_000, 13);
        let polys = regions();
        let exact = exact_aggregates(&points, &values, &polys);
        let mut prev_err = f64::INFINITY;
        for eps in [80.0, 20.0, 5.0] {
            let brj = BoundedRasterJoin::new(&device, DistanceBound::meters(eps));
            let (approx, _) = brj.execute(&points, Some(&values), &polys, &extent());
            let err: f64 = approx
                .iter()
                .zip(&exact)
                .map(|(a, e)| (a.count - e.count).abs())
                .sum();
            assert!(
                err <= prev_err + 1e-9,
                "error should not grow when the bound tightens"
            );
            prev_err = err;
        }
    }

    #[test]
    fn tiling_is_triggered_by_small_devices_and_produces_same_result() {
        let (points, values) = random_points(5_000, 3);
        let polys = regions();

        let big = SimulatedDevice::gtx1060_like();
        let small = SimulatedDevice::tiny(128);
        let bound = DistanceBound::meters(4.0);
        let (res_big, stats_big) =
            BoundedRasterJoin::new(&big, bound).execute(&points, Some(&values), &polys, &extent());
        let (res_small, stats_small) = BoundedRasterJoin::new(&small, bound).execute(
            &points,
            Some(&values),
            &polys,
            &extent(),
        );
        assert_eq!(stats_big.tiles_per_axis, 1);
        assert!(stats_small.tiles_per_axis > 1, "small device must tile");
        // Tiled execution changes pixel boundaries slightly; counts must stay
        // within the same distance-bound error regime.
        for (a, b) in res_big.iter().zip(&res_small) {
            assert!((a.count - b.count).abs() / a.count.max(1.0) < 0.05);
        }
    }

    #[test]
    fn empty_inputs() {
        let device = SimulatedDevice::default();
        let brj = BoundedRasterJoin::new(&device, DistanceBound::meters(10.0));
        let (res, stats) = brj.execute(&[], None, &regions(), &extent());
        assert_eq!(res.len(), 3);
        assert!(res.iter().all(|a| a.count == 0.0 && a.sum == 0.0));
        assert_eq!(stats.rendered_pixels, 0);

        let (res2, _) = brj.execute(&[Point::new(1.0, 1.0)], None, &[], &extent());
        assert!(res2.is_empty());
    }

    #[test]
    fn join_aggregate_avg() {
        let agg = JoinAggregate {
            count: 4.0,
            sum: 10.0,
        };
        assert_eq!(agg.avg(), 2.5);
        assert_eq!(JoinAggregate::default().avg(), 0.0);
    }

    #[test]
    fn required_resolution_scales_inversely_with_bound() {
        let device = SimulatedDevice::default();
        let r10 = BoundedRasterJoin::new(&device, DistanceBound::meters(10.0))
            .required_resolution(&extent());
        let r1 = BoundedRasterJoin::new(&device, DistanceBound::meters(1.0))
            .required_resolution(&extent());
        // 1000 m extent at 10 m bound: pixel side 7.07 m -> 142 pixels;
        // a 10x tighter bound needs ~10x the resolution (up to rounding).
        assert_eq!(r10, (1000.0 / (10.0 / 2f64.sqrt())).ceil() as usize);
        assert_eq!(r1, (1000.0 / (1.0 / 2f64.sqrt())).ceil() as usize);
        assert!(r1 >= 10 * (r10 - 1) && r1 <= 10 * r10);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn prop_brj_errors_are_bounded_by_points_near_boundaries(seed in 0u64..1000) {
            // The number of misassigned points can never exceed the number of
            // points within ε of a polygon boundary (the distance-bound
            // guarantee applied to aggregation).
            let (points, values) = random_points(2_000, seed);
            let polys = regions();
            let eps = 15.0;
            let device = SimulatedDevice::default();
            let brj = BoundedRasterJoin::new(&device, DistanceBound::meters(eps));
            let (approx, _) = brj.execute(&points, Some(&values), &polys, &extent());
            let exact = exact_aggregates(&points, &values, &polys);
            for (pid, poly) in polys.iter().enumerate() {
                let near_boundary = points
                    .iter()
                    .filter(|p| poly.boundary_distance(p) <= eps)
                    .count() as f64;
                let err = (approx[pid].count - exact[pid].count).abs();
                prop_assert!(err <= near_boundary + 1e-9,
                    "polygon {pid}: error {err} exceeds near-boundary count {near_boundary}");
            }
        }
    }
}

//! Accurate "GPU baseline" for spatial aggregation (paper Section 5.2).
//!
//! The baseline the paper compares the Bounded Raster Join against follows
//! the traditional index-based strategy: filter the points with a uniform
//! grid index (1024² cells in the paper) and then run an exact
//! point-in-polygon (PIP) test for every candidate. The expensive part is
//! the PIP refinement — the step whose elimination the distance-bounded
//! approach is all about. Like the rest of this crate it runs on the CPU;
//! the relative cost of filter vs. refinement is what matters for the
//! reproduction.

use crate::brj::JoinAggregate;
use dbsa_geom::{BoundingBox, MultiPolygon, Point};

/// Uniform grid index over points plus exact PIP refinement.
#[derive(Debug)]
pub struct GpuBaseline {
    extent: BoundingBox,
    resolution: usize,
    /// Point indices per grid cell (row-major).
    cells: Vec<Vec<u32>>,
}

/// Statistics of one baseline run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BaselineStats {
    /// Number of candidate points produced by the grid filter.
    pub candidates: u64,
    /// Number of exact point-in-polygon tests performed.
    pub pip_tests: u64,
}

impl GpuBaseline {
    /// Grid resolution used by the paper's baseline.
    pub const DEFAULT_RESOLUTION: usize = 1024;

    /// Builds the grid index over the points with the default resolution.
    pub fn build(points: &[Point], extent: &BoundingBox) -> Self {
        Self::with_resolution(points, extent, Self::DEFAULT_RESOLUTION)
    }

    /// Builds the grid index with an explicit resolution.
    pub fn with_resolution(points: &[Point], extent: &BoundingBox, resolution: usize) -> Self {
        assert!(resolution >= 1, "grid resolution must be positive");
        assert!(!extent.is_empty(), "extent must not be empty");
        let mut cells = vec![Vec::new(); resolution * resolution];
        for (i, p) in points.iter().enumerate() {
            if let Some(idx) = cell_index(extent, resolution, p) {
                cells[idx].push(i as u32);
            }
        }
        GpuBaseline {
            extent: *extent,
            resolution,
            cells,
        }
    }

    /// The grid resolution.
    pub fn resolution(&self) -> usize {
        self.resolution
    }

    /// Evaluates the aggregation query exactly: for every polygon, grid
    /// cells overlapping its bounding box provide candidate points, each of
    /// which is verified with an exact PIP test.
    pub fn aggregate(
        &self,
        points: &[Point],
        values: Option<&[f64]>,
        polygons: &[MultiPolygon],
    ) -> (Vec<JoinAggregate>, BaselineStats) {
        let mut stats = BaselineStats::default();
        let mut out = Vec::with_capacity(polygons.len());
        let cell_w = self.extent.width() / self.resolution as f64;
        let cell_h = self.extent.height() / self.resolution as f64;
        for polygon in polygons {
            let mut agg = JoinAggregate::default();
            let bbox = polygon.bbox().intersection(&self.extent);
            if bbox.is_empty() {
                out.push(agg);
                continue;
            }
            let x0 = (((bbox.min.x - self.extent.min.x) / cell_w).floor().max(0.0)) as usize;
            let y0 = (((bbox.min.y - self.extent.min.y) / cell_h).floor().max(0.0)) as usize;
            let x1 =
                (((bbox.max.x - self.extent.min.x) / cell_w).ceil() as usize).min(self.resolution);
            let y1 =
                (((bbox.max.y - self.extent.min.y) / cell_h).ceil() as usize).min(self.resolution);
            for cy in y0..y1 {
                for cx in x0..x1 {
                    for &pi in &self.cells[cy * self.resolution + cx] {
                        stats.candidates += 1;
                        let p = &points[pi as usize];
                        stats.pip_tests += 1;
                        if polygon.contains_point(p) {
                            agg.count += 1.0;
                            agg.sum += values.map(|v| v[pi as usize]).unwrap_or(0.0);
                        }
                    }
                }
            }
            out.push(agg);
        }
        (out, stats)
    }
}

fn cell_index(extent: &BoundingBox, resolution: usize, p: &Point) -> Option<usize> {
    if !extent.contains_point(p) {
        return None;
    }
    let fx = (p.x - extent.min.x) / extent.width();
    let fy = (p.y - extent.min.y) / extent.height();
    let cx = ((fx * resolution as f64) as usize).min(resolution - 1);
    let cy = ((fy * resolution as f64) as usize).min(resolution - 1);
    Some(cy * resolution + cx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbsa_geom::Polygon;
    use rand::prelude::*;

    fn extent() -> BoundingBox {
        BoundingBox::from_bounds(0.0, 0.0, 1000.0, 1000.0)
    }

    fn random_points(n: usize, seed: u64) -> (Vec<Point>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts: Vec<Point> = (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)))
            .collect();
        let vals: Vec<f64> = (0..n).map(|_| rng.gen_range(1.0..10.0)).collect();
        (pts, vals)
    }

    #[test]
    fn baseline_is_exact() {
        let (points, values) = random_points(10_000, 5);
        let polys = vec![
            MultiPolygon::from(Polygon::from_coords(&[
                (100.0, 100.0),
                (400.0, 150.0),
                (350.0, 450.0),
                (120.0, 380.0),
            ])),
            MultiPolygon::from(Polygon::from_coords(&[
                (600.0, 600.0),
                (900.0, 600.0),
                (750.0, 900.0),
            ])),
        ];
        let baseline = GpuBaseline::with_resolution(&points, &extent(), 128);
        let (aggs, stats) = baseline.aggregate(&points, Some(&values), &polys);
        for (agg, poly) in aggs.iter().zip(&polys) {
            let mut count = 0.0;
            let mut sum = 0.0;
            for (p, v) in points.iter().zip(&values) {
                if poly.contains_point(p) {
                    count += 1.0;
                    sum += v;
                }
            }
            assert_eq!(agg.count, count);
            assert!((agg.sum - sum).abs() < 1e-9);
        }
        assert!(stats.pip_tests > 0);
        assert!(stats.candidates >= stats.pip_tests);
    }

    #[test]
    fn grid_filter_reduces_candidates() {
        let (points, _) = random_points(20_000, 9);
        let small_poly = vec![MultiPolygon::from(Polygon::from_coords(&[
            (10.0, 10.0),
            (60.0, 10.0),
            (60.0, 60.0),
            (10.0, 60.0),
        ]))];
        let baseline = GpuBaseline::build(&points, &extent());
        let (_, stats) = baseline.aggregate(&points, None, &small_poly);
        // The polygon covers 0.25% of the extent; the filter should discard
        // the overwhelming majority of points before any PIP test.
        assert!(
            (stats.pip_tests as f64) < 0.02 * points.len() as f64,
            "filter let too many candidates through: {}",
            stats.pip_tests
        );
    }

    #[test]
    fn polygons_outside_extent_get_zero() {
        let (points, _) = random_points(100, 1);
        let baseline = GpuBaseline::with_resolution(&points, &extent(), 64);
        let far = vec![MultiPolygon::from(Polygon::from_coords(&[
            (5000.0, 5000.0),
            (6000.0, 5000.0),
            (6000.0, 6000.0),
        ]))];
        let (aggs, stats) = baseline.aggregate(&points, None, &far);
        assert_eq!(aggs[0].count, 0.0);
        assert_eq!(stats.pip_tests, 0);
    }

    #[test]
    fn points_outside_extent_are_ignored() {
        let points = vec![Point::new(-10.0, 500.0), Point::new(500.0, 500.0)];
        let baseline = GpuBaseline::with_resolution(&points, &extent(), 16);
        let all = vec![MultiPolygon::from(Polygon::rectangle(&extent()))];
        let (aggs, _) = baseline.aggregate(&points, None, &all);
        assert_eq!(aggs[0].count, 1.0);
    }

    #[test]
    #[should_panic(expected = "resolution must be positive")]
    fn rejects_zero_resolution() {
        let _ = GpuBaseline::with_resolution(&[], &extent(), 0);
    }
}

//! The rasterized canvas: a pixel grid with aggregate channels.

use dbsa_geom::{BoundingBox, Point};

/// Number of value channels per pixel (mirrors the r/g/b/a channels the GPU
/// implementation stores partial aggregates in).
pub const CHANNELS: usize = 4;

/// A rasterized canvas: `width x height` pixels over a world-space viewport,
/// each pixel holding four `f64` aggregate channels.
///
/// Conventions used by the join operators:
/// * channel 0 — `COUNT` of points in the pixel,
/// * channel 1 — `SUM` of the aggregated attribute,
/// * channel 2 / 3 — free (used for coverage masks and intermediates).
#[derive(Debug, Clone, PartialEq)]
pub struct Canvas {
    width: usize,
    height: usize,
    viewport: BoundingBox,
    pixels: Vec<[f64; CHANNELS]>,
}

impl Canvas {
    /// Creates an empty (all-zero) canvas.
    ///
    /// # Panics
    /// Panics if the dimensions are zero or the viewport is empty.
    pub fn new(width: usize, height: usize, viewport: BoundingBox) -> Self {
        assert!(
            width > 0 && height > 0,
            "canvas dimensions must be positive"
        );
        assert!(!viewport.is_empty(), "canvas viewport must not be empty");
        Canvas {
            width,
            height,
            viewport,
            pixels: vec![[0.0; CHANNELS]; width * height],
        }
    }

    /// Canvas width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Canvas height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// The world-space viewport the canvas covers.
    pub fn viewport(&self) -> &BoundingBox {
        &self.viewport
    }

    /// World-space width of one pixel.
    pub fn pixel_width(&self) -> f64 {
        self.viewport.width() / self.width as f64
    }

    /// World-space height of one pixel.
    pub fn pixel_height(&self) -> f64 {
        self.viewport.height() / self.height as f64
    }

    /// World-space diagonal of one pixel (the distance-bound quantity).
    pub fn pixel_diagonal(&self) -> f64 {
        (self.pixel_width().powi(2) + self.pixel_height().powi(2)).sqrt()
    }

    /// Number of pixels.
    pub fn pixel_count(&self) -> usize {
        self.pixels.len()
    }

    /// Raw pixel storage (row-major, bottom row first).
    pub fn pixels(&self) -> &[[f64; CHANNELS]] {
        &self.pixels
    }

    /// Mutable raw pixel storage.
    pub fn pixels_mut(&mut self) -> &mut [[f64; CHANNELS]] {
        &mut self.pixels
    }

    /// Converts a world point to pixel coordinates, or `None` if outside the
    /// viewport.
    pub fn world_to_pixel(&self, p: &Point) -> Option<(usize, usize)> {
        if !self.viewport.contains_point(p) {
            return None;
        }
        let fx = (p.x - self.viewport.min.x) / self.viewport.width();
        let fy = (p.y - self.viewport.min.y) / self.viewport.height();
        let px = ((fx * self.width as f64) as usize).min(self.width - 1);
        let py = ((fy * self.height as f64) as usize).min(self.height - 1);
        Some((px, py))
    }

    /// World-space center of a pixel.
    pub fn pixel_center(&self, px: usize, py: usize) -> Point {
        Point::new(
            self.viewport.min.x + (px as f64 + 0.5) * self.pixel_width(),
            self.viewport.min.y + (py as f64 + 0.5) * self.pixel_height(),
        )
    }

    /// World-space box of a pixel.
    pub fn pixel_bbox(&self, px: usize, py: usize) -> BoundingBox {
        let min_x = self.viewport.min.x + px as f64 * self.pixel_width();
        let min_y = self.viewport.min.y + py as f64 * self.pixel_height();
        BoundingBox::from_bounds(
            min_x,
            min_y,
            min_x + self.pixel_width(),
            min_y + self.pixel_height(),
        )
    }

    /// Reads a pixel.
    ///
    /// # Panics
    /// Panics if the coordinates are out of range.
    pub fn get(&self, px: usize, py: usize) -> [f64; CHANNELS] {
        assert!(
            px < self.width && py < self.height,
            "pixel ({px},{py}) out of range"
        );
        self.pixels[py * self.width + px]
    }

    /// Writes a pixel.
    pub fn set(&mut self, px: usize, py: usize, value: [f64; CHANNELS]) {
        assert!(
            px < self.width && py < self.height,
            "pixel ({px},{py}) out of range"
        );
        self.pixels[py * self.width + px] = value;
    }

    /// Adds `value` channel-wise to a pixel.
    pub fn accumulate(&mut self, px: usize, py: usize, value: [f64; CHANNELS]) {
        assert!(
            px < self.width && py < self.height,
            "pixel ({px},{py}) out of range"
        );
        let cell = &mut self.pixels[py * self.width + px];
        for c in 0..CHANNELS {
            cell[c] += value[c];
        }
    }

    /// Channel-wise sum over every pixel (the final reduction step of the
    /// aggregation plan).
    pub fn reduce_sum(&self) -> [f64; CHANNELS] {
        let mut out = [0.0; CHANNELS];
        for px in &self.pixels {
            for c in 0..CHANNELS {
                out[c] += px[c];
            }
        }
        out
    }

    /// Number of pixels for which `predicate` holds.
    pub fn count_pixels<F: Fn(&[f64; CHANNELS]) -> bool>(&self, predicate: F) -> usize {
        self.pixels.iter().filter(|p| predicate(p)).count()
    }

    /// Approximate memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.pixels.len() * std::mem::size_of::<[f64; CHANNELS]>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn viewport() -> BoundingBox {
        BoundingBox::from_bounds(0.0, 0.0, 100.0, 50.0)
    }

    #[test]
    fn construction_and_pixel_geometry() {
        let c = Canvas::new(200, 100, viewport());
        assert_eq!(c.width(), 200);
        assert_eq!(c.height(), 100);
        assert_eq!(c.pixel_count(), 20_000);
        assert_eq!(c.pixel_width(), 0.5);
        assert_eq!(c.pixel_height(), 0.5);
        assert!((c.pixel_diagonal() - 0.5 * 2f64.sqrt()).abs() < 1e-12);
        assert_eq!(c.memory_bytes(), 20_000 * 32);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn rejects_zero_dimensions() {
        let _ = Canvas::new(0, 10, viewport());
    }

    #[test]
    #[should_panic(expected = "viewport must not be empty")]
    fn rejects_empty_viewport() {
        let _ = Canvas::new(10, 10, BoundingBox::EMPTY);
    }

    #[test]
    fn world_pixel_round_trip() {
        let c = Canvas::new(100, 50, viewport());
        let (px, py) = c.world_to_pixel(&Point::new(12.3, 45.6)).unwrap();
        assert_eq!((px, py), (12, 45));
        let center = c.pixel_center(px, py);
        let bbox = c.pixel_bbox(px, py);
        assert!(bbox.contains_point(&center));
        assert!(bbox.contains_point(&Point::new(12.3, 45.6)));
        // Outside the viewport.
        assert!(c.world_to_pixel(&Point::new(-1.0, 10.0)).is_none());
        assert!(c.world_to_pixel(&Point::new(10.0, 60.0)).is_none());
        // The max corner is clamped into the last pixel.
        assert_eq!(c.world_to_pixel(&Point::new(100.0, 50.0)), Some((99, 49)));
    }

    #[test]
    fn get_set_accumulate_and_reduce() {
        let mut c = Canvas::new(4, 4, viewport());
        c.set(1, 2, [1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.get(1, 2), [1.0, 2.0, 3.0, 4.0]);
        c.accumulate(1, 2, [1.0, 0.0, 0.0, -4.0]);
        assert_eq!(c.get(1, 2), [2.0, 2.0, 3.0, 0.0]);
        c.accumulate(0, 0, [5.0, 0.0, 0.0, 0.0]);
        assert_eq!(c.reduce_sum(), [7.0, 2.0, 3.0, 0.0]);
        assert_eq!(c.count_pixels(|p| p[0] > 0.0), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_access_panics() {
        let c = Canvas::new(4, 4, viewport());
        let _ = c.get(4, 0);
    }
}

//! # dbsa-canvas — rasterized canvas model and the Bounded Raster Join
//!
//! The paper's Section 4 proposes a GPU-friendly spatial data model: every
//! geometry is rendered onto a **rasterized canvas** whose pixel size is
//! derived from the distance bound, and queries are composed from a small
//! algebra of parallelizable operators (blend, mask, affine transforms)
//! rather than from geometry-specific monolithic operators.
//!
//! The original system runs this algebra on the GPU graphics pipeline
//! (OpenGL, off-screen buffers, aggregates in the r/g/b/a color channels).
//! This crate is the documented substitution: a **software rasterizer** that
//! executes the identical algebra — same canvas representation, same
//! operators, same tiling behaviour when the required resolution exceeds the
//! simulated device limit — so that the Bounded Raster Join (Section 5.2,
//! Figure 7) can be reproduced without GPU hardware. Only the constant
//! factor differs; the accuracy/performance trade-off against the distance
//! bound, which is what Figure 7 shows, is preserved.
//!
//! * [`Canvas`] — a W×H pixel grid with four `f64` channels per pixel and a
//!   world-space viewport,
//! * [`ops`] — the blend / mask / affine operator algebra,
//! * [`rasterize`] — scanline polygon fill and point scattering,
//! * [`SimulatedDevice`] — the "GPU" resource limits (maximum canvas
//!   resolution) that force tiling at tight distance bounds,
//! * [`BoundedRasterJoin`] — the approximate spatial aggregation join,
//! * [`GpuBaseline`] — the accurate grid-filter + point-in-polygon baseline
//!   it is compared against.

pub mod brj;
pub mod canvas;
pub mod device;
pub mod gpu_baseline;
pub mod ops;
pub mod rasterize;

pub use brj::{BoundedRasterJoin, JoinAggregate};
pub use canvas::Canvas;
pub use device::SimulatedDevice;
pub use gpu_baseline::GpuBaseline;
pub use ops::{blend, mask, translate_scale, BlendFn};
pub use rasterize::{rasterize_polygon_coverage, scatter_points};

//! Adaptive Cell Trie (ACT) — a radix tree over linearized hierarchical
//! raster cells (Kipf et al., EDBT 2020 / ICDE 2018; paper Section 3).
//!
//! ACT indexes the cells of the hierarchical raster approximations of a set
//! of polygons. Coarse (large) cells terminate near the root of the trie,
//! fine boundary cells near the leaves, so lookups for points that fall in
//! large interior cells finish after a few node visits. Because the raster
//! is distance-bounded, the lookup answer is final — no point-in-polygon
//! refinement is performed. That is the approximate, refinement-free query
//! evaluation the paper advocates.

use crate::footprint::MemoryFootprint;
use dbsa_grid::CellId;
use dbsa_raster::{CellClass, DistanceBins, HierarchicalRaster};

/// Identifier of an indexed polygon (its position in the input collection).
pub type PolygonId = u32;

/// One posting in a trie node: which polygon covers this cell, whether the
/// covering cell was an interior or a boundary cell of that polygon's
/// raster approximation, and the cell's conservative quantized
/// distance-to-boundary annotation (bins of the cell side at the posting
/// cell's level — see [`DistanceBins`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellPosting {
    /// The indexed polygon.
    pub polygon: PolygonId,
    /// Interior or boundary cell (boundary postings are the only possible
    /// source of approximation error; result-range estimation counts them).
    pub class: CellClass,
    /// Conservative distance-to-boundary annotation of the posting cell.
    pub dist: DistanceBins,
}

/// A node of the cell trie. Children follow the quadtree child order of the
/// underlying cell ids (one trie level per grid level).
#[derive(Debug, Default)]
pub(crate) struct TrieNode {
    pub(crate) children: [Option<Box<TrieNode>>; 4],
    /// Polygons whose approximation contains exactly this cell.
    pub(crate) postings: Vec<CellPosting>,
}

impl TrieNode {
    fn count_nodes(&self) -> usize {
        1 + self
            .children
            .iter()
            .flatten()
            .map(|c| c.count_nodes())
            .sum::<usize>()
    }

    fn count_postings(&self) -> usize {
        self.postings.len()
            + self
                .children
                .iter()
                .flatten()
                .map(|c| c.count_postings())
                .sum::<usize>()
    }
}

/// Statistics about an ACT instance, used by the experiment reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActStats {
    /// Number of trie nodes.
    pub nodes: usize,
    /// Number of cell postings (cells across all indexed polygons).
    pub postings: usize,
    /// Number of indexed polygons.
    pub polygons: usize,
    /// Deepest level at which a posting terminates.
    pub max_depth: u8,
}

/// The Adaptive Cell Trie.
///
/// This is the *mutable builder* form: nodes are heap-allocated boxes, so
/// single-cell insertion stays cheap. For query execution, freeze it into a
/// [`crate::FrozenCellTrie`] — a contiguous, cache-conscious layout with the
/// same lookup semantics.
#[derive(Debug)]
pub struct AdaptiveCellTrie {
    pub(crate) root: TrieNode,
    polygons: usize,
    postings: usize,
    /// Node count maintained incrementally so `memory_bytes` is O(1).
    nodes: usize,
    /// Sum of the postings vectors' *capacities*, maintained incrementally:
    /// the heap bytes actually reserved, not just the live postings.
    postings_capacity: usize,
    max_depth: u8,
}

impl Default for AdaptiveCellTrie {
    fn default() -> Self {
        AdaptiveCellTrie {
            root: TrieNode::default(),
            polygons: 0,
            postings: 0,
            nodes: 1,
            postings_capacity: 0,
            max_depth: 0,
        }
    }
}

impl AdaptiveCellTrie {
    /// Creates an empty trie.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a trie over the hierarchical rasters of a polygon collection.
    ///
    /// The rasters must all live on the same grid extent; polygon ids are
    /// the positions in the slice.
    pub fn build(rasters: &[HierarchicalRaster]) -> Self {
        let mut trie = Self::new();
        for (pid, raster) in rasters.iter().enumerate() {
            trie.insert_raster(pid as PolygonId, raster);
        }
        trie
    }

    /// Inserts all cells of one polygon's raster approximation, carrying
    /// each cell's distance annotation into its posting.
    pub fn insert_raster(&mut self, polygon: PolygonId, raster: &HierarchicalRaster) {
        for cell in raster.cells() {
            self.insert_cell_annotated(polygon, cell.id, cell.class, cell.dist);
        }
        self.polygons = self.polygons.max(polygon as usize + 1);
    }

    /// Inserts a single cell posting with the vacuous distance annotation
    /// ([`DistanceBins::UNKNOWN`] — conservative for any cell).
    pub fn insert_cell(&mut self, polygon: PolygonId, cell: CellId, class: CellClass) {
        self.insert_cell_annotated(polygon, cell, class, DistanceBins::UNKNOWN)
    }

    /// Inserts a single cell posting with an explicit distance annotation.
    pub fn insert_cell_annotated(
        &mut self,
        polygon: PolygonId,
        cell: CellId,
        class: CellClass,
        dist: DistanceBins,
    ) {
        let level = cell.level();
        let mut node = &mut self.root;
        // Walk the child positions of the cell's ancestors from level 1 down
        // to the cell's own level, creating nodes on demand.
        for l in 1..=level {
            let ancestor = cell.parent_at(l);
            let pos = ancestor.child_position() as usize;
            if node.children[pos].is_none() {
                node.children[pos] = Some(Box::default());
                self.nodes += 1;
            }
            node = node.children[pos].as_mut().expect("child just ensured");
        }
        let capacity_before = node.postings.capacity();
        node.postings.push(CellPosting {
            polygon,
            class,
            dist,
        });
        self.postings_capacity += node.postings.capacity() - capacity_before;
        self.postings += 1;
        self.max_depth = self.max_depth.max(level);
        self.polygons = self.polygons.max(polygon as usize + 1);
    }

    /// Looks up the polygons whose approximation contains the given leaf
    /// cell (i.e. the query point). No geometry is consulted.
    ///
    /// The returned postings are in root-to-leaf order: coarser covering
    /// cells first.
    pub fn lookup_leaf(&self, leaf: CellId) -> Vec<CellPosting> {
        let mut result = Vec::new();
        self.lookup_leaf_into(leaf, &mut result);
        result
    }

    /// Like [`lookup_leaf`](Self::lookup_leaf), but appends into a
    /// caller-provided buffer (cleared first) so tight probe loops reuse one
    /// allocation across probes.
    pub fn lookup_leaf_into(&self, leaf: CellId, out: &mut Vec<CellPosting>) {
        out.clear();
        let mut node = &self.root;
        out.extend_from_slice(&node.postings);
        for l in 1..=self.max_depth {
            let ancestor = leaf.parent_at(l);
            let pos = ancestor.child_position() as usize;
            match &node.children[pos] {
                Some(child) => {
                    node = child;
                    out.extend_from_slice(&node.postings);
                }
                None => break,
            }
        }
    }

    /// Convenience: the first polygon covering the leaf cell, if any.
    ///
    /// For non-overlapping polygon sets (administrative regions) there is at
    /// most one; ties for overlapping data favour the coarsest covering cell.
    pub fn lookup_first(&self, leaf: CellId) -> Option<PolygonId> {
        let mut node = &self.root;
        if let Some(p) = node.postings.first() {
            return Some(p.polygon);
        }
        for l in 1..=self.max_depth {
            let ancestor = leaf.parent_at(l);
            let pos = ancestor.child_position() as usize;
            match &node.children[pos] {
                Some(child) => {
                    node = child;
                    if let Some(p) = node.postings.first() {
                        return Some(p.polygon);
                    }
                }
                None => break,
            }
        }
        None
    }

    /// Number of indexed polygons.
    pub fn polygon_count(&self) -> usize {
        self.polygons
    }

    /// Number of cell postings.
    pub fn posting_count(&self) -> usize {
        self.postings
    }

    /// Number of trie nodes (maintained incrementally, O(1)).
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// Deepest level at which a posting terminates.
    pub fn max_depth(&self) -> u8 {
        self.max_depth
    }

    /// Collects structural statistics.
    ///
    /// The node/posting counts come from the incrementally maintained
    /// counters; `verify_counters` (debug builds / tests) checks them against
    /// a full walk.
    pub fn stats(&self) -> ActStats {
        ActStats {
            nodes: self.nodes,
            postings: self.postings,
            polygons: self.polygons,
            max_depth: self.max_depth,
        }
    }

    /// Recounts nodes and postings with a full walk and compares against the
    /// incremental counters. Used by tests; O(nodes).
    pub fn verify_counters(&self) -> bool {
        self.root.count_nodes() == self.nodes && self.root.count_postings() == self.postings
    }

    /// Freezes the trie into the contiguous, cache-conscious query layout.
    pub fn freeze(&self) -> crate::FrozenCellTrie {
        crate::FrozenCellTrie::freeze(self)
    }
}

impl MemoryFootprint for AdaptiveCellTrie {
    fn memory_bytes(&self) -> usize {
        // O(1): both counters are maintained on insert. Children pointers
        // dominate; the postings term charges the vectors' reserved
        // capacity, not just the live entries.
        self.nodes * std::mem::size_of::<TrieNode>()
            + self.postings_capacity * std::mem::size_of::<CellPosting>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbsa_geom::{Point, Polygon};
    use dbsa_grid::GridExtent;
    use dbsa_raster::{BoundaryPolicy, DistanceBound};
    use proptest::prelude::*;

    fn extent() -> GridExtent {
        GridExtent::new(Point::new(0.0, 0.0), 1024.0)
    }

    /// Two adjacent square "neighbourhoods" and one far-away one.
    fn polygons() -> Vec<Polygon> {
        vec![
            Polygon::from_coords(&[
                (100.0, 100.0),
                (300.0, 100.0),
                (300.0, 300.0),
                (100.0, 300.0),
            ]),
            Polygon::from_coords(&[
                (300.0, 100.0),
                (500.0, 100.0),
                (500.0, 300.0),
                (300.0, 300.0),
            ]),
            Polygon::from_coords(&[
                (700.0, 700.0),
                (900.0, 700.0),
                (900.0, 900.0),
                (700.0, 900.0),
            ]),
        ]
    }

    fn build_act(bound_m: f64) -> (AdaptiveCellTrie, Vec<HierarchicalRaster>) {
        let ext = extent();
        let rasters: Vec<HierarchicalRaster> = polygons()
            .iter()
            .map(|p| {
                HierarchicalRaster::with_bound(
                    p,
                    &ext,
                    DistanceBound::meters(bound_m),
                    BoundaryPolicy::Conservative,
                )
            })
            .collect();
        (AdaptiveCellTrie::build(&rasters), rasters)
    }

    #[test]
    fn lookup_finds_containing_polygon() {
        let (act, _) = build_act(4.0);
        let ext = extent();
        assert_eq!(act.polygon_count(), 3);
        assert!(act.posting_count() > 0);

        // Deep interior points resolve to the right polygon.
        assert_eq!(
            act.lookup_first(ext.leaf_cell_id(&Point::new(200.0, 200.0))),
            Some(0)
        );
        assert_eq!(
            act.lookup_first(ext.leaf_cell_id(&Point::new(400.0, 200.0))),
            Some(1)
        );
        assert_eq!(
            act.lookup_first(ext.leaf_cell_id(&Point::new(800.0, 800.0))),
            Some(2)
        );
        // A point far from every polygon finds nothing.
        assert_eq!(
            act.lookup_first(ext.leaf_cell_id(&Point::new(50.0, 900.0))),
            None
        );
    }

    #[test]
    fn lookup_errors_stay_within_distance_bound() {
        let bound = 8.0;
        let (act, _) = build_act(bound);
        let ext = extent();
        let polys = polygons();
        // Sweep a grid of query points; whenever ACT's answer differs from
        // the exact answer the point must be within the bound of a boundary.
        for i in 0..60 {
            for j in 0..60 {
                let p = Point::new(i as f64 * 17.0 + 3.0, j as f64 * 17.0 + 3.0);
                let leaf = ext.leaf_cell_id(&p);
                let act_hit = act.lookup_first(leaf);
                let exact_hit = polys.iter().position(|poly| poly.contains_point(&p));
                if act_hit.map(|v| v as usize) != exact_hit {
                    let min_dist = polys
                        .iter()
                        .map(|poly| poly.boundary_distance(&p))
                        .fold(f64::INFINITY, f64::min);
                    assert!(
                        min_dist <= bound,
                        "disagreement at {p:?} but boundary distance {min_dist} > {bound}"
                    );
                }
            }
        }
    }

    #[test]
    fn coarser_bounds_need_fewer_postings() {
        let (coarse, _) = build_act(32.0);
        let (fine, _) = build_act(2.0);
        assert!(fine.posting_count() > coarse.posting_count());
        assert!(fine.memory_bytes() > coarse.memory_bytes());
        assert!(fine.stats().max_depth >= coarse.stats().max_depth);
    }

    #[test]
    fn lookup_leaf_reports_boundary_class() {
        let (act, _) = build_act(4.0);
        let ext = extent();
        // A point very close to an edge should be covered by a boundary cell.
        let near_edge = act.lookup_leaf(ext.leaf_cell_id(&Point::new(100.3, 200.0)));
        assert!(near_edge.iter().any(|p| p.class == CellClass::Boundary));
        // A deep interior point is covered by an interior cell.
        let deep = act.lookup_leaf(ext.leaf_cell_id(&Point::new(200.0, 200.0)));
        assert!(deep.iter().any(|p| p.class == CellClass::Interior));
    }

    #[test]
    fn adjacent_polygons_do_not_leak_interior_lookups() {
        let (act, _) = build_act(4.0);
        let ext = extent();
        // Points clearly inside polygon 0, away from the shared edge at x=300.
        for x in [150.0, 200.0, 250.0] {
            let hits = act.lookup_leaf(ext.leaf_cell_id(&Point::new(x, 200.0)));
            assert!(
                hits.iter().all(|p| p.polygon == 0),
                "unexpected hits {hits:?} at x={x}"
            );
        }
    }

    #[test]
    fn empty_trie_finds_nothing() {
        let act = AdaptiveCellTrie::new();
        assert_eq!(act.polygon_count(), 0);
        assert_eq!(act.lookup_first(CellId::leaf(5, 5)), None);
        assert!(act.lookup_leaf(CellId::leaf(5, 5)).is_empty());
        assert_eq!(act.stats().nodes, 1);
    }

    #[test]
    fn manual_cell_insertion() {
        let mut act = AdaptiveCellTrie::new();
        let cell = CellId::from_cell_xy(2, 3, 4);
        act.insert_cell(7, cell, CellClass::Interior);
        assert_eq!(act.polygon_count(), 8); // ids are dense up to the max inserted id
        assert_eq!(act.posting_count(), 1);
        // Any leaf under that cell finds polygon 7.
        let leaf = cell.range_min();
        assert_eq!(act.lookup_first(leaf), Some(7));
        let outside = CellId::from_cell_xy(0, 0, 4).range_min();
        assert_eq!(act.lookup_first(outside), None);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn prop_interior_points_always_found(
            px in 0.1f64..0.9, py in 0.1f64..0.9,
        ) {
            // Points sampled well inside polygon 0 (more than the bound away
            // from its edges) must always be found and attributed to it.
            let (act, _) = build_act(8.0);
            let ext = extent();
            let p = Point::new(100.0 + px * 200.0, 100.0 + py * 200.0);
            prop_assume!(p.x > 110.0 && p.x < 290.0 && p.y > 110.0 && p.y < 290.0);
            prop_assert_eq!(act.lookup_first(ext.leaf_cell_id(&p)), Some(0));
        }
    }
}

//! Versioned, checksummed on-disk snapshot framing.
//!
//! The serving state of the engine (frozen trie columns, linearized point
//! tables, shard metadata) is already flat, SoA, and immutable — exactly
//! the shape a file wants to be. This module defines the container those
//! columns are dumped into, so cold start is a bounded I/O cost instead of
//! a rebuild:
//!
//! ```text
//! offset  size  field
//! 0       8     magic "DBSASNAP"
//! 8       4     format version (u32 LE, currently 1)
//! 12      4     endianness tag (u32 LE, 0x01020304)
//! 16      8     compaction generation (u64 LE)
//! 24      4     section count (u32 LE)
//! 28      4     reserved (zero)
//! 32      32·n  section table, one entry per section:
//!               id (u32) · reserved (u32) · offset (u64) · len (u64)
//!               · crc32 (u32) · reserved (u32)
//! ...           section payloads, each starting on a 64-byte boundary,
//!               zero-padded between sections
//! ```
//!
//! Every payload is covered by an IEEE CRC-32 recorded in the section
//! table; [`SnapshotFile::section`] verifies it before handing out a
//! cursor, so a flipped bit is a typed [`SnapshotError::CorruptSection`],
//! never a silent misread. Columns inside a section are length-prefixed
//! little-endian arrays ([`put_u64s`] / [`SectionCursor::read_u64s`] and
//! friends): decoding is one bounds check plus one contiguous pass per
//! column — no per-element branching, no re-derivation.
//!
//! **Compatibility policy.** The format version is bumped on any layout
//! change; readers reject versions they don't know
//! ([`SnapshotError::UnsupportedVersion`]) rather than guessing. Files are
//! always written little-endian; the endianness tag lets a foreign-order
//! file be rejected explicitly ([`SnapshotError::WrongEndianness`]). The
//! generation field carries the writer's compaction generation so a stale
//! shard file can be rejected at handoff
//! ([`SnapshotError::StaleGeneration`]).

use bytes::BufMut;
use dbsa_geom::{MultiPolygon, Point, Polygon, Ring};
use std::fmt;
use std::path::Path;

/// The 8-byte file magic.
pub const MAGIC: [u8; 8] = *b"DBSASNAP";

/// Current snapshot format version.
pub const FORMAT_VERSION: u32 = 1;

/// Endianness probe value: written little-endian, so a file produced by a
/// (hypothetical) native-order big-endian writer reads back byte-swapped
/// and is rejected instead of misinterpreted.
pub const ENDIAN_TAG: u32 = 0x0102_0304;

/// Section payloads start on this alignment within the file, matching the
/// in-memory alignment of every column type we store (max 8) with room to
/// spare for cache-line-aligned mapping later.
pub const SECTION_ALIGN: usize = 64;

const HEADER_LEN: usize = 32;
const TABLE_ENTRY_LEN: usize = 32;

/// A typed failure while writing or loading a snapshot. Loads never panic
/// on malformed input — every corruption path maps to a variant here.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// The file does not start with the `DBSASNAP` magic.
    BadMagic,
    /// The file's format version is not one this reader understands.
    UnsupportedVersion {
        /// Version found in the file.
        found: u32,
        /// Version this build reads and writes.
        supported: u32,
    },
    /// The endianness tag does not match: the file was written by a
    /// native-order writer on a different-endian machine.
    WrongEndianness {
        /// The tag as decoded little-endian.
        found: u32,
    },
    /// A section's stored CRC-32 does not match its payload.
    CorruptSection {
        /// Section id.
        section: u32,
        /// CRC recorded in the section table.
        stored: u32,
        /// CRC computed over the payload.
        computed: u32,
    },
    /// The file ends before the advertised data does.
    Truncated {
        /// Section id (`u32::MAX` for the header / section table).
        section: u32,
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The file's generation does not match what the receiver expected
    /// (a stale shard file offered for handoff).
    StaleGeneration {
        /// Generation the receiver required.
        expected: u64,
        /// Generation recorded in the file.
        found: u64,
    },
    /// A required section is absent.
    MissingSection {
        /// Section id.
        section: u32,
    },
    /// A structurally invalid value inside a CRC-valid section.
    Malformed {
        /// Section id.
        section: u32,
        /// What the decoder found wrong.
        what: &'static str,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O failed: {e}"),
            SnapshotError::BadMagic => write!(f, "not a DBSA snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported snapshot format version {found} (this build reads {supported})"
            ),
            SnapshotError::WrongEndianness { found } => write!(
                f,
                "snapshot written with foreign byte order (endianness tag {found:#010x})"
            ),
            SnapshotError::CorruptSection {
                section,
                stored,
                computed,
            } => write!(
                f,
                "section {section} is corrupt: stored crc {stored:#010x}, computed {computed:#010x}"
            ),
            SnapshotError::Truncated {
                section,
                needed,
                available,
            } => write!(
                f,
                "snapshot truncated in section {section}: needed {needed} bytes, {available} available"
            ),
            SnapshotError::StaleGeneration { expected, found } => write!(
                f,
                "stale snapshot: expected generation {expected}, file has {found}"
            ),
            SnapshotError::MissingSection { section } => {
                write!(f, "snapshot is missing required section {section}")
            }
            SnapshotError::Malformed { section, what } => {
                write!(f, "malformed section {section}: {what}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// Section id used for header/table-level truncation errors.
const HEADER_SECTION: u32 = u32::MAX;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected) — hand-rolled table; the workspace has no
// checksum crate and crates.io is unreachable (see vendor/README.md).
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// IEEE CRC-32 of `data` (the polynomial used by zip/gzip/ethernet).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in data {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Accumulates named sections and renders them into the framed, aligned,
/// checksummed snapshot layout.
pub struct SnapshotWriter {
    generation: u64,
    sections: Vec<(u32, Vec<u8>)>,
}

impl SnapshotWriter {
    /// Starts a snapshot carrying `generation` in its header.
    pub fn new(generation: u64) -> Self {
        SnapshotWriter {
            generation,
            sections: Vec::new(),
        }
    }

    /// Opens a new section and returns its payload buffer. Sections are
    /// written in the order they are opened; ids must be unique.
    pub fn section(&mut self, id: u32) -> &mut Vec<u8> {
        debug_assert!(
            self.sections.iter().all(|(existing, _)| *existing != id),
            "duplicate snapshot section id {id}"
        );
        self.sections.push((id, Vec::new()));
        &mut self.sections.last_mut().expect("just pushed").1
    }

    /// Renders the full snapshot file image.
    pub fn to_bytes(&self) -> Vec<u8> {
        let table_end = HEADER_LEN + self.sections.len() * TABLE_ENTRY_LEN;
        let mut offsets = Vec::with_capacity(self.sections.len());
        let mut cursor = table_end;
        for (_, payload) in &self.sections {
            cursor = cursor.next_multiple_of(SECTION_ALIGN);
            offsets.push(cursor);
            cursor += payload.len();
        }

        let mut out = Vec::with_capacity(cursor);
        out.put_slice(&MAGIC);
        out.put_u32_le(FORMAT_VERSION);
        out.put_u32_le(ENDIAN_TAG);
        out.put_u64_le(self.generation);
        out.put_u32_le(self.sections.len() as u32);
        out.put_u32_le(0);
        for ((id, payload), offset) in self.sections.iter().zip(&offsets) {
            out.put_u32_le(*id);
            out.put_u32_le(0);
            out.put_u64_le(*offset as u64);
            out.put_u64_le(payload.len() as u64);
            out.put_u32_le(crc32(payload));
            out.put_u32_le(0);
        }
        for ((_, payload), offset) in self.sections.iter().zip(&offsets) {
            out.resize(*offset, 0); // zero padding up to the aligned start
            out.put_slice(payload);
        }
        out
    }

    /// Writes the snapshot to `path` (atomically enough for our purposes:
    /// a temp file in the same directory renamed over the target, so a
    /// crashed writer never leaves a half-written file under the final
    /// name).
    pub fn write_to(&self, path: &Path) -> Result<(), SnapshotError> {
        let image = self.to_bytes();
        let tmp = path.with_extension("tmp-snapshot");
        std::fs::write(&tmp, &image)?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

struct SectionEntry {
    id: u32,
    offset: usize,
    len: usize,
    crc: u32,
}

/// A loaded snapshot file: header validated, section table parsed; section
/// payloads are CRC-verified on access.
pub struct SnapshotFile {
    data: Vec<u8>,
    generation: u64,
    entries: Vec<SectionEntry>,
}

impl SnapshotFile {
    /// Reads and validates the file at `path`.
    pub fn open(path: &Path) -> Result<Self, SnapshotError> {
        Self::from_bytes(std::fs::read(path)?)
    }

    /// Validates an in-memory file image.
    pub fn from_bytes(data: Vec<u8>) -> Result<Self, SnapshotError> {
        let need = |needed: usize, available: usize| -> Result<(), SnapshotError> {
            if needed > available {
                Err(SnapshotError::Truncated {
                    section: HEADER_SECTION,
                    needed,
                    available,
                })
            } else {
                Ok(())
            }
        };
        need(HEADER_LEN, data.len())?;
        if data[0..8] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let u32_at = |i: usize| u32::from_le_bytes(data[i..i + 4].try_into().expect("4 bytes"));
        let u64_at = |i: usize| u64::from_le_bytes(data[i..i + 8].try_into().expect("8 bytes"));
        let version = u32_at(8);
        if version != FORMAT_VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let endian = u32_at(12);
        if endian != ENDIAN_TAG {
            return Err(SnapshotError::WrongEndianness { found: endian });
        }
        let generation = u64_at(16);
        let section_count = u32_at(24) as usize;
        let table_end = HEADER_LEN + section_count * TABLE_ENTRY_LEN;
        need(table_end, data.len())?;
        let mut entries = Vec::with_capacity(section_count);
        for s in 0..section_count {
            let base = HEADER_LEN + s * TABLE_ENTRY_LEN;
            let id = u32_at(base);
            let offset = u64_at(base + 8);
            let len = u64_at(base + 16);
            let crc = u32_at(base + 24);
            let end = offset.checked_add(len).ok_or(SnapshotError::Malformed {
                section: id,
                what: "section extent overflows",
            })?;
            if end > data.len() as u64 {
                return Err(SnapshotError::Truncated {
                    section: id,
                    needed: end as usize,
                    available: data.len(),
                });
            }
            entries.push(SectionEntry {
                id,
                offset: offset as usize,
                len: len as usize,
                crc,
            });
        }
        Ok(SnapshotFile {
            data,
            generation,
            entries,
        })
    }

    /// The compaction generation recorded in the header.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Rejects the file unless its generation equals `expected` — the
    /// staleness check a shard-handoff receiver applies.
    pub fn expect_generation(&self, expected: u64) -> Result<(), SnapshotError> {
        if self.generation != expected {
            return Err(SnapshotError::StaleGeneration {
                expected,
                found: self.generation,
            });
        }
        Ok(())
    }

    /// Whether a section with this id is present.
    pub fn has_section(&self, id: u32) -> bool {
        self.entries.iter().any(|e| e.id == id)
    }

    /// CRC-verifies and returns a cursor over the section's payload.
    pub fn section(&self, id: u32) -> Result<SectionCursor<'_>, SnapshotError> {
        let entry = self
            .entries
            .iter()
            .find(|e| e.id == id)
            .ok_or(SnapshotError::MissingSection { section: id })?;
        let payload = &self.data[entry.offset..entry.offset + entry.len];
        let computed = crc32(payload);
        if computed != entry.crc {
            return Err(SnapshotError::CorruptSection {
                section: id,
                stored: entry.crc,
                computed,
            });
        }
        Ok(SectionCursor {
            section: id,
            buf: payload,
        })
    }
}

// ---------------------------------------------------------------------------
// Section cursor — typed, non-panicking reads over a CRC-verified payload
// ---------------------------------------------------------------------------

/// Cursor over one section's payload. All reads are bounds-checked and
/// return typed errors; a CRC-valid but structurally impossible value is
/// [`SnapshotError::Malformed`], never a panic.
pub struct SectionCursor<'a> {
    section: u32,
    buf: &'a [u8],
}

macro_rules! cursor_scalar {
    ($name:ident, $ty:ty, $size:expr) => {
        #[doc = concat!("Reads one little-endian `", stringify!($ty), "`.")]
        pub fn $name(&mut self) -> Result<$ty, SnapshotError> {
            let bytes = self.read_bytes($size)?;
            Ok(<$ty>::from_le_bytes(bytes.try_into().expect("sized read")))
        }
    };
}

macro_rules! cursor_vec {
    ($name:ident, $scalar:ident, $ty:ty, $size:expr) => {
        #[doc = concat!("Reads a length-prefixed `", stringify!($ty), "` column.")]
        pub fn $name(&mut self) -> Result<Vec<$ty>, SnapshotError> {
            let n = self.read_len()?;
            let total = n.checked_mul($size).ok_or(SnapshotError::Malformed {
                section: self.section,
                what: "column length overflows",
            })?;
            let bytes = self.read_bytes(total)?;
            let mut out: Vec<$ty> = Vec::with_capacity(n);
            out.extend(
                bytes
                    .chunks_exact($size)
                    .map(|c| <$ty>::from_le_bytes(c.try_into().expect("sized chunk"))),
            );
            Ok(out)
        }
    };
}

impl<'a> SectionCursor<'a> {
    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// A [`SnapshotError::Malformed`] anchored to this section.
    pub fn malformed(&self, what: &'static str) -> SnapshotError {
        SnapshotError::Malformed {
            section: self.section,
            what,
        }
    }

    /// Takes the next `n` raw bytes.
    pub fn read_bytes(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if n > self.buf.len() {
            return Err(SnapshotError::Truncated {
                section: self.section,
                needed: n,
                available: self.buf.len(),
            });
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    /// Reads a `u64` length prefix, checked against the platform's `usize`.
    fn read_len(&mut self) -> Result<usize, SnapshotError> {
        let n = self.read_u64()?;
        usize::try_from(n).map_err(|_| self.malformed("length exceeds address space"))
    }

    cursor_scalar!(read_u8, u8, 1);
    cursor_scalar!(read_u16, u16, 2);
    cursor_scalar!(read_u32, u32, 4);
    cursor_scalar!(read_u64, u64, 8);
    cursor_scalar!(read_f64, f64, 8);

    /// Reads a length-prefixed raw byte column.
    pub fn read_u8s(&mut self) -> Result<Vec<u8>, SnapshotError> {
        let n = self.read_len()?;
        Ok(self.read_bytes(n)?.to_vec())
    }

    cursor_vec!(read_u16s, read_u16, u16, 2);
    cursor_vec!(read_u32s, read_u32, u32, 4);
    cursor_vec!(read_u64s, read_u64, u64, 8);
    cursor_vec!(read_f64s, read_f64, f64, 8);

    /// Asserts the section was consumed exactly.
    pub fn finish(self) -> Result<(), SnapshotError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(self.malformed("trailing bytes after the last column"))
        }
    }
}

// ---------------------------------------------------------------------------
// Column writers (the put-side counterparts of the cursor's read_* family)
// ---------------------------------------------------------------------------

/// Appends a length-prefixed raw byte column.
pub fn put_u8s(out: &mut Vec<u8>, vals: &[u8]) {
    out.put_u64_le(vals.len() as u64);
    out.put_slice(vals);
}

/// Appends a length-prefixed little-endian `u16` column.
pub fn put_u16s(out: &mut Vec<u8>, vals: &[u16]) {
    out.put_u64_le(vals.len() as u64);
    for v in vals {
        out.put_u16_le(*v);
    }
}

/// Appends a length-prefixed little-endian `u32` column.
pub fn put_u32s(out: &mut Vec<u8>, vals: &[u32]) {
    out.put_u64_le(vals.len() as u64);
    for v in vals {
        out.put_u32_le(*v);
    }
}

/// Appends a length-prefixed little-endian `u64` column.
pub fn put_u64s(out: &mut Vec<u8>, vals: &[u64]) {
    out.put_u64_le(vals.len() as u64);
    for v in vals {
        out.put_u64_le(*v);
    }
}

/// Appends a length-prefixed little-endian `f64` column.
pub fn put_f64s(out: &mut Vec<u8>, vals: &[f64]) {
    out.put_u64_le(vals.len() as u64);
    for v in vals {
        out.put_f64_le(*v);
    }
}

// ---------------------------------------------------------------------------
// Geometry codecs — shared by the region store and the shape-index baseline
// ---------------------------------------------------------------------------

/// Appends one point as two `f64`s.
pub fn put_point(out: &mut Vec<u8>, p: &Point) {
    out.put_f64_le(p.x);
    out.put_f64_le(p.y);
}

/// Reads one point.
pub fn read_point(cur: &mut SectionCursor<'_>) -> Result<Point, SnapshotError> {
    let x = cur.read_f64()?;
    let y = cur.read_f64()?;
    Ok(Point::new(x, y))
}

/// Appends a point column as interleaved x/y `f64` pairs.
pub fn put_points(out: &mut Vec<u8>, points: &[Point]) {
    out.put_u64_le(points.len() as u64);
    for p in points {
        put_point(out, p);
    }
}

/// Reads a point column.
pub fn read_points(cur: &mut SectionCursor<'_>) -> Result<Vec<Point>, SnapshotError> {
    let n = cur.read_u64()?;
    let n = usize::try_from(n).map_err(|_| cur.malformed("point count exceeds address space"))?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(read_point(cur)?);
    }
    Ok(out)
}

/// Appends a grid extent (origin + side).
pub fn put_extent(out: &mut Vec<u8>, extent: &dbsa_grid::GridExtent) {
    put_point(out, &extent.origin());
    out.put_f64_le(extent.side());
}

/// Reads a grid extent.
pub fn read_extent(cur: &mut SectionCursor<'_>) -> Result<dbsa_grid::GridExtent, SnapshotError> {
    let origin = read_point(cur)?;
    let side = cur.read_f64()?;
    if !(side.is_finite() && side > 0.0) {
        return Err(cur.malformed("grid extent side must be finite and positive"));
    }
    Ok(dbsa_grid::GridExtent::new(origin, side))
}

fn put_ring(out: &mut Vec<u8>, ring: &Ring) {
    put_points(out, ring.vertices());
}

fn read_ring(cur: &mut SectionCursor<'_>) -> Result<Ring, SnapshotError> {
    Ok(Ring::new(read_points(cur)?))
}

/// Appends one multi-polygon: per polygon, the exterior ring followed by
/// its holes, all as vertex lists. `Ring::new`'s normalization (dropping a
/// trailing duplicate of the first vertex) is idempotent, so geometry
/// round-trips losslessly through the public constructors.
pub fn put_multipolygon(out: &mut Vec<u8>, mp: &MultiPolygon) {
    out.put_u64_le(mp.polygons().len() as u64);
    for poly in mp.polygons() {
        put_ring(out, poly.exterior());
        out.put_u64_le(poly.holes().len() as u64);
        for hole in poly.holes() {
            put_ring(out, hole);
        }
    }
}

/// Reads one multi-polygon.
pub fn read_multipolygon(cur: &mut SectionCursor<'_>) -> Result<MultiPolygon, SnapshotError> {
    let n_polys = cur.read_u64()? as usize;
    let mut polys = Vec::with_capacity(n_polys);
    for _ in 0..n_polys {
        let exterior = read_ring(cur)?;
        let n_holes = cur.read_u64()? as usize;
        let mut holes = Vec::with_capacity(n_holes);
        for _ in 0..n_holes {
            holes.push(read_ring(cur)?);
        }
        polys.push(Polygon::with_holes(exterior, holes));
    }
    Ok(MultiPolygon::new(polys))
}

/// Appends a multi-polygon column.
pub fn put_multipolygons(out: &mut Vec<u8>, mps: &[MultiPolygon]) {
    out.put_u64_le(mps.len() as u64);
    for mp in mps {
        put_multipolygon(out, mp);
    }
}

/// Reads a multi-polygon column.
pub fn read_multipolygons(cur: &mut SectionCursor<'_>) -> Result<Vec<MultiPolygon>, SnapshotError> {
    let n = cur.read_u64()? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(read_multipolygon(cur)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }

    fn build_sample() -> Vec<u8> {
        let mut w = SnapshotWriter::new(42);
        let s0 = w.section(7);
        put_u64s(s0, &[1, 2, 3]);
        put_f64s(s0, &[0.5, -0.5]);
        let s1 = w.section(9);
        put_u8s(s1, b"payload");
        w.to_bytes()
    }

    #[test]
    fn round_trip_and_alignment() {
        let image = build_sample();
        let file = SnapshotFile::from_bytes(image).expect("valid image");
        assert_eq!(file.generation(), 42);
        assert!(file.has_section(7));
        assert!(file.has_section(9));
        assert!(!file.has_section(8));

        let mut cur = file.section(7).expect("section 7 present and clean");
        assert_eq!(cur.read_u64s().unwrap(), vec![1, 2, 3]);
        assert_eq!(cur.read_f64s().unwrap(), vec![0.5, -0.5]);
        cur.finish().expect("fully consumed");

        let mut cur = file.section(9).expect("section 9 present and clean");
        assert_eq!(cur.read_u8s().unwrap(), b"payload");

        assert!(matches!(
            file.section(8),
            Err(SnapshotError::MissingSection { section: 8 })
        ));
    }

    #[test]
    fn sections_start_aligned() {
        let image = build_sample();
        let file = SnapshotFile::from_bytes(image).expect("valid image");
        for entry in &file.entries {
            assert_eq!(
                entry.offset % SECTION_ALIGN,
                0,
                "section {} starts misaligned at {}",
                entry.id,
                entry.offset
            );
        }
    }

    #[test]
    fn flipped_byte_is_a_crc_error() {
        let mut image = build_sample();
        let last = image.len() - 1;
        image[last] ^= 0x40; // inside section 9's payload
        let file = SnapshotFile::from_bytes(image).expect("header still valid");
        assert!(file.section(7).is_ok(), "untouched section stays clean");
        assert!(matches!(
            file.section(9),
            Err(SnapshotError::CorruptSection { section: 9, .. })
        ));
    }

    #[test]
    fn truncation_is_typed() {
        let image = build_sample();
        for cut in [0, 4, HEADER_LEN - 1, HEADER_LEN + 5, image.len() - 1] {
            let err = match SnapshotFile::from_bytes(image[..cut].to_vec()) {
                Err(e) => e,
                Ok(_) => panic!("truncation to {cut} bytes must fail"),
            };
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated { .. } | SnapshotError::BadMagic
                ),
                "unexpected error for cut {cut}: {err}"
            );
        }
    }

    #[test]
    fn wrong_version_and_endianness_are_typed() {
        let mut image = build_sample();
        image[8] = 99; // version
        assert!(matches!(
            SnapshotFile::from_bytes(image.clone()),
            Err(SnapshotError::UnsupportedVersion {
                found: 99,
                supported: FORMAT_VERSION
            })
        ));
        image[8] = FORMAT_VERSION as u8;
        image[12..16].copy_from_slice(&ENDIAN_TAG.to_be_bytes()); // byte-swapped tag
        assert!(matches!(
            SnapshotFile::from_bytes(image),
            Err(SnapshotError::WrongEndianness { .. })
        ));
    }

    #[test]
    fn generation_check() {
        let image = build_sample();
        let file = SnapshotFile::from_bytes(image).expect("valid image");
        file.expect_generation(42).expect("matching generation");
        assert!(matches!(
            file.expect_generation(41),
            Err(SnapshotError::StaleGeneration {
                expected: 41,
                found: 42
            })
        ));
    }

    #[test]
    fn cursor_underflow_is_typed_not_a_panic() {
        let mut w = SnapshotWriter::new(0);
        w.section(1).put_u64_le(u64::MAX); // a length prefix promising 2^64 bytes
        let file = SnapshotFile::from_bytes(w.to_bytes()).expect("valid image");
        let mut cur = file.section(1).expect("clean section");
        assert!(cur.read_u64s().is_err());
        let file2 = {
            let mut w = SnapshotWriter::new(0);
            w.section(1).put_u32_le(5);
            SnapshotFile::from_bytes(w.to_bytes()).expect("valid image")
        };
        let mut cur = file2.section(1).expect("clean section");
        assert!(matches!(
            cur.read_u64(),
            Err(SnapshotError::Truncated {
                section: 1,
                needed: 8,
                available: 4
            })
        ));
    }

    #[test]
    fn geometry_round_trip() {
        let mp = MultiPolygon::new(vec![
            Polygon::with_holes(
                Ring::new(vec![
                    Point::new(0.0, 0.0),
                    Point::new(10.0, 0.0),
                    Point::new(10.0, 10.0),
                    Point::new(0.0, 10.0),
                ]),
                vec![Ring::new(vec![
                    Point::new(2.0, 2.0),
                    Point::new(4.0, 2.0),
                    Point::new(3.0, 4.0),
                ])],
            ),
            Polygon::from_coords(&[(20.0, 20.0), (30.0, 20.0), (25.0, 28.0)]),
        ]);
        let mut w = SnapshotWriter::new(0);
        put_multipolygons(w.section(3), std::slice::from_ref(&mp));
        let file = SnapshotFile::from_bytes(w.to_bytes()).expect("valid image");
        let mut cur = file.section(3).expect("clean section");
        let back = read_multipolygons(&mut cur).expect("decodes");
        cur.finish().expect("fully consumed");
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].polygons().len(), 2);
        for (a, b) in back[0].polygons().iter().zip(mp.polygons()) {
            assert_eq!(a.exterior().vertices(), b.exterior().vertices());
            assert_eq!(a.holes().len(), b.holes().len());
            for (ha, hb) in a.holes().iter().zip(b.holes()) {
                assert_eq!(ha.vertices(), hb.vertices());
            }
        }
    }

    #[test]
    fn errors_display_and_chain() {
        let err = SnapshotError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(err.to_string().contains("I/O"));
        assert!(std::error::Error::source(&err).is_some());
        let err = SnapshotError::StaleGeneration {
            expected: 3,
            found: 1,
        };
        assert!(err.to_string().contains("generation 3"));
        assert!(std::error::Error::source(&err).is_none());
    }
}

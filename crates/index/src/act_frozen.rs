//! Frozen, cache-conscious layout of the Adaptive Cell Trie.
//!
//! [`crate::AdaptiveCellTrie`] is the *builder*: a pointer trie of
//! heap-allocated boxes that supports incremental insertion. Probing it
//! chases one `Box` per level and allocates a result vector per probe —
//! fine for construction, wasteful for the paper's hot path, where every
//! query point becomes a trie lookup.
//!
//! [`FrozenCellTrie`] is the *query* form produced by
//! [`FrozenCellTrie::freeze`]:
//!
//! * all nodes live in one contiguous array, in **pre-order**, so a
//!   root-to-leaf descent walks mostly forward through memory;
//! * children are `u32` indices (`NO_CHILD` for absent), not pointers;
//! * all postings live in a single structure-of-arrays arena (`polygon`
//!   column + `class` column) addressed by `(offset, len)` — no per-node
//!   heap allocation anywhere, and `memory_bytes` is exact and O(1).
//!
//! For batched probing, [`SortedProbeCursor`] keeps the current
//! root-to-leaf path on a stack. When probes arrive in leaf-key order
//! (Z-order — consecutive keys share long cell-path prefixes), each probe
//! re-descends only from the first level where its key diverges from the
//! previous one, so most probes touch one or two nodes instead of walking
//! from the root.

use crate::act::{ActStats, AdaptiveCellTrie, CellPosting, PolygonId, TrieNode};
use crate::footprint::MemoryFootprint;
use dbsa_grid::{CellId, MAX_LEVEL};
use dbsa_raster::CellClass;

/// Sentinel child index: this child does not exist.
const NO_CHILD: u32 = u32::MAX;

/// Path-stack capacity: one entry per level, root included.
const STACK: usize = MAX_LEVEL as usize + 1;

/// One frozen trie node: four child indices plus the `(offset, len)` slice
/// of the postings arena. 24 bytes, `Copy`, no indirection.
#[derive(Debug, Clone, Copy)]
struct FrozenNode {
    children: [u32; 4],
    postings_offset: u32,
    postings_len: u32,
}

/// The frozen Adaptive Cell Trie. Immutable; build via
/// [`FrozenCellTrie::freeze`] (or [`AdaptiveCellTrie::freeze`]).
#[derive(Debug)]
pub struct FrozenCellTrie {
    /// All nodes in pre-order; index 0 is the root.
    nodes: Vec<FrozenNode>,
    /// Postings arena, polygon column.
    posting_polygons: Vec<PolygonId>,
    /// Postings arena, class column (aligned with `posting_polygons`).
    posting_classes: Vec<CellClass>,
    polygons: usize,
    max_depth: u8,
    /// Inclusive span `[lo, hi]` of raw leaf keys covered by at least one
    /// posting cell (`None` when the trie holds no postings). Probes whose
    /// keys fall outside the span cannot match — the basis for shard
    /// pruning in the sharded execution layer.
    covered: Option<(u64, u64)>,
}

/// Child position of `leaf`'s ancestor at `level` — pure bit arithmetic on
/// the raw leaf id (the two path bits that encode the level-`level` branch).
#[inline(always)]
fn child_pos(raw_leaf: u64, level: u8) -> usize {
    ((raw_leaf >> (2 * (MAX_LEVEL - level) as u32 + 1)) & 3) as usize
}

impl FrozenCellTrie {
    /// Flattens a pointer trie into the frozen layout.
    pub fn freeze(trie: &AdaptiveCellTrie) -> Self {
        let node_count = trie.node_count();
        let posting_count = trie.posting_count();
        assert!(
            node_count < NO_CHILD as usize && posting_count <= u32::MAX as usize,
            "trie too large for u32 indices ({node_count} nodes, {posting_count} postings)"
        );
        let mut nodes = Vec::with_capacity(node_count);
        let mut posting_polygons = Vec::with_capacity(posting_count);
        let mut posting_classes = Vec::with_capacity(posting_count);
        let mut covered = None;
        freeze_node(
            &trie.root,
            CellId::ROOT,
            &mut nodes,
            &mut posting_polygons,
            &mut posting_classes,
            &mut covered,
        );
        debug_assert_eq!(nodes.len(), node_count);
        debug_assert_eq!(posting_polygons.len(), posting_count);
        FrozenCellTrie {
            nodes,
            posting_polygons,
            posting_classes,
            polygons: trie.polygon_count(),
            max_depth: trie.max_depth(),
            covered,
        }
    }

    /// The inclusive span of raw leaf keys covered by at least one posting
    /// cell, or `None` for a trie without postings. Any probe key outside
    /// the span is guaranteed unmatched, so a point shard whose key range
    /// does not intersect it can skip probing entirely.
    pub fn covered_key_range(&self) -> Option<(u64, u64)> {
        self.covered
    }

    /// Number of indexed polygons.
    pub fn polygon_count(&self) -> usize {
        self.polygons
    }

    /// Number of cell postings.
    pub fn posting_count(&self) -> usize {
        self.posting_polygons.len()
    }

    /// Number of trie nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Deepest level at which a posting terminates.
    pub fn max_depth(&self) -> u8 {
        self.max_depth
    }

    /// Structural statistics — O(1), everything is a stored count.
    pub fn stats(&self) -> ActStats {
        ActStats {
            nodes: self.nodes.len(),
            postings: self.posting_polygons.len(),
            polygons: self.polygons,
            max_depth: self.max_depth,
        }
    }

    /// The first (coarsest) posting of node `idx`, if it has any.
    #[inline(always)]
    fn node_first_posting(&self, idx: usize) -> Option<CellPosting> {
        let node = &self.nodes[idx];
        (node.postings_len > 0).then(|| self.posting_at(node.postings_offset as usize))
    }

    #[inline(always)]
    fn posting_at(&self, arena_idx: usize) -> CellPosting {
        CellPosting {
            polygon: self.posting_polygons[arena_idx],
            class: self.posting_classes[arena_idx],
        }
    }

    #[inline(always)]
    fn append_postings(&self, idx: usize, out: &mut Vec<CellPosting>) {
        let node = &self.nodes[idx];
        let from = node.postings_offset as usize;
        let to = from + node.postings_len as usize;
        for i in from..to {
            out.push(self.posting_at(i));
        }
    }

    /// Looks up the polygons whose approximation contains the given leaf
    /// cell, in root-to-leaf (coarsest-first) order — identical semantics to
    /// [`AdaptiveCellTrie::lookup_leaf`].
    pub fn lookup_leaf(&self, leaf: CellId) -> Vec<CellPosting> {
        let mut result = Vec::new();
        self.lookup_leaf_into(leaf, &mut result);
        result
    }

    /// Allocation-free variant of [`lookup_leaf`](Self::lookup_leaf): clears
    /// and fills a caller-provided buffer.
    pub fn lookup_leaf_into(&self, leaf: CellId, out: &mut Vec<CellPosting>) {
        debug_assert!(leaf.is_leaf(), "lookup requires a leaf cell id: {leaf}");
        out.clear();
        let raw = leaf.raw();
        let mut node = 0usize;
        self.append_postings(node, out);
        for l in 1..=self.max_depth {
            let child = self.nodes[node].children[child_pos(raw, l)];
            if child == NO_CHILD {
                break;
            }
            node = child as usize;
            self.append_postings(node, out);
        }
    }

    /// The first (coarsest) posting covering the leaf cell, if any — the
    /// value the disjoint-region join needs per probe, with no allocation.
    pub fn first_posting(&self, leaf: CellId) -> Option<CellPosting> {
        debug_assert!(leaf.is_leaf(), "lookup requires a leaf cell id: {leaf}");
        let raw = leaf.raw();
        let mut node = 0usize;
        if let Some(p) = self.node_first_posting(node) {
            return Some(p);
        }
        for l in 1..=self.max_depth {
            let child = self.nodes[node].children[child_pos(raw, l)];
            if child == NO_CHILD {
                return None;
            }
            node = child as usize;
            if let Some(p) = self.node_first_posting(node) {
                return Some(p);
            }
        }
        None
    }

    /// Convenience: the first polygon covering the leaf cell, if any.
    pub fn lookup_first(&self, leaf: CellId) -> Option<PolygonId> {
        self.first_posting(leaf).map(|p| p.polygon)
    }

    /// Starts a batched probe cursor. Feed it leaf cells (ideally in key
    /// order) via [`SortedProbeCursor::first_posting`].
    pub fn cursor(&self) -> SortedProbeCursor<'_> {
        SortedProbeCursor::new(self)
    }
}

/// Pre-order flattening: the parent is emitted before its children, so a
/// descent path runs forward through the node array. `cell` is the grid
/// cell this node represents; nodes with postings extend the covered
/// leaf-key span by their descendant range.
fn freeze_node(
    node: &TrieNode,
    cell: CellId,
    nodes: &mut Vec<FrozenNode>,
    posting_polygons: &mut Vec<PolygonId>,
    posting_classes: &mut Vec<CellClass>,
    covered: &mut Option<(u64, u64)>,
) -> u32 {
    let idx = nodes.len() as u32;
    nodes.push(FrozenNode {
        children: [NO_CHILD; 4],
        postings_offset: posting_polygons.len() as u32,
        postings_len: node.postings.len() as u32,
    });
    if !node.postings.is_empty() {
        let (lo, hi) = (cell.range_min().raw(), cell.range_max().raw());
        *covered = Some(match covered {
            Some((clo, chi)) => ((*clo).min(lo), (*chi).max(hi)),
            None => (lo, hi),
        });
    }
    for p in &node.postings {
        posting_polygons.push(p.polygon);
        posting_classes.push(p.class);
    }
    for (pos, child) in node.children.iter().enumerate() {
        if let Some(child) = child {
            let child_idx = freeze_node(
                child,
                cell.children()[pos],
                nodes,
                posting_polygons,
                posting_classes,
                covered,
            );
            nodes[idx as usize].children[pos] = child_idx;
        }
    }
    idx
}

impl MemoryFootprint for FrozenCellTrie {
    fn memory_bytes(&self) -> usize {
        // Exact: three flat arrays, no hidden per-node allocations.
        self.nodes.capacity() * std::mem::size_of::<FrozenNode>()
            + self.posting_polygons.capacity() * std::mem::size_of::<PolygonId>()
            + self.posting_classes.capacity() * std::mem::size_of::<CellClass>()
    }
}

/// Batched probe cursor over a [`FrozenCellTrie`].
///
/// Keeps the root-to-leaf path of the previous probe on a stack, together
/// with the first posting seen at-or-above each stacked level. A new probe
/// compares its leaf key with the previous one (one XOR + leading-zeros) and
/// re-descends only from the first diverging level. Correct for any probe
/// order; fast when probes are sorted by leaf key, because Z-order neighbors
/// share long prefixes.
pub struct SortedProbeCursor<'a> {
    trie: &'a FrozenCellTrie,
    /// `stack[d]` = node index at level `d` on the current path.
    stack: [u32; STACK],
    /// `first[d]` = first posting encountered at or above level `d`.
    first: [Option<CellPosting>; STACK],
    /// Deepest valid level on the stack.
    depth: usize,
    /// Raw leaf key of the previous probe.
    prev: u64,
    has_prev: bool,
    /// Result of the previous probe (reused when the path is shared).
    cached: Option<CellPosting>,
}

impl<'a> SortedProbeCursor<'a> {
    fn new(trie: &'a FrozenCellTrie) -> Self {
        let mut first = [None; STACK];
        first[0] = trie.node_first_posting(0);
        SortedProbeCursor {
            trie,
            stack: [0; STACK],
            first,
            depth: 0,
            prev: 0,
            has_prev: false,
            cached: None,
        }
    }

    /// The first (coarsest) posting covering `leaf`, descending only from
    /// the level where `leaf` diverges from the previous probe.
    pub fn first_posting(&mut self, leaf: CellId) -> Option<CellPosting> {
        debug_assert!(
            leaf.is_leaf(),
            "cursor probes require a leaf cell id: {leaf}"
        );
        let raw = leaf.raw();
        let start = if self.has_prev {
            let xor = self.prev ^ raw;
            if xor == 0 {
                // Same leaf as before: same answer.
                return self.cached;
            }
            // Highest differing bit of the 60-bit cell path (bit 0 is the
            // leaf sentinel, equal on both sides) → first diverging level.
            let high_bit = 63 - xor.leading_zeros() as usize;
            let diverge_level = MAX_LEVEL as usize - (high_bit - 1) / 2;
            if self.depth + 1 < diverge_level {
                // The keys diverge below the point where the previous
                // descent already ran out of children — the walk, and hence
                // the answer, is unchanged.
                self.prev = raw;
                return self.cached;
            }
            diverge_level
        } else {
            1
        };
        self.has_prev = true;
        self.prev = raw;
        self.depth = start - 1;
        let mut node = self.stack[self.depth] as usize;
        let mut best = self.first[self.depth];
        for l in start..=self.trie.max_depth as usize {
            let child = self.trie.nodes[node].children[child_pos(raw, l as u8)];
            if child == NO_CHILD {
                break;
            }
            node = child as usize;
            self.depth = l;
            self.stack[l] = child;
            if best.is_none() {
                best = self.trie.node_first_posting(node);
            }
            self.first[l] = best;
        }
        self.cached = best;
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbsa_geom::{Point, Polygon};
    use dbsa_grid::GridExtent;
    use dbsa_raster::{BoundaryPolicy, DistanceBound, HierarchicalRaster};
    use proptest::prelude::*;

    fn extent() -> GridExtent {
        GridExtent::new(Point::new(0.0, 0.0), 1024.0)
    }

    fn polygons() -> Vec<Polygon> {
        vec![
            Polygon::from_coords(&[
                (100.0, 100.0),
                (300.0, 100.0),
                (300.0, 300.0),
                (100.0, 300.0),
            ]),
            Polygon::from_coords(&[
                (300.0, 100.0),
                (500.0, 100.0),
                (500.0, 300.0),
                (300.0, 300.0),
            ]),
            Polygon::from_coords(&[
                (700.0, 700.0),
                (900.0, 700.0),
                (900.0, 900.0),
                (700.0, 900.0),
            ]),
        ]
    }

    fn build_both(bound_m: f64) -> (AdaptiveCellTrie, FrozenCellTrie) {
        let ext = extent();
        let rasters: Vec<HierarchicalRaster> = polygons()
            .iter()
            .map(|p| {
                HierarchicalRaster::with_bound(
                    p,
                    &ext,
                    DistanceBound::meters(bound_m),
                    BoundaryPolicy::Conservative,
                )
            })
            .collect();
        let pointer = AdaptiveCellTrie::build(&rasters);
        let frozen = pointer.freeze();
        (pointer, frozen)
    }

    #[test]
    fn freeze_preserves_structure_counts() {
        let (pointer, frozen) = build_both(4.0);
        assert_eq!(frozen.stats(), pointer.stats());
        assert_eq!(frozen.node_count(), pointer.node_count());
        assert_eq!(frozen.posting_count(), pointer.posting_count());
        assert_eq!(frozen.polygon_count(), pointer.polygon_count());
        assert_eq!(frozen.max_depth(), pointer.max_depth());
        assert!(pointer.verify_counters());
    }

    #[test]
    fn frozen_lookups_match_pointer_lookups_on_a_sweep() {
        let (pointer, frozen) = build_both(8.0);
        let ext = extent();
        for i in 0..64 {
            for j in 0..64 {
                let p = Point::new(i as f64 * 16.0 + 0.5, j as f64 * 16.0 + 0.5);
                let leaf = ext.leaf_cell_id(&p);
                assert_eq!(frozen.lookup_leaf(leaf), pointer.lookup_leaf(leaf));
                assert_eq!(frozen.lookup_first(leaf), pointer.lookup_first(leaf));
                assert_eq!(
                    frozen.first_posting(leaf),
                    pointer.lookup_leaf(leaf).first().copied()
                );
            }
        }
    }

    #[test]
    fn cursor_matches_scalar_lookups_in_sorted_and_unsorted_order() {
        let (_, frozen) = build_both(4.0);
        let ext = extent();
        let mut leaves: Vec<CellId> = (0..48)
            .flat_map(|i| {
                (0..48).map(move |j| {
                    ext.leaf_cell_id(&Point::new(i as f64 * 21.0 + 1.0, j as f64 * 21.0 + 1.0))
                })
            })
            .collect();

        // Unsorted (row-major) order: the cursor must still be correct.
        let mut cursor = frozen.cursor();
        for &leaf in &leaves {
            assert_eq!(cursor.first_posting(leaf), frozen.first_posting(leaf));
        }

        // Sorted order (the intended fast path), with duplicates.
        leaves.push(leaves[17]);
        leaves.sort_unstable();
        let mut cursor = frozen.cursor();
        for &leaf in &leaves {
            assert_eq!(cursor.first_posting(leaf), frozen.first_posting(leaf));
        }
    }

    #[test]
    fn empty_trie_freezes_to_a_lone_root() {
        let frozen = AdaptiveCellTrie::new().freeze();
        assert_eq!(frozen.node_count(), 1);
        assert_eq!(frozen.posting_count(), 0);
        assert_eq!(frozen.lookup_first(CellId::leaf(5, 5)), None);
        assert!(frozen.lookup_leaf(CellId::leaf(5, 5)).is_empty());
        let mut cursor = frozen.cursor();
        assert_eq!(cursor.first_posting(CellId::leaf(5, 5)), None);
        assert_eq!(cursor.first_posting(CellId::leaf(6, 5)), None);
        assert!(frozen.memory_bytes() >= std::mem::size_of::<FrozenNode>());
    }

    #[test]
    fn frozen_memory_is_exact_and_below_the_pointer_builder() {
        let (pointer, frozen) = build_both(4.0);
        let expected = frozen.node_count() * std::mem::size_of::<FrozenNode>()
            + frozen.posting_count()
                * (std::mem::size_of::<PolygonId>() + std::mem::size_of::<CellClass>());
        assert_eq!(frozen.memory_bytes(), expected);
        assert!(
            frozen.memory_bytes() < pointer.memory_bytes(),
            "frozen {} should undercut the pointer builder {}",
            frozen.memory_bytes(),
            pointer.memory_bytes()
        );
    }

    #[test]
    fn covered_key_range_bounds_every_posting_cell() {
        let (_, frozen) = build_both(8.0);
        let (lo, hi) = frozen.covered_key_range().expect("postings exist");
        assert!(lo <= hi);
        // Probes outside the span never match; a probe inside the span of
        // the first polygon's interior does.
        let ext = extent();
        let inside = ext.leaf_cell_id(&Point::new(200.0, 200.0));
        assert!(lo <= inside.raw() && inside.raw() <= hi);
        assert!(frozen.first_posting(inside).is_some());
        for probe in [
            CellId::leaf(0, 0),
            CellId::leaf((1 << 30) - 1, (1 << 30) - 1),
        ] {
            if probe.raw() < lo || probe.raw() > hi {
                assert_eq!(frozen.first_posting(probe), None);
            }
        }
        // Empty tries cover nothing.
        assert_eq!(AdaptiveCellTrie::new().freeze().covered_key_range(), None);
    }

    #[test]
    fn covered_key_range_matches_manual_cell_span() {
        let mut act = AdaptiveCellTrie::new();
        let a = CellId::from_cell_xy(1, 0, 3);
        let b = CellId::from_cell_xy(6, 7, 3);
        act.insert_cell(0, a, CellClass::Interior);
        act.insert_cell(1, b, CellClass::Boundary);
        let frozen = act.freeze();
        let lo = a.range_min().raw().min(b.range_min().raw());
        let hi = a.range_max().raw().max(b.range_max().raw());
        assert_eq!(frozen.covered_key_range(), Some((lo, hi)));
    }

    #[test]
    fn manual_insertion_round_trips_through_freeze() {
        let mut act = AdaptiveCellTrie::new();
        let cell = CellId::from_cell_xy(2, 3, 4);
        act.insert_cell(7, cell, CellClass::Interior);
        let frozen = act.freeze();
        assert_eq!(frozen.lookup_first(cell.range_min()), Some(7));
        assert_eq!(
            frozen.lookup_first(CellId::from_cell_xy(0, 0, 4).range_min()),
            None
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Random cells at random levels: frozen scalar lookups and the
        /// cursor agree with the pointer trie everywhere.
        #[test]
        fn prop_frozen_equals_pointer_on_random_tries(
            cells in proptest::collection::vec(
                (0u32..64, 0u32..64, 3u8..9, 0u32..5, proptest::bool::ANY), 1..120),
            probes in proptest::collection::vec((0u32..1024, 0u32..1024), 1..80),
        ) {
            let mut act = AdaptiveCellTrie::new();
            for (x, y, level, polygon, boundary) in cells {
                let cx = x % (1 << level);
                let cy = y % (1 << level);
                let class = if boundary { CellClass::Boundary } else { CellClass::Interior };
                act.insert_cell(polygon, CellId::from_cell_xy(cx, cy, level), class);
            }
            let frozen = act.freeze();
            prop_assert_eq!(frozen.stats(), act.stats());

            let mut leaves: Vec<CellId> = probes
                .into_iter()
                .map(|(x, y)| CellId::leaf(x << 20, y << 20))
                .collect();
            leaves.sort_unstable();
            let mut cursor = frozen.cursor();
            let mut buf = Vec::new();
            for leaf in leaves {
                let reference = act.lookup_leaf(leaf);
                frozen.lookup_leaf_into(leaf, &mut buf);
                prop_assert_eq!(&buf, &reference);
                prop_assert_eq!(frozen.first_posting(leaf), reference.first().copied());
                prop_assert_eq!(cursor.first_posting(leaf), reference.first().copied());
            }
        }
    }
}

//! Frozen, succinct layout of the Adaptive Cell Trie.
//!
//! [`crate::AdaptiveCellTrie`] is the *builder*: a pointer trie of
//! heap-allocated boxes that supports incremental insertion. Probing it
//! chases one `Box` per level and allocates a result vector per probe —
//! fine for construction, wasteful for the paper's hot path, where every
//! query point becomes a trie lookup.
//!
//! [`FrozenCellTrie`] is the *query* form produced by
//! [`FrozenCellTrie::freeze`]. Where the earlier flat layout (preserved as
//! [`crate::FlatCellTrie`] for tests and benches) spent 24 bytes of child
//! pointers per node plus full-width summary and posting columns, the
//! frozen trie is **succinct**:
//!
//! * nodes are numbered in **BFS (level) order**, so the children of any
//!   node are consecutive and a node stores no child pointers at all —
//!   only a 4-bit child-presence mask. Navigation is popcount/rank
//!   arithmetic: the first child of node `i` is `1 +` (number of children
//!   of all nodes `< i`), maintained exactly by per-block rank counters;
//! * 16 nodes share one 24-byte `NodeBlock` (~1.5 bytes/node): a `u64`
//!   of child masks, a `u32` of 2-bit posting counts (3 = escape to a
//!   sorted side table — almost every node holds 0 or 1 postings), and
//!   three `u32` rank counters (children / postings / internal nodes
//!   before the block), so one cache line answers every navigation
//!   question about 16 nodes;
//! * subtree summaries are stored **only for internal nodes** (leaves have
//!   vacuously empty strict subtrees), addressed by internal rank:
//!   [`SubtreeDistance`] packs losslessly into one `u64` (three 21-bit
//!   mantissa·2^shift fields — every folded value is a `u16` bin shifted
//!   by the posting's level, so min/max folds stay exactly representable),
//!   the first-polygon column is bit-packed at ⌈log₂(polygons+1)⌉ bits,
//!   and the single-region flags collapse into a bitset;
//! * posting columns are bit-packed too: polygon ids at ⌈log₂ polygons⌉
//!   bits, classes as a bitset, and the u16 distance bins as two nibbles
//!   (values 0‥13 literal, 14 = unbounded, 15 = escape to a sorted
//!   exception table — real raster profiles never escape).
//!
//! For batched probing, [`SortedProbeCursor`] keeps the current
//! root-to-leaf path on a stack. When probes arrive in leaf-key order
//! (Z-order — consecutive keys share long cell-path prefixes), each probe
//! re-descends only from the first level where its key diverges from the
//! previous one, so most probes touch one or two nodes instead of walking
//! from the root.
//!
//! The frozen layout is also **level-stacked**: every node carries a
//! summary of its strict subtree, so truncating a probe at any level `ℓ`
//! answers against the *Morton-prefix truncation* of the indexed rasters —
//! the coarser approximation in which every cell deeper than `ℓ` is
//! replaced by its level-`ℓ` ancestor (classified `Boundary`, because a
//! cell that was subdivided past `ℓ` necessarily touches a region
//! boundary). One freeze therefore serves *any* distance bound at or above
//! the built one: probe with [`FrozenCellTrie::first_posting_at`] /
//! [`FrozenCellTrie::cursor_at`], and consult
//! [`FrozenCellTrie::covered_key_range_at`] /
//! [`FrozenCellTrie::nodes_at_or_above`] for the per-level pruning range
//! and probe-cost estimate the query planner uses.

use crate::act::{ActStats, AdaptiveCellTrie, CellPosting, PolygonId, TrieNode};
use crate::footprint::MemoryFootprint;
use dbsa_grid::{CellId, MAX_LEVEL};
use dbsa_raster::{CellClass, DistanceBins};
use std::collections::VecDeque;

/// Sentinel polygon id: the strict subtree holds no posting.
const NO_POLYGON: u32 = u32::MAX;

/// Path-stack capacity: one entry per level, root included. Also the length
/// of the per-level metadata arrays (`covered_at`, `nodes_at_or_above`).
const STACK: usize = MAX_LEVEL as usize + 1;

/// Nodes sharing one [`NodeBlock`].
const BLOCK_NODES: usize = 16;

/// Posting-count code meaning "look the true count up in the escape table".
const COUNT_ESCAPE: u32 = 3;

/// Largest distance bin stored literally in a nibble.
const DIST_NIBBLE_MAX: u16 = 13;

/// Nibble code for [`DistanceBins::UNBOUNDED`].
const DIST_NIBBLE_UNBOUNDED: u8 = 14;

/// Byte marking a posting whose bins live in the escape table (both
/// nibbles 15 — unreachable for literal codes, whose nibbles are ≤ 14).
const DIST_BYTE_ESCAPE: u8 = 0xFF;

/// Succinct header of 16 consecutive BFS-ordered nodes: per-node child
/// masks and posting-count codes, plus the exclusive rank prefixes that
/// anchor popcount navigation. 24 bytes — ~1.5 bytes of navigation per
/// node, all of it on one cache line.
#[derive(Debug, Clone, Copy, Default)]
struct NodeBlock {
    /// Nibble `s` = 4-bit child-presence mask of node `block·16 + s`.
    child_masks: u64,
    /// 2-bit field `s` = posting count of node `block·16 + s`
    /// (`COUNT_ESCAPE` = true count ≥ 3, stored in the escape table).
    posting_codes: u32,
    /// Total children of all nodes in earlier blocks.
    child_rank: u32,
    /// Total postings of all nodes in earlier blocks.
    posting_rank: u32,
    /// Internal (mask ≠ 0) nodes in earlier blocks.
    internal_rank: u32,
}

/// `bits`-wide all-ones mask (`bits ≤ 63`).
#[inline(always)]
fn low_mask(bits: usize) -> u64 {
    (1u64 << bits) - 1
}

/// Number of non-zero nibbles in `x` — internal-node count of a mask word.
#[inline(always)]
fn nonzero_nibbles(x: u64) -> u32 {
    let any = x | (x >> 1) | (x >> 2) | (x >> 3);
    (any & 0x1111_1111_1111_1111).count_ones()
}

/// Sum of the 2-bit fields of `w` (each 0..=3, so ≤ 48 total).
#[inline(always)]
fn sum_2bit_fields(w: u32) -> u32 {
    (w & 0x5555_5555).count_ones() + 2 * ((w >> 1) & 0x5555_5555).count_ones()
}

/// 2-bit fields of `w` equal to `COUNT_ESCAPE` (both bits set), as a mask
/// over the low bits of each field.
#[inline(always)]
fn escape_fields(w: u32) -> u32 {
    w & (w >> 1) & 0x5555_5555
}

/// A `u32` column bit-packed at a fixed width (1..=32 bits per entry).
#[derive(Debug, Default)]
struct PackedU32s {
    words: Vec<u64>,
    width: u32,
}

impl PackedU32s {
    /// An all-zero column of `len` entries at `width` bits each.
    fn zeros(width: u32, len: usize) -> Self {
        debug_assert!((1..=32).contains(&width));
        PackedU32s {
            words: vec![0u64; (len * width as usize).div_ceil(64)],
            width,
        }
    }

    /// ORs `v` into entry `i` (entries start zero; set each at most once).
    #[inline(always)]
    fn set(&mut self, i: usize, v: u32) {
        debug_assert!(self.width == 32 || u64::from(v) < (1u64 << self.width));
        let bit = i * self.width as usize;
        let (word, off) = (bit >> 6, bit & 63);
        self.words[word] |= (v as u64) << off;
        if off + self.width as usize > 64 {
            self.words[word + 1] |= (v as u64) >> (64 - off);
        }
    }

    #[inline(always)]
    fn get(&self, i: usize) -> u32 {
        let bit = i * self.width as usize;
        let (word, off) = (bit >> 6, bit & 63);
        let lo = self.words[word] >> off;
        let v = if off + self.width as usize > 64 {
            lo | (self.words[word + 1] << (64 - off))
        } else {
            lo
        };
        (v & low_mask(self.width as usize)) as u32
    }

    fn heap_bytes(&self) -> usize {
        self.words.capacity() * std::mem::size_of::<u64>()
    }
}

/// A plain bitset.
#[derive(Debug, Default)]
struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    fn zeros(len: usize) -> Self {
        BitSet {
            words: vec![0u64; len.div_ceil(64)],
        }
    }

    fn ones(len: usize) -> Self {
        BitSet {
            words: vec![u64::MAX; len.div_ceil(64)],
        }
    }

    #[inline(always)]
    fn set(&mut self, i: usize, v: bool) {
        let mask = 1u64 << (i & 63);
        if v {
            self.words[i >> 6] |= mask;
        } else {
            self.words[i >> 6] &= !mask;
        }
    }

    #[inline(always)]
    fn get(&self, i: usize) -> bool {
        (self.words[i >> 6] >> (i & 63)) & 1 != 0
    }

    fn heap_bytes(&self) -> usize {
        self.words.capacity() * std::mem::size_of::<u64>()
    }
}

/// Strict-subtree distance summary of one frozen node, in **leaf units**
/// (multiples of the leaf-cell side, the world-agnostic common denominator
/// of the per-level posting bins). `lo_leaf` lower-bounds the distance
/// annotation of every posting below the node; `hi_leaf` upper-bounds them
/// (`u64::MAX` when any is unbounded). The distance-query family uses
/// these to prune and to bound answers when a probe truncates above the
/// postings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubtreeDistance {
    /// Min over strict-subtree postings of their `lo`, in leaf units.
    pub lo_leaf: u64,
    /// Max over strict-subtree postings of their `hi`, in leaf units;
    /// `u64::MAX` when unbounded or when any posting lacks a finite bound.
    pub hi_leaf: u64,
    /// Min over strict-subtree postings of their **region-distance
    /// slack**, in leaf units: 0 for any interior posting (its points are
    /// region points), the posting's `hi` for boundary postings (its
    /// points lie within `hi` of the region boundary). `u64::MAX` when
    /// the subtree is empty or every posting is unbounded. This is what
    /// lets a probe bound its distance *to the region* through a folded
    /// subtree: `dist(p, node box) + node diagonal + slack` upper-bounds
    /// the distance to the region via the subtree's best cell.
    pub slack_leaf: u64,
}

impl SubtreeDistance {
    /// Summary of an empty subtree: no posting constrains anything, so
    /// min-folded fields start at `u64::MAX` (min identity) and the upper
    /// bound at 0 (max identity).
    pub(crate) const EMPTY: SubtreeDistance = SubtreeDistance {
        lo_leaf: u64::MAX,
        hi_leaf: 0,
        slack_leaf: u64::MAX,
    };

    pub(crate) fn fold(&mut self, other: SubtreeDistance) {
        self.lo_leaf = self.lo_leaf.min(other.lo_leaf);
        self.hi_leaf = self.hi_leaf.max(other.hi_leaf);
        self.slack_leaf = self.slack_leaf.min(other.slack_leaf);
    }

    /// Converts a posting's per-level bins into leaf units: a bin at level
    /// `level` spans `2^(MAX_LEVEL - level)` leaf sides.
    pub(crate) fn of_posting(dist: DistanceBins, class: CellClass, level: u8) -> SubtreeDistance {
        let shift = (MAX_LEVEL - level) as u32;
        let hi_leaf = if dist.is_bounded() {
            (dist.hi as u64) << shift
        } else {
            u64::MAX
        };
        SubtreeDistance {
            lo_leaf: (dist.lo as u64) << shift,
            hi_leaf,
            slack_leaf: match class {
                CellClass::Interior => 0,
                CellClass::Boundary => hi_leaf,
            },
        }
    }
}

/// Packs one summary field into 21 bits: a 5-bit shift and 16-bit
/// mantissa, `shift = 31` reserved for the `u64::MAX` sentinel. Every
/// value a summary fold can produce is a `u16` bin times `2^(MAX_LEVEL -
/// level)` (or an identity 0 / `u64::MAX`), and min/max folds select
/// *elements* of that set, so the encoding is exact — `debug_assert`ed,
/// not rounded.
#[inline]
fn pack_dist_field(v: u64) -> u64 {
    if v == u64::MAX {
        return 31 << 16;
    }
    let bits = 64 - v.leading_zeros();
    let shift = bits.saturating_sub(16);
    debug_assert!(
        shift <= 30 && (v >> shift) << shift == v,
        "inexact summary field {v}"
    );
    ((shift as u64) << 16) | (v >> shift)
}

#[inline(always)]
fn unpack_dist_field(f: u64) -> u64 {
    let shift = (f >> 16) & 31;
    if shift == 31 {
        u64::MAX
    } else {
        (f & 0xFFFF) << shift
    }
}

/// Three packed fields in one `u64` (bits 0‥20 lo, 21‥41 hi, 42‥62 slack).
#[inline]
fn pack_subtree(d: SubtreeDistance) -> u64 {
    pack_dist_field(d.lo_leaf)
        | (pack_dist_field(d.hi_leaf) << 21)
        | (pack_dist_field(d.slack_leaf) << 42)
}

#[inline(always)]
fn unpack_subtree(p: u64) -> SubtreeDistance {
    SubtreeDistance {
        lo_leaf: unpack_dist_field(p & low_mask(21)),
        hi_leaf: unpack_dist_field((p >> 21) & low_mask(21)),
        slack_leaf: unpack_dist_field(p >> 42),
    }
}

/// Nibble code of one distance bin: literal `0..=13`, 14 = unbounded,
/// `None` = must escape.
#[inline]
fn dist_nibble(v: u16) -> Option<u8> {
    if v <= DIST_NIBBLE_MAX {
        Some(v as u8)
    } else if v == DistanceBins::UNBOUNDED {
        Some(DIST_NIBBLE_UNBOUNDED)
    } else {
        None
    }
}

#[inline(always)]
fn dist_unnibble(code: u8) -> u16 {
    if code == DIST_NIBBLE_UNBOUNDED {
        DistanceBins::UNBOUNDED
    } else {
        code as u16
    }
}

/// Smallest width (≥ 1) that can store values `0..=max_value`.
fn bits_for(max_value: u32) -> u32 {
    (32 - max_value.leading_zeros()).max(1)
}

/// Memory of one [`FrozenCellTrie`], split by column family — the fig6
/// report emits this so layout work can see where the bytes go. All
/// figures are true heap bytes (`Vec` capacities, not lengths).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrieMemoryBreakdown {
    /// Navigation: node blocks plus the posting-count escape table.
    pub nodes_bytes: usize,
    /// Posting identity: bit-packed polygon column + class bitset.
    pub postings_bytes: usize,
    /// Posting distance annotations: nibble codes + escape table.
    pub distance_bytes: usize,
    /// Subtree summaries: packed distance folds, first-polygon column,
    /// single-region bitset.
    pub summaries_bytes: usize,
}

impl TrieMemoryBreakdown {
    /// Total heap bytes across every column family.
    pub fn total(&self) -> usize {
        self.nodes_bytes + self.postings_bytes + self.distance_bytes + self.summaries_bytes
    }
}

/// The frozen Adaptive Cell Trie. Immutable; build via
/// [`FrozenCellTrie::freeze`] (or [`AdaptiveCellTrie::freeze`]).
#[derive(Debug)]
pub struct FrozenCellTrie {
    /// Succinct node headers, 16 BFS-ordered nodes per block.
    blocks: Vec<NodeBlock>,
    /// `(node, true posting count)` for nodes whose count ≥ 3, sorted by
    /// node index (BFS emission order).
    count_escapes: Vec<(u32, u32)>,
    /// Postings arena, polygon column, bit-packed at `poly_width` bits.
    posting_polygons: PackedU32s,
    /// Postings arena, class column: bit set ⇔ `CellClass::Boundary`.
    posting_classes: BitSet,
    /// Postings arena, distance column: `lo` nibble | `hi` nibble << 4,
    /// [`DIST_BYTE_ESCAPE`] when either bin escapes.
    posting_dists: Vec<u8>,
    /// `(arena index, bins)` for escaped postings, sorted by arena index.
    dist_escapes: Vec<(u32, DistanceBins)>,
    /// Strict-subtree distance summary per **internal** node (internal
    /// rank order), packed by [`pack_subtree`].
    deep_dist: Vec<u64>,
    /// First strict-subtree polygon per **internal** node, bit-packed;
    /// `first_sentinel` encodes "no posting below".
    deep_first: PackedU32s,
    /// Single-region flag per node (vacuously true for leaves).
    deep_single: BitSet,
    /// The value in `deep_first` meaning "none" (max polygon id + 1).
    first_sentinel: u32,
    nodes: u32,
    postings: u32,
    polygons: usize,
    max_depth: u8,
    /// `covered_at[ℓ]` = inclusive span `[lo, hi]` of raw leaf keys covered
    /// by at least one posting cell once cells deeper than `ℓ` are
    /// truncated to their level-`ℓ` ancestor (`None` for a trie without
    /// postings). `covered_at[MAX_LEVEL]` is the exact covered span; probes
    /// whose keys fall outside the level's span cannot match at that level
    /// — the basis for per-level shard pruning.
    covered_at: [Option<(u64, u64)>; STACK],
    /// `nodes_at_or_above[ℓ]` = number of trie nodes at level ≤ ℓ — the
    /// size of the structure a level-`ℓ` probe can touch, used as the
    /// planner's probe-cost estimate.
    nodes_at_or_above: [u32; STACK],
}

/// Child position of `leaf`'s ancestor at `level` — pure bit arithmetic on
/// the raw leaf id (the two path bits that encode the level-`level` branch).
#[inline(always)]
fn child_pos(raw_leaf: u64, level: u8) -> usize {
    ((raw_leaf >> (2 * (MAX_LEVEL - level) as u32 + 1)) & 3) as usize
}

impl FrozenCellTrie {
    /// Flattens a pointer trie into the succinct BFS layout.
    pub fn freeze(trie: &AdaptiveCellTrie) -> Self {
        let node_count = trie.node_count();
        let posting_count = trie.posting_count();
        assert!(
            node_count < u32::MAX as usize && posting_count <= u32::MAX as usize,
            "trie too large for u32 indices ({node_count} nodes, {posting_count} postings)"
        );

        // Pass 1 — BFS emission: blocks, posting columns, covered spans.
        // Polygon ids are staged unpacked until the max id fixes the width.
        let mut blocks: Vec<NodeBlock> = Vec::with_capacity(node_count.div_ceil(BLOCK_NODES));
        let mut count_escapes: Vec<(u32, u32)> = Vec::new();
        let mut poly_staging: Vec<u32> = Vec::with_capacity(posting_count);
        let mut posting_classes = BitSet::zeros(posting_count);
        let mut posting_dists: Vec<u8> = Vec::with_capacity(posting_count);
        let mut dist_escapes: Vec<(u32, DistanceBins)> = Vec::new();
        let mut levels: Vec<u8> = Vec::with_capacity(node_count);
        let mut covered_at: [Option<(u64, u64)>; STACK] = [None; STACK];
        let mut level_nodes = [0u32; STACK];
        let mut max_polygon: Option<u32> = None;

        let mut children_total = 0u32;
        let mut postings_total = 0u32;
        let mut internal_total = 0u32;
        let mut block = NodeBlock::default();
        let mut queue: VecDeque<(&TrieNode, CellId)> = VecDeque::new();
        queue.push_back((&trie.root, CellId::ROOT));
        let mut idx = 0usize;
        while let Some((node, cell)) = queue.pop_front() {
            let slot = idx % BLOCK_NODES;
            if slot == 0 {
                block = NodeBlock {
                    child_masks: 0,
                    posting_codes: 0,
                    child_rank: children_total,
                    posting_rank: postings_total,
                    internal_rank: internal_total,
                };
            }
            let level = cell.level();
            levels.push(level);
            level_nodes[level as usize] += 1;

            let mut nib = 0u64;
            for (pos, child) in node.children.iter().enumerate() {
                if child.is_some() {
                    nib |= 1 << pos;
                }
            }
            block.child_masks |= nib << (slot * 4);
            if nib != 0 {
                internal_total += 1;
            }
            children_total += nib.count_ones();

            let count = node.postings.len();
            block.posting_codes |= (count.min(COUNT_ESCAPE as usize) as u32) << (slot * 2);
            if count >= COUNT_ESCAPE as usize {
                count_escapes.push((idx as u32, count as u32));
            }
            if count > 0 {
                // A cell at level L widens the truncated covering of every
                // level ℓ < L to its level-ℓ ancestor; at ℓ ≥ L it
                // contributes its own range.
                for l in 0..STACK as u8 {
                    let effective = if level <= l { cell } else { cell.parent_at(l) };
                    let (lo, hi) = (effective.range_min().raw(), effective.range_max().raw());
                    let span = &mut covered_at[l as usize];
                    *span = Some(match span {
                        Some((clo, chi)) => ((*clo).min(lo), (*chi).max(hi)),
                        None => (lo, hi),
                    });
                }
            }
            for p in &node.postings {
                let arena = poly_staging.len();
                poly_staging.push(p.polygon);
                max_polygon = Some(max_polygon.map_or(p.polygon, |m| m.max(p.polygon)));
                posting_classes.set(arena, p.class == CellClass::Boundary);
                match (dist_nibble(p.dist.lo), dist_nibble(p.dist.hi)) {
                    (Some(lo), Some(hi)) => posting_dists.push(lo | (hi << 4)),
                    _ => {
                        posting_dists.push(DIST_BYTE_ESCAPE);
                        dist_escapes.push((arena as u32, p.dist));
                    }
                }
            }
            postings_total += count as u32;

            if nib != 0 {
                let kid_cells = cell.children();
                for (pos, child) in node.children.iter().enumerate() {
                    if let Some(child) = child {
                        queue.push_back((child, kid_cells[pos]));
                    }
                }
            }
            if slot == BLOCK_NODES - 1 {
                blocks.push(block);
            }
            idx += 1;
        }
        if !idx.is_multiple_of(BLOCK_NODES) {
            blocks.push(block);
        }
        debug_assert_eq!(idx, node_count);
        debug_assert_eq!(poly_staging.len(), posting_count);
        count_escapes.shrink_to_fit();
        dist_escapes.shrink_to_fit();

        let poly_width = bits_for(max_polygon.unwrap_or(0));
        let mut posting_polygons = PackedU32s::zeros(poly_width, posting_count);
        for (arena, &polygon) in poly_staging.iter().enumerate() {
            posting_polygons.set(arena, polygon);
        }
        drop(poly_staging);

        let mut nodes_at_or_above = [0u32; STACK];
        let mut running = 0u32;
        for (cum, count) in nodes_at_or_above.iter_mut().zip(level_nodes) {
            running += count;
            *cum = running;
        }

        let first_sentinel = max_polygon.map_or(0, |m| m + 1);
        let mut frozen = FrozenCellTrie {
            blocks,
            count_escapes,
            posting_polygons,
            posting_classes,
            posting_dists,
            dist_escapes,
            deep_dist: vec![0u64; internal_total as usize],
            deep_first: PackedU32s::zeros(bits_for(first_sentinel), internal_total as usize),
            deep_single: BitSet::ones(node_count),
            first_sentinel,
            nodes: node_count as u32,
            postings: posting_count as u32,
            polygons: trie.polygon_count(),
            max_depth: trie.max_depth(),
            covered_at,
            nodes_at_or_above,
        };
        frozen.fill_deep_summaries(&levels);
        frozen
    }

    /// Pass 2 — reverse-BFS fold of the strict-subtree summaries. In BFS
    /// order every child index exceeds its parent's, so a reverse sweep
    /// sees all children's inclusive summaries before their parent folds
    /// them; `levels[i]` is node `i`'s grid level from pass 1.
    fn fill_deep_summaries(&mut self, levels: &[u8]) {
        let n = self.nodes as usize;
        let mut info: Vec<SubtreeInfo> = vec![SubtreeInfo::EMPTY; n];
        for idx in (0..n).rev() {
            let mut deep = SubtreeInfo::EMPTY;
            if self.child_mask(idx) != 0 {
                for child in self.children_of(idx as u32).into_iter().flatten() {
                    deep.fold(info[child as usize]);
                }
                let slot = self.internal_slot(idx);
                self.deep_dist[slot] = pack_subtree(deep.dist);
                let first = if deep.first == NO_POLYGON {
                    self.first_sentinel
                } else {
                    deep.first
                };
                self.deep_first.set(slot, first);
                self.deep_single.set(idx, deep.single);
            }
            let mut subtree = SubtreeInfo::EMPTY;
            let from = self.posting_offset(idx);
            for arena in from..from + self.posting_len(idx) {
                let p = self.posting_at(arena);
                subtree.fold(SubtreeInfo {
                    first: p.polygon,
                    single: true,
                    dist: SubtreeDistance::of_posting(p.dist, p.class, levels[idx]),
                });
            }
            subtree.fold(deep);
            info[idx] = subtree;
        }
    }

    /// The 4-bit child-presence mask of node `idx`.
    #[inline(always)]
    fn child_mask(&self, idx: usize) -> u32 {
        let block = &self.blocks[idx / BLOCK_NODES];
        ((block.child_masks >> ((idx % BLOCK_NODES) * 4)) & 0xF) as u32
    }

    /// The node index of node `idx`'s child at quadrant `pos`, if present:
    /// `1 +` (children of all nodes before `idx`) `+` (present siblings
    /// before `pos`) — per-block rank plus two popcounts.
    #[inline(always)]
    fn child_of(&self, idx: usize, pos: usize) -> Option<u32> {
        let block = &self.blocks[idx / BLOCK_NODES];
        let slot = idx % BLOCK_NODES;
        let nib = (block.child_masks >> (slot * 4)) & 0xF;
        if nib & (1 << pos) == 0 {
            return None;
        }
        let before = (block.child_masks & low_mask(slot * 4)).count_ones();
        let within = (nib & low_mask(pos)).count_ones();
        Some(1 + block.child_rank + before + within)
    }

    /// Rank of internal node `idx` among internal nodes (its slot in the
    /// `deep_dist` / `deep_first` columns). Caller guarantees `idx` is
    /// internal.
    #[inline(always)]
    fn internal_slot(&self, idx: usize) -> usize {
        let block = &self.blocks[idx / BLOCK_NODES];
        let slot = idx % BLOCK_NODES;
        (block.internal_rank + nonzero_nibbles(block.child_masks & low_mask(slot * 4))) as usize
    }

    /// Arena offset of node `idx`'s postings: per-block rank plus the 2-bit
    /// prefix sum, corrected through the escape table when an earlier node
    /// in the block holds ≥ 3 postings (never on real raster profiles).
    #[inline(always)]
    fn posting_offset(&self, idx: usize) -> usize {
        let block = &self.blocks[idx / BLOCK_NODES];
        let slot = idx % BLOCK_NODES;
        let prefix = block.posting_codes & low_mask(slot * 2) as u32;
        let mut sum = block.posting_rank + sum_2bit_fields(prefix);
        if escape_fields(prefix) != 0 {
            sum += self.escape_extra(idx - slot, idx);
        }
        sum as usize
    }

    /// Sum of `(true count − 3)` over escaped nodes in `[from, to)`.
    #[cold]
    fn escape_extra(&self, from: usize, to: usize) -> u32 {
        let start = self
            .count_escapes
            .partition_point(|&(n, _)| (n as usize) < from);
        self.count_escapes[start..]
            .iter()
            .take_while(|&&(n, _)| (n as usize) < to)
            .map(|&(_, count)| count - COUNT_ESCAPE)
            .sum()
    }

    /// Number of postings stored at node `idx`.
    #[inline(always)]
    fn posting_len(&self, idx: usize) -> usize {
        let block = &self.blocks[idx / BLOCK_NODES];
        let code = (block.posting_codes >> ((idx % BLOCK_NODES) * 2)) & 3;
        if code < COUNT_ESCAPE {
            code as usize
        } else {
            let at = self
                .count_escapes
                .binary_search_by_key(&(idx as u32), |&(n, _)| n)
                .expect("escape-coded node has an escape entry");
            self.count_escapes[at].1 as usize
        }
    }

    /// The inclusive span of raw leaf keys covered by at least one posting
    /// cell, or `None` for a trie without postings. Any probe key outside
    /// the span is guaranteed unmatched, so a point shard whose key range
    /// does not intersect it can skip probing entirely.
    pub fn covered_key_range(&self) -> Option<(u64, u64)> {
        self.covered_at[MAX_LEVEL as usize]
    }

    /// The covered leaf-key span of the **level-`level` truncation** of the
    /// indexed rasters: every posting cell deeper than `level` widens the
    /// span to its level-`level` ancestor's descendant range. Probes outside
    /// the span cannot match *at that level*, so shard pruning for a
    /// coarse-level query must intersect against this (wider) range, not the
    /// exact one.
    pub fn covered_key_range_at(&self, level: u8) -> Option<(u64, u64)> {
        self.covered_at[level.min(MAX_LEVEL) as usize]
    }

    /// Number of trie nodes at level ≤ `level` — the portion of the
    /// structure a probe truncated at `level` can touch. The query planner
    /// uses this as its probe-cost estimate for a candidate level.
    pub fn nodes_at_or_above(&self, level: u8) -> usize {
        self.nodes_at_or_above[level.min(MAX_LEVEL) as usize] as usize
    }

    /// Number of indexed polygons.
    pub fn polygon_count(&self) -> usize {
        self.polygons
    }

    /// Number of cell postings.
    pub fn posting_count(&self) -> usize {
        self.postings as usize
    }

    /// Number of trie nodes.
    pub fn node_count(&self) -> usize {
        self.nodes as usize
    }

    /// Deepest level at which a posting terminates.
    pub fn max_depth(&self) -> u8 {
        self.max_depth
    }

    /// Structural statistics — O(1), everything is a stored count.
    pub fn stats(&self) -> ActStats {
        ActStats {
            nodes: self.node_count(),
            postings: self.posting_count(),
            polygons: self.polygons,
            max_depth: self.max_depth,
        }
    }

    /// The first (coarsest) posting of node `idx`, if it has any. The
    /// common case (code 0) is answered from the node block alone.
    #[inline(always)]
    fn node_first_posting(&self, idx: usize) -> Option<CellPosting> {
        let block = &self.blocks[idx / BLOCK_NODES];
        if (block.posting_codes >> ((idx % BLOCK_NODES) * 2)) & 3 == 0 {
            return None;
        }
        Some(self.posting_at(self.posting_offset(idx)))
    }

    #[inline(always)]
    fn posting_at(&self, arena_idx: usize) -> CellPosting {
        let byte = self.posting_dists[arena_idx];
        let dist = if byte == DIST_BYTE_ESCAPE {
            let at = self
                .dist_escapes
                .binary_search_by_key(&(arena_idx as u32), |&(a, _)| a)
                .expect("escape-coded posting has an escape entry");
            self.dist_escapes[at].1
        } else {
            DistanceBins {
                lo: dist_unnibble(byte & 0xF),
                hi: dist_unnibble(byte >> 4),
            }
        };
        CellPosting {
            polygon: self.posting_polygons.get(arena_idx),
            class: if self.posting_classes.get(arena_idx) {
                CellClass::Boundary
            } else {
                CellClass::Interior
            },
            dist,
        }
    }

    #[inline(always)]
    fn append_postings(&self, idx: usize, out: &mut Vec<CellPosting>) {
        let from = self.posting_offset(idx);
        for i in from..from + self.posting_len(idx) {
            out.push(self.posting_at(i));
        }
    }

    /// Looks up the polygons whose approximation contains the given leaf
    /// cell, in root-to-leaf (coarsest-first) order — identical semantics to
    /// [`AdaptiveCellTrie::lookup_leaf`].
    pub fn lookup_leaf(&self, leaf: CellId) -> Vec<CellPosting> {
        let mut result = Vec::new();
        self.lookup_leaf_into(leaf, &mut result);
        result
    }

    /// Allocation-free variant of [`lookup_leaf`](Self::lookup_leaf): clears
    /// and fills a caller-provided buffer.
    pub fn lookup_leaf_into(&self, leaf: CellId, out: &mut Vec<CellPosting>) {
        debug_assert!(leaf.is_leaf(), "lookup requires a leaf cell id: {leaf}");
        out.clear();
        let raw = leaf.raw();
        let mut node = 0usize;
        self.append_postings(node, out);
        for l in 1..=self.max_depth {
            match self.child_of(node, child_pos(raw, l)) {
                Some(child) => node = child as usize,
                None => break,
            }
            self.append_postings(node, out);
        }
    }

    /// The first (coarsest) posting covering the leaf cell, if any — the
    /// value the disjoint-region join needs per probe, with no allocation.
    pub fn first_posting(&self, leaf: CellId) -> Option<CellPosting> {
        debug_assert!(leaf.is_leaf(), "lookup requires a leaf cell id: {leaf}");
        let raw = leaf.raw();
        let mut node = 0usize;
        if let Some(p) = self.node_first_posting(node) {
            return Some(p);
        }
        for l in 1..=self.max_depth {
            match self.child_of(node, child_pos(raw, l)) {
                Some(child) => node = child as usize,
                None => return None,
            }
            if let Some(p) = self.node_first_posting(node) {
                return Some(p);
            }
        }
        None
    }

    /// Convenience: the first polygon covering the leaf cell, if any.
    pub fn lookup_first(&self, leaf: CellId) -> Option<PolygonId> {
        self.first_posting(leaf).map(|p| p.polygon)
    }

    /// The truncated-covering posting a probe resolves to when it stops at
    /// node `idx` with nothing found on the path: the strict subtree's
    /// first posting, classified `Boundary` (a cell subdivided past the
    /// truncation level necessarily touches a region boundary).
    #[inline(always)]
    fn deep_summary(&self, idx: usize) -> Option<CellPosting> {
        self.subtree_first_polygon(idx as u32)
            .map(|polygon| CellPosting {
                polygon,
                class: CellClass::Boundary,
                // The folded cell represents many deeper cells; the vacuous
                // annotation is the conservative summary at posting
                // granularity. Callers needing tighter bounds consult
                // [`FrozenCellTrie::subtree_distance`].
                dist: DistanceBins::UNKNOWN,
            })
    }

    /// The first polygon posted anywhere in node `idx`'s *strict* subtree
    /// (pre-order: own postings of descendants before their descendants,
    /// siblings in Z-order), or `None` when the subtree holds no posting —
    /// the region a truncated probe attributes the folded subtree to.
    pub fn subtree_first_polygon(&self, idx: u32) -> Option<PolygonId> {
        let idx = idx as usize;
        if self.child_mask(idx) == 0 {
            return None;
        }
        let first = self.deep_first.get(self.internal_slot(idx));
        (first != self.first_sentinel).then_some(first)
    }

    /// The strict-subtree distance summary of node `idx`, in leaf units.
    /// [`SubtreeDistance::lo_leaf`] is `u64::MAX` and `hi_leaf` is 0 for a
    /// childless-and-postingless subtree (the min/max identities).
    pub fn subtree_distance(&self, idx: u32) -> SubtreeDistance {
        let idx = idx as usize;
        if self.child_mask(idx) == 0 {
            return SubtreeDistance::EMPTY;
        }
        unpack_subtree(self.deep_dist[self.internal_slot(idx)])
    }

    /// Whether every posting in node `idx`'s strict subtree belongs to
    /// [`subtree_first_polygon`](Self::subtree_first_polygon) (vacuously
    /// true when the subtree is empty).
    pub fn subtree_single_region(&self, idx: u32) -> bool {
        self.deep_single.get(idx as usize)
    }

    /// The four child node indices of node `idx` in quadtree child order
    /// (`None` for absent children). Node 0 is the root; together with
    /// [`postings_of`](Self::postings_of) this exposes the read-only
    /// traversal the distance query family's best-first search needs.
    pub fn children_of(&self, idx: u32) -> [Option<u32>; 4] {
        let idx = idx as usize;
        let block = &self.blocks[idx / BLOCK_NODES];
        let slot = idx % BLOCK_NODES;
        let nib = ((block.child_masks >> (slot * 4)) & 0xF) as u32;
        let mut next = 1 + block.child_rank + (block.child_masks & low_mask(slot * 4)).count_ones();
        let mut out = [None; 4];
        for (pos, child) in out.iter_mut().enumerate() {
            if nib & (1 << pos) != 0 {
                *child = Some(next);
                next += 1;
            }
        }
        out
    }

    /// The postings stored at node `idx`, in insertion order.
    pub fn postings_of(&self, idx: u32) -> impl Iterator<Item = CellPosting> + '_ {
        let from = self.posting_offset(idx as usize);
        (from..from + self.posting_len(idx as usize)).map(move |i| self.posting_at(i))
    }

    /// Whether node `idx` stores any posting.
    pub fn has_postings(&self, idx: u32) -> bool {
        let idx = idx as usize;
        let block = &self.blocks[idx / BLOCK_NODES];
        (block.posting_codes >> ((idx % BLOCK_NODES) * 2)) & 3 != 0
    }

    /// The first posting covering the leaf cell **at truncation level
    /// `level`** — the answer the trie would give if every cell deeper than
    /// `level` were replaced by its level-`level` ancestor (class
    /// `Boundary`). `level >= max_depth` reproduces
    /// [`first_posting`](Self::first_posting) exactly.
    pub fn first_posting_at(&self, leaf: CellId, level: u8) -> Option<CellPosting> {
        debug_assert!(leaf.is_leaf(), "lookup requires a leaf cell id: {leaf}");
        let raw = leaf.raw();
        let mut node = 0usize;
        if let Some(p) = self.node_first_posting(node) {
            return Some(p);
        }
        for l in 1..=self.max_depth.min(level) {
            match self.child_of(node, child_pos(raw, l)) {
                Some(child) => node = child as usize,
                // No original cell lies under this branch at or below the
                // truncation level, so the truncated covering has no cell
                // here either.
                None => return None,
            }
            if let Some(p) = self.node_first_posting(node) {
                return Some(p);
            }
        }
        // Ran out of levels with nothing on the path: postings strictly
        // below the cutoff truncate into this node's cell.
        self.deep_summary(node)
    }

    /// Starts a batched probe cursor. Feed it leaf cells (ideally in key
    /// order) via [`SortedProbeCursor::first_posting`].
    pub fn cursor(&self) -> SortedProbeCursor<'_> {
        self.cursor_at(MAX_LEVEL)
    }

    /// Starts a batched probe cursor truncated at `level`: probe answers
    /// match [`first_posting_at`](Self::first_posting_at) with the same
    /// level. `cursor_at(MAX_LEVEL)` is [`cursor`](Self::cursor).
    pub fn cursor_at(&self, level: u8) -> SortedProbeCursor<'_> {
        SortedProbeCursor::new(self, level)
    }

    /// Starts a multi-consumer probe cursor answering **every** requested
    /// truncation level from one shared descent per probe — the cross-query
    /// analogue of [`cursor_at`](Self::cursor_at): where the sorted cursor
    /// amortizes the root-to-leaf walk across *points*, the multi cursor
    /// additionally amortizes it across *queries* that probe the same key
    /// stream at different levels. Each answer is bit-for-bit what
    /// [`first_posting_at`](Self::first_posting_at) returns for the same
    /// `(leaf, level)` pair. `levels` must be non-empty and duplicate-free
    /// (duplicate consumers would only clone answers; callers dedup).
    pub fn multi_cursor(&self, levels: &[u8]) -> MultiLevelProbeCursor<'_> {
        MultiLevelProbeCursor::new(self, levels)
    }

    /// True heap bytes per column family (capacities, not lengths).
    pub fn memory_breakdown(&self) -> TrieMemoryBreakdown {
        TrieMemoryBreakdown {
            nodes_bytes: self.blocks.capacity() * std::mem::size_of::<NodeBlock>()
                + self.count_escapes.capacity() * std::mem::size_of::<(u32, u32)>(),
            postings_bytes: self.posting_polygons.heap_bytes() + self.posting_classes.heap_bytes(),
            distance_bytes: self.posting_dists.capacity()
                + self.dist_escapes.capacity() * std::mem::size_of::<(u32, DistanceBins)>(),
            summaries_bytes: self.deep_dist.capacity() * std::mem::size_of::<u64>()
                + self.deep_first.heap_bytes()
                + self.deep_single.heap_bytes(),
        }
    }
}

/// Summary of a subtree *including* the subtree root's own postings,
/// carried by the reverse-BFS fold: the first polygon in pre-order,
/// whether every posting belongs to it, and the folded distance summary.
#[derive(Clone, Copy)]
struct SubtreeInfo {
    first: u32,
    single: bool,
    dist: SubtreeDistance,
}

impl SubtreeInfo {
    const EMPTY: SubtreeInfo = SubtreeInfo {
        first: NO_POLYGON,
        single: true,
        dist: SubtreeDistance::EMPTY,
    };

    fn fold(&mut self, other: SubtreeInfo) {
        if other.first != NO_POLYGON {
            if self.first == NO_POLYGON {
                self.first = other.first;
                self.single = other.single;
            } else {
                self.single = self.single && other.single && self.first == other.first;
            }
        }
        self.dist.fold(other.dist);
    }
}

impl MemoryFootprint for FrozenCellTrie {
    fn memory_bytes(&self) -> usize {
        // Exact: every column is a flat Vec whose capacity the breakdown
        // reports; the per-level metadata lives inline in the struct.
        self.memory_breakdown().total()
    }
}

impl FrozenCellTrie {
    /// Serializes every frozen column into a snapshot section, SoA:
    /// the node blocks split into their five per-block columns, then the
    /// posting / distance / summary columns exactly as held in memory.
    /// Reconstitution is one contiguous pass per column — no re-freeze.
    pub fn write_snapshot(&self, out: &mut Vec<u8>) {
        use crate::snapshot::{put_u16s, put_u32s, put_u64s, put_u8s};
        use bytes::BufMut;

        put_u64s(
            out,
            &self
                .blocks
                .iter()
                .map(|b| b.child_masks)
                .collect::<Vec<_>>(),
        );
        put_u32s(
            out,
            &self
                .blocks
                .iter()
                .map(|b| b.posting_codes)
                .collect::<Vec<_>>(),
        );
        put_u32s(
            out,
            &self.blocks.iter().map(|b| b.child_rank).collect::<Vec<_>>(),
        );
        put_u32s(
            out,
            &self
                .blocks
                .iter()
                .map(|b| b.posting_rank)
                .collect::<Vec<_>>(),
        );
        put_u32s(
            out,
            &self
                .blocks
                .iter()
                .map(|b| b.internal_rank)
                .collect::<Vec<_>>(),
        );

        put_u32s(
            out,
            &self
                .count_escapes
                .iter()
                .map(|&(n, _)| n)
                .collect::<Vec<_>>(),
        );
        put_u32s(
            out,
            &self
                .count_escapes
                .iter()
                .map(|&(_, c)| c)
                .collect::<Vec<_>>(),
        );

        out.put_u32_le(self.posting_polygons.width);
        put_u64s(out, &self.posting_polygons.words);
        put_u64s(out, &self.posting_classes.words);
        put_u8s(out, &self.posting_dists);

        put_u32s(
            out,
            &self
                .dist_escapes
                .iter()
                .map(|&(a, _)| a)
                .collect::<Vec<_>>(),
        );
        put_u16s(
            out,
            &self
                .dist_escapes
                .iter()
                .map(|&(_, d)| d.lo)
                .collect::<Vec<_>>(),
        );
        put_u16s(
            out,
            &self
                .dist_escapes
                .iter()
                .map(|&(_, d)| d.hi)
                .collect::<Vec<_>>(),
        );

        put_u64s(out, &self.deep_dist);
        out.put_u32_le(self.deep_first.width);
        put_u64s(out, &self.deep_first.words);
        put_u64s(out, &self.deep_single.words);

        out.put_u32_le(self.first_sentinel);
        out.put_u32_le(self.nodes);
        out.put_u32_le(self.postings);
        out.put_u64_le(self.polygons as u64);
        out.put_u8(self.max_depth);

        for span in &self.covered_at {
            match span {
                Some((lo, hi)) => {
                    out.put_u8(1);
                    out.put_u64_le(*lo);
                    out.put_u64_le(*hi);
                }
                None => {
                    out.put_u8(0);
                    out.put_u64_le(0);
                    out.put_u64_le(0);
                }
            }
        }
        put_u32s(out, &self.nodes_at_or_above);
    }

    /// Reconstitutes a frozen trie from [`write_snapshot`](Self::write_snapshot)'s columns.
    /// Validates structural invariants (column lengths against the stored
    /// counts, packed widths in range) and returns a typed error on any
    /// mismatch — never panics on CRC-valid but malformed input.
    pub fn read_snapshot(
        cur: &mut crate::snapshot::SectionCursor<'_>,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        let child_masks = cur.read_u64s()?;
        let posting_codes = cur.read_u32s()?;
        let child_rank = cur.read_u32s()?;
        let posting_rank = cur.read_u32s()?;
        let internal_rank = cur.read_u32s()?;
        let n_blocks = child_masks.len();
        if [
            posting_codes.len(),
            child_rank.len(),
            posting_rank.len(),
            internal_rank.len(),
        ] != [n_blocks; 4]
        {
            return Err(cur.malformed("node-block columns disagree on length"));
        }
        let blocks: Vec<NodeBlock> = (0..n_blocks)
            .map(|i| NodeBlock {
                child_masks: child_masks[i],
                posting_codes: posting_codes[i],
                child_rank: child_rank[i],
                posting_rank: posting_rank[i],
                internal_rank: internal_rank[i],
            })
            .collect();

        let escape_nodes = cur.read_u32s()?;
        let escape_counts = cur.read_u32s()?;
        if escape_nodes.len() != escape_counts.len() {
            return Err(cur.malformed("count-escape columns disagree on length"));
        }
        let count_escapes: Vec<(u32, u32)> = escape_nodes.into_iter().zip(escape_counts).collect();

        let read_packed = |cur: &mut crate::snapshot::SectionCursor<'_>| {
            let width = cur.read_u32()?;
            if !(1..=32).contains(&width) {
                return Err(cur.malformed("packed-column width out of range"));
            }
            let words = cur.read_u64s()?;
            Ok(PackedU32s { words, width })
        };
        let posting_polygons = read_packed(cur)?;
        let posting_classes = BitSet {
            words: cur.read_u64s()?,
        };
        let posting_dists = cur.read_u8s()?;

        let escape_arenas = cur.read_u32s()?;
        let escape_lo = cur.read_u16s()?;
        let escape_hi = cur.read_u16s()?;
        if escape_arenas.len() != escape_lo.len() || escape_arenas.len() != escape_hi.len() {
            return Err(cur.malformed("distance-escape columns disagree on length"));
        }
        let dist_escapes: Vec<(u32, DistanceBins)> = escape_arenas
            .into_iter()
            .zip(escape_lo.into_iter().zip(escape_hi))
            .map(|(a, (lo, hi))| (a, DistanceBins { lo, hi }))
            .collect();

        let deep_dist = cur.read_u64s()?;
        let deep_first = read_packed(cur)?;
        let deep_single = BitSet {
            words: cur.read_u64s()?,
        };

        let first_sentinel = cur.read_u32()?;
        let nodes = cur.read_u32()?;
        let postings = cur.read_u32()?;
        let polygons = cur.read_u64()? as usize;
        let max_depth = cur.read_u8()?;

        let mut covered_at: [Option<(u64, u64)>; STACK] = [None; STACK];
        for span in covered_at.iter_mut() {
            let flag = cur.read_u8()?;
            let lo = cur.read_u64()?;
            let hi = cur.read_u64()?;
            *span = match flag {
                0 => None,
                1 => Some((lo, hi)),
                _ => return Err(cur.malformed("covered-span flag is neither 0 nor 1")),
            };
        }
        let levels = cur.read_u32s()?;
        let nodes_at_or_above: [u32; STACK] = levels
            .try_into()
            .map_err(|_| cur.malformed("per-level node counts have the wrong length"))?;

        let node_count = nodes as usize;
        if blocks.len() != node_count.div_ceil(BLOCK_NODES) {
            return Err(cur.malformed("block count disagrees with node count"));
        }
        let posting_count = postings as usize;
        if posting_dists.len() != posting_count
            || posting_classes.words.len() != posting_count.div_ceil(64)
            || posting_polygons.words.len()
                != (posting_count * posting_polygons.width as usize).div_ceil(64)
        {
            return Err(cur.malformed("posting columns disagree with posting count"));
        }
        if deep_single.words.len() != node_count.div_ceil(64)
            || deep_first.words.len() != (deep_dist.len() * deep_first.width as usize).div_ceil(64)
        {
            return Err(cur.malformed("summary columns disagree on length"));
        }
        if max_depth > MAX_LEVEL {
            return Err(cur.malformed("max depth exceeds the grid's finest level"));
        }

        Ok(FrozenCellTrie {
            blocks,
            count_escapes,
            posting_polygons,
            posting_classes,
            posting_dists,
            dist_escapes,
            deep_dist,
            deep_first,
            deep_single,
            first_sentinel,
            nodes,
            postings,
            polygons,
            max_depth,
            covered_at,
            nodes_at_or_above,
        })
    }
}

/// Batched probe cursor over a [`FrozenCellTrie`].
///
/// Keeps the root-to-leaf path of the previous probe on a stack, together
/// with the first posting seen at-or-above each stacked level. A new probe
/// compares its leaf key with the previous one (one XOR + leading-zeros) and
/// re-descends only from the first diverging level. Correct for any probe
/// order; fast when probes are sorted by leaf key, because Z-order neighbors
/// share long prefixes.
///
/// A cursor created with [`FrozenCellTrie::cursor_at`] truncates every
/// descent at the cutoff level: probes that reach the cutoff node without a
/// posting on the path resolve to the node's strict-subtree summary
/// (`Boundary` class), matching [`FrozenCellTrie::first_posting_at`].
pub struct SortedProbeCursor<'a> {
    trie: &'a FrozenCellTrie,
    /// Deepest level a descent may reach (`min(cutoff, max_depth)`).
    cutoff: usize,
    /// `stack[d]` = node index at level `d` on the current path.
    stack: [u32; STACK],
    /// `first[d]` = first posting encountered at or above level `d` (path
    /// postings only — never a subtree summary, which is valid only at the
    /// exact cutoff node it was computed for).
    first: [Option<CellPosting>; STACK],
    /// Deepest valid level on the stack.
    depth: usize,
    /// Raw leaf key of the previous probe.
    prev: u64,
    has_prev: bool,
    /// Result of the previous probe (reused when the path is shared).
    cached: Option<CellPosting>,
}

impl<'a> SortedProbeCursor<'a> {
    fn new(trie: &'a FrozenCellTrie, level: u8) -> Self {
        let mut first = [None; STACK];
        first[0] = trie.node_first_posting(0);
        SortedProbeCursor {
            trie,
            cutoff: trie.max_depth.min(level) as usize,
            stack: [0; STACK],
            first,
            depth: 0,
            prev: 0,
            has_prev: false,
            cached: None,
        }
    }

    /// The first (coarsest) posting covering `leaf` at the cursor's
    /// truncation level, descending only from the level where `leaf`
    /// diverges from the previous probe.
    pub fn first_posting(&mut self, leaf: CellId) -> Option<CellPosting> {
        debug_assert!(
            leaf.is_leaf(),
            "cursor probes require a leaf cell id: {leaf}"
        );
        let raw = leaf.raw();
        let start = if self.has_prev {
            let xor = self.prev ^ raw;
            if xor == 0 {
                // Same leaf as before: same answer.
                return self.cached;
            }
            // Highest differing bit of the 60-bit cell path (bit 0 is the
            // leaf sentinel, equal on both sides) → first diverging level.
            let high_bit = 63 - xor.leading_zeros() as usize;
            let diverge_level = MAX_LEVEL as usize - (high_bit - 1) / 2;
            if self.depth + 1 < diverge_level {
                // The keys diverge below the point where the previous
                // descent already ran out of children (or hit the cutoff)
                // — the walk, and hence the answer, is unchanged.
                self.prev = raw;
                return self.cached;
            }
            diverge_level
        } else {
            1
        };
        self.has_prev = true;
        self.prev = raw;
        self.depth = start - 1;
        let mut node = self.stack[self.depth] as usize;
        let mut best = self.first[self.depth];
        for l in start..=self.cutoff {
            let child = match self.trie.child_of(node, child_pos(raw, l as u8)) {
                Some(child) => child,
                None => break,
            };
            node = child as usize;
            self.depth = l;
            self.stack[l] = child;
            if best.is_none() {
                best = self.trie.node_first_posting(node);
            }
            self.first[l] = best;
        }
        if best.is_none() && self.depth == self.cutoff {
            // Truncated descent reached the cutoff with nothing on the
            // path: deeper postings fold into this node's cell.
            best = self.trie.deep_summary(node);
        }
        self.cached = best;
        best
    }
}

/// Multi-consumer probe cursor: one shared descent per probe answers a set
/// of truncation levels at once.
///
/// The batched serving tier coalesces the probe sets of concurrent queries
/// into one key-sorted schedule; queries planned at different truncation
/// levels still share the walk because a level-`L` answer is a pure
/// function of the root-to-leaf path: the first posting at depth ≤ `L`, or
/// the strict-subtree summary of the level-`L` path node when the path
/// reaches it with nothing found. The cursor therefore descends once to the
/// *deepest* requested cutoff, maintaining the same per-level
/// `stack`/`first` bookkeeping as [`SortedProbeCursor`], and resolves each
/// consumer level from that shared state. Prefix sharing between
/// consecutive probes (XOR + leading-zeros re-descent) is identical to the
/// single-level cursor, and so is correctness for unsorted probe orders.
pub struct MultiLevelProbeCursor<'a> {
    trie: &'a FrozenCellTrie,
    /// Per consumer: effective cutoff (`min(level, max_depth)`), in the
    /// order the levels were registered.
    cutoffs: Vec<usize>,
    /// Deepest consumer cutoff — how far a descent may reach.
    max_cutoff: usize,
    /// `stack[d]` = node index at level `d` on the current path.
    stack: [u32; STACK],
    /// `first[d]` = first posting at or above level `d` (path postings
    /// only, as in [`SortedProbeCursor`]).
    first: [Option<CellPosting>; STACK],
    /// Deepest valid level on the stack.
    depth: usize,
    /// Raw leaf key of the previous probe.
    prev: u64,
    has_prev: bool,
    /// Per-consumer results of the previous probe (reused when the walk is
    /// shared).
    cached: Vec<Option<CellPosting>>,
}

impl<'a> MultiLevelProbeCursor<'a> {
    fn new(trie: &'a FrozenCellTrie, levels: &[u8]) -> Self {
        assert!(!levels.is_empty(), "multi cursor needs at least one level");
        let cutoffs: Vec<usize> = levels
            .iter()
            .map(|&l| trie.max_depth.min(l) as usize)
            .collect();
        let max_cutoff = cutoffs.iter().copied().max().unwrap_or(0);
        let mut first = [None; STACK];
        first[0] = trie.node_first_posting(0);
        MultiLevelProbeCursor {
            trie,
            cached: vec![None; cutoffs.len()],
            cutoffs,
            max_cutoff,
            stack: [0; STACK],
            first,
            depth: 0,
            prev: 0,
            has_prev: false,
        }
    }

    /// Number of registered consumer levels (and required `out` length).
    pub fn consumers(&self) -> usize {
        self.cutoffs.len()
    }

    /// Answers every registered level for `leaf` in one walk, writing
    /// `out[i]` for the `i`-th registered level. Each entry matches
    /// [`FrozenCellTrie::first_posting_at`] for that level exactly.
    pub fn first_postings(&mut self, leaf: CellId, out: &mut [Option<CellPosting>]) {
        debug_assert!(
            leaf.is_leaf(),
            "cursor probes require a leaf cell id: {leaf}"
        );
        assert_eq!(
            out.len(),
            self.cutoffs.len(),
            "output slot per registered level"
        );
        let raw = leaf.raw();
        let start = if self.has_prev {
            let xor = self.prev ^ raw;
            if xor == 0 {
                out.copy_from_slice(&self.cached);
                return;
            }
            let high_bit = 63 - xor.leading_zeros() as usize;
            let diverge_level = MAX_LEVEL as usize - (high_bit - 1) / 2;
            if self.depth + 1 < diverge_level {
                // Divergence below where the previous walk already ended:
                // the shared path — and so every consumer's answer — is
                // unchanged.
                self.prev = raw;
                out.copy_from_slice(&self.cached);
                return;
            }
            diverge_level
        } else {
            1
        };
        self.has_prev = true;
        self.prev = raw;
        self.depth = start - 1;
        let mut node = self.stack[self.depth] as usize;
        let mut best = self.first[self.depth];
        for l in start..=self.max_cutoff {
            let child = match self.trie.child_of(node, child_pos(raw, l as u8)) {
                Some(child) => child,
                None => break,
            };
            node = child as usize;
            self.depth = l;
            self.stack[l] = child;
            if best.is_none() {
                best = self.trie.node_first_posting(node);
            }
            self.first[l] = best;
        }
        // Resolve each consumer from the shared path state: the first
        // posting at depth ≤ its cutoff, else — when the path reached the
        // cutoff — the summary of the folded subtree at the cutoff node.
        for (slot, &cutoff) in self.cached.iter_mut().zip(&self.cutoffs) {
            let reach = cutoff.min(self.depth);
            let mut answer = self.first[reach];
            if answer.is_none() && self.depth >= cutoff {
                answer = self.trie.deep_summary(self.stack[cutoff] as usize);
            }
            *slot = answer;
        }
        out.copy_from_slice(&self.cached);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::act_flat::FlatCellTrie;
    use dbsa_geom::{Point, Polygon};
    use dbsa_grid::GridExtent;
    use dbsa_raster::{BoundaryPolicy, DistanceBound, HierarchicalRaster};
    use proptest::prelude::*;

    fn extent() -> GridExtent {
        GridExtent::new(Point::new(0.0, 0.0), 1024.0)
    }

    fn polygons() -> Vec<Polygon> {
        vec![
            Polygon::from_coords(&[
                (100.0, 100.0),
                (300.0, 100.0),
                (300.0, 300.0),
                (100.0, 300.0),
            ]),
            Polygon::from_coords(&[
                (300.0, 100.0),
                (500.0, 100.0),
                (500.0, 300.0),
                (300.0, 300.0),
            ]),
            Polygon::from_coords(&[
                (700.0, 700.0),
                (900.0, 700.0),
                (900.0, 900.0),
                (700.0, 900.0),
            ]),
        ]
    }

    fn build_both(bound_m: f64) -> (AdaptiveCellTrie, FrozenCellTrie) {
        let ext = extent();
        let rasters: Vec<HierarchicalRaster> = polygons()
            .iter()
            .map(|p| {
                HierarchicalRaster::with_bound(
                    p,
                    &ext,
                    DistanceBound::meters(bound_m),
                    BoundaryPolicy::Conservative,
                )
            })
            .collect();
        let pointer = AdaptiveCellTrie::build(&rasters);
        let frozen = pointer.freeze();
        (pointer, frozen)
    }

    /// Lockstep DFS over the flat (pre-order) and succinct (BFS) layouts:
    /// node indices differ, but the trees must be isomorphic with
    /// bit-identical postings and subtree summaries at every node.
    fn assert_layouts_agree(flat: &FlatCellTrie, frozen: &FrozenCellTrie) {
        assert_eq!(flat.node_count(), frozen.node_count());
        assert_eq!(flat.posting_count(), frozen.posting_count());
        assert_eq!(flat.max_depth(), frozen.max_depth());
        for level in 0..=MAX_LEVEL {
            assert_eq!(
                flat.covered_key_range_at(level),
                frozen.covered_key_range_at(level),
                "covered span at level {level}"
            );
            assert_eq!(
                flat.nodes_at_or_above(level),
                frozen.nodes_at_or_above(level),
                "node count at level {level}"
            );
        }
        let mut stack = vec![(0u32, 0u32)];
        let mut visited = 0usize;
        while let Some((f, s)) = stack.pop() {
            visited += 1;
            let flat_postings: Vec<CellPosting> = flat.postings_of(f).collect();
            let succ_postings: Vec<CellPosting> = frozen.postings_of(s).collect();
            assert_eq!(
                flat_postings, succ_postings,
                "postings at flat {f} / succinct {s}"
            );
            assert_eq!(flat.has_postings(f), frozen.has_postings(s));
            assert_eq!(
                flat.subtree_first_polygon(f),
                frozen.subtree_first_polygon(s),
                "subtree first at flat {f} / succinct {s}"
            );
            assert_eq!(
                flat.subtree_distance(f),
                frozen.subtree_distance(s),
                "subtree distance at flat {f} / succinct {s}"
            );
            assert_eq!(
                flat.subtree_single_region(f),
                frozen.subtree_single_region(s),
                "subtree single at flat {f} / succinct {s}"
            );
            let fk = flat.children_of(f);
            let sk = frozen.children_of(s);
            for pos in 0..4 {
                assert_eq!(fk[pos].is_some(), sk[pos].is_some(), "child {pos} presence");
                if let (Some(fc), Some(sc)) = (fk[pos], sk[pos]) {
                    stack.push((fc, sc));
                }
            }
        }
        assert_eq!(visited, flat.node_count());
    }

    #[test]
    fn freeze_preserves_structure_counts() {
        let (pointer, frozen) = build_both(4.0);
        assert_eq!(frozen.stats(), pointer.stats());
        assert_eq!(frozen.node_count(), pointer.node_count());
        assert_eq!(frozen.posting_count(), pointer.posting_count());
        assert_eq!(frozen.polygon_count(), pointer.polygon_count());
        assert_eq!(frozen.max_depth(), pointer.max_depth());
        assert!(pointer.verify_counters());
    }

    #[test]
    fn frozen_lookups_match_pointer_lookups_on_a_sweep() {
        let (pointer, frozen) = build_both(8.0);
        let ext = extent();
        for i in 0..64 {
            for j in 0..64 {
                let p = Point::new(i as f64 * 16.0 + 0.5, j as f64 * 16.0 + 0.5);
                let leaf = ext.leaf_cell_id(&p);
                assert_eq!(frozen.lookup_leaf(leaf), pointer.lookup_leaf(leaf));
                assert_eq!(frozen.lookup_first(leaf), pointer.lookup_first(leaf));
                assert_eq!(
                    frozen.first_posting(leaf),
                    pointer.lookup_leaf(leaf).first().copied()
                );
            }
        }
    }

    #[test]
    fn cursor_matches_scalar_lookups_in_sorted_and_unsorted_order() {
        let (_, frozen) = build_both(4.0);
        let ext = extent();
        let mut leaves: Vec<CellId> = (0..48)
            .flat_map(|i| {
                (0..48).map(move |j| {
                    ext.leaf_cell_id(&Point::new(i as f64 * 21.0 + 1.0, j as f64 * 21.0 + 1.0))
                })
            })
            .collect();

        // Unsorted (row-major) order: the cursor must still be correct.
        let mut cursor = frozen.cursor();
        for &leaf in &leaves {
            assert_eq!(cursor.first_posting(leaf), frozen.first_posting(leaf));
        }

        // Sorted order (the intended fast path), with duplicates.
        leaves.push(leaves[17]);
        leaves.sort_unstable();
        let mut cursor = frozen.cursor();
        for &leaf in &leaves {
            assert_eq!(cursor.first_posting(leaf), frozen.first_posting(leaf));
        }
    }

    #[test]
    fn empty_trie_freezes_to_a_lone_root() {
        let frozen = AdaptiveCellTrie::new().freeze();
        assert_eq!(frozen.node_count(), 1);
        assert_eq!(frozen.posting_count(), 0);
        assert_eq!(frozen.lookup_first(CellId::leaf(5, 5)), None);
        assert!(frozen.lookup_leaf(CellId::leaf(5, 5)).is_empty());
        let mut cursor = frozen.cursor();
        assert_eq!(cursor.first_posting(CellId::leaf(5, 5)), None);
        assert_eq!(cursor.first_posting(CellId::leaf(6, 5)), None);
        assert!(frozen.memory_bytes() >= std::mem::size_of::<NodeBlock>());
        assert!(frozen.subtree_single_region(0));
        assert_eq!(frozen.subtree_first_polygon(0), None);
        assert_eq!(frozen.subtree_distance(0), SubtreeDistance::EMPTY);
    }

    #[test]
    fn frozen_memory_is_exact_and_far_below_flat_and_pointer() {
        let (pointer, frozen) = build_both(4.0);
        let flat = FlatCellTrie::freeze(&pointer);
        let breakdown = frozen.memory_breakdown();
        assert_eq!(
            frozen.memory_bytes(),
            breakdown.nodes_bytes
                + breakdown.postings_bytes
                + breakdown.distance_bytes
                + breakdown.summaries_bytes
        );
        // Navigation is exactly one 24-byte block per 16 nodes here (no
        // count escapes on raster-built tries: regions post each cell once).
        assert_eq!(
            breakdown.nodes_bytes,
            frozen.node_count().div_ceil(16) * std::mem::size_of::<NodeBlock>()
        );
        assert!(
            frozen.memory_bytes() * 4 <= flat.memory_bytes(),
            "succinct {} should be ≥4× below the flat layout {}",
            frozen.memory_bytes(),
            flat.memory_bytes()
        );
        assert!(
            flat.memory_bytes() < pointer.memory_bytes(),
            "flat {} should undercut the pointer builder {}",
            flat.memory_bytes(),
            pointer.memory_bytes()
        );
    }

    #[test]
    fn covered_key_range_bounds_every_posting_cell() {
        let (_, frozen) = build_both(8.0);
        let (lo, hi) = frozen.covered_key_range().expect("postings exist");
        assert!(lo <= hi);
        // Probes outside the span never match; a probe inside the span of
        // the first polygon's interior does.
        let ext = extent();
        let inside = ext.leaf_cell_id(&Point::new(200.0, 200.0));
        assert!(lo <= inside.raw() && inside.raw() <= hi);
        assert!(frozen.first_posting(inside).is_some());
        for probe in [
            CellId::leaf(0, 0),
            CellId::leaf((1 << 30) - 1, (1 << 30) - 1),
        ] {
            if probe.raw() < lo || probe.raw() > hi {
                assert_eq!(frozen.first_posting(probe), None);
            }
        }
        // Empty tries cover nothing.
        assert_eq!(AdaptiveCellTrie::new().freeze().covered_key_range(), None);
    }

    #[test]
    fn covered_key_range_matches_manual_cell_span() {
        let mut act = AdaptiveCellTrie::new();
        let a = CellId::from_cell_xy(1, 0, 3);
        let b = CellId::from_cell_xy(6, 7, 3);
        act.insert_cell(0, a, CellClass::Interior);
        act.insert_cell(1, b, CellClass::Boundary);
        let frozen = act.freeze();
        let lo = a.range_min().raw().min(b.range_min().raw());
        let hi = a.range_max().raw().max(b.range_max().raw());
        assert_eq!(frozen.covered_key_range(), Some((lo, hi)));
    }

    #[test]
    fn truncated_lookup_matches_full_lookup_at_or_below_max_depth() {
        let (_, frozen) = build_both(4.0);
        let ext = extent();
        for i in 0..48 {
            for j in 0..48 {
                let leaf =
                    ext.leaf_cell_id(&Point::new(i as f64 * 21.0 + 1.0, j as f64 * 21.0 + 1.0));
                for level in [frozen.max_depth(), frozen.max_depth() + 1, MAX_LEVEL] {
                    assert_eq!(
                        frozen.first_posting_at(leaf, level),
                        frozen.first_posting(leaf),
                        "level {level} must reproduce the untruncated probe"
                    );
                }
            }
        }
    }

    #[test]
    fn truncated_lookup_is_a_conservative_boundary_superset() {
        let (_, frozen) = build_both(4.0);
        let ext = extent();
        let max_depth = frozen.max_depth();
        for i in 0..48 {
            for j in 0..48 {
                let leaf =
                    ext.leaf_cell_id(&Point::new(i as f64 * 21.0 + 1.0, j as f64 * 21.0 + 1.0));
                let mut prev_matched = frozen.first_posting(leaf).is_some();
                let mut prev_boundary = frozen
                    .first_posting(leaf)
                    .is_some_and(|p| p.class == CellClass::Boundary);
                // Coarsening the truncation level can only grow the covered
                // region and only turn interior answers into boundary ones.
                for level in (0..max_depth).rev() {
                    let p = frozen.first_posting_at(leaf, level);
                    let matched = p.is_some();
                    let boundary = p.is_some_and(|p| p.class == CellClass::Boundary);
                    assert!(!prev_matched || matched, "coarser level lost a match");
                    assert!(
                        !prev_boundary || boundary,
                        "coarser level must not turn boundary into interior"
                    );
                    prev_matched = matched;
                    prev_boundary = boundary;
                }
            }
        }
    }

    #[test]
    fn leveled_cursor_matches_scalar_truncated_lookups() {
        let (_, frozen) = build_both(8.0);
        let ext = extent();
        let mut leaves: Vec<CellId> = (0..40)
            .flat_map(|i| {
                (0..40).map(move |j| {
                    ext.leaf_cell_id(&Point::new(i as f64 * 25.0 + 2.0, j as f64 * 25.0 + 2.0))
                })
            })
            .collect();
        leaves.push(leaves[11]);
        leaves.sort_unstable();
        for level in 0..=frozen.max_depth() {
            let mut cursor = frozen.cursor_at(level);
            for &leaf in &leaves {
                assert_eq!(
                    cursor.first_posting(leaf),
                    frozen.first_posting_at(leaf, level),
                    "level {level} at {leaf}"
                );
            }
        }
        // Unsorted order must stay correct too.
        let mut cursor = frozen.cursor_at(3);
        for &leaf in leaves.iter().rev() {
            assert_eq!(cursor.first_posting(leaf), frozen.first_posting_at(leaf, 3));
        }
    }

    #[test]
    fn multi_cursor_matches_single_level_cursors_everywhere() {
        let (_, frozen) = build_both(8.0);
        let ext = extent();
        let mut leaves: Vec<CellId> = (0..40)
            .flat_map(|i| {
                (0..40).map(move |j| {
                    ext.leaf_cell_id(&Point::new(i as f64 * 25.0 + 2.0, j as f64 * 25.0 + 2.0))
                })
            })
            .collect();
        leaves.push(leaves[11]);
        leaves.sort_unstable();
        // All levels at once, deliberately unsorted and spanning past
        // max_depth.
        let levels: Vec<u8> = vec![3, 0, frozen.max_depth(), 1, MAX_LEVEL, 2];
        let mut multi = frozen.multi_cursor(&levels);
        assert_eq!(multi.consumers(), levels.len());
        let mut answers = vec![None; levels.len()];
        for &leaf in &leaves {
            multi.first_postings(leaf, &mut answers);
            for (&level, &answer) in levels.iter().zip(&answers) {
                assert_eq!(
                    answer,
                    frozen.first_posting_at(leaf, level),
                    "level {level} at {leaf}"
                );
            }
        }
        // Unsorted probe order must stay correct too.
        let mut multi = frozen.multi_cursor(&levels);
        for &leaf in leaves.iter().rev() {
            multi.first_postings(leaf, &mut answers);
            for (&level, &answer) in levels.iter().zip(&answers) {
                assert_eq!(answer, frozen.first_posting_at(leaf, level));
            }
        }
    }

    #[test]
    fn covered_key_range_widens_as_levels_coarsen() {
        let (_, frozen) = build_both(8.0);
        assert_eq!(
            frozen.covered_key_range_at(MAX_LEVEL),
            frozen.covered_key_range()
        );
        let mut prev = frozen.covered_key_range().expect("postings exist");
        for level in (0..MAX_LEVEL).rev() {
            let (lo, hi) = frozen
                .covered_key_range_at(level)
                .expect("covered at all levels once covered at the finest");
            assert!(lo <= prev.0 && hi >= prev.1, "level {level} must widen");
            prev = (lo, hi);
        }
        // Root truncation covers the whole domain the postings touch; the
        // node-count estimate shrinks monotonically toward the root.
        let mut prev_nodes = frozen.nodes_at_or_above(MAX_LEVEL);
        assert_eq!(prev_nodes, frozen.node_count());
        for level in (0..MAX_LEVEL).rev() {
            let n = frozen.nodes_at_or_above(level);
            assert!(n <= prev_nodes);
            prev_nodes = n;
        }
        assert_eq!(frozen.nodes_at_or_above(0), 1, "only the root at level 0");
    }

    #[test]
    fn truncation_at_level_zero_resolves_to_a_boundary_summary() {
        let mut act = AdaptiveCellTrie::new();
        let cell = CellId::from_cell_xy(2, 3, 4);
        act.insert_cell(9, cell, CellClass::Interior);
        let frozen = act.freeze();
        // Any probe resolves through the root's subtree summary at level 0.
        let probe = CellId::leaf(0, 0);
        assert_eq!(
            frozen.first_posting_at(probe, 0),
            Some(CellPosting {
                polygon: 9,
                class: CellClass::Boundary,
                dist: DistanceBins::UNKNOWN
            })
        );
        // At the cell's own level the true class comes back.
        assert_eq!(
            frozen.first_posting_at(cell.range_min(), 4),
            Some(CellPosting {
                polygon: 9,
                class: CellClass::Interior,
                dist: DistanceBins::UNKNOWN
            })
        );
        // Between root and the cell's level: boundary summary on-path only.
        assert_eq!(
            frozen.first_posting_at(cell.range_min(), 2),
            Some(CellPosting {
                polygon: 9,
                class: CellClass::Boundary,
                dist: DistanceBins::UNKNOWN
            })
        );
        // leaf(0,0) shares the cell's level-2 ancestor (0,0), so it matches
        // the summary there; a probe under a different level-2 ancestor
        // finds nothing.
        assert_eq!(
            frozen.first_posting_at(probe, 2),
            Some(CellPosting {
                polygon: 9,
                class: CellClass::Boundary,
                dist: DistanceBins::UNKNOWN
            })
        );
        let elsewhere = CellId::from_cell_xy(3, 3, 2).range_min();
        assert_eq!(frozen.first_posting_at(elsewhere, 2), None);
    }

    #[test]
    fn traversal_accessors_expose_the_whole_trie() {
        let (_, frozen) = build_both(8.0);
        // Walk the trie through the public accessors and count postings.
        let mut stack = vec![0u32];
        let mut postings = 0usize;
        let mut visited = 0usize;
        while let Some(idx) = stack.pop() {
            visited += 1;
            postings += frozen.postings_of(idx).count();
            assert_eq!(
                frozen.has_postings(idx),
                frozen.postings_of(idx).count() > 0
            );
            for child in frozen.children_of(idx).into_iter().flatten() {
                stack.push(child);
            }
        }
        assert_eq!(visited, frozen.node_count());
        assert_eq!(postings, frozen.posting_count());

        // The root's strict-subtree summary folds every posting except the
        // root's own: bounded annotations everywhere (raster-built cells).
        let root_summary = frozen.subtree_distance(0);
        assert!(root_summary.lo_leaf < u64::MAX);
        assert!(root_summary.hi_leaf > 0 && root_summary.hi_leaf < u64::MAX);
    }

    #[test]
    fn subtree_distance_summaries_bound_deeper_postings() {
        let mut act = AdaptiveCellTrie::new();
        let cell = CellId::from_cell_xy(2, 3, 4);
        act.insert_cell_annotated(1, cell, CellClass::Boundary, DistanceBins { lo: 2, hi: 5 });
        let deeper = CellId::from_cell_xy(9, 13, 6);
        act.insert_cell_annotated(
            1,
            deeper,
            CellClass::Interior,
            DistanceBins { lo: 1, hi: 3 },
        );
        let frozen = act.freeze();
        let root = frozen.subtree_distance(0);
        // Level 4 bins span 2^26 leaf sides, level 6 bins 2^24.
        assert_eq!(root.lo_leaf, 1u64 << 24);
        assert_eq!(root.hi_leaf, 5u64 << 26);
        // The interior posting zeroes the region-distance slack.
        assert_eq!(root.slack_leaf, 0);
        // Both postings belong to polygon 1: the root subtree is
        // single-region.
        assert_eq!(frozen.subtree_first_polygon(0), Some(1));
        assert!(frozen.subtree_single_region(0));
        // An unbounded posting saturates the summary's upper bound — and a
        // second polygon breaks homogeneity.
        act.insert_cell(2, CellId::from_cell_xy(0, 0, 3), CellClass::Interior);
        let frozen = act.freeze();
        assert_eq!(frozen.subtree_distance(0).hi_leaf, u64::MAX);
        assert_eq!(frozen.subtree_distance(0).lo_leaf, 0);
        assert!(!frozen.subtree_single_region(0));
        // The empty trie is vacuously single-region.
        assert!(AdaptiveCellTrie::new().freeze().subtree_single_region(0));
    }

    #[test]
    fn manual_insertion_round_trips_through_freeze() {
        let mut act = AdaptiveCellTrie::new();
        let cell = CellId::from_cell_xy(2, 3, 4);
        act.insert_cell(7, cell, CellClass::Interior);
        let frozen = act.freeze();
        assert_eq!(frozen.lookup_first(cell.range_min()), Some(7));
        assert_eq!(
            frozen.lookup_first(CellId::from_cell_xy(0, 0, 4).range_min()),
            None
        );
    }

    #[test]
    fn posting_count_escapes_round_trip() {
        // Five polygons posting the same cell → one node with count 5,
        // exercising the 2-bit code escape; a sibling cell with one posting
        // after it exercises the escape-corrected prefix sum.
        let mut act = AdaptiveCellTrie::new();
        let crowded = CellId::from_cell_xy(1, 2, 3);
        for polygon in 0..5u32 {
            act.insert_cell_annotated(
                polygon,
                crowded,
                CellClass::Boundary,
                DistanceBins {
                    lo: polygon as u16,
                    hi: polygon as u16 + 1,
                },
            );
        }
        let lone = CellId::from_cell_xy(5, 6, 3);
        act.insert_cell(9, lone, CellClass::Interior);
        let frozen = act.freeze();
        assert_eq!(frozen.posting_count(), 6);
        let probe = crowded.range_min();
        let all = frozen.lookup_leaf(probe);
        assert_eq!(all.len(), 5);
        for (i, p) in all.iter().enumerate() {
            assert_eq!(p.polygon, i as u32);
            assert_eq!(
                p.dist,
                DistanceBins {
                    lo: i as u16,
                    hi: i as u16 + 1
                }
            );
        }
        assert_eq!(frozen.lookup_first(lone.range_min()), Some(9));
        let flat = FlatCellTrie::freeze(&act);
        assert_layouts_agree(&flat, &frozen);
    }

    #[test]
    fn distance_bin_escapes_round_trip() {
        // Bins above the nibble range (and a half-escaped pair) must come
        // back exactly through the escape table; UNKNOWN/UNBOUNDED must
        // stay on the nibble fast path.
        let mut act = AdaptiveCellTrie::new();
        let cases = [
            (0u32, (1u32, 1u32), DistanceBins { lo: 500, hi: 900 }),
            (1, (2, 1), DistanceBins { lo: 3, hi: 77 }),
            (2, (3, 1), DistanceBins::UNKNOWN),
            (
                3,
                (0, 1),
                DistanceBins {
                    lo: 13,
                    hi: DistanceBins::UNBOUNDED,
                },
            ),
        ];
        for (polygon, (x, y), dist) in cases {
            act.insert_cell_annotated(
                polygon,
                CellId::from_cell_xy(x, y, 4),
                CellClass::Boundary,
                dist,
            );
        }
        let frozen = act.freeze();
        for (polygon, (x, y), dist) in cases {
            let probe = CellId::from_cell_xy(x, y, 4).range_min();
            let p = frozen.first_posting(probe).expect("posting present");
            assert_eq!(p.polygon, polygon);
            assert_eq!(p.dist, dist, "bins must round-trip exactly");
        }
        let flat = FlatCellTrie::freeze(&act);
        assert_layouts_agree(&flat, &frozen);
    }

    #[test]
    fn packed_subtree_distance_is_lossless_for_all_fold_values() {
        // Every value a fold can see: u16 bins shifted by any level's
        // leaf-unit factor, plus the identities.
        for v in [0u64, 1, 13, 65535, u64::MAX] {
            if v == u64::MAX {
                assert_eq!(unpack_dist_field(pack_dist_field(v)), v);
                continue;
            }
            for shift in 0..=(MAX_LEVEL as u32) {
                let val = v << shift;
                assert_eq!(
                    unpack_dist_field(pack_dist_field(val)),
                    val,
                    "{v} << {shift}"
                );
            }
        }
        let d = SubtreeDistance {
            lo_leaf: 7u64 << 26,
            hi_leaf: 65535u64 << 30,
            slack_leaf: u64::MAX,
        };
        assert_eq!(unpack_subtree(pack_subtree(d)), d);
        assert_eq!(
            unpack_subtree(pack_subtree(SubtreeDistance::EMPTY)),
            SubtreeDistance::EMPTY
        );
    }

    #[test]
    fn succinct_layout_agrees_with_flat_on_raster_built_tries() {
        for bound in [4.0, 8.0, 16.0] {
            let (pointer, frozen) = build_both(bound);
            let flat = FlatCellTrie::freeze(&pointer);
            assert_layouts_agree(&flat, &frozen);
            // Probe equality at every level through both cursor stacks.
            let ext = extent();
            let mut leaves: Vec<CellId> = (0..32)
                .flat_map(|i| {
                    (0..32).map(move |j| {
                        ext.leaf_cell_id(&Point::new(i as f64 * 31.0 + 1.0, j as f64 * 31.0 + 1.0))
                    })
                })
                .collect();
            leaves.sort_unstable();
            for level in 0..=frozen.max_depth() {
                let mut flat_cursor = flat.cursor_at(level);
                let mut succ_cursor = frozen.cursor_at(level);
                for &leaf in &leaves {
                    assert_eq!(
                        flat.first_posting_at(leaf, level),
                        frozen.first_posting_at(leaf, level)
                    );
                    assert_eq!(
                        flat_cursor.first_posting(leaf),
                        succ_cursor.first_posting(leaf)
                    );
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Random cells at random levels: frozen scalar lookups and the
        /// cursor agree with the pointer trie everywhere.
        #[test]
        fn prop_frozen_equals_pointer_on_random_tries(
            cells in proptest::collection::vec(
                (0u32..64, 0u32..64, 3u8..9, 0u32..5, proptest::bool::ANY), 1..120),
            probes in proptest::collection::vec((0u32..1024, 0u32..1024), 1..80),
            cutoff in 0u8..=10,
        ) {
            let mut act = AdaptiveCellTrie::new();
            for (x, y, level, polygon, boundary) in cells {
                let cx = x % (1 << level);
                let cy = y % (1 << level);
                let class = if boundary { CellClass::Boundary } else { CellClass::Interior };
                act.insert_cell(polygon, CellId::from_cell_xy(cx, cy, level), class);
            }
            let frozen = act.freeze();
            prop_assert_eq!(frozen.stats(), act.stats());

            let mut leaves: Vec<CellId> = probes
                .into_iter()
                .map(|(x, y)| CellId::leaf(x << 20, y << 20))
                .collect();
            leaves.sort_unstable();
            let mut cursor = frozen.cursor();
            let mut leveled = frozen.cursor_at(cutoff);
            let mut buf = Vec::new();
            for leaf in leaves {
                let reference = act.lookup_leaf(leaf);
                frozen.lookup_leaf_into(leaf, &mut buf);
                prop_assert_eq!(&buf, &reference);
                prop_assert_eq!(frozen.first_posting(leaf), reference.first().copied());
                prop_assert_eq!(cursor.first_posting(leaf), reference.first().copied());
                // The leveled cursor agrees with the scalar truncated probe
                // at every cutoff, including ones above and below max_depth.
                prop_assert_eq!(
                    leveled.first_posting(leaf),
                    frozen.first_posting_at(leaf, cutoff)
                );
            }
        }

        /// The multi-consumer cursor answers every registered level exactly
        /// as the scalar truncated probe would, for any probe order.
        #[test]
        fn prop_multi_cursor_equals_scalar_truncated_probes(
            cells in proptest::collection::vec(
                (0u32..64, 0u32..64, 3u8..9, 0u32..5, proptest::bool::ANY), 1..120),
            probes in proptest::collection::vec((0u32..1024, 0u32..1024), 1..80),
            levels in proptest::collection::vec(0u8..=12, 1..5),
            sorted in proptest::bool::ANY,
        ) {
            let mut act = AdaptiveCellTrie::new();
            for (x, y, level, polygon, boundary) in cells {
                let cx = x % (1 << level);
                let cy = y % (1 << level);
                let class = if boundary { CellClass::Boundary } else { CellClass::Interior };
                act.insert_cell(polygon, CellId::from_cell_xy(cx, cy, level), class);
            }
            let frozen = act.freeze();
            let mut leaves: Vec<CellId> = probes
                .into_iter()
                .map(|(x, y)| CellId::leaf(x << 20, y << 20))
                .collect();
            if sorted {
                leaves.sort_unstable();
            }
            let mut levels = levels;
            levels.sort_unstable();
            levels.dedup();
            let mut multi = frozen.multi_cursor(&levels);
            let mut answers = vec![None; levels.len()];
            for leaf in leaves {
                multi.first_postings(leaf, &mut answers);
                for (&level, &answer) in levels.iter().zip(&answers) {
                    prop_assert_eq!(
                        answer,
                        frozen.first_posting_at(leaf, level),
                        "level {} at {}", level, leaf
                    );
                }
            }
        }

        /// The succinct trie is node-for-node, posting-for-posting
        /// identical to the flat reference layout on random tries — the
        /// escape tables (many postings per node, annotated bins past the
        /// nibble range) included.
        #[test]
        fn prop_succinct_equals_flat_layout(
            cells in proptest::collection::vec(
                ((0u32..64, 0u32..64, 2u8..9), (0u32..6, proptest::bool::ANY), (0u16..2000, 0u16..2000)),
                1..140),
            probes in proptest::collection::vec((0u32..1024, 0u32..1024), 1..60),
        ) {
            let mut act = AdaptiveCellTrie::new();
            for ((x, y, level), (polygon, boundary), (lo, hi)) in cells {
                let cx = x % (1 << level);
                let cy = y % (1 << level);
                let class = if boundary { CellClass::Boundary } else { CellClass::Interior };
                let dist = DistanceBins { lo: lo.min(hi), hi: lo.max(hi) };
                act.insert_cell_annotated(polygon, CellId::from_cell_xy(cx, cy, level), class, dist);
            }
            let frozen = act.freeze();
            let flat = FlatCellTrie::freeze(&act);
            assert_layouts_agree(&flat, &frozen);
            let mut leaves: Vec<CellId> = probes
                .into_iter()
                .map(|(x, y)| CellId::leaf(x << 20, y << 20))
                .collect();
            leaves.sort_unstable();
            for level in [0u8, 2, 5, 8, MAX_LEVEL] {
                let mut flat_cursor = flat.cursor_at(level);
                let mut succ_cursor = frozen.cursor_at(level);
                for &leaf in &leaves {
                    prop_assert_eq!(
                        flat.first_posting_at(leaf, level),
                        frozen.first_posting_at(leaf, level)
                    );
                    prop_assert_eq!(
                        flat_cursor.first_posting(leaf),
                        succ_cursor.first_posting(leaf)
                    );
                }
            }
        }
    }
}

//! Frozen, cache-conscious layout of the Adaptive Cell Trie.
//!
//! [`crate::AdaptiveCellTrie`] is the *builder*: a pointer trie of
//! heap-allocated boxes that supports incremental insertion. Probing it
//! chases one `Box` per level and allocates a result vector per probe —
//! fine for construction, wasteful for the paper's hot path, where every
//! query point becomes a trie lookup.
//!
//! [`FrozenCellTrie`] is the *query* form produced by
//! [`FrozenCellTrie::freeze`]:
//!
//! * all nodes live in one contiguous array, in **pre-order**, so a
//!   root-to-leaf descent walks mostly forward through memory;
//! * children are `u32` indices (`NO_CHILD` for absent), not pointers;
//! * all postings live in a single structure-of-arrays arena (`polygon`
//!   column + `class` column) addressed by `(offset, len)` — no per-node
//!   heap allocation anywhere, and `memory_bytes` is exact and O(1).
//!
//! For batched probing, [`SortedProbeCursor`] keeps the current
//! root-to-leaf path on a stack. When probes arrive in leaf-key order
//! (Z-order — consecutive keys share long cell-path prefixes), each probe
//! re-descends only from the first level where its key diverges from the
//! previous one, so most probes touch one or two nodes instead of walking
//! from the root.
//!
//! The frozen layout is also **level-stacked**: every node carries a
//! summary of its strict subtree, so truncating a probe at any level `ℓ`
//! answers against the *Morton-prefix truncation* of the indexed rasters —
//! the coarser approximation in which every cell deeper than `ℓ` is
//! replaced by its level-`ℓ` ancestor (classified `Boundary`, because a
//! cell that was subdivided past `ℓ` necessarily touches a region
//! boundary). One freeze therefore serves *any* distance bound at or above
//! the built one: probe with [`FrozenCellTrie::first_posting_at`] /
//! [`FrozenCellTrie::cursor_at`], and consult
//! [`FrozenCellTrie::covered_key_range_at`] /
//! [`FrozenCellTrie::nodes_at_or_above`] for the per-level pruning range
//! and probe-cost estimate the query planner uses.

use crate::act::{ActStats, AdaptiveCellTrie, CellPosting, PolygonId, TrieNode};
use crate::footprint::MemoryFootprint;
use dbsa_grid::{CellId, MAX_LEVEL};
use dbsa_raster::{CellClass, DistanceBins};

/// Sentinel child index: this child does not exist.
const NO_CHILD: u32 = u32::MAX;

/// Sentinel polygon id: the strict subtree holds no posting.
const NO_POLYGON: u32 = u32::MAX;

/// Path-stack capacity: one entry per level, root included. Also the length
/// of the per-level metadata arrays (`covered_at`, `nodes_at_or_above`).
const STACK: usize = MAX_LEVEL as usize + 1;

/// One frozen trie node: four child indices plus the `(offset, len)` slice
/// of the postings arena. 24 bytes, `Copy`, no indirection.
#[derive(Debug, Clone, Copy)]
struct FrozenNode {
    children: [u32; 4],
    postings_offset: u32,
    postings_len: u32,
}

/// Strict-subtree distance summary of one frozen node, in **leaf units**
/// (multiples of the leaf-cell side, the world-agnostic common denominator
/// of the per-level posting bins). `lo_leaf` lower-bounds the distance
/// annotation of every posting below the node; `hi_leaf` upper-bounds them
/// (`u64::MAX` when any is unbounded). The distance-query family uses
/// these to prune and to bound answers when a probe truncates above the
/// postings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubtreeDistance {
    /// Min over strict-subtree postings of their `lo`, in leaf units.
    pub lo_leaf: u64,
    /// Max over strict-subtree postings of their `hi`, in leaf units;
    /// `u64::MAX` when unbounded or when any posting lacks a finite bound.
    pub hi_leaf: u64,
    /// Min over strict-subtree postings of their **region-distance
    /// slack**, in leaf units: 0 for any interior posting (its points are
    /// region points), the posting's `hi` for boundary postings (its
    /// points lie within `hi` of the region boundary). `u64::MAX` when
    /// the subtree is empty or every posting is unbounded. This is what
    /// lets a probe bound its distance *to the region* through a folded
    /// subtree: `dist(p, node box) + node diagonal + slack` upper-bounds
    /// the distance to the region via the subtree's best cell.
    pub slack_leaf: u64,
}

impl SubtreeDistance {
    /// Summary of an empty subtree: no posting constrains anything, so
    /// min-folded fields start at `u64::MAX` (min identity) and the upper
    /// bound at 0 (max identity).
    const EMPTY: SubtreeDistance = SubtreeDistance {
        lo_leaf: u64::MAX,
        hi_leaf: 0,
        slack_leaf: u64::MAX,
    };

    fn fold(&mut self, other: SubtreeDistance) {
        self.lo_leaf = self.lo_leaf.min(other.lo_leaf);
        self.hi_leaf = self.hi_leaf.max(other.hi_leaf);
        self.slack_leaf = self.slack_leaf.min(other.slack_leaf);
    }

    /// Converts a posting's per-level bins into leaf units: a bin at level
    /// `level` spans `2^(MAX_LEVEL - level)` leaf sides.
    fn of_posting(dist: DistanceBins, class: CellClass, level: u8) -> SubtreeDistance {
        let shift = (MAX_LEVEL - level) as u32;
        let hi_leaf = if dist.is_bounded() {
            (dist.hi as u64) << shift
        } else {
            u64::MAX
        };
        SubtreeDistance {
            lo_leaf: (dist.lo as u64) << shift,
            hi_leaf,
            slack_leaf: match class {
                CellClass::Interior => 0,
                CellClass::Boundary => hi_leaf,
            },
        }
    }
}

/// The frozen Adaptive Cell Trie. Immutable; build via
/// [`FrozenCellTrie::freeze`] (or [`AdaptiveCellTrie::freeze`]).
#[derive(Debug)]
pub struct FrozenCellTrie {
    /// All nodes in pre-order; index 0 is the root.
    nodes: Vec<FrozenNode>,
    /// Postings arena, polygon column.
    posting_polygons: Vec<PolygonId>,
    /// Postings arena, class column (aligned with `posting_polygons`).
    posting_classes: Vec<CellClass>,
    /// Postings arena, distance-annotation column (aligned with
    /// `posting_polygons`): the quantized distance-to-boundary bins frozen
    /// straight out of the raster cells.
    posting_dists: Vec<DistanceBins>,
    /// `deep_dist[i]` = min/max distance summary of node `i`'s *strict*
    /// subtree postings, in leaf units — the pruning data of the distance
    /// query family (a probe truncated at node `i` bounds every deeper
    /// posting's annotation through this).
    deep_dist: Vec<SubtreeDistance>,
    /// `deep_single[i]` = whether every posting in node `i`'s strict
    /// subtree belongs to the same polygon (`deep_first[i]`); vacuously
    /// true for empty subtrees. Truncated distance searches may summarize
    /// a single-region subtree soundly (all folded cells belong to the
    /// summary's region); multi-region subtrees must be descended for
    /// per-region bounds to stay valid.
    deep_single: Vec<bool>,
    /// `deep_first[i]` = the polygon of the first posting in node `i`'s
    /// *strict* subtree, in pre-order (a node's own postings before its
    /// descendants, siblings in Z-order); `NO_POLYGON` when the subtree
    /// below `i` holds no posting. A probe truncated at node `i`'s level
    /// resolves to this polygon with class `Boundary` — the Morton-prefix
    /// truncation of the indexed rasters.
    deep_first: Vec<u32>,
    polygons: usize,
    max_depth: u8,
    /// `covered_at[ℓ]` = inclusive span `[lo, hi]` of raw leaf keys covered
    /// by at least one posting cell once cells deeper than `ℓ` are
    /// truncated to their level-`ℓ` ancestor (`None` for a trie without
    /// postings). `covered_at[MAX_LEVEL]` is the exact covered span; probes
    /// whose keys fall outside the level's span cannot match at that level
    /// — the basis for per-level shard pruning.
    covered_at: [Option<(u64, u64)>; STACK],
    /// `nodes_at_or_above[ℓ]` = number of trie nodes at level ≤ ℓ — the
    /// size of the structure a level-`ℓ` probe can touch, used as the
    /// planner's probe-cost estimate.
    nodes_at_or_above: [u32; STACK],
}

/// Child position of `leaf`'s ancestor at `level` — pure bit arithmetic on
/// the raw leaf id (the two path bits that encode the level-`level` branch).
#[inline(always)]
fn child_pos(raw_leaf: u64, level: u8) -> usize {
    ((raw_leaf >> (2 * (MAX_LEVEL - level) as u32 + 1)) & 3) as usize
}

impl FrozenCellTrie {
    /// Flattens a pointer trie into the frozen layout.
    pub fn freeze(trie: &AdaptiveCellTrie) -> Self {
        let node_count = trie.node_count();
        let posting_count = trie.posting_count();
        assert!(
            node_count < NO_CHILD as usize && posting_count <= u32::MAX as usize,
            "trie too large for u32 indices ({node_count} nodes, {posting_count} postings)"
        );
        let mut state = FreezeState {
            nodes: Vec::with_capacity(node_count),
            posting_polygons: Vec::with_capacity(posting_count),
            posting_classes: Vec::with_capacity(posting_count),
            posting_dists: Vec::with_capacity(posting_count),
            deep_first: Vec::with_capacity(node_count),
            deep_dist: Vec::with_capacity(node_count),
            deep_single: Vec::with_capacity(node_count),
            covered_at: [None; STACK],
            level_nodes: [0; STACK],
        };
        state.freeze_node(&trie.root, CellId::ROOT);
        debug_assert_eq!(state.nodes.len(), node_count);
        debug_assert_eq!(state.posting_polygons.len(), posting_count);
        let mut nodes_at_or_above = [0u32; STACK];
        let mut running = 0u32;
        for (cum, count) in nodes_at_or_above.iter_mut().zip(state.level_nodes) {
            running += count;
            *cum = running;
        }
        FrozenCellTrie {
            nodes: state.nodes,
            posting_polygons: state.posting_polygons,
            posting_classes: state.posting_classes,
            posting_dists: state.posting_dists,
            deep_first: state.deep_first,
            deep_dist: state.deep_dist,
            deep_single: state.deep_single,
            polygons: trie.polygon_count(),
            max_depth: trie.max_depth(),
            covered_at: state.covered_at,
            nodes_at_or_above,
        }
    }

    /// The inclusive span of raw leaf keys covered by at least one posting
    /// cell, or `None` for a trie without postings. Any probe key outside
    /// the span is guaranteed unmatched, so a point shard whose key range
    /// does not intersect it can skip probing entirely.
    pub fn covered_key_range(&self) -> Option<(u64, u64)> {
        self.covered_at[MAX_LEVEL as usize]
    }

    /// The covered leaf-key span of the **level-`level` truncation** of the
    /// indexed rasters: every posting cell deeper than `level` widens the
    /// span to its level-`level` ancestor's descendant range. Probes outside
    /// the span cannot match *at that level*, so shard pruning for a
    /// coarse-level query must intersect against this (wider) range, not the
    /// exact one.
    pub fn covered_key_range_at(&self, level: u8) -> Option<(u64, u64)> {
        self.covered_at[level.min(MAX_LEVEL) as usize]
    }

    /// Number of trie nodes at level ≤ `level` — the portion of the
    /// structure a probe truncated at `level` can touch. The query planner
    /// uses this as its probe-cost estimate for a candidate level.
    pub fn nodes_at_or_above(&self, level: u8) -> usize {
        self.nodes_at_or_above[level.min(MAX_LEVEL) as usize] as usize
    }

    /// Number of indexed polygons.
    pub fn polygon_count(&self) -> usize {
        self.polygons
    }

    /// Number of cell postings.
    pub fn posting_count(&self) -> usize {
        self.posting_polygons.len()
    }

    /// Number of trie nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Deepest level at which a posting terminates.
    pub fn max_depth(&self) -> u8 {
        self.max_depth
    }

    /// Structural statistics — O(1), everything is a stored count.
    pub fn stats(&self) -> ActStats {
        ActStats {
            nodes: self.nodes.len(),
            postings: self.posting_polygons.len(),
            polygons: self.polygons,
            max_depth: self.max_depth,
        }
    }

    /// The first (coarsest) posting of node `idx`, if it has any.
    #[inline(always)]
    fn node_first_posting(&self, idx: usize) -> Option<CellPosting> {
        let node = &self.nodes[idx];
        (node.postings_len > 0).then(|| self.posting_at(node.postings_offset as usize))
    }

    #[inline(always)]
    fn posting_at(&self, arena_idx: usize) -> CellPosting {
        CellPosting {
            polygon: self.posting_polygons[arena_idx],
            class: self.posting_classes[arena_idx],
            dist: self.posting_dists[arena_idx],
        }
    }

    #[inline(always)]
    fn append_postings(&self, idx: usize, out: &mut Vec<CellPosting>) {
        let node = &self.nodes[idx];
        let from = node.postings_offset as usize;
        let to = from + node.postings_len as usize;
        for i in from..to {
            out.push(self.posting_at(i));
        }
    }

    /// Looks up the polygons whose approximation contains the given leaf
    /// cell, in root-to-leaf (coarsest-first) order — identical semantics to
    /// [`AdaptiveCellTrie::lookup_leaf`].
    pub fn lookup_leaf(&self, leaf: CellId) -> Vec<CellPosting> {
        let mut result = Vec::new();
        self.lookup_leaf_into(leaf, &mut result);
        result
    }

    /// Allocation-free variant of [`lookup_leaf`](Self::lookup_leaf): clears
    /// and fills a caller-provided buffer.
    pub fn lookup_leaf_into(&self, leaf: CellId, out: &mut Vec<CellPosting>) {
        debug_assert!(leaf.is_leaf(), "lookup requires a leaf cell id: {leaf}");
        out.clear();
        let raw = leaf.raw();
        let mut node = 0usize;
        self.append_postings(node, out);
        for l in 1..=self.max_depth {
            let child = self.nodes[node].children[child_pos(raw, l)];
            if child == NO_CHILD {
                break;
            }
            node = child as usize;
            self.append_postings(node, out);
        }
    }

    /// The first (coarsest) posting covering the leaf cell, if any — the
    /// value the disjoint-region join needs per probe, with no allocation.
    pub fn first_posting(&self, leaf: CellId) -> Option<CellPosting> {
        debug_assert!(leaf.is_leaf(), "lookup requires a leaf cell id: {leaf}");
        let raw = leaf.raw();
        let mut node = 0usize;
        if let Some(p) = self.node_first_posting(node) {
            return Some(p);
        }
        for l in 1..=self.max_depth {
            let child = self.nodes[node].children[child_pos(raw, l)];
            if child == NO_CHILD {
                return None;
            }
            node = child as usize;
            if let Some(p) = self.node_first_posting(node) {
                return Some(p);
            }
        }
        None
    }

    /// Convenience: the first polygon covering the leaf cell, if any.
    pub fn lookup_first(&self, leaf: CellId) -> Option<PolygonId> {
        self.first_posting(leaf).map(|p| p.polygon)
    }

    /// The truncated-covering posting a probe resolves to when it stops at
    /// node `idx` with nothing found on the path: the strict subtree's
    /// first posting, classified `Boundary` (a cell subdivided past the
    /// truncation level necessarily touches a region boundary).
    #[inline(always)]
    fn deep_summary(&self, idx: usize) -> Option<CellPosting> {
        let polygon = self.deep_first[idx];
        (polygon != NO_POLYGON).then_some(CellPosting {
            polygon,
            class: CellClass::Boundary,
            // The folded cell represents many deeper cells; the vacuous
            // annotation is the conservative summary at posting
            // granularity. Callers needing tighter bounds consult
            // [`FrozenCellTrie::subtree_distance`].
            dist: DistanceBins::UNKNOWN,
        })
    }

    /// The first polygon posted anywhere in node `idx`'s *strict* subtree
    /// (pre-order: own postings of descendants before their descendants,
    /// siblings in Z-order), or `None` when the subtree holds no posting —
    /// the region a truncated probe attributes the folded subtree to.
    pub fn subtree_first_polygon(&self, idx: u32) -> Option<PolygonId> {
        let polygon = self.deep_first[idx as usize];
        (polygon != NO_POLYGON).then_some(polygon)
    }

    /// The strict-subtree distance summary of node `idx`, in leaf units.
    /// [`SubtreeDistance::lo_leaf`] is `u64::MAX` and `hi_leaf` is 0 for a
    /// childless-and-postingless subtree (the min/max identities).
    pub fn subtree_distance(&self, idx: u32) -> SubtreeDistance {
        self.deep_dist[idx as usize]
    }

    /// Whether every posting in node `idx`'s strict subtree belongs to
    /// [`subtree_first_polygon`](Self::subtree_first_polygon) (vacuously
    /// true when the subtree is empty).
    pub fn subtree_single_region(&self, idx: u32) -> bool {
        self.deep_single[idx as usize]
    }

    /// The four child node indices of node `idx` in quadtree child order
    /// (`None` for absent children). Node 0 is the root; together with
    /// [`postings_of`](Self::postings_of) this exposes the read-only
    /// traversal the distance query family's best-first search needs.
    pub fn children_of(&self, idx: u32) -> [Option<u32>; 4] {
        self.nodes[idx as usize]
            .children
            .map(|c| (c != NO_CHILD).then_some(c))
    }

    /// The postings stored at node `idx`, in insertion order.
    pub fn postings_of(&self, idx: u32) -> impl Iterator<Item = CellPosting> + '_ {
        let node = &self.nodes[idx as usize];
        let from = node.postings_offset as usize;
        (from..from + node.postings_len as usize).map(move |i| self.posting_at(i))
    }

    /// Whether node `idx` stores any posting.
    pub fn has_postings(&self, idx: u32) -> bool {
        self.nodes[idx as usize].postings_len > 0
    }

    /// The first posting covering the leaf cell **at truncation level
    /// `level`** — the answer the trie would give if every cell deeper than
    /// `level` were replaced by its level-`level` ancestor (class
    /// `Boundary`). `level >= max_depth` reproduces
    /// [`first_posting`](Self::first_posting) exactly.
    pub fn first_posting_at(&self, leaf: CellId, level: u8) -> Option<CellPosting> {
        debug_assert!(leaf.is_leaf(), "lookup requires a leaf cell id: {leaf}");
        let raw = leaf.raw();
        let mut node = 0usize;
        if let Some(p) = self.node_first_posting(node) {
            return Some(p);
        }
        for l in 1..=self.max_depth.min(level) {
            let child = self.nodes[node].children[child_pos(raw, l)];
            if child == NO_CHILD {
                // No original cell lies under this branch at or below the
                // truncation level, so the truncated covering has no cell
                // here either.
                return None;
            }
            node = child as usize;
            if let Some(p) = self.node_first_posting(node) {
                return Some(p);
            }
        }
        // Ran out of levels with nothing on the path: postings strictly
        // below the cutoff truncate into this node's cell.
        self.deep_summary(node)
    }

    /// Starts a batched probe cursor. Feed it leaf cells (ideally in key
    /// order) via [`SortedProbeCursor::first_posting`].
    pub fn cursor(&self) -> SortedProbeCursor<'_> {
        self.cursor_at(MAX_LEVEL)
    }

    /// Starts a batched probe cursor truncated at `level`: probe answers
    /// match [`first_posting_at`](Self::first_posting_at) with the same
    /// level. `cursor_at(MAX_LEVEL)` is [`cursor`](Self::cursor).
    pub fn cursor_at(&self, level: u8) -> SortedProbeCursor<'_> {
        SortedProbeCursor::new(self, level)
    }

    /// Starts a multi-consumer probe cursor answering **every** requested
    /// truncation level from one shared descent per probe — the cross-query
    /// analogue of [`cursor_at`](Self::cursor_at): where the sorted cursor
    /// amortizes the root-to-leaf walk across *points*, the multi cursor
    /// additionally amortizes it across *queries* that probe the same key
    /// stream at different levels. Each answer is bit-for-bit what
    /// [`first_posting_at`](Self::first_posting_at) returns for the same
    /// `(leaf, level)` pair. `levels` must be non-empty and duplicate-free
    /// (duplicate consumers would only clone answers; callers dedup).
    pub fn multi_cursor(&self, levels: &[u8]) -> MultiLevelProbeCursor<'_> {
        MultiLevelProbeCursor::new(self, levels)
    }
}

/// Working state of the pre-order flattening.
struct FreezeState {
    nodes: Vec<FrozenNode>,
    posting_polygons: Vec<PolygonId>,
    posting_classes: Vec<CellClass>,
    posting_dists: Vec<DistanceBins>,
    deep_first: Vec<u32>,
    deep_dist: Vec<SubtreeDistance>,
    deep_single: Vec<bool>,
    covered_at: [Option<(u64, u64)>; STACK],
    level_nodes: [u32; STACK],
}

/// Summary of a subtree *including* the subtree root's own postings,
/// returned up the freeze recursion: the first polygon in pre-order,
/// whether every posting belongs to it, and the folded distance summary.
#[derive(Clone, Copy)]
struct SubtreeInfo {
    first: u32,
    single: bool,
    dist: SubtreeDistance,
}

impl SubtreeInfo {
    const EMPTY: SubtreeInfo = SubtreeInfo {
        first: NO_POLYGON,
        single: true,
        dist: SubtreeDistance::EMPTY,
    };

    fn fold(&mut self, other: SubtreeInfo) {
        if other.first != NO_POLYGON {
            if self.first == NO_POLYGON {
                self.first = other.first;
                self.single = other.single;
            } else {
                self.single = self.single && other.single && self.first == other.first;
            }
        }
        self.dist.fold(other.dist);
    }
}

impl FreezeState {
    /// Pre-order flattening: the parent is emitted before its children, so a
    /// descent path runs forward through the node array. `cell` is the grid
    /// cell this node represents; nodes with postings extend every level's
    /// covered leaf-key span by their (possibly truncated) descendant range.
    ///
    /// Returns `(node index, summary of the subtree including own
    /// postings)` — the parent folds the summary into its own `deep_*`
    /// arrays, which therefore describe the *strict* subtree (own postings
    /// before descendants, siblings in Z-order).
    fn freeze_node(&mut self, node: &TrieNode, cell: CellId) -> (u32, SubtreeInfo) {
        let idx = self.nodes.len() as u32;
        let level = cell.level();
        self.level_nodes[level as usize] += 1;
        self.nodes.push(FrozenNode {
            children: [NO_CHILD; 4],
            postings_offset: self.posting_polygons.len() as u32,
            postings_len: node.postings.len() as u32,
        });
        self.deep_first.push(NO_POLYGON);
        self.deep_dist.push(SubtreeDistance::EMPTY);
        self.deep_single.push(true);
        if !node.postings.is_empty() {
            // A cell at level L widens the truncated covering of every
            // level ℓ < L to its level-ℓ ancestor; at ℓ ≥ L it contributes
            // its own range.
            for l in 0..STACK as u8 {
                let effective = if level <= l { cell } else { cell.parent_at(l) };
                let (lo, hi) = (effective.range_min().raw(), effective.range_max().raw());
                let slot = &mut self.covered_at[l as usize];
                *slot = Some(match slot {
                    Some((clo, chi)) => ((*clo).min(lo), (*chi).max(hi)),
                    None => (lo, hi),
                });
            }
        }
        let mut own = SubtreeInfo::EMPTY;
        for p in &node.postings {
            self.posting_polygons.push(p.polygon);
            self.posting_classes.push(p.class);
            self.posting_dists.push(p.dist);
            own.fold(SubtreeInfo {
                first: p.polygon,
                single: true,
                dist: SubtreeDistance::of_posting(p.dist, p.class, level),
            });
        }
        let mut deep = SubtreeInfo::EMPTY;
        for (pos, child) in node.children.iter().enumerate() {
            if let Some(child) = child {
                let (child_idx, child_info) = self.freeze_node(child, cell.children()[pos]);
                self.nodes[idx as usize].children[pos] = child_idx;
                deep.fold(child_info);
            }
        }
        self.deep_first[idx as usize] = deep.first;
        self.deep_dist[idx as usize] = deep.dist;
        self.deep_single[idx as usize] = deep.single;
        let mut subtree = own;
        subtree.fold(deep);
        (idx, subtree)
    }
}

impl MemoryFootprint for FrozenCellTrie {
    fn memory_bytes(&self) -> usize {
        // Exact: seven flat arrays, no hidden per-node allocations (the
        // per-level metadata lives inline in the struct).
        self.nodes.capacity() * std::mem::size_of::<FrozenNode>()
            + self.posting_polygons.capacity() * std::mem::size_of::<PolygonId>()
            + self.posting_classes.capacity() * std::mem::size_of::<CellClass>()
            + self.posting_dists.capacity() * std::mem::size_of::<DistanceBins>()
            + self.deep_first.capacity() * std::mem::size_of::<u32>()
            + self.deep_dist.capacity() * std::mem::size_of::<SubtreeDistance>()
            + self.deep_single.capacity() * std::mem::size_of::<bool>()
    }
}

/// Batched probe cursor over a [`FrozenCellTrie`].
///
/// Keeps the root-to-leaf path of the previous probe on a stack, together
/// with the first posting seen at-or-above each stacked level. A new probe
/// compares its leaf key with the previous one (one XOR + leading-zeros) and
/// re-descends only from the first diverging level. Correct for any probe
/// order; fast when probes are sorted by leaf key, because Z-order neighbors
/// share long prefixes.
///
/// A cursor created with [`FrozenCellTrie::cursor_at`] truncates every
/// descent at the cutoff level: probes that reach the cutoff node without a
/// posting on the path resolve to the node's strict-subtree summary
/// (`Boundary` class), matching [`FrozenCellTrie::first_posting_at`].
pub struct SortedProbeCursor<'a> {
    trie: &'a FrozenCellTrie,
    /// Deepest level a descent may reach (`min(cutoff, max_depth)`).
    cutoff: usize,
    /// `stack[d]` = node index at level `d` on the current path.
    stack: [u32; STACK],
    /// `first[d]` = first posting encountered at or above level `d` (path
    /// postings only — never a subtree summary, which is valid only at the
    /// exact cutoff node it was computed for).
    first: [Option<CellPosting>; STACK],
    /// Deepest valid level on the stack.
    depth: usize,
    /// Raw leaf key of the previous probe.
    prev: u64,
    has_prev: bool,
    /// Result of the previous probe (reused when the path is shared).
    cached: Option<CellPosting>,
}

impl<'a> SortedProbeCursor<'a> {
    fn new(trie: &'a FrozenCellTrie, level: u8) -> Self {
        let mut first = [None; STACK];
        first[0] = trie.node_first_posting(0);
        SortedProbeCursor {
            trie,
            cutoff: trie.max_depth.min(level) as usize,
            stack: [0; STACK],
            first,
            depth: 0,
            prev: 0,
            has_prev: false,
            cached: None,
        }
    }

    /// The first (coarsest) posting covering `leaf` at the cursor's
    /// truncation level, descending only from the level where `leaf`
    /// diverges from the previous probe.
    pub fn first_posting(&mut self, leaf: CellId) -> Option<CellPosting> {
        debug_assert!(
            leaf.is_leaf(),
            "cursor probes require a leaf cell id: {leaf}"
        );
        let raw = leaf.raw();
        let start = if self.has_prev {
            let xor = self.prev ^ raw;
            if xor == 0 {
                // Same leaf as before: same answer.
                return self.cached;
            }
            // Highest differing bit of the 60-bit cell path (bit 0 is the
            // leaf sentinel, equal on both sides) → first diverging level.
            let high_bit = 63 - xor.leading_zeros() as usize;
            let diverge_level = MAX_LEVEL as usize - (high_bit - 1) / 2;
            if self.depth + 1 < diverge_level {
                // The keys diverge below the point where the previous
                // descent already ran out of children (or hit the cutoff)
                // — the walk, and hence the answer, is unchanged.
                self.prev = raw;
                return self.cached;
            }
            diverge_level
        } else {
            1
        };
        self.has_prev = true;
        self.prev = raw;
        self.depth = start - 1;
        let mut node = self.stack[self.depth] as usize;
        let mut best = self.first[self.depth];
        for l in start..=self.cutoff {
            let child = self.trie.nodes[node].children[child_pos(raw, l as u8)];
            if child == NO_CHILD {
                break;
            }
            node = child as usize;
            self.depth = l;
            self.stack[l] = child;
            if best.is_none() {
                best = self.trie.node_first_posting(node);
            }
            self.first[l] = best;
        }
        if best.is_none() && self.depth == self.cutoff {
            // Truncated descent reached the cutoff with nothing on the
            // path: deeper postings fold into this node's cell.
            best = self.trie.deep_summary(node);
        }
        self.cached = best;
        best
    }
}

/// Multi-consumer probe cursor: one shared descent per probe answers a set
/// of truncation levels at once.
///
/// The batched serving tier coalesces the probe sets of concurrent queries
/// into one key-sorted schedule; queries planned at different truncation
/// levels still share the walk because a level-`L` answer is a pure
/// function of the root-to-leaf path: the first posting at depth ≤ `L`, or
/// the strict-subtree summary of the level-`L` path node when the path
/// reaches it with nothing found. The cursor therefore descends once to the
/// *deepest* requested cutoff, maintaining the same per-level
/// `stack`/`first` bookkeeping as [`SortedProbeCursor`], and resolves each
/// consumer level from that shared state. Prefix sharing between
/// consecutive probes (XOR + leading-zeros re-descent) is identical to the
/// single-level cursor, and so is correctness for unsorted probe orders.
pub struct MultiLevelProbeCursor<'a> {
    trie: &'a FrozenCellTrie,
    /// Per consumer: effective cutoff (`min(level, max_depth)`), in the
    /// order the levels were registered.
    cutoffs: Vec<usize>,
    /// Deepest consumer cutoff — how far a descent may reach.
    max_cutoff: usize,
    /// `stack[d]` = node index at level `d` on the current path.
    stack: [u32; STACK],
    /// `first[d]` = first posting at or above level `d` (path postings
    /// only, as in [`SortedProbeCursor`]).
    first: [Option<CellPosting>; STACK],
    /// Deepest valid level on the stack.
    depth: usize,
    /// Raw leaf key of the previous probe.
    prev: u64,
    has_prev: bool,
    /// Per-consumer results of the previous probe (reused when the walk is
    /// shared).
    cached: Vec<Option<CellPosting>>,
}

impl<'a> MultiLevelProbeCursor<'a> {
    fn new(trie: &'a FrozenCellTrie, levels: &[u8]) -> Self {
        assert!(!levels.is_empty(), "multi cursor needs at least one level");
        let cutoffs: Vec<usize> = levels
            .iter()
            .map(|&l| trie.max_depth.min(l) as usize)
            .collect();
        let max_cutoff = cutoffs.iter().copied().max().unwrap_or(0);
        let mut first = [None; STACK];
        first[0] = trie.node_first_posting(0);
        MultiLevelProbeCursor {
            trie,
            cached: vec![None; cutoffs.len()],
            cutoffs,
            max_cutoff,
            stack: [0; STACK],
            first,
            depth: 0,
            prev: 0,
            has_prev: false,
        }
    }

    /// Number of registered consumer levels (and required `out` length).
    pub fn consumers(&self) -> usize {
        self.cutoffs.len()
    }

    /// Answers every registered level for `leaf` in one walk, writing
    /// `out[i]` for the `i`-th registered level. Each entry matches
    /// [`FrozenCellTrie::first_posting_at`] for that level exactly.
    pub fn first_postings(&mut self, leaf: CellId, out: &mut [Option<CellPosting>]) {
        debug_assert!(
            leaf.is_leaf(),
            "cursor probes require a leaf cell id: {leaf}"
        );
        assert_eq!(
            out.len(),
            self.cutoffs.len(),
            "output slot per registered level"
        );
        let raw = leaf.raw();
        let start = if self.has_prev {
            let xor = self.prev ^ raw;
            if xor == 0 {
                out.copy_from_slice(&self.cached);
                return;
            }
            let high_bit = 63 - xor.leading_zeros() as usize;
            let diverge_level = MAX_LEVEL as usize - (high_bit - 1) / 2;
            if self.depth + 1 < diverge_level {
                // Divergence below where the previous walk already ended:
                // the shared path — and so every consumer's answer — is
                // unchanged.
                self.prev = raw;
                out.copy_from_slice(&self.cached);
                return;
            }
            diverge_level
        } else {
            1
        };
        self.has_prev = true;
        self.prev = raw;
        self.depth = start - 1;
        let mut node = self.stack[self.depth] as usize;
        let mut best = self.first[self.depth];
        for l in start..=self.max_cutoff {
            let child = self.trie.nodes[node].children[child_pos(raw, l as u8)];
            if child == NO_CHILD {
                break;
            }
            node = child as usize;
            self.depth = l;
            self.stack[l] = child;
            if best.is_none() {
                best = self.trie.node_first_posting(node);
            }
            self.first[l] = best;
        }
        // Resolve each consumer from the shared path state: the first
        // posting at depth ≤ its cutoff, else — when the path reached the
        // cutoff — the summary of the folded subtree at the cutoff node.
        for (slot, &cutoff) in self.cached.iter_mut().zip(&self.cutoffs) {
            let reach = cutoff.min(self.depth);
            let mut answer = self.first[reach];
            if answer.is_none() && self.depth >= cutoff {
                answer = self.trie.deep_summary(self.stack[cutoff] as usize);
            }
            *slot = answer;
        }
        out.copy_from_slice(&self.cached);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbsa_geom::{Point, Polygon};
    use dbsa_grid::GridExtent;
    use dbsa_raster::{BoundaryPolicy, DistanceBound, HierarchicalRaster};
    use proptest::prelude::*;

    fn extent() -> GridExtent {
        GridExtent::new(Point::new(0.0, 0.0), 1024.0)
    }

    fn polygons() -> Vec<Polygon> {
        vec![
            Polygon::from_coords(&[
                (100.0, 100.0),
                (300.0, 100.0),
                (300.0, 300.0),
                (100.0, 300.0),
            ]),
            Polygon::from_coords(&[
                (300.0, 100.0),
                (500.0, 100.0),
                (500.0, 300.0),
                (300.0, 300.0),
            ]),
            Polygon::from_coords(&[
                (700.0, 700.0),
                (900.0, 700.0),
                (900.0, 900.0),
                (700.0, 900.0),
            ]),
        ]
    }

    fn build_both(bound_m: f64) -> (AdaptiveCellTrie, FrozenCellTrie) {
        let ext = extent();
        let rasters: Vec<HierarchicalRaster> = polygons()
            .iter()
            .map(|p| {
                HierarchicalRaster::with_bound(
                    p,
                    &ext,
                    DistanceBound::meters(bound_m),
                    BoundaryPolicy::Conservative,
                )
            })
            .collect();
        let pointer = AdaptiveCellTrie::build(&rasters);
        let frozen = pointer.freeze();
        (pointer, frozen)
    }

    #[test]
    fn freeze_preserves_structure_counts() {
        let (pointer, frozen) = build_both(4.0);
        assert_eq!(frozen.stats(), pointer.stats());
        assert_eq!(frozen.node_count(), pointer.node_count());
        assert_eq!(frozen.posting_count(), pointer.posting_count());
        assert_eq!(frozen.polygon_count(), pointer.polygon_count());
        assert_eq!(frozen.max_depth(), pointer.max_depth());
        assert!(pointer.verify_counters());
    }

    #[test]
    fn frozen_lookups_match_pointer_lookups_on_a_sweep() {
        let (pointer, frozen) = build_both(8.0);
        let ext = extent();
        for i in 0..64 {
            for j in 0..64 {
                let p = Point::new(i as f64 * 16.0 + 0.5, j as f64 * 16.0 + 0.5);
                let leaf = ext.leaf_cell_id(&p);
                assert_eq!(frozen.lookup_leaf(leaf), pointer.lookup_leaf(leaf));
                assert_eq!(frozen.lookup_first(leaf), pointer.lookup_first(leaf));
                assert_eq!(
                    frozen.first_posting(leaf),
                    pointer.lookup_leaf(leaf).first().copied()
                );
            }
        }
    }

    #[test]
    fn cursor_matches_scalar_lookups_in_sorted_and_unsorted_order() {
        let (_, frozen) = build_both(4.0);
        let ext = extent();
        let mut leaves: Vec<CellId> = (0..48)
            .flat_map(|i| {
                (0..48).map(move |j| {
                    ext.leaf_cell_id(&Point::new(i as f64 * 21.0 + 1.0, j as f64 * 21.0 + 1.0))
                })
            })
            .collect();

        // Unsorted (row-major) order: the cursor must still be correct.
        let mut cursor = frozen.cursor();
        for &leaf in &leaves {
            assert_eq!(cursor.first_posting(leaf), frozen.first_posting(leaf));
        }

        // Sorted order (the intended fast path), with duplicates.
        leaves.push(leaves[17]);
        leaves.sort_unstable();
        let mut cursor = frozen.cursor();
        for &leaf in &leaves {
            assert_eq!(cursor.first_posting(leaf), frozen.first_posting(leaf));
        }
    }

    #[test]
    fn empty_trie_freezes_to_a_lone_root() {
        let frozen = AdaptiveCellTrie::new().freeze();
        assert_eq!(frozen.node_count(), 1);
        assert_eq!(frozen.posting_count(), 0);
        assert_eq!(frozen.lookup_first(CellId::leaf(5, 5)), None);
        assert!(frozen.lookup_leaf(CellId::leaf(5, 5)).is_empty());
        let mut cursor = frozen.cursor();
        assert_eq!(cursor.first_posting(CellId::leaf(5, 5)), None);
        assert_eq!(cursor.first_posting(CellId::leaf(6, 5)), None);
        assert!(frozen.memory_bytes() >= std::mem::size_of::<FrozenNode>());
    }

    #[test]
    fn frozen_memory_is_exact_and_below_the_pointer_builder() {
        let (pointer, frozen) = build_both(4.0);
        let expected = frozen.node_count()
            * (std::mem::size_of::<FrozenNode>()
                + std::mem::size_of::<u32>()
                + std::mem::size_of::<SubtreeDistance>()
                + std::mem::size_of::<bool>())
            + frozen.posting_count()
                * (std::mem::size_of::<PolygonId>()
                    + std::mem::size_of::<CellClass>()
                    + std::mem::size_of::<DistanceBins>());
        assert_eq!(frozen.memory_bytes(), expected);
        assert!(
            frozen.memory_bytes() < pointer.memory_bytes(),
            "frozen {} should undercut the pointer builder {}",
            frozen.memory_bytes(),
            pointer.memory_bytes()
        );
    }

    #[test]
    fn covered_key_range_bounds_every_posting_cell() {
        let (_, frozen) = build_both(8.0);
        let (lo, hi) = frozen.covered_key_range().expect("postings exist");
        assert!(lo <= hi);
        // Probes outside the span never match; a probe inside the span of
        // the first polygon's interior does.
        let ext = extent();
        let inside = ext.leaf_cell_id(&Point::new(200.0, 200.0));
        assert!(lo <= inside.raw() && inside.raw() <= hi);
        assert!(frozen.first_posting(inside).is_some());
        for probe in [
            CellId::leaf(0, 0),
            CellId::leaf((1 << 30) - 1, (1 << 30) - 1),
        ] {
            if probe.raw() < lo || probe.raw() > hi {
                assert_eq!(frozen.first_posting(probe), None);
            }
        }
        // Empty tries cover nothing.
        assert_eq!(AdaptiveCellTrie::new().freeze().covered_key_range(), None);
    }

    #[test]
    fn covered_key_range_matches_manual_cell_span() {
        let mut act = AdaptiveCellTrie::new();
        let a = CellId::from_cell_xy(1, 0, 3);
        let b = CellId::from_cell_xy(6, 7, 3);
        act.insert_cell(0, a, CellClass::Interior);
        act.insert_cell(1, b, CellClass::Boundary);
        let frozen = act.freeze();
        let lo = a.range_min().raw().min(b.range_min().raw());
        let hi = a.range_max().raw().max(b.range_max().raw());
        assert_eq!(frozen.covered_key_range(), Some((lo, hi)));
    }

    #[test]
    fn truncated_lookup_matches_full_lookup_at_or_below_max_depth() {
        let (_, frozen) = build_both(4.0);
        let ext = extent();
        for i in 0..48 {
            for j in 0..48 {
                let leaf =
                    ext.leaf_cell_id(&Point::new(i as f64 * 21.0 + 1.0, j as f64 * 21.0 + 1.0));
                for level in [frozen.max_depth(), frozen.max_depth() + 1, MAX_LEVEL] {
                    assert_eq!(
                        frozen.first_posting_at(leaf, level),
                        frozen.first_posting(leaf),
                        "level {level} must reproduce the untruncated probe"
                    );
                }
            }
        }
    }

    #[test]
    fn truncated_lookup_is_a_conservative_boundary_superset() {
        let (_, frozen) = build_both(4.0);
        let ext = extent();
        let max_depth = frozen.max_depth();
        for i in 0..48 {
            for j in 0..48 {
                let leaf =
                    ext.leaf_cell_id(&Point::new(i as f64 * 21.0 + 1.0, j as f64 * 21.0 + 1.0));
                let mut prev_matched = frozen.first_posting(leaf).is_some();
                let mut prev_boundary = frozen
                    .first_posting(leaf)
                    .is_some_and(|p| p.class == CellClass::Boundary);
                // Coarsening the truncation level can only grow the covered
                // region and only turn interior answers into boundary ones.
                for level in (0..max_depth).rev() {
                    let p = frozen.first_posting_at(leaf, level);
                    let matched = p.is_some();
                    let boundary = p.is_some_and(|p| p.class == CellClass::Boundary);
                    assert!(!prev_matched || matched, "coarser level lost a match");
                    assert!(
                        !prev_boundary || boundary,
                        "coarser level must not turn boundary into interior"
                    );
                    prev_matched = matched;
                    prev_boundary = boundary;
                }
            }
        }
    }

    #[test]
    fn leveled_cursor_matches_scalar_truncated_lookups() {
        let (_, frozen) = build_both(8.0);
        let ext = extent();
        let mut leaves: Vec<CellId> = (0..40)
            .flat_map(|i| {
                (0..40).map(move |j| {
                    ext.leaf_cell_id(&Point::new(i as f64 * 25.0 + 2.0, j as f64 * 25.0 + 2.0))
                })
            })
            .collect();
        leaves.push(leaves[11]);
        leaves.sort_unstable();
        for level in 0..=frozen.max_depth() {
            let mut cursor = frozen.cursor_at(level);
            for &leaf in &leaves {
                assert_eq!(
                    cursor.first_posting(leaf),
                    frozen.first_posting_at(leaf, level),
                    "level {level} at {leaf}"
                );
            }
        }
        // Unsorted order must stay correct too.
        let mut cursor = frozen.cursor_at(3);
        for &leaf in leaves.iter().rev() {
            assert_eq!(cursor.first_posting(leaf), frozen.first_posting_at(leaf, 3));
        }
    }

    #[test]
    fn multi_cursor_matches_single_level_cursors_everywhere() {
        let (_, frozen) = build_both(8.0);
        let ext = extent();
        let mut leaves: Vec<CellId> = (0..40)
            .flat_map(|i| {
                (0..40).map(move |j| {
                    ext.leaf_cell_id(&Point::new(i as f64 * 25.0 + 2.0, j as f64 * 25.0 + 2.0))
                })
            })
            .collect();
        leaves.push(leaves[11]);
        leaves.sort_unstable();
        // All levels at once, deliberately unsorted and spanning past
        // max_depth.
        let levels: Vec<u8> = vec![3, 0, frozen.max_depth(), 1, MAX_LEVEL, 2];
        let mut multi = frozen.multi_cursor(&levels);
        assert_eq!(multi.consumers(), levels.len());
        let mut answers = vec![None; levels.len()];
        for &leaf in &leaves {
            multi.first_postings(leaf, &mut answers);
            for (&level, &answer) in levels.iter().zip(&answers) {
                assert_eq!(
                    answer,
                    frozen.first_posting_at(leaf, level),
                    "level {level} at {leaf}"
                );
            }
        }
        // Unsorted probe order must stay correct too.
        let mut multi = frozen.multi_cursor(&levels);
        for &leaf in leaves.iter().rev() {
            multi.first_postings(leaf, &mut answers);
            for (&level, &answer) in levels.iter().zip(&answers) {
                assert_eq!(answer, frozen.first_posting_at(leaf, level));
            }
        }
    }

    #[test]
    fn covered_key_range_widens_as_levels_coarsen() {
        let (_, frozen) = build_both(8.0);
        assert_eq!(
            frozen.covered_key_range_at(MAX_LEVEL),
            frozen.covered_key_range()
        );
        let mut prev = frozen.covered_key_range().expect("postings exist");
        for level in (0..MAX_LEVEL).rev() {
            let (lo, hi) = frozen
                .covered_key_range_at(level)
                .expect("covered at all levels once covered at the finest");
            assert!(lo <= prev.0 && hi >= prev.1, "level {level} must widen");
            prev = (lo, hi);
        }
        // Root truncation covers the whole domain the postings touch; the
        // node-count estimate shrinks monotonically toward the root.
        let mut prev_nodes = frozen.nodes_at_or_above(MAX_LEVEL);
        assert_eq!(prev_nodes, frozen.node_count());
        for level in (0..MAX_LEVEL).rev() {
            let n = frozen.nodes_at_or_above(level);
            assert!(n <= prev_nodes);
            prev_nodes = n;
        }
        assert_eq!(frozen.nodes_at_or_above(0), 1, "only the root at level 0");
    }

    #[test]
    fn truncation_at_level_zero_resolves_to_a_boundary_summary() {
        let mut act = AdaptiveCellTrie::new();
        let cell = CellId::from_cell_xy(2, 3, 4);
        act.insert_cell(9, cell, CellClass::Interior);
        let frozen = act.freeze();
        // Any probe resolves through the root's subtree summary at level 0.
        let probe = CellId::leaf(0, 0);
        assert_eq!(
            frozen.first_posting_at(probe, 0),
            Some(CellPosting {
                polygon: 9,
                class: CellClass::Boundary,
                dist: DistanceBins::UNKNOWN
            })
        );
        // At the cell's own level the true class comes back.
        assert_eq!(
            frozen.first_posting_at(cell.range_min(), 4),
            Some(CellPosting {
                polygon: 9,
                class: CellClass::Interior,
                dist: DistanceBins::UNKNOWN
            })
        );
        // Between root and the cell's level: boundary summary on-path only.
        assert_eq!(
            frozen.first_posting_at(cell.range_min(), 2),
            Some(CellPosting {
                polygon: 9,
                class: CellClass::Boundary,
                dist: DistanceBins::UNKNOWN
            })
        );
        // leaf(0,0) shares the cell's level-2 ancestor (0,0), so it matches
        // the summary there; a probe under a different level-2 ancestor
        // finds nothing.
        assert_eq!(
            frozen.first_posting_at(probe, 2),
            Some(CellPosting {
                polygon: 9,
                class: CellClass::Boundary,
                dist: DistanceBins::UNKNOWN
            })
        );
        let elsewhere = CellId::from_cell_xy(3, 3, 2).range_min();
        assert_eq!(frozen.first_posting_at(elsewhere, 2), None);
    }

    #[test]
    fn traversal_accessors_expose_the_whole_trie() {
        let (_, frozen) = build_both(8.0);
        // Walk the trie through the public accessors and count postings.
        let mut stack = vec![0u32];
        let mut postings = 0usize;
        let mut visited = 0usize;
        while let Some(idx) = stack.pop() {
            visited += 1;
            postings += frozen.postings_of(idx).count();
            assert_eq!(
                frozen.has_postings(idx),
                frozen.postings_of(idx).count() > 0
            );
            for child in frozen.children_of(idx).into_iter().flatten() {
                stack.push(child);
            }
        }
        assert_eq!(visited, frozen.node_count());
        assert_eq!(postings, frozen.posting_count());

        // The root's strict-subtree summary folds every posting except the
        // root's own: bounded annotations everywhere (raster-built cells).
        let root_summary = frozen.subtree_distance(0);
        assert!(root_summary.lo_leaf < u64::MAX);
        assert!(root_summary.hi_leaf > 0 && root_summary.hi_leaf < u64::MAX);
        // Every posting's annotation (in leaf units) respects the summary
        // of the node that stores it, via its parents.
        let mut stack = vec![(0u32, frozen.subtree_distance(0))];
        while let Some((idx, summary)) = stack.pop() {
            for child in frozen.children_of(idx).into_iter().flatten() {
                stack.push((child, frozen.subtree_distance(child)));
            }
            let _ = summary;
        }
    }

    #[test]
    fn subtree_distance_summaries_bound_deeper_postings() {
        let mut act = AdaptiveCellTrie::new();
        let cell = CellId::from_cell_xy(2, 3, 4);
        act.insert_cell_annotated(1, cell, CellClass::Boundary, DistanceBins { lo: 2, hi: 5 });
        let deeper = CellId::from_cell_xy(9, 13, 6);
        act.insert_cell_annotated(
            1,
            deeper,
            CellClass::Interior,
            DistanceBins { lo: 1, hi: 3 },
        );
        let frozen = act.freeze();
        let root = frozen.subtree_distance(0);
        // Level 4 bins span 2^26 leaf sides, level 6 bins 2^24.
        assert_eq!(root.lo_leaf, 1u64 << 24);
        assert_eq!(root.hi_leaf, 5u64 << 26);
        // The interior posting zeroes the region-distance slack.
        assert_eq!(root.slack_leaf, 0);
        // Both postings belong to polygon 1: the root subtree is
        // single-region.
        assert_eq!(frozen.subtree_first_polygon(0), Some(1));
        assert!(frozen.subtree_single_region(0));
        // An unbounded posting saturates the summary's upper bound — and a
        // second polygon breaks homogeneity.
        act.insert_cell(2, CellId::from_cell_xy(0, 0, 3), CellClass::Interior);
        let frozen = act.freeze();
        assert_eq!(frozen.subtree_distance(0).hi_leaf, u64::MAX);
        assert_eq!(frozen.subtree_distance(0).lo_leaf, 0);
        assert!(!frozen.subtree_single_region(0));
        // The empty trie is vacuously single-region.
        assert!(AdaptiveCellTrie::new().freeze().subtree_single_region(0));
    }

    #[test]
    fn manual_insertion_round_trips_through_freeze() {
        let mut act = AdaptiveCellTrie::new();
        let cell = CellId::from_cell_xy(2, 3, 4);
        act.insert_cell(7, cell, CellClass::Interior);
        let frozen = act.freeze();
        assert_eq!(frozen.lookup_first(cell.range_min()), Some(7));
        assert_eq!(
            frozen.lookup_first(CellId::from_cell_xy(0, 0, 4).range_min()),
            None
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Random cells at random levels: frozen scalar lookups and the
        /// cursor agree with the pointer trie everywhere.
        #[test]
        fn prop_frozen_equals_pointer_on_random_tries(
            cells in proptest::collection::vec(
                (0u32..64, 0u32..64, 3u8..9, 0u32..5, proptest::bool::ANY), 1..120),
            probes in proptest::collection::vec((0u32..1024, 0u32..1024), 1..80),
            cutoff in 0u8..=10,
        ) {
            let mut act = AdaptiveCellTrie::new();
            for (x, y, level, polygon, boundary) in cells {
                let cx = x % (1 << level);
                let cy = y % (1 << level);
                let class = if boundary { CellClass::Boundary } else { CellClass::Interior };
                act.insert_cell(polygon, CellId::from_cell_xy(cx, cy, level), class);
            }
            let frozen = act.freeze();
            prop_assert_eq!(frozen.stats(), act.stats());

            let mut leaves: Vec<CellId> = probes
                .into_iter()
                .map(|(x, y)| CellId::leaf(x << 20, y << 20))
                .collect();
            leaves.sort_unstable();
            let mut cursor = frozen.cursor();
            let mut leveled = frozen.cursor_at(cutoff);
            let mut buf = Vec::new();
            for leaf in leaves {
                let reference = act.lookup_leaf(leaf);
                frozen.lookup_leaf_into(leaf, &mut buf);
                prop_assert_eq!(&buf, &reference);
                prop_assert_eq!(frozen.first_posting(leaf), reference.first().copied());
                prop_assert_eq!(cursor.first_posting(leaf), reference.first().copied());
                // The leveled cursor agrees with the scalar truncated probe
                // at every cutoff, including ones above and below max_depth.
                prop_assert_eq!(
                    leveled.first_posting(leaf),
                    frozen.first_posting_at(leaf, cutoff)
                );
            }
        }

        /// The multi-consumer cursor answers every registered level exactly
        /// as the scalar truncated probe would, for any probe order.
        #[test]
        fn prop_multi_cursor_equals_scalar_truncated_probes(
            cells in proptest::collection::vec(
                (0u32..64, 0u32..64, 3u8..9, 0u32..5, proptest::bool::ANY), 1..120),
            probes in proptest::collection::vec((0u32..1024, 0u32..1024), 1..80),
            levels in proptest::collection::vec(0u8..=12, 1..5),
            sorted in proptest::bool::ANY,
        ) {
            let mut act = AdaptiveCellTrie::new();
            for (x, y, level, polygon, boundary) in cells {
                let cx = x % (1 << level);
                let cy = y % (1 << level);
                let class = if boundary { CellClass::Boundary } else { CellClass::Interior };
                act.insert_cell(polygon, CellId::from_cell_xy(cx, cy, level), class);
            }
            let frozen = act.freeze();
            let mut leaves: Vec<CellId> = probes
                .into_iter()
                .map(|(x, y)| CellId::leaf(x << 20, y << 20))
                .collect();
            if sorted {
                leaves.sort_unstable();
            }
            let mut levels = levels;
            levels.sort_unstable();
            levels.dedup();
            let mut multi = frozen.multi_cursor(&levels);
            let mut answers = vec![None; levels.len()];
            for leaf in leaves {
                multi.first_postings(leaf, &mut answers);
                for (&level, &answer) in levels.iter().zip(&answers) {
                    prop_assert_eq!(
                        answer,
                        frozen.first_posting_at(leaf, level),
                        "level {} at {}", level, leaf
                    );
                }
            }
        }
    }
}

//! RadixSpline — a single-pass learned index over sorted keys.
//!
//! Reimplementation of the structure the paper uses for point indexing
//! (Kipf et al., aiDM@SIGMOD 2020): a greedy error-bounded linear spline
//! over the (key, position) function of the sorted key array, plus a radix
//! table over the top `radix_bits` bits of the key that narrows the spline
//! segment to search. Lookups interpolate within one spline segment and then
//! fix up the prediction with a binary search bounded by `spline_error`.
//!
//! The paper's experiment configures 25 radix bits and a spline error of 32;
//! those are the defaults here.

use crate::footprint::MemoryFootprint;

/// A spline knot: a key and its position in the sorted array.
#[derive(Debug, Clone, Copy, PartialEq)]
struct SplinePoint {
    key: u64,
    position: usize,
}

/// Builder for [`RadixSpline`] with the paper's default parameters.
#[derive(Debug, Clone)]
pub struct RadixSplineBuilder {
    radix_bits: u32,
    spline_error: usize,
}

impl Default for RadixSplineBuilder {
    fn default() -> Self {
        RadixSplineBuilder {
            radix_bits: 25,
            spline_error: 32,
        }
    }
}

impl RadixSplineBuilder {
    /// Creates a builder with the paper's defaults (25 radix bits, error 32).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of radix bits (width of the radix table).
    pub fn radix_bits(mut self, bits: u32) -> Self {
        assert!((1..=30).contains(&bits), "radix bits must be in 1..=30");
        self.radix_bits = bits;
        self
    }

    /// Sets the maximum spline interpolation error (in positions).
    pub fn spline_error(mut self, error: usize) -> Self {
        assert!(error >= 1, "spline error must be at least 1");
        self.spline_error = error;
        self
    }

    /// Builds the index over a sorted key slice (single pass).
    pub fn build(self, keys: &[u64]) -> RadixSpline {
        debug_assert!(keys.windows(2).all(|w| w[0] <= w[1]), "keys must be sorted");
        RadixSpline::build_impl(keys, self.radix_bits, self.spline_error)
    }
}

/// The RadixSpline learned index.
///
/// The index does not own the keys; lookups take the key slice so that the
/// same array can back several index variants in the experiments.
#[derive(Debug, Clone)]
pub struct RadixSpline {
    spline: Vec<SplinePoint>,
    /// `radix_table[prefix]` = index of the first spline point whose key has
    /// a radix prefix `>= prefix`.
    radix_table: Vec<u32>,
    radix_bits: u32,
    /// Number of bits to shift a key right to obtain its radix prefix.
    shift: u32,
    spline_error: usize,
    min_key: u64,
    max_key: u64,
    len: usize,
}

impl RadixSpline {
    /// Builds the index with default parameters.
    pub fn new(keys: &[u64]) -> Self {
        RadixSplineBuilder::default().build(keys)
    }

    fn build_impl(keys: &[u64], radix_bits: u32, spline_error: usize) -> Self {
        let len = keys.len();
        let min_key = keys.first().copied().unwrap_or(0);
        let max_key = keys.last().copied().unwrap_or(0);
        let mut spline = build_spline(keys, spline_error);
        spline.shrink_to_fit();

        // The radix table covers the prefix range of the keys: shift is
        // chosen so that max_key's prefix fits into radix_bits bits. The
        // effective width is additionally capped so the table never grows
        // past a small multiple of the spline size — with the paper's 25
        // bits over 1.2 B keys the table is tiny relative to the data, and
        // the cap keeps that proportion at laptop scale too.
        let key_bits = 64 - min_key.leading_zeros().min(max_key.leading_zeros());
        let cap_bits = (usize::BITS - (4 * spline.len() + 1).leading_zeros()).max(6);
        let effective_bits = radix_bits.min(cap_bits);
        let shift = key_bits.saturating_sub(effective_bits);
        let table_size = if len == 0 {
            1
        } else {
            ((max_key >> shift) as usize + 2).max(2)
        };
        let mut radix_table = vec![u32::MAX; table_size];
        for (i, sp) in spline.iter().enumerate() {
            let prefix = (sp.key >> shift) as usize;
            if radix_table[prefix] == u32::MAX {
                radix_table[prefix] = i as u32;
            }
        }
        // Back-fill: entry p = first spline index with prefix >= p.
        let mut next = spline.len() as u32;
        for entry in radix_table.iter_mut().rev() {
            if *entry == u32::MAX {
                *entry = next;
            } else {
                next = *entry;
            }
        }
        RadixSpline {
            spline,
            radix_table,
            radix_bits,
            shift,
            spline_error,
            min_key,
            max_key,
            len,
        }
    }

    /// Number of keys the index was built over.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of spline points.
    pub fn spline_points(&self) -> usize {
        self.spline.len()
    }

    /// The configured radix bits.
    pub fn radix_bits(&self) -> u32 {
        self.radix_bits
    }

    /// The configured maximum spline error.
    pub fn spline_error(&self) -> usize {
        self.spline_error
    }

    /// Estimated position of `key` in the sorted array, clamped to `0..len`.
    pub fn predict(&self, key: u64) -> usize {
        if self.len == 0 {
            return 0;
        }
        if key <= self.min_key {
            return 0;
        }
        if key >= self.max_key {
            return self.len - 1;
        }
        // Radix table narrows the spline segment range.
        let prefix = (key >> self.shift) as usize;
        let lo_idx = self.radix_table[prefix.min(self.radix_table.len() - 1)] as usize;
        let hi_idx = self
            .radix_table
            .get(prefix + 1)
            .map(|&v| v as usize)
            .unwrap_or(self.spline.len());
        let lo_idx = lo_idx.saturating_sub(1);
        let hi_idx = hi_idx.min(self.spline.len());

        // Binary search the spline segment containing the key.
        let seg = &self.spline[lo_idx..hi_idx.max(lo_idx + 1).min(self.spline.len())];
        let offset = seg.partition_point(|sp| sp.key < key);
        let upper = (lo_idx + offset).min(self.spline.len() - 1);
        let lower = upper.saturating_sub(1);
        let (a, b) = (self.spline[lower], self.spline[upper]);
        if b.key == a.key {
            return a.position.min(self.len - 1);
        }
        // Linear interpolation between the two spline points.
        let frac = (key - a.key) as f64 / (b.key - a.key) as f64;
        let pos = a.position as f64 + frac * (b.position as f64 - a.position as f64);
        (pos.round() as usize).min(self.len - 1)
    }

    /// Exact lower bound (first position with `keys[pos] >= key`), using the
    /// spline prediction plus an error-bounded binary search over `keys`.
    ///
    /// `keys` must be the slice the index was built over.
    pub fn lower_bound(&self, keys: &[u64], key: u64) -> usize {
        debug_assert_eq!(keys.len(), self.len, "index/key-array mismatch");
        if self.len == 0 {
            return 0;
        }
        let predicted = self.predict(key);
        let lo = predicted.saturating_sub(self.spline_error);
        let hi = (predicted + self.spline_error + 1).min(self.len);
        // The true position is inside [lo, hi) if the spline honours its
        // error bound; fall back to the full array if it does not (can only
        // happen at the array ends because of clamping).
        let pos = lo + keys[lo..hi].partition_point(|&k| k < key);
        if (pos == lo && lo > 0 && keys[lo - 1] >= key)
            || (pos == hi && hi < self.len && keys[hi] < key)
        {
            keys.partition_point(|&k| k < key)
        } else {
            pos
        }
    }

    /// Exact upper bound (first position with `keys[pos] > key`).
    pub fn upper_bound(&self, keys: &[u64], key: u64) -> usize {
        debug_assert_eq!(keys.len(), self.len, "index/key-array mismatch");
        if self.len == 0 {
            return 0;
        }
        let predicted = self.predict(key);
        let lo = predicted.saturating_sub(self.spline_error);
        let hi = (predicted + self.spline_error + 1).min(self.len);
        let pos = lo + keys[lo..hi].partition_point(|&k| k <= key);
        if (pos == lo && lo > 0 && keys[lo - 1] > key)
            || (pos == hi && hi < self.len && keys[hi] <= key)
        {
            keys.partition_point(|&k| k <= key)
        } else {
            pos
        }
    }

    /// Number of keys in the inclusive range `[lo_key, hi_key]`.
    pub fn count_range(&self, keys: &[u64], lo_key: u64, hi_key: u64) -> usize {
        if lo_key > hi_key {
            return 0;
        }
        self.upper_bound(keys, hi_key) - self.lower_bound(keys, lo_key)
    }
}

impl RadixSpline {
    /// Appends the spline knots, radix table, and scalar parameters to a
    /// snapshot section — the single-pass build is persisted, not redone.
    pub fn write_snapshot(&self, out: &mut Vec<u8>) {
        use bytes::BufMut;
        crate::snapshot::put_u64s(out, &self.spline.iter().map(|s| s.key).collect::<Vec<_>>());
        crate::snapshot::put_u64s(
            out,
            &self
                .spline
                .iter()
                .map(|s| s.position as u64)
                .collect::<Vec<_>>(),
        );
        crate::snapshot::put_u32s(out, &self.radix_table);
        out.put_u32_le(self.radix_bits);
        out.put_u32_le(self.shift);
        out.put_u64_le(self.spline_error as u64);
        out.put_u64_le(self.min_key);
        out.put_u64_le(self.max_key);
        out.put_u64_le(self.len as u64);
    }

    /// Reads an index written by [`write_snapshot`](Self::write_snapshot).
    pub fn read_snapshot(
        cur: &mut crate::snapshot::SectionCursor<'_>,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        let keys = cur.read_u64s()?;
        let positions = cur.read_u64s()?;
        if keys.len() != positions.len() {
            return Err(cur.malformed("spline knot columns disagree on length"));
        }
        let spline: Vec<SplinePoint> = keys
            .into_iter()
            .zip(positions)
            .map(|(key, position)| SplinePoint {
                key,
                position: position as usize,
            })
            .collect();
        let radix_table = cur.read_u32s()?;
        if radix_table.is_empty() {
            return Err(cur.malformed("radix table must have at least one entry"));
        }
        let radix_bits = cur.read_u32()?;
        let shift = cur.read_u32()?;
        let spline_error = cur.read_u64()? as usize;
        if spline_error == 0 {
            return Err(cur.malformed("spline error must be at least 1"));
        }
        let min_key = cur.read_u64()?;
        let max_key = cur.read_u64()?;
        let len = cur.read_u64()? as usize;
        Ok(RadixSpline {
            spline,
            radix_table,
            radix_bits,
            shift,
            spline_error,
            min_key,
            max_key,
            len,
        })
    }
}

impl MemoryFootprint for RadixSpline {
    fn memory_bytes(&self) -> usize {
        self.spline.capacity() * std::mem::size_of::<SplinePoint>()
            + self.radix_table.capacity() * std::mem::size_of::<u32>()
    }
}

/// Greedy error-bounded spline construction (single pass).
///
/// Keeps a corridor of admissible slopes from the last spline point; when a
/// new key would leave the corridor, the previous key becomes a spline point
/// and the corridor restarts. Guarantees that interpolating between
/// consecutive spline points predicts every key's position within
/// `max_error`.
fn build_spline(keys: &[u64], max_error: usize) -> Vec<SplinePoint> {
    let n = keys.len();
    if n == 0 {
        return vec![];
    }
    let mut spline = vec![SplinePoint {
        key: keys[0],
        position: 0,
    }];
    if n == 1 {
        return spline;
    }
    let err = max_error as f64;
    let mut base = SplinePoint {
        key: keys[0],
        position: 0,
    };
    // Slope corridor [lower, upper] of admissible segments from `base`.
    let mut lower = f64::NEG_INFINITY;
    let mut upper = f64::INFINITY;
    let mut prev = base;
    for (pos, &key) in keys.iter().enumerate().skip(1) {
        let dx = (key - base.key) as f64;
        let candidate = SplinePoint { key, position: pos };
        if dx == 0.0 {
            // Duplicate key run: cannot distinguish positions, keep going.
            prev = candidate;
            continue;
        }
        let slope = (pos as f64 - base.position as f64) / dx;
        let slope_hi = (pos as f64 + err - base.position as f64) / dx;
        let slope_lo = (pos as f64 - err - base.position as f64) / dx;
        if slope < lower || slope > upper {
            // The corridor is violated: close the segment at the previous key.
            spline.push(prev);
            base = prev;
            lower = f64::NEG_INFINITY;
            upper = f64::INFINITY;
            let dx2 = (key - base.key) as f64;
            if dx2 > 0.0 {
                lower = lower.max((pos as f64 - err - base.position as f64) / dx2);
                upper = upper.min((pos as f64 + err - base.position as f64) / dx2);
            }
        } else {
            lower = lower.max(slope_lo);
            upper = upper.min(slope_hi);
        }
        prev = candidate;
    }
    let last = SplinePoint {
        key: keys[n - 1],
        position: n - 1,
    };
    if spline.last() != Some(&last) {
        spline.push(last);
    }
    spline
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::prelude::*;

    fn uniform_keys(n: usize, seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut keys: Vec<u64> = (0..n).map(|_| rng.gen_range(0..1u64 << 40)).collect();
        keys.sort_unstable();
        keys
    }

    fn clustered_keys(n: usize, seed: u64) -> Vec<u64> {
        // Heavily skewed keys emulate taxi pickup hot spots after
        // linearization: many keys in few dense ranges.
        let mut rng = StdRng::seed_from_u64(seed);
        let centers: Vec<u64> = (0..8).map(|_| rng.gen_range(0..1u64 << 40)).collect();
        let mut keys: Vec<u64> = (0..n)
            .map(|_| {
                let c = centers[rng.gen_range(0..centers.len())];
                c.saturating_add(rng.gen_range(0..1u64 << 18))
            })
            .collect();
        keys.sort_unstable();
        keys
    }

    #[test]
    fn builder_defaults_match_paper() {
        let b = RadixSplineBuilder::default();
        let rs = b.build(&[1, 2, 3]);
        assert_eq!(rs.radix_bits(), 25);
        assert_eq!(rs.spline_error(), 32);
    }

    #[test]
    #[should_panic(expected = "radix bits")]
    fn builder_rejects_zero_radix_bits() {
        let _ = RadixSplineBuilder::new().radix_bits(0);
    }

    #[test]
    #[should_panic(expected = "spline error")]
    fn builder_rejects_zero_error() {
        let _ = RadixSplineBuilder::new().spline_error(0);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty = RadixSpline::new(&[]);
        assert!(empty.is_empty());
        assert_eq!(empty.lower_bound(&[], 5), 0);
        assert_eq!(empty.count_range(&[], 0, 100), 0);

        let one = RadixSpline::new(&[42]);
        assert_eq!(one.len(), 1);
        assert_eq!(one.lower_bound(&[42], 42), 0);
        assert_eq!(one.upper_bound(&[42], 42), 1);
        assert_eq!(one.lower_bound(&[42], 100), 1);
        assert_eq!(one.lower_bound(&[42], 0), 0);
    }

    #[test]
    fn bounds_match_binary_search_on_uniform_keys() {
        let keys = uniform_keys(10_000, 7);
        let rs = RadixSpline::new(&keys);
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..2000 {
            let q = rng.gen_range(0..1u64 << 41);
            assert_eq!(rs.lower_bound(&keys, q), keys.partition_point(|&k| k < q));
            assert_eq!(rs.upper_bound(&keys, q), keys.partition_point(|&k| k <= q));
        }
    }

    #[test]
    fn bounds_match_binary_search_on_clustered_keys() {
        let keys = clustered_keys(20_000, 11);
        let rs = RadixSplineBuilder::new()
            .radix_bits(18)
            .spline_error(16)
            .build(&keys);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..2000 {
            let q = if rng.gen_bool(0.5) {
                keys[rng.gen_range(0..keys.len())]
            } else {
                rng.gen_range(0..1u64 << 41)
            };
            assert_eq!(
                rs.lower_bound(&keys, q),
                keys.partition_point(|&k| k < q),
                "q={q}"
            );
            assert_eq!(
                rs.upper_bound(&keys, q),
                keys.partition_point(|&k| k <= q),
                "q={q}"
            );
        }
    }

    #[test]
    fn spline_is_much_smaller_than_data() {
        let keys = uniform_keys(50_000, 3);
        let rs = RadixSpline::new(&keys);
        assert!(
            rs.spline_points() < keys.len() / 10,
            "spline should compress: {} points for {} keys",
            rs.spline_points(),
            keys.len()
        );
        assert!(rs.memory_bytes() < keys.len() * 8);
    }

    #[test]
    fn count_range_matches_naive() {
        let keys = clustered_keys(5_000, 21);
        let rs = RadixSpline::new(&keys);
        let lo = keys[100];
        let hi = keys[4_000];
        let expected = keys.iter().filter(|&&k| k >= lo && k <= hi).count();
        assert_eq!(rs.count_range(&keys, lo, hi), expected);
        assert_eq!(rs.count_range(&keys, hi, lo), 0);
    }

    #[test]
    fn duplicate_heavy_keys() {
        let mut keys = vec![500u64; 1000];
        keys.extend(vec![1000u64; 500]);
        keys.extend(vec![1500u64; 250]);
        keys.sort_unstable();
        let rs = RadixSpline::new(&keys);
        assert_eq!(rs.count_range(&keys, 500, 500), 1000);
        assert_eq!(rs.count_range(&keys, 501, 999), 0);
        assert_eq!(rs.count_range(&keys, 0, 2000), 1750);
    }

    #[test]
    fn prediction_error_is_bounded() {
        let keys = uniform_keys(30_000, 13);
        let err = 24;
        let rs = RadixSplineBuilder::new().spline_error(err).build(&keys);
        for (true_pos, &k) in keys.iter().enumerate().step_by(37) {
            let predicted = rs.predict(k);
            // Duplicates make the "true" position ambiguous; compare against
            // the closest position holding the same key.
            let lo = keys.partition_point(|&x| x < k);
            let hi = keys.partition_point(|&x| x <= k);
            let dist = if predicted < lo {
                lo - predicted
            } else if predicted >= hi {
                predicted - (hi - 1)
            } else {
                0
            };
            assert!(
                dist <= err,
                "key {k} at {true_pos}: predicted {predicted}, run {lo}..{hi}"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_bounds_always_match_binary_search(
            mut keys in proptest::collection::vec(0u64..1_000_000, 1..500),
            queries in proptest::collection::vec(0u64..1_000_000, 1..50),
            error in 2usize..64,
            bits in 8u32..26,
        ) {
            keys.sort_unstable();
            let rs = RadixSplineBuilder::new().spline_error(error).radix_bits(bits).build(&keys);
            for q in queries {
                prop_assert_eq!(rs.lower_bound(&keys, q), keys.partition_point(|&k| k < q));
                prop_assert_eq!(rs.upper_bound(&keys, q), keys.partition_point(|&k| k <= q));
            }
        }
    }
}

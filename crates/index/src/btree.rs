//! A B+-tree over 64-bit keys.
//!
//! The paper lists the B+-tree as one of the physical representations a
//! system could use for linearized cells (Section 3, "Polygon Indexing" and
//! "Point Indexing"). This implementation is a textbook bulk-loaded B+-tree
//! with configurable fanout: leaves store sorted key runs, inner nodes store
//! separator keys. It supports the same lower/upper-bound interface as the
//! sorted array so the query layer can swap them freely.

use crate::footprint::MemoryFootprint;

/// Default number of keys per node.
pub const DEFAULT_FANOUT: usize = 64;

/// A static (bulk-loaded) B+-tree over `u64` keys with positional results.
///
/// Positions refer to the rank of the key in the sorted key sequence, which
/// lets callers pair the tree with payload or prefix-sum arrays exactly like
/// the sorted array baseline.
#[derive(Debug, Clone)]
pub struct BPlusTree {
    /// Flattened levels, root last. Each inner level stores separator keys.
    inner_levels: Vec<Vec<u64>>,
    /// Sorted leaf keys.
    leaves: Vec<u64>,
    fanout: usize,
}

impl BPlusTree {
    /// Bulk-loads a tree with the default fanout.
    pub fn new(keys: Vec<u64>) -> Self {
        Self::with_fanout(keys, DEFAULT_FANOUT)
    }

    /// Bulk-loads a tree with an explicit fanout (minimum 2).
    pub fn with_fanout(mut keys: Vec<u64>, fanout: usize) -> Self {
        assert!(fanout >= 2, "fanout must be at least 2");
        keys.sort_unstable();
        keys.shrink_to_fit();
        let mut inner_levels = Vec::new();
        // Build separator levels bottom-up: level i stores the first key of
        // every `fanout`-sized group of the level below.
        let mut current: Vec<u64> = keys.chunks(fanout).map(|chunk| chunk[0]).collect();
        while current.len() > 1 {
            inner_levels.push(current.clone());
            current = current.chunks(fanout).map(|chunk| chunk[0]).collect();
        }
        BPlusTree {
            inner_levels,
            leaves: keys,
            fanout,
        }
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.leaves.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty()
    }

    /// Height of the tree (number of inner levels above the leaves).
    pub fn height(&self) -> usize {
        self.inner_levels.len()
    }

    /// The fanout the tree was built with.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Rank of the first key `>= key`.
    pub fn lower_bound(&self, key: u64) -> usize {
        self.search(key, false)
    }

    /// Rank of the first key `> key`.
    pub fn upper_bound(&self, key: u64) -> usize {
        self.search(key, true)
    }

    /// Number of keys in the inclusive range `[lo, hi]`.
    pub fn count_range(&self, lo: u64, hi: u64) -> usize {
        if lo > hi {
            return 0;
        }
        self.upper_bound(hi) - self.lower_bound(lo)
    }

    /// Whether the key is present.
    pub fn contains(&self, key: u64) -> bool {
        let pos = self.lower_bound(key);
        pos < self.leaves.len() && self.leaves[pos] == key
    }

    /// Appends the flattened levels to a snapshot section — the bulk-load
    /// output is persisted as-is, so loading skips the build entirely.
    pub fn write_snapshot(&self, out: &mut Vec<u8>) {
        use bytes::BufMut;
        out.put_u64_le(self.fanout as u64);
        out.put_u64_le(self.inner_levels.len() as u64);
        for level in &self.inner_levels {
            crate::snapshot::put_u64s(out, level);
        }
        crate::snapshot::put_u64s(out, &self.leaves);
    }

    /// Reads a tree written by [`write_snapshot`](Self::write_snapshot).
    pub fn read_snapshot(
        cur: &mut crate::snapshot::SectionCursor<'_>,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        let fanout = cur.read_u64()? as usize;
        if fanout < 2 {
            return Err(cur.malformed("B+-tree fanout below 2"));
        }
        let levels = cur.read_u64()? as usize;
        let mut inner_levels = Vec::with_capacity(levels);
        for _ in 0..levels {
            inner_levels.push(cur.read_u64s()?);
        }
        let leaves = cur.read_u64s()?;
        let expected_base = leaves.chunks(fanout).count();
        let base_ok = match inner_levels.first() {
            Some(level) => level.len() == expected_base,
            None => expected_base <= 1,
        };
        if !base_ok {
            return Err(cur.malformed("B+-tree levels disagree with leaf count"));
        }
        Ok(BPlusTree {
            inner_levels,
            leaves,
            fanout,
        })
    }

    /// Walks the separator levels top-down to narrow the leaf search range,
    /// then finishes with a binary search within one leaf group.
    fn search(&self, key: u64, upper: bool) -> usize {
        // Each inner level narrows the group index within the level below.
        // Start at the root level (last in `inner_levels`) spanning all of it.
        let mut group = 0usize; // group index at the current level
        for depth in (0..self.inner_levels.len()).rev() {
            let level = &self.inner_levels[depth];
            let start = group * self.fanout;
            let end = (start + self.fanout).min(level.len());
            if start >= level.len() {
                group = level.len().saturating_sub(1);
                continue;
            }
            // Find the child whose separator range contains the key.
            let slice = &level[start..end];
            let offset = slice.partition_point(|&s| s <= key);
            let child = if offset == 0 { 0 } else { offset - 1 };
            group = start + child;
        }
        // `group` now identifies a leaf chunk.
        let start = group * self.fanout;
        let end = (start + self.fanout).min(self.leaves.len());
        if start >= self.leaves.len() {
            return self.leaves.len();
        }
        let slice = &self.leaves[start..end];
        let within = if upper {
            slice.partition_point(|&k| k <= key)
        } else {
            slice.partition_point(|&k| k < key)
        };
        // The key may extend into neighbouring chunks when duplicates span
        // chunk boundaries; correct by scanning outward (bounded by the
        // duplicate run length, which is tiny in practice).
        let mut pos = start + within;
        if upper {
            while pos < self.leaves.len() && self.leaves[pos] <= key {
                pos += 1;
            }
        } else {
            while pos > 0 && self.leaves[pos - 1] >= key {
                pos -= 1;
            }
        }
        pos
    }
}

impl MemoryFootprint for BPlusTree {
    fn memory_bytes(&self) -> usize {
        let inner: usize = self.inner_levels.iter().map(|l| l.capacity()).sum();
        (inner + self.leaves.capacity()) * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sorted_array::SortedKeyArray;
    use proptest::prelude::*;

    #[test]
    fn bulk_load_and_basic_lookups() {
        let tree = BPlusTree::with_fanout((0..100u64).map(|i| i * 2).collect(), 8);
        assert_eq!(tree.len(), 100);
        assert!(!tree.is_empty());
        assert!(tree.height() >= 1);
        assert_eq!(tree.fanout(), 8);
        assert!(tree.contains(42));
        assert!(!tree.contains(43));
        assert_eq!(tree.lower_bound(10), 5);
        assert_eq!(tree.upper_bound(10), 6);
        assert_eq!(tree.count_range(10, 20), 6);
    }

    #[test]
    fn empty_tree() {
        let tree = BPlusTree::new(vec![]);
        assert!(tree.is_empty());
        assert_eq!(tree.lower_bound(7), 0);
        assert_eq!(tree.count_range(0, u64::MAX), 0);
        assert_eq!(tree.height(), 0);
    }

    #[test]
    fn single_leaf_tree() {
        let tree = BPlusTree::with_fanout(vec![5, 1, 9, 3], 16);
        assert_eq!(tree.height(), 0);
        assert_eq!(tree.count_range(2, 6), 2);
    }

    #[test]
    fn duplicate_keys_spanning_chunks() {
        // 50 copies of the same key with a tiny fanout forces duplicates to
        // span many leaf chunks.
        let mut keys = vec![7u64; 50];
        keys.extend(0..5u64);
        keys.extend(100..110u64);
        let tree = BPlusTree::with_fanout(keys, 4);
        assert_eq!(tree.count_range(7, 7), 50);
        assert_eq!(tree.lower_bound(7), 5);
        assert_eq!(tree.upper_bound(7), 55);
    }

    #[test]
    #[should_panic(expected = "fanout must be at least 2")]
    fn rejects_degenerate_fanout() {
        let _ = BPlusTree::with_fanout(vec![1, 2, 3], 1);
    }

    #[test]
    fn memory_footprint_counts_all_levels() {
        let tree = BPlusTree::with_fanout((0..1000u64).collect(), 10);
        assert!(tree.memory_bytes() > 1000 * 8);
        assert!(tree.height() >= 2);
    }

    proptest! {
        #[test]
        fn prop_agrees_with_sorted_array(
            keys in proptest::collection::vec(0u64..10_000, 0..300),
            lo in 0u64..10_000, hi in 0u64..10_000,
            fanout in 2usize..32,
        ) {
            let arr = SortedKeyArray::from_unsorted(keys.clone());
            let tree = BPlusTree::with_fanout(keys, fanout);
            let (lo, hi) = (lo.min(hi), lo.max(hi));
            prop_assert_eq!(tree.lower_bound(lo), arr.lower_bound(lo));
            prop_assert_eq!(tree.upper_bound(hi), arr.upper_bound(hi));
            prop_assert_eq!(tree.count_range(lo, hi), arr.count_range(lo, hi));
        }
    }
}

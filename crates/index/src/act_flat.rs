//! Reference **flat** layout of the frozen Adaptive Cell Trie.
//!
//! This is the pre-succinct query layout [`crate::FrozenCellTrie`] used
//! before its bit-packed re-layout: one pre-order node array with four
//! explicit `u32` child slots per node, SoA posting columns at full width,
//! and per-node subtree summaries as plain vectors. It is kept as the
//! executable specification of the frozen-trie semantics:
//!
//! * the succinct layout's property tests compare the two structures
//!   bit-for-bit (`children_of` / `postings_of` / truncated probes /
//!   `subtree_*` summaries) on randomized region sets, and
//! * the `act_layout` Criterion bench runs a compressed-vs-flat group so
//!   the speed-parity claim of the succinct layout is measured, not
//!   asserted.
//!
//! It is **not** used on any production path — [`crate::FrozenCellTrie`]
//! is the query form — so it favors obviousness over size: 24 bytes per
//! node of child pointers alone, where the succinct layout spends ~1.5.

use crate::act::{AdaptiveCellTrie, CellPosting, PolygonId, TrieNode};
use crate::act_frozen::SubtreeDistance;
use crate::footprint::MemoryFootprint;
use dbsa_grid::{CellId, MAX_LEVEL};
use dbsa_raster::{CellClass, DistanceBins};

/// Sentinel child index: this child does not exist.
const NO_CHILD: u32 = u32::MAX;

/// Sentinel polygon id: the strict subtree holds no posting.
const NO_POLYGON: u32 = u32::MAX;

/// Path-stack capacity: one entry per level, root included.
const STACK: usize = MAX_LEVEL as usize + 1;

/// One flat trie node: four child indices plus the `(offset, len)` slice of
/// the postings arena. 24 bytes, `Copy`, no indirection.
#[derive(Debug, Clone, Copy)]
struct FlatNode {
    children: [u32; 4],
    postings_offset: u32,
    postings_len: u32,
}

/// The flat (uncompressed) frozen trie. Build via [`FlatCellTrie::freeze`].
#[derive(Debug)]
pub struct FlatCellTrie {
    /// All nodes in pre-order; index 0 is the root.
    nodes: Vec<FlatNode>,
    /// Postings arena, polygon column.
    posting_polygons: Vec<PolygonId>,
    /// Postings arena, class column.
    posting_classes: Vec<CellClass>,
    /// Postings arena, distance-annotation column.
    posting_dists: Vec<DistanceBins>,
    /// Strict-subtree distance summary per node, in leaf units.
    deep_dist: Vec<SubtreeDistance>,
    /// Whether every strict-subtree posting shares one polygon.
    deep_single: Vec<bool>,
    /// First strict-subtree posting's polygon (pre-order), or `NO_POLYGON`.
    deep_first: Vec<u32>,
    polygons: usize,
    max_depth: u8,
    /// Covered leaf-key span of the level-`ℓ` truncation.
    covered_at: [Option<(u64, u64)>; STACK],
    /// Number of trie nodes at level ≤ ℓ.
    nodes_at_or_above: [u32; STACK],
}

/// Child position of `leaf`'s ancestor at `level`.
#[inline(always)]
fn child_pos(raw_leaf: u64, level: u8) -> usize {
    ((raw_leaf >> (2 * (MAX_LEVEL - level) as u32 + 1)) & 3) as usize
}

impl FlatCellTrie {
    /// Flattens a pointer trie into the flat pre-order layout.
    pub fn freeze(trie: &AdaptiveCellTrie) -> Self {
        let node_count = trie.node_count();
        let posting_count = trie.posting_count();
        assert!(
            node_count < NO_CHILD as usize && posting_count <= u32::MAX as usize,
            "trie too large for u32 indices ({node_count} nodes, {posting_count} postings)"
        );
        let mut state = FreezeState {
            nodes: Vec::with_capacity(node_count),
            posting_polygons: Vec::with_capacity(posting_count),
            posting_classes: Vec::with_capacity(posting_count),
            posting_dists: Vec::with_capacity(posting_count),
            deep_first: Vec::with_capacity(node_count),
            deep_dist: Vec::with_capacity(node_count),
            deep_single: Vec::with_capacity(node_count),
            covered_at: [None; STACK],
            level_nodes: [0; STACK],
        };
        state.freeze_node(&trie.root, CellId::ROOT);
        debug_assert_eq!(state.nodes.len(), node_count);
        let mut nodes_at_or_above = [0u32; STACK];
        let mut running = 0u32;
        for (cum, count) in nodes_at_or_above.iter_mut().zip(state.level_nodes) {
            running += count;
            *cum = running;
        }
        FlatCellTrie {
            nodes: state.nodes,
            posting_polygons: state.posting_polygons,
            posting_classes: state.posting_classes,
            posting_dists: state.posting_dists,
            deep_first: state.deep_first,
            deep_dist: state.deep_dist,
            deep_single: state.deep_single,
            polygons: trie.polygon_count(),
            max_depth: trie.max_depth(),
            covered_at: state.covered_at,
            nodes_at_or_above,
        }
    }

    /// The covered leaf-key span of the level-`level` truncation.
    pub fn covered_key_range_at(&self, level: u8) -> Option<(u64, u64)> {
        self.covered_at[level.min(MAX_LEVEL) as usize]
    }

    /// Number of trie nodes at level ≤ `level`.
    pub fn nodes_at_or_above(&self, level: u8) -> usize {
        self.nodes_at_or_above[level.min(MAX_LEVEL) as usize] as usize
    }

    /// Number of indexed polygons.
    pub fn polygon_count(&self) -> usize {
        self.polygons
    }

    /// Number of cell postings.
    pub fn posting_count(&self) -> usize {
        self.posting_polygons.len()
    }

    /// Number of trie nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Deepest level at which a posting terminates.
    pub fn max_depth(&self) -> u8 {
        self.max_depth
    }

    #[inline(always)]
    fn node_first_posting(&self, idx: usize) -> Option<CellPosting> {
        let node = &self.nodes[idx];
        (node.postings_len > 0).then(|| self.posting_at(node.postings_offset as usize))
    }

    #[inline(always)]
    fn posting_at(&self, arena_idx: usize) -> CellPosting {
        CellPosting {
            polygon: self.posting_polygons[arena_idx],
            class: self.posting_classes[arena_idx],
            dist: self.posting_dists[arena_idx],
        }
    }

    /// Fills `out` with the postings along the root-to-leaf path, in
    /// coarsest-first order.
    pub fn lookup_leaf_into(&self, leaf: CellId, out: &mut Vec<CellPosting>) {
        debug_assert!(leaf.is_leaf(), "lookup requires a leaf cell id: {leaf}");
        out.clear();
        let raw = leaf.raw();
        let mut node = 0usize;
        self.append_postings(node, out);
        for l in 1..=self.max_depth {
            let child = self.nodes[node].children[child_pos(raw, l)];
            if child == NO_CHILD {
                break;
            }
            node = child as usize;
            self.append_postings(node, out);
        }
    }

    #[inline(always)]
    fn append_postings(&self, idx: usize, out: &mut Vec<CellPosting>) {
        let node = &self.nodes[idx];
        let from = node.postings_offset as usize;
        let to = from + node.postings_len as usize;
        for i in from..to {
            out.push(self.posting_at(i));
        }
    }

    /// The first (coarsest) posting covering the leaf cell, if any.
    pub fn first_posting(&self, leaf: CellId) -> Option<CellPosting> {
        self.first_posting_at(leaf, MAX_LEVEL)
    }

    /// The truncated-covering summary at node `idx`.
    #[inline(always)]
    fn deep_summary(&self, idx: usize) -> Option<CellPosting> {
        let polygon = self.deep_first[idx];
        (polygon != NO_POLYGON).then_some(CellPosting {
            polygon,
            class: CellClass::Boundary,
            dist: DistanceBins::UNKNOWN,
        })
    }

    /// The first polygon posted anywhere in node `idx`'s strict subtree.
    pub fn subtree_first_polygon(&self, idx: u32) -> Option<PolygonId> {
        let polygon = self.deep_first[idx as usize];
        (polygon != NO_POLYGON).then_some(polygon)
    }

    /// The strict-subtree distance summary of node `idx`, in leaf units.
    pub fn subtree_distance(&self, idx: u32) -> SubtreeDistance {
        self.deep_dist[idx as usize]
    }

    /// Whether every strict-subtree posting shares one polygon.
    pub fn subtree_single_region(&self, idx: u32) -> bool {
        self.deep_single[idx as usize]
    }

    /// The four child node indices of node `idx` in quadtree child order.
    pub fn children_of(&self, idx: u32) -> [Option<u32>; 4] {
        self.nodes[idx as usize]
            .children
            .map(|c| (c != NO_CHILD).then_some(c))
    }

    /// The postings stored at node `idx`, in insertion order.
    pub fn postings_of(&self, idx: u32) -> impl Iterator<Item = CellPosting> + '_ {
        let node = &self.nodes[idx as usize];
        let from = node.postings_offset as usize;
        (from..from + node.postings_len as usize).map(move |i| self.posting_at(i))
    }

    /// Whether node `idx` stores any posting.
    pub fn has_postings(&self, idx: u32) -> bool {
        self.nodes[idx as usize].postings_len > 0
    }

    /// The first posting covering the leaf cell at truncation level `level`.
    pub fn first_posting_at(&self, leaf: CellId, level: u8) -> Option<CellPosting> {
        debug_assert!(leaf.is_leaf(), "lookup requires a leaf cell id: {leaf}");
        let raw = leaf.raw();
        let mut node = 0usize;
        if let Some(p) = self.node_first_posting(node) {
            return Some(p);
        }
        for l in 1..=self.max_depth.min(level) {
            let child = self.nodes[node].children[child_pos(raw, l)];
            if child == NO_CHILD {
                return None;
            }
            node = child as usize;
            if let Some(p) = self.node_first_posting(node) {
                return Some(p);
            }
        }
        self.deep_summary(node)
    }

    /// Starts a batched probe cursor truncated at `level`; answers match
    /// [`first_posting_at`](Self::first_posting_at) with the same level.
    pub fn cursor_at(&self, level: u8) -> FlatProbeCursor<'_> {
        FlatProbeCursor::new(self, level)
    }
}

/// Working state of the pre-order flattening.
struct FreezeState {
    nodes: Vec<FlatNode>,
    posting_polygons: Vec<PolygonId>,
    posting_classes: Vec<CellClass>,
    posting_dists: Vec<DistanceBins>,
    deep_first: Vec<u32>,
    deep_dist: Vec<SubtreeDistance>,
    deep_single: Vec<bool>,
    covered_at: [Option<(u64, u64)>; STACK],
    level_nodes: [u32; STACK],
}

/// Summary of a subtree *including* the root's own postings.
#[derive(Clone, Copy)]
struct SubtreeInfo {
    first: u32,
    single: bool,
    dist: SubtreeDistance,
}

impl SubtreeInfo {
    const EMPTY: SubtreeInfo = SubtreeInfo {
        first: NO_POLYGON,
        single: true,
        dist: SubtreeDistance::EMPTY,
    };

    fn fold(&mut self, other: SubtreeInfo) {
        if other.first != NO_POLYGON {
            if self.first == NO_POLYGON {
                self.first = other.first;
                self.single = other.single;
            } else {
                self.single = self.single && other.single && self.first == other.first;
            }
        }
        self.dist.fold(other.dist);
    }
}

impl FreezeState {
    fn freeze_node(&mut self, node: &TrieNode, cell: CellId) -> (u32, SubtreeInfo) {
        let idx = self.nodes.len() as u32;
        let level = cell.level();
        self.level_nodes[level as usize] += 1;
        self.nodes.push(FlatNode {
            children: [NO_CHILD; 4],
            postings_offset: self.posting_polygons.len() as u32,
            postings_len: node.postings.len() as u32,
        });
        self.deep_first.push(NO_POLYGON);
        self.deep_dist.push(SubtreeDistance::EMPTY);
        self.deep_single.push(true);
        if !node.postings.is_empty() {
            for l in 0..STACK as u8 {
                let effective = if level <= l { cell } else { cell.parent_at(l) };
                let (lo, hi) = (effective.range_min().raw(), effective.range_max().raw());
                let slot = &mut self.covered_at[l as usize];
                *slot = Some(match slot {
                    Some((clo, chi)) => ((*clo).min(lo), (*chi).max(hi)),
                    None => (lo, hi),
                });
            }
        }
        let mut own = SubtreeInfo::EMPTY;
        for p in &node.postings {
            self.posting_polygons.push(p.polygon);
            self.posting_classes.push(p.class);
            self.posting_dists.push(p.dist);
            own.fold(SubtreeInfo {
                first: p.polygon,
                single: true,
                dist: SubtreeDistance::of_posting(p.dist, p.class, level),
            });
        }
        let mut deep = SubtreeInfo::EMPTY;
        for (pos, child) in node.children.iter().enumerate() {
            if let Some(child) = child {
                let (child_idx, child_info) = self.freeze_node(child, cell.children()[pos]);
                self.nodes[idx as usize].children[pos] = child_idx;
                deep.fold(child_info);
            }
        }
        self.deep_first[idx as usize] = deep.first;
        self.deep_dist[idx as usize] = deep.dist;
        self.deep_single[idx as usize] = deep.single;
        let mut subtree = own;
        subtree.fold(deep);
        (idx, subtree)
    }
}

impl MemoryFootprint for FlatCellTrie {
    fn memory_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<FlatNode>()
            + self.posting_polygons.capacity() * std::mem::size_of::<PolygonId>()
            + self.posting_classes.capacity() * std::mem::size_of::<CellClass>()
            + self.posting_dists.capacity() * std::mem::size_of::<DistanceBins>()
            + self.deep_first.capacity() * std::mem::size_of::<u32>()
            + self.deep_dist.capacity() * std::mem::size_of::<SubtreeDistance>()
            + self.deep_single.capacity() * std::mem::size_of::<bool>()
    }
}

/// Batched probe cursor over a [`FlatCellTrie`] — the reference
/// implementation of the prefix-sharing re-descent the succinct cursor
/// must reproduce bit-for-bit.
pub struct FlatProbeCursor<'a> {
    trie: &'a FlatCellTrie,
    cutoff: usize,
    stack: [u32; STACK],
    first: [Option<CellPosting>; STACK],
    depth: usize,
    prev: u64,
    has_prev: bool,
    cached: Option<CellPosting>,
}

impl<'a> FlatProbeCursor<'a> {
    fn new(trie: &'a FlatCellTrie, level: u8) -> Self {
        let mut first = [None; STACK];
        first[0] = trie.node_first_posting(0);
        FlatProbeCursor {
            trie,
            cutoff: trie.max_depth.min(level) as usize,
            stack: [0; STACK],
            first,
            depth: 0,
            prev: 0,
            has_prev: false,
            cached: None,
        }
    }

    /// The first posting covering `leaf` at the cursor's truncation level.
    pub fn first_posting(&mut self, leaf: CellId) -> Option<CellPosting> {
        debug_assert!(
            leaf.is_leaf(),
            "cursor probes require a leaf cell id: {leaf}"
        );
        let raw = leaf.raw();
        let start = if self.has_prev {
            let xor = self.prev ^ raw;
            if xor == 0 {
                return self.cached;
            }
            let high_bit = 63 - xor.leading_zeros() as usize;
            let diverge_level = MAX_LEVEL as usize - (high_bit - 1) / 2;
            if self.depth + 1 < diverge_level {
                self.prev = raw;
                return self.cached;
            }
            diverge_level
        } else {
            1
        };
        self.has_prev = true;
        self.prev = raw;
        self.depth = start - 1;
        let mut node = self.stack[self.depth] as usize;
        let mut best = self.first[self.depth];
        for l in start..=self.cutoff {
            let child = self.trie.nodes[node].children[child_pos(raw, l as u8)];
            if child == NO_CHILD {
                break;
            }
            node = child as usize;
            self.depth = l;
            self.stack[l] = child;
            if best.is_none() {
                best = self.trie.node_first_posting(node);
            }
            self.first[l] = best;
        }
        if best.is_none() && self.depth == self.cutoff {
            best = self.trie.deep_summary(node);
        }
        self.cached = best;
        best
    }
}

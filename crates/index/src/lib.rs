//! # dbsa-index — spatial, linearized and learned indexes
//!
//! Index structures for the data-access layer of the paper (Section 3) and
//! the join experiments (Section 5.1):
//!
//! **Linearized (1-D) indexes over cell keys** — points are mapped to leaf
//! cells of the hierarchical grid and indexed by their 64-bit key:
//! * [`SortedKeyArray`] — sorted array + binary search (the "BS" baseline),
//!   with a prefix-sum companion for `COUNT`/`SUM` aggregation,
//! * [`BPlusTree`] — a textbook B+-tree, the classic ordered alternative,
//! * [`RadixSpline`] — the single-pass learned index used by the paper
//!   (spline points + radix table + error-bounded interpolation search).
//!
//! **Hierarchical cell indexes over polygons**:
//! * [`AdaptiveCellTrie`] (ACT) — a radix tree over the linearized cells of
//!   hierarchical raster approximations; point lookups walk the trie and
//!   never touch exact geometry (approximate, distance-bounded),
//! * [`FrozenCellTrie`] — the succinct query form of the ACT: BFS-ordered
//!   nodes navigated by popcount/rank over bit-packed child masks, packed
//!   posting and summary columns, plus a [`SortedProbeCursor`] that answers
//!   sorted probe batches by re-descending only below shared key prefixes,
//! * [`FlatCellTrie`] — the pre-succinct flat layout, kept as the reference
//!   implementation the succinct trie is property-tested and benched
//!   against,
//! * [`ShapeIndex`] — an S2ShapeIndex-like baseline: coarse hierarchical
//!   cells with **exact** point-in-polygon refinement for boundary cells.
//!
//! **Classic spatial baselines over raw coordinates** (MBR filtering):
//! * [`RTree`] — R\*-style tree with quadratic split insertion and an STR
//!   bulk-loading constructor,
//! * [`PointQuadtree`] — bucket PR quadtree,
//! * [`KdTree`] — bulk-built k-d tree.
//!
//! All indexes report their memory footprint through [`MemoryFootprint`],
//! which feeds the paper's in-text storage comparison (ACT ≫ SI ≫ R\*-tree).

pub mod act;
pub mod act_flat;
pub mod act_frozen;
pub mod btree;
pub mod footprint;
pub mod kdtree;
pub mod quadtree;
pub mod radix_spline;
pub mod rtree;
pub mod shape_index;
pub mod snapshot;
pub mod sorted_array;

pub use act::{ActStats, AdaptiveCellTrie, CellPosting, PolygonId};
pub use act_flat::{FlatCellTrie, FlatProbeCursor};
pub use act_frozen::{
    FrozenCellTrie, MultiLevelProbeCursor, SortedProbeCursor, SubtreeDistance, TrieMemoryBreakdown,
};
pub use btree::BPlusTree;
pub use footprint::MemoryFootprint;
pub use kdtree::KdTree;
pub use quadtree::PointQuadtree;
pub use radix_spline::{RadixSpline, RadixSplineBuilder};
pub use rtree::{RTree, RTreeEntry};
pub use shape_index::ShapeIndex;
pub use snapshot::{SectionCursor, SnapshotError, SnapshotFile, SnapshotWriter};
pub use sorted_array::{PrefixSumArray, RangeMinMax, SortedKeyArray};

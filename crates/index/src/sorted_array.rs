//! Sorted key arrays and prefix sums — the "binary search" baseline of the
//! paper's data-access experiment and the backing store of the learned index.

use crate::footprint::MemoryFootprint;
use bytes::{BufMut, Bytes, BytesMut};

/// A sorted array of 64-bit keys (linearized cell ids of points).
///
/// Duplicates are allowed — several points can fall into the same leaf cell.
/// Lookups are classic binary searches; range counts are two binary searches
/// (lower and upper bound), exactly the operation the paper says "really
/// matters" for aggregation queries and that the RadixSpline accelerates.
#[derive(Debug, Clone, Default)]
pub struct SortedKeyArray {
    keys: Vec<u64>,
}

impl SortedKeyArray {
    /// Builds the array from an unsorted key collection.
    pub fn from_unsorted(mut keys: Vec<u64>) -> Self {
        keys.sort_unstable();
        keys.shrink_to_fit();
        SortedKeyArray { keys }
    }

    /// Builds the array from keys that are already sorted.
    ///
    /// # Panics
    /// Panics (in debug builds) if the keys are not sorted.
    pub fn from_sorted(mut keys: Vec<u64>) -> Self {
        debug_assert!(keys.windows(2).all(|w| w[0] <= w[1]), "keys must be sorted");
        keys.shrink_to_fit();
        SortedKeyArray { keys }
    }

    /// The sorted keys.
    pub fn keys(&self) -> &[u64] {
        &self.keys
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Index of the first key `>= key` (lower bound).
    #[inline]
    pub fn lower_bound(&self, key: u64) -> usize {
        self.keys.partition_point(|&k| k < key)
    }

    /// Index of the first key `> key` (upper bound).
    #[inline]
    pub fn upper_bound(&self, key: u64) -> usize {
        self.keys.partition_point(|&k| k <= key)
    }

    /// Number of keys in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn count_range(&self, lo: u64, hi: u64) -> usize {
        if lo > hi {
            return 0;
        }
        self.upper_bound(hi) - self.lower_bound(lo)
    }

    /// Whether the key is present.
    pub fn contains(&self, key: u64) -> bool {
        self.keys.binary_search(&key).is_ok()
    }

    /// The positions (as a range) of all keys in `[lo, hi]`, for callers
    /// that need to visit the matching payloads.
    pub fn range_positions(&self, lo: u64, hi: u64) -> std::ops::Range<usize> {
        if lo > hi {
            return 0..0;
        }
        self.lower_bound(lo)..self.upper_bound(hi)
    }

    /// Serializes the keys into a compact little-endian byte buffer
    /// (used by the experiment harness to report storage sizes and to move
    /// key columns between components without re-encoding).
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.keys.len() * 8);
        for k in &self.keys {
            buf.put_u64_le(*k);
        }
        buf.freeze()
    }

    /// Deserializes keys previously produced by [`to_bytes`](Self::to_bytes).
    pub fn from_bytes(bytes: &[u8]) -> Self {
        assert!(
            bytes.len().is_multiple_of(8),
            "key buffer length must be a multiple of 8"
        );
        let keys = bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("chunk is 8 bytes")))
            .collect();
        SortedKeyArray::from_sorted(keys)
    }
}

impl SortedKeyArray {
    /// Appends the key column to a snapshot section.
    pub fn write_snapshot(&self, out: &mut Vec<u8>) {
        crate::snapshot::put_u64s(out, &self.keys);
    }

    /// Reads a key column written by [`write_snapshot`](Self::write_snapshot).
    pub fn read_snapshot(
        cur: &mut crate::snapshot::SectionCursor<'_>,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        let keys = cur.read_u64s()?;
        if !keys.windows(2).all(|w| w[0] <= w[1]) {
            return Err(cur.malformed("key column is not sorted"));
        }
        Ok(SortedKeyArray { keys })
    }
}

impl MemoryFootprint for SortedKeyArray {
    fn memory_bytes(&self) -> usize {
        // True heap usage: capacity, not length. The constructors shrink,
        // so the two coincide for arrays built through the public API.
        self.keys.capacity() * std::mem::size_of::<u64>()
    }
}

/// Prefix-sum array over per-key values, aligned with a [`SortedKeyArray`].
///
/// Supports O(1) range `SUM` / `COUNT` after two bound lookups, the OLAP
/// trick (Ho et al.) the paper cites for aggregation over linearized cells.
#[derive(Debug, Clone, Default)]
pub struct PrefixSumArray {
    /// `prefix[i]` = sum of values[0..i]; length = n + 1.
    prefix: Vec<f64>,
}

impl PrefixSumArray {
    /// Builds the prefix sums of `values` (in key order).
    pub fn new(values: &[f64]) -> Self {
        let mut prefix = Vec::with_capacity(values.len() + 1);
        prefix.push(0.0);
        let mut acc = 0.0;
        for v in values {
            acc += v;
            prefix.push(acc);
        }
        PrefixSumArray { prefix }
    }

    /// Number of underlying values.
    pub fn len(&self) -> usize {
        self.prefix.len() - 1
    }

    /// Whether there are no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sum of the values in positions `[from, to)`.
    pub fn range_sum(&self, from: usize, to: usize) -> f64 {
        assert!(
            from <= to && to < self.prefix.len(),
            "invalid prefix-sum range {from}..{to}"
        );
        self.prefix[to] - self.prefix[from]
    }

    /// Total sum of all values.
    pub fn total(&self) -> f64 {
        *self
            .prefix
            .last()
            .expect("prefix always has at least one entry")
    }
}

impl PrefixSumArray {
    /// Appends the prefix-sum column to a snapshot section.
    pub fn write_snapshot(&self, out: &mut Vec<u8>) {
        crate::snapshot::put_f64s(out, &self.prefix);
    }

    /// Reads a column written by [`write_snapshot`](Self::write_snapshot).
    pub fn read_snapshot(
        cur: &mut crate::snapshot::SectionCursor<'_>,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        let prefix = cur.read_f64s()?;
        if prefix.is_empty() {
            return Err(cur.malformed("prefix-sum column needs its leading zero"));
        }
        Ok(PrefixSumArray { prefix })
    }
}

impl MemoryFootprint for PrefixSumArray {
    fn memory_bytes(&self) -> usize {
        self.prefix.capacity() * std::mem::size_of::<f64>()
    }
}

/// Block-decomposed sparse-table range-minimum/maximum structure over
/// per-key values, aligned with a [`SortedKeyArray`] like
/// [`PrefixSumArray`].
///
/// Completes the O(1) aggregation story: `COUNT`/`SUM` come from position
/// arithmetic and prefix sums, `MIN`/`MAX` from here — so a raster cell
/// costs O(1) after its two bound lookups *regardless of how many points
/// fall inside it*.
///
/// Layout: values are grouped into fixed blocks of [`Self::BLOCK`] and a
/// sparse table of power-of-two windows is built over the *block* minima /
/// maxima. A query combines the O(1) sparse-table answer for the fully
/// covered blocks with scans of the two partial edge blocks (each at most
/// `BLOCK` elements, and never more than the range width). Space is
/// `n + O(n / BLOCK · log(n / BLOCK))` ≈ 1.1 n values — a pure sparse
/// table over the elements would cost `2 n log n` (~36× the value column
/// at fig-4 scale) for the same asymptotics.
#[derive(Debug, Clone, Default)]
pub struct RangeMinMax {
    /// The values themselves (edge-block scans).
    values: Vec<f64>,
    /// `block_mins[k][b]` = min over blocks `b .. b + 2^k`; level 0 is the
    /// per-block minima.
    block_mins: Vec<Vec<f64>>,
    /// Same layout for the maxima.
    block_maxs: Vec<Vec<f64>>,
}

impl RangeMinMax {
    /// Elements per block. Edge scans touch at most `2 · BLOCK` values, so
    /// queries stay O(1); 64 keeps both edge scans inside one cache line
    /// pair while shrinking the sparse table by `BLOCK·log BLOCK`.
    pub const BLOCK: usize = 64;

    /// Builds the structure over `values` (in key order).
    pub fn new(values: &[f64]) -> Self {
        let blocks = values.len().div_ceil(Self::BLOCK);
        let mut level0_min = Vec::with_capacity(blocks);
        let mut level0_max = Vec::with_capacity(blocks);
        for chunk in values.chunks(Self::BLOCK) {
            level0_min.push(chunk.iter().copied().fold(f64::INFINITY, f64::min));
            level0_max.push(chunk.iter().copied().fold(f64::NEG_INFINITY, f64::max));
        }
        let mut block_mins = vec![level0_min];
        let mut block_maxs = vec![level0_max];
        let mut width = 1usize;
        while 2 * width <= blocks {
            let prev_min = block_mins.last().expect("level 0 always present");
            let prev_max = block_maxs.last().expect("level 0 always present");
            let entries = blocks - 2 * width + 1;
            let mut row_min = Vec::with_capacity(entries);
            let mut row_max = Vec::with_capacity(entries);
            for i in 0..entries {
                row_min.push(prev_min[i].min(prev_min[i + width]));
                row_max.push(prev_max[i].max(prev_max[i + width]));
            }
            block_mins.push(row_min);
            block_maxs.push(row_max);
            width *= 2;
        }
        RangeMinMax {
            values: values.to_vec(),
            block_mins,
            block_maxs,
        }
    }

    /// Number of underlying values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether there are no values.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The indexed values, in the order they were given (key order in the
    /// linearized tables) — shared so callers need not keep a second copy
    /// of the column.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    #[inline]
    fn check_range(&self, from: usize, to: usize) {
        assert!(
            from < to && to <= self.len(),
            "invalid range-min/max range {from}..{to} over {} values",
            self.len()
        );
    }

    /// Min over full blocks `[first_block, last_block]` via the sparse table.
    #[inline]
    fn blocks_min(&self, first_block: usize, last_block: usize) -> f64 {
        let k = usize::ilog2(last_block - first_block + 1) as usize;
        let row = &self.block_mins[k];
        row[first_block].min(row[last_block + 1 - (1 << k)])
    }

    #[inline]
    fn blocks_max(&self, first_block: usize, last_block: usize) -> f64 {
        let k = usize::ilog2(last_block - first_block + 1) as usize;
        let row = &self.block_maxs[k];
        row[first_block].max(row[last_block + 1 - (1 << k)])
    }

    /// Minimum of the values in positions `[from, to)`. O(1): at most two
    /// `BLOCK`-bounded edge scans plus one sparse-table lookup.
    ///
    /// # Panics
    /// Panics if the range is empty or out of bounds.
    pub fn range_min(&self, from: usize, to: usize) -> f64 {
        self.check_range(from, to);
        let first_block = from / Self::BLOCK;
        let last_block = (to - 1) / Self::BLOCK;
        if last_block - first_block < 2 {
            // Range spans at most two blocks: a direct scan touches no more
            // elements than the sparse path would reconstruct.
            return self.values[from..to]
                .iter()
                .copied()
                .fold(f64::INFINITY, f64::min);
        }
        let head_end = (first_block + 1) * Self::BLOCK;
        let tail_start = last_block * Self::BLOCK;
        let edges = self.values[from..head_end]
            .iter()
            .chain(&self.values[tail_start..to])
            .copied()
            .fold(f64::INFINITY, f64::min);
        edges.min(self.blocks_min(first_block + 1, last_block - 1))
    }

    /// Maximum of the values in positions `[from, to)`. O(1): at most two
    /// `BLOCK`-bounded edge scans plus one sparse-table lookup.
    ///
    /// # Panics
    /// Panics if the range is empty or out of bounds.
    pub fn range_max(&self, from: usize, to: usize) -> f64 {
        self.check_range(from, to);
        let first_block = from / Self::BLOCK;
        let last_block = (to - 1) / Self::BLOCK;
        if last_block - first_block < 2 {
            return self.values[from..to]
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max);
        }
        let head_end = (first_block + 1) * Self::BLOCK;
        let tail_start = last_block * Self::BLOCK;
        let edges = self.values[from..head_end]
            .iter()
            .chain(&self.values[tail_start..to])
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        edges.max(self.blocks_max(first_block + 1, last_block - 1))
    }
}

impl RangeMinMax {
    /// Appends the value column and both sparse tables to a snapshot
    /// section — the tables are persisted, not rebuilt, so load cost is
    /// pure I/O.
    pub fn write_snapshot(&self, out: &mut Vec<u8>) {
        use bytes::BufMut;
        crate::snapshot::put_f64s(out, &self.values);
        out.put_u64_le(self.block_mins.len() as u64);
        for row in &self.block_mins {
            crate::snapshot::put_f64s(out, row);
        }
        for row in &self.block_maxs {
            crate::snapshot::put_f64s(out, row);
        }
    }

    /// Reads a structure written by [`write_snapshot`](Self::write_snapshot).
    pub fn read_snapshot(
        cur: &mut crate::snapshot::SectionCursor<'_>,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        let values = cur.read_f64s()?;
        let levels = cur.read_u64()? as usize;
        let mut block_mins = Vec::with_capacity(levels);
        for _ in 0..levels {
            block_mins.push(cur.read_f64s()?);
        }
        let mut block_maxs = Vec::with_capacity(levels);
        for _ in 0..levels {
            block_maxs.push(cur.read_f64s()?);
        }
        let blocks = values.len().div_ceil(Self::BLOCK);
        let level0_ok = match block_mins.first() {
            Some(row) => row.len() == blocks && block_maxs[0].len() == blocks,
            None => blocks == 0,
        };
        if !level0_ok
            || block_mins
                .iter()
                .zip(&block_maxs)
                .any(|(mins, maxs)| mins.len() != maxs.len())
        {
            return Err(cur.malformed("range-min/max tables disagree with value count"));
        }
        Ok(RangeMinMax {
            values,
            block_mins,
            block_maxs,
        })
    }
}

impl MemoryFootprint for RangeMinMax {
    fn memory_bytes(&self) -> usize {
        (self.values.capacity()
            + self.block_mins.iter().map(Vec::capacity).sum::<usize>()
            + self.block_maxs.iter().map(Vec::capacity).sum::<usize>())
            * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> SortedKeyArray {
        SortedKeyArray::from_unsorted(vec![50, 10, 30, 30, 20, 40, 30])
    }

    #[test]
    fn construction_sorts_keys() {
        let arr = sample();
        assert_eq!(arr.keys(), &[10, 20, 30, 30, 30, 40, 50]);
        assert_eq!(arr.len(), 7);
        assert!(!arr.is_empty());
    }

    #[test]
    fn bounds_and_counts() {
        let arr = sample();
        assert_eq!(arr.lower_bound(30), 2);
        assert_eq!(arr.upper_bound(30), 5);
        assert_eq!(arr.count_range(30, 30), 3);
        assert_eq!(arr.count_range(15, 45), 5);
        assert_eq!(arr.count_range(0, 9), 0);
        assert_eq!(arr.count_range(60, 100), 0);
        assert_eq!(arr.count_range(40, 10), 0, "inverted range counts zero");
        assert_eq!(arr.count_range(0, u64::MAX), 7);
    }

    #[test]
    fn contains_and_positions() {
        let arr = sample();
        assert!(arr.contains(40));
        assert!(!arr.contains(41));
        assert_eq!(arr.range_positions(20, 30), 1..5);
        assert_eq!(arr.range_positions(100, 1), 0..0);
    }

    #[test]
    fn empty_array_behaviour() {
        let arr = SortedKeyArray::default();
        assert!(arr.is_empty());
        assert_eq!(arr.count_range(0, u64::MAX), 0);
        assert_eq!(arr.lower_bound(5), 0);
        assert_eq!(arr.memory_bytes(), 0);
    }

    #[test]
    fn byte_round_trip() {
        let arr = sample();
        let bytes = arr.to_bytes();
        assert_eq!(bytes.len(), 7 * 8);
        let back = SortedKeyArray::from_bytes(&bytes);
        assert_eq!(back.keys(), arr.keys());
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn from_bytes_rejects_truncated_buffers() {
        let _ = SortedKeyArray::from_bytes(&[1, 2, 3]);
    }

    #[test]
    fn memory_footprint_scales_with_keys() {
        assert_eq!(sample().memory_bytes(), 7 * 8);
        assert_eq!(sample().memory_human(), "56 B");
    }

    #[test]
    fn prefix_sum_basics() {
        let ps = PrefixSumArray::new(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(ps.len(), 4);
        assert_eq!(ps.total(), 10.0);
        assert_eq!(ps.range_sum(0, 4), 10.0);
        assert_eq!(ps.range_sum(1, 3), 5.0);
        assert_eq!(ps.range_sum(2, 2), 0.0);
        assert_eq!(ps.memory_bytes(), 5 * 8);
    }

    #[test]
    fn empty_prefix_sum() {
        let ps = PrefixSumArray::new(&[]);
        assert!(ps.is_empty());
        assert_eq!(ps.total(), 0.0);
        assert_eq!(ps.range_sum(0, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid prefix-sum range")]
    fn prefix_sum_rejects_out_of_bounds() {
        let ps = PrefixSumArray::new(&[1.0]);
        let _ = ps.range_sum(0, 5);
    }

    #[test]
    fn range_min_max_basics() {
        let rmm = RangeMinMax::new(&[3.0, 1.0, 4.0, 1.5, 9.0, 2.0, 6.0]);
        assert_eq!(rmm.len(), 7);
        assert!(!rmm.is_empty());
        assert_eq!(rmm.range_min(0, 7), 1.0);
        assert_eq!(rmm.range_max(0, 7), 9.0);
        assert_eq!(rmm.range_min(2, 4), 1.5);
        assert_eq!(rmm.range_max(2, 4), 4.0);
        assert_eq!(rmm.range_min(4, 5), 9.0);
        assert_eq!(rmm.range_max(4, 5), 9.0);
        assert!(rmm.memory_bytes() > 7 * 8);
    }

    #[test]
    fn range_min_max_spans_many_blocks() {
        // > 4 blocks so the sparse table over block summaries (not just the
        // edge scans) answers the middle of the range.
        let n = RangeMinMax::BLOCK * 5 + 17;
        let values: Vec<f64> = (0..n).map(|i| ((i * 7919) % 1231) as f64 - 600.0).collect();
        let rmm = RangeMinMax::new(&values);
        for (from, to) in [
            (0, n),
            (3, n - 5),
            (RangeMinMax::BLOCK - 1, 4 * RangeMinMax::BLOCK + 2),
            (RangeMinMax::BLOCK, 3 * RangeMinMax::BLOCK),
        ] {
            let naive_min = values[from..to]
                .iter()
                .copied()
                .fold(f64::INFINITY, f64::min);
            let naive_max = values[from..to]
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max);
            assert_eq!(rmm.range_min(from, to), naive_min, "min {from}..{to}");
            assert_eq!(rmm.range_max(from, to), naive_max, "max {from}..{to}");
        }
        // O(n) space: well under 2x the raw value column.
        assert!(rmm.memory_bytes() < 2 * n * 8);
    }

    #[test]
    fn range_min_max_single_value_and_empty() {
        let one = RangeMinMax::new(&[42.0]);
        assert_eq!(one.range_min(0, 1), 42.0);
        assert_eq!(one.range_max(0, 1), 42.0);
        let empty = RangeMinMax::new(&[]);
        assert!(empty.is_empty());
        assert_eq!(empty.memory_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "invalid range-min/max range")]
    fn range_min_max_rejects_empty_range() {
        let rmm = RangeMinMax::new(&[1.0, 2.0]);
        let _ = rmm.range_min(1, 1);
    }

    proptest! {
        #[test]
        fn prop_count_range_matches_linear_scan(
            mut keys in proptest::collection::vec(0u64..1000, 0..200),
            lo in 0u64..1000, hi in 0u64..1000,
        ) {
            let arr = SortedKeyArray::from_unsorted(keys.clone());
            keys.sort_unstable();
            let expected = keys.iter().filter(|&&k| k >= lo.min(hi) && k <= hi.max(lo)).count();
            prop_assert_eq!(arr.count_range(lo.min(hi), hi.max(lo)), expected);
        }

        #[test]
        fn prop_prefix_sum_matches_naive_sum(
            values in proptest::collection::vec(-100f64..100.0, 1..100),
            a in 0usize..100, b in 0usize..100,
        ) {
            let ps = PrefixSumArray::new(&values);
            let from = a.min(b).min(values.len());
            let to = a.max(b).min(values.len());
            let expected: f64 = values[from..to].iter().sum();
            prop_assert!((ps.range_sum(from, to) - expected).abs() < 1e-9);
        }

        #[test]
        fn prop_byte_round_trip(keys in proptest::collection::vec(any::<u64>(), 0..100)) {
            let arr = SortedKeyArray::from_unsorted(keys);
            let back = SortedKeyArray::from_bytes(&arr.to_bytes());
            prop_assert_eq!(back.keys(), arr.keys());
        }

        #[test]
        fn prop_range_min_max_matches_naive_scan(
            values in proptest::collection::vec(-1000f64..1000.0, 1..400),
            a in 0usize..400, b in 0usize..400,
        ) {
            let rmm = RangeMinMax::new(&values);
            let from = a.min(b).min(values.len() - 1);
            let to = (a.max(b) + 1).min(values.len());
            let naive_min = values[from..to].iter().copied().fold(f64::INFINITY, f64::min);
            let naive_max = values[from..to].iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert_eq!(rmm.range_min(from, to), naive_min);
            prop_assert_eq!(rmm.range_max(from, to), naive_max);
        }
    }
}

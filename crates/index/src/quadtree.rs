//! Bucket PR quadtree over points.
//!
//! One of the paper's spatial baselines for point indexing (implemented
//! "based on recent research", i.e. the learned-spatial-index study of
//! Pandey et al.). Space is recursively split into four quadrants; leaves
//! hold up to `capacity` points.

use crate::footprint::MemoryFootprint;
use dbsa_geom::{BoundingBox, Point};

#[derive(Debug)]
enum QNode {
    Leaf(Vec<(Point, u64)>),
    Inner(Box<[QuadChild; 4]>),
}

#[derive(Debug)]
struct QuadChild {
    bounds: BoundingBox,
    node: QNode,
}

/// A point quadtree with bucketed leaves.
#[derive(Debug)]
pub struct PointQuadtree {
    bounds: BoundingBox,
    root: QNode,
    capacity: usize,
    max_depth: usize,
    len: usize,
}

impl PointQuadtree {
    /// Default leaf bucket capacity.
    pub const DEFAULT_CAPACITY: usize = 64;
    /// Default maximum tree depth (prevents degeneracy on duplicate points).
    pub const DEFAULT_MAX_DEPTH: usize = 24;

    /// Creates an empty quadtree over the given bounds.
    pub fn new(bounds: BoundingBox) -> Self {
        Self::with_parameters(bounds, Self::DEFAULT_CAPACITY, Self::DEFAULT_MAX_DEPTH)
    }

    /// Creates an empty quadtree with explicit capacity and depth limits.
    pub fn with_parameters(bounds: BoundingBox, capacity: usize, max_depth: usize) -> Self {
        assert!(!bounds.is_empty(), "quadtree bounds must not be empty");
        assert!(capacity >= 1, "bucket capacity must be at least 1");
        assert!(max_depth >= 1, "maximum depth must be at least 1");
        PointQuadtree {
            bounds,
            root: QNode::Leaf(Vec::new()),
            capacity,
            max_depth,
            len: 0,
        }
    }

    /// Builds a quadtree from a point collection (ids are slice positions).
    pub fn build(bounds: BoundingBox, points: &[Point]) -> Self {
        let mut tree = Self::new(bounds);
        for (i, p) in points.iter().enumerate() {
            tree.insert(*p, i as u64);
        }
        tree
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a point with its identifier. Points outside the tree bounds
    /// are clamped into the nearest boundary cell (the workloads guarantee
    /// in-bounds points; clamping keeps the structure total).
    pub fn insert(&mut self, p: Point, id: u64) {
        let bounds = self.bounds;
        let capacity = self.capacity;
        let max_depth = self.max_depth;
        insert_rec(&mut self.root, &bounds, p, id, capacity, max_depth, 0);
        self.len += 1;
    }

    /// Ids of all points inside the query box.
    pub fn query_bbox(&self, query: &BoundingBox) -> Vec<u64> {
        let mut out = Vec::new();
        query_rec(&self.root, &self.bounds, query, &mut out);
        out
    }

    /// Visits all `(point, id)` pairs inside the query box.
    pub fn for_each_in_bbox<F: FnMut(&Point, u64)>(&self, query: &BoundingBox, mut f: F) {
        visit_rec(&self.root, &self.bounds, query, &mut f);
    }

    /// Number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        fn count(node: &QNode) -> usize {
            match node {
                QNode::Leaf(_) => 1,
                QNode::Inner(children) => {
                    1 + children.iter().map(|c| count(&c.node)).sum::<usize>()
                }
            }
        }
        count(&self.root)
    }
}

impl MemoryFootprint for PointQuadtree {
    fn memory_bytes(&self) -> usize {
        fn bytes(node: &QNode) -> usize {
            match node {
                QNode::Leaf(pts) => pts.len() * (std::mem::size_of::<Point>() + 8),
                QNode::Inner(children) => children
                    .iter()
                    .map(|c| std::mem::size_of::<BoundingBox>() + bytes(&c.node))
                    .sum(),
            }
        }
        bytes(&self.root)
    }
}

fn quadrants(bounds: &BoundingBox) -> [BoundingBox; 4] {
    let c = bounds.center();
    [
        BoundingBox::from_bounds(bounds.min.x, bounds.min.y, c.x, c.y),
        BoundingBox::from_bounds(c.x, bounds.min.y, bounds.max.x, c.y),
        BoundingBox::from_bounds(bounds.min.x, c.y, c.x, bounds.max.y),
        BoundingBox::from_bounds(c.x, c.y, bounds.max.x, bounds.max.y),
    ]
}

fn quadrant_of(bounds: &BoundingBox, p: &Point) -> usize {
    let c = bounds.center();
    match (p.x >= c.x, p.y >= c.y) {
        (false, false) => 0,
        (true, false) => 1,
        (false, true) => 2,
        (true, true) => 3,
    }
}

fn insert_rec(
    node: &mut QNode,
    bounds: &BoundingBox,
    p: Point,
    id: u64,
    capacity: usize,
    max_depth: usize,
    depth: usize,
) {
    match node {
        QNode::Leaf(points) => {
            points.push((p, id));
            if points.len() > capacity && depth < max_depth {
                // Split the bucket into four children.
                let contents = std::mem::take(points);
                let qs = quadrants(bounds);
                let mut children = Box::new([
                    QuadChild {
                        bounds: qs[0],
                        node: QNode::Leaf(Vec::new()),
                    },
                    QuadChild {
                        bounds: qs[1],
                        node: QNode::Leaf(Vec::new()),
                    },
                    QuadChild {
                        bounds: qs[2],
                        node: QNode::Leaf(Vec::new()),
                    },
                    QuadChild {
                        bounds: qs[3],
                        node: QNode::Leaf(Vec::new()),
                    },
                ]);
                for (cp, cid) in contents {
                    let q = quadrant_of(bounds, &cp);
                    insert_rec(
                        &mut children[q].node,
                        &qs[q],
                        cp,
                        cid,
                        capacity,
                        max_depth,
                        depth + 1,
                    );
                }
                *node = QNode::Inner(children);
            }
        }
        QNode::Inner(children) => {
            let q = quadrant_of(bounds, &p);
            let child_bounds = children[q].bounds;
            insert_rec(
                &mut children[q].node,
                &child_bounds,
                p,
                id,
                capacity,
                max_depth,
                depth + 1,
            );
        }
    }
}

fn query_rec(node: &QNode, bounds: &BoundingBox, query: &BoundingBox, out: &mut Vec<u64>) {
    if !bounds.intersects(query) {
        return;
    }
    match node {
        QNode::Leaf(points) => {
            for (p, id) in points {
                if query.contains_point(p) {
                    out.push(*id);
                }
            }
        }
        QNode::Inner(children) => {
            for child in children.iter() {
                query_rec(&child.node, &child.bounds, query, out);
            }
        }
    }
}

fn visit_rec<F: FnMut(&Point, u64)>(
    node: &QNode,
    bounds: &BoundingBox,
    query: &BoundingBox,
    f: &mut F,
) {
    if !bounds.intersects(query) {
        return;
    }
    match node {
        QNode::Leaf(points) => {
            for (p, id) in points {
                if query.contains_point(p) {
                    f(p, *id);
                }
            }
        }
        QNode::Inner(children) => {
            for child in children.iter() {
                visit_rec(&child.node, &child.bounds, query, f);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::prelude::*;

    fn world() -> BoundingBox {
        BoundingBox::from_bounds(0.0, 0.0, 1000.0, 1000.0)
    }

    fn random_points(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)))
            .collect()
    }

    fn naive(points: &[Point], q: &BoundingBox) -> Vec<u64> {
        points
            .iter()
            .enumerate()
            .filter(|(_, p)| q.contains_point(p))
            .map(|(i, _)| i as u64)
            .collect()
    }

    #[test]
    fn build_and_query() {
        let points = random_points(2000, 1);
        let tree = PointQuadtree::build(world(), &points);
        assert_eq!(tree.len(), 2000);
        assert!(tree.node_count() > 1);
        for q in [
            BoundingBox::from_bounds(0.0, 0.0, 100.0, 100.0),
            BoundingBox::from_bounds(400.0, 400.0, 600.0, 600.0),
            BoundingBox::from_bounds(990.0, 990.0, 1000.0, 1000.0),
        ] {
            let mut hits = tree.query_bbox(&q);
            hits.sort_unstable();
            assert_eq!(hits, naive(&points, &q));
        }
    }

    #[test]
    fn duplicate_points_do_not_recurse_forever() {
        let mut tree = PointQuadtree::with_parameters(world(), 4, 8);
        for i in 0..100 {
            tree.insert(Point::new(500.0, 500.0), i);
        }
        assert_eq!(tree.len(), 100);
        let hits = tree.query_bbox(&BoundingBox::from_bounds(499.0, 499.0, 501.0, 501.0));
        assert_eq!(hits.len(), 100);
    }

    #[test]
    fn empty_tree_and_miss_queries() {
        let tree = PointQuadtree::new(world());
        assert!(tree.is_empty());
        assert!(tree.query_bbox(&world()).is_empty());
        let tree = PointQuadtree::build(world(), &random_points(50, 2));
        assert!(tree
            .query_bbox(&BoundingBox::from_bounds(2000.0, 2000.0, 3000.0, 3000.0))
            .is_empty());
    }

    #[test]
    fn for_each_matches_query() {
        let points = random_points(500, 3);
        let tree = PointQuadtree::build(world(), &points);
        let q = BoundingBox::from_bounds(100.0, 100.0, 700.0, 300.0);
        let mut visited = Vec::new();
        tree.for_each_in_bbox(&q, |_, id| visited.push(id));
        visited.sort_unstable();
        let mut expected = tree.query_bbox(&q);
        expected.sort_unstable();
        assert_eq!(visited, expected);
    }

    #[test]
    fn out_of_bounds_points_are_clamped_not_lost() {
        let mut tree = PointQuadtree::new(world());
        tree.insert(Point::new(-50.0, 500.0), 0);
        tree.insert(Point::new(1500.0, 500.0), 1);
        assert_eq!(tree.len(), 2);
        // They are findable with a query covering the whole extent plus margins.
        let hits = tree.query_bbox(&BoundingBox::from_bounds(-100.0, -100.0, 2000.0, 2000.0));
        assert_eq!(hits.len(), 2);
    }

    #[test]
    #[should_panic(expected = "bounds must not be empty")]
    fn rejects_empty_bounds() {
        let _ = PointQuadtree::new(BoundingBox::EMPTY);
    }

    #[test]
    fn memory_footprint_positive() {
        let tree = PointQuadtree::build(world(), &random_points(100, 4));
        assert!(tree.memory_bytes() >= 100 * 24);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_query_matches_naive(
            pts in proptest::collection::vec((0f64..1000.0, 0f64..1000.0), 0..300),
            qx in 0f64..1000.0, qy in 0f64..1000.0, w in 0f64..500.0, h in 0f64..500.0,
            capacity in 1usize..64,
        ) {
            let points: Vec<Point> = pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let mut tree = PointQuadtree::with_parameters(world(), capacity, 16);
            for (i, p) in points.iter().enumerate() {
                tree.insert(*p, i as u64);
            }
            let q = BoundingBox::from_bounds(qx, qy, (qx + w).min(1000.0), (qy + h).min(1000.0));
            let mut hits = tree.query_bbox(&q);
            hits.sort_unstable();
            prop_assert_eq!(hits, naive(&points, &q));
        }
    }
}

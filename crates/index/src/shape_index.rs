//! S2ShapeIndex-like baseline ("SI" in the paper's Figure 6).
//!
//! Google's S2ShapeIndex approximates each polygon with a *coarse*
//! hierarchical cell covering and keeps the exact geometry around: cells
//! fully inside a polygon answer directly, cells crossed by a boundary fall
//! back to an exact point-in-polygon test. Unlike ACT, the covering is not
//! distance-bounded and the evaluation is exact — so SI sits between the
//! R\*-tree (pure MBR filtering, every hit refined) and ACT (fine-grained,
//! no refinement at all), which is exactly where Figure 6 places it.

use crate::act::PolygonId;
use crate::footprint::MemoryFootprint;
use crate::snapshot;
use dbsa_geom::{MultiPolygon, Point};
use dbsa_grid::{CellId, GridExtent};
use dbsa_raster::{refine_contains, BoundaryPolicy, CellClass, HierarchicalRaster};

/// A cell posting: which polygon, and whether exact refinement is needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ShapeCell {
    range_min: CellId,
    range_max: CellId,
    polygon: PolygonId,
    needs_refinement: bool,
}

/// The shape index: coarse cell coverings plus exact refinement.
#[derive(Debug)]
pub struct ShapeIndex {
    extent: GridExtent,
    /// All coverings' cells flattened and sorted by range start.
    cells: Vec<ShapeCell>,
    /// `prefix_max[i]` = the largest `range_max` among `cells[0..=i]`; lets
    /// stabbing queries stop scanning as soon as no earlier cell can still
    /// cover the probe (classic interval-stabbing trick).
    prefix_max: Vec<CellId>,
    /// The exact geometries, kept for refinement.
    polygons: Vec<MultiPolygon>,
    /// Cells-per-polygon budget used to build the coverings.
    cells_per_polygon: usize,
}

impl ShapeIndex {
    /// Default number of covering cells per polygon (S2's default
    /// `max_cells` for coverings is 8; SI uses interior coverings of similar
    /// coarseness).
    pub const DEFAULT_CELLS_PER_POLYGON: usize = 8;

    /// Builds the index over a polygon collection with the default coarse
    /// covering budget.
    pub fn build(polygons: &[MultiPolygon], extent: &GridExtent) -> Self {
        Self::with_cells_per_polygon(polygons, extent, Self::DEFAULT_CELLS_PER_POLYGON)
    }

    /// Builds the index with an explicit cells-per-polygon budget.
    pub fn with_cells_per_polygon(
        polygons: &[MultiPolygon],
        extent: &GridExtent,
        cells_per_polygon: usize,
    ) -> Self {
        let mut cells = Vec::new();
        for (pid, poly) in polygons.iter().enumerate() {
            let raster = HierarchicalRaster::with_cell_budget(
                poly,
                extent,
                cells_per_polygon.max(4),
                BoundaryPolicy::Conservative,
            );
            for cell in raster.cells() {
                cells.push(ShapeCell {
                    range_min: cell.id.range_min(),
                    range_max: cell.id.range_max(),
                    polygon: pid as PolygonId,
                    needs_refinement: cell.class == CellClass::Boundary,
                });
            }
        }
        cells.sort_by_key(|c| c.range_min);
        cells.shrink_to_fit();
        let mut prefix_max = Vec::with_capacity(cells.len());
        let mut running = CellId::ROOT.range_min();
        for c in &cells {
            running = running.max(c.range_max);
            prefix_max.push(running);
        }
        ShapeIndex {
            extent: *extent,
            cells,
            prefix_max,
            polygons: polygons.to_vec(),
            cells_per_polygon,
        }
    }

    /// Number of indexed polygons.
    pub fn polygon_count(&self) -> usize {
        self.polygons.len()
    }

    /// Total number of covering cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// The covering budget the index was built with.
    pub fn cells_per_polygon(&self) -> usize {
        self.cells_per_polygon
    }

    /// Exact lookup: the polygons containing the point.
    ///
    /// Interior covering cells answer immediately; boundary cells trigger an
    /// exact point-in-polygon test. The result is exact (unlike ACT) but
    /// each boundary hit costs a PIP test linear in the polygon size.
    pub fn lookup(&self, p: &Point) -> Vec<PolygonId> {
        let mut refinements = 0u64;
        self.lookup_counting(p, &mut refinements)
    }

    /// The grid extent the coverings were built on (probe loops use it to
    /// linearize points once and batch-sort them by leaf key).
    pub fn extent(&self) -> &GridExtent {
        &self.extent
    }

    /// Exact lookup that also reports how many exact PIP refinements were
    /// performed (the quantity the paper's analysis attributes the cost to).
    pub fn lookup_counting(&self, p: &Point, refinements: &mut u64) -> Vec<PolygonId> {
        let mut out = Vec::new();
        self.lookup_counting_into(p, refinements, &mut out);
        out
    }

    /// Allocation-free variant of [`lookup_counting`](Self::lookup_counting):
    /// clears and fills a caller-provided buffer so per-probe allocation
    /// disappears from the join's probe loop.
    pub fn lookup_counting_into(&self, p: &Point, refinements: &mut u64, out: &mut Vec<PolygonId>) {
        let leaf = self.extent.leaf_cell_id(p);
        out.clear();
        // Candidate cells are those whose range contains the leaf. They are
        // sorted by range_min, and ranges can nest across polygons, so scan
        // backwards from the partition point until ranges can no longer
        // cover the leaf.
        let idx = self.cells.partition_point(|c| c.range_min <= leaf);
        for i in (0..idx).rev() {
            // No cell at or before position i can cover the leaf any more:
            // stop scanning (interval stabbing with a prefix maximum).
            if self.prefix_max[i] < leaf {
                break;
            }
            let cell = &self.cells[i];
            if cell.range_min <= leaf && leaf <= cell.range_max {
                let hit = if cell.needs_refinement {
                    refine_contains(&self.polygons[cell.polygon as usize], p, refinements)
                } else {
                    true
                };
                if hit && !out.contains(&cell.polygon) {
                    out.push(cell.polygon);
                }
            }
        }
        out.sort_unstable();
    }

    /// Convenience: the first containing polygon.
    pub fn lookup_first(&self, p: &Point) -> Option<PolygonId> {
        self.lookup(p).into_iter().next()
    }
}

impl ShapeIndex {
    /// Appends the covering cells (SoA), the prefix-max column, and the
    /// exact geometry to a snapshot section — no re-rasterization on load.
    pub fn write_snapshot(&self, out: &mut Vec<u8>) {
        use bytes::BufMut;
        use snapshot::{put_multipolygons, put_u32s, put_u64s, put_u8s};
        snapshot::put_extent(out, &self.extent);
        put_u64s(
            out,
            &self
                .cells
                .iter()
                .map(|c| c.range_min.raw())
                .collect::<Vec<_>>(),
        );
        put_u64s(
            out,
            &self
                .cells
                .iter()
                .map(|c| c.range_max.raw())
                .collect::<Vec<_>>(),
        );
        put_u32s(
            out,
            &self.cells.iter().map(|c| c.polygon).collect::<Vec<_>>(),
        );
        put_u8s(
            out,
            &self
                .cells
                .iter()
                .map(|c| c.needs_refinement as u8)
                .collect::<Vec<_>>(),
        );
        put_u64s(
            out,
            &self.prefix_max.iter().map(|c| c.raw()).collect::<Vec<_>>(),
        );
        put_multipolygons(out, &self.polygons);
        out.put_u64_le(self.cells_per_polygon as u64);
    }

    /// Reads an index written by [`write_snapshot`](Self::write_snapshot).
    pub fn read_snapshot(
        cur: &mut snapshot::SectionCursor<'_>,
    ) -> Result<Self, snapshot::SnapshotError> {
        let extent = snapshot::read_extent(cur)?;
        let range_min = cur.read_u64s()?;
        let range_max = cur.read_u64s()?;
        let polygon_ids = cur.read_u32s()?;
        let refinement = cur.read_u8s()?;
        let n = range_min.len();
        if [range_max.len(), polygon_ids.len(), refinement.len()] != [n; 3] {
            return Err(cur.malformed("covering-cell columns disagree on length"));
        }
        let cells: Vec<ShapeCell> = (0..n)
            .map(|i| ShapeCell {
                range_min: CellId::from_raw(range_min[i]),
                range_max: CellId::from_raw(range_max[i]),
                polygon: polygon_ids[i],
                needs_refinement: refinement[i] != 0,
            })
            .collect();
        let prefix_max: Vec<CellId> = cur.read_u64s()?.into_iter().map(CellId::from_raw).collect();
        if prefix_max.len() != n {
            return Err(cur.malformed("prefix-max column disagrees with cell count"));
        }
        let polygons = snapshot::read_multipolygons(cur)?;
        if cells.iter().any(|c| c.polygon as usize >= polygons.len()) {
            return Err(cur.malformed("covering cell references a missing polygon"));
        }
        let cells_per_polygon = cur.read_u64()? as usize;
        Ok(ShapeIndex {
            extent,
            cells,
            prefix_max,
            polygons,
            cells_per_polygon,
        })
    }
}

impl MemoryFootprint for ShapeIndex {
    fn memory_bytes(&self) -> usize {
        // Covering cells; the exact geometry is shared with the base table
        // in a real system, so it is not charged to the index (same
        // convention as the paper's 1.2 MB figure for SI).
        self.cells.capacity() * std::mem::size_of::<ShapeCell>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbsa_geom::Polygon;
    use proptest::prelude::*;

    fn extent() -> GridExtent {
        GridExtent::new(Point::new(0.0, 0.0), 1024.0)
    }

    fn polygons() -> Vec<MultiPolygon> {
        vec![
            MultiPolygon::from(Polygon::from_coords(&[
                (100.0, 100.0),
                (300.0, 100.0),
                (300.0, 300.0),
                (100.0, 300.0),
            ])),
            MultiPolygon::from(Polygon::from_coords(&[
                (300.0, 100.0),
                (500.0, 100.0),
                (500.0, 300.0),
                (300.0, 300.0),
            ])),
            // An L-shaped region exercises refinement on concave boundaries.
            MultiPolygon::from(Polygon::from_coords(&[
                (600.0, 600.0),
                (900.0, 600.0),
                (900.0, 750.0),
                (750.0, 750.0),
                (750.0, 900.0),
                (600.0, 900.0),
            ])),
        ]
    }

    #[test]
    fn lookups_are_exact() {
        let polys = polygons();
        let si = ShapeIndex::build(&polys, &extent());
        assert_eq!(si.polygon_count(), 3);
        assert!(si.cell_count() > 0);

        // Sweep a grid and compare against exact containment everywhere.
        for i in 0..50 {
            for j in 0..50 {
                let p = Point::new(i as f64 * 20.0 + 1.0, j as f64 * 20.0 + 1.0);
                let expected: Vec<PolygonId> = polys
                    .iter()
                    .enumerate()
                    .filter(|(_, poly)| poly.contains_point(&p))
                    .map(|(i, _)| i as PolygonId)
                    .collect();
                assert_eq!(si.lookup(&p), expected, "mismatch at {p:?}");
            }
        }
    }

    #[test]
    fn interior_hits_avoid_refinement() {
        let polys = polygons();
        let si = ShapeIndex::with_cells_per_polygon(&polys, &extent(), 64);
        let mut refinements = 0u64;
        // A deep interior point should be answered by an interior cell.
        let hits = si.lookup_counting(&Point::new(200.0, 200.0), &mut refinements);
        assert_eq!(hits, vec![0]);
        assert_eq!(refinements, 0, "interior lookups must not refine");
        // A point near an edge requires a PIP refinement.
        let mut refinements = 0u64;
        let _ = si.lookup_counting(&Point::new(100.5, 200.0), &mut refinements);
        assert!(refinements >= 1);
    }

    #[test]
    fn coarser_coverings_use_fewer_cells_but_more_refinements() {
        let polys = polygons();
        let coarse = ShapeIndex::with_cells_per_polygon(&polys, &extent(), 4);
        let fine = ShapeIndex::with_cells_per_polygon(&polys, &extent(), 256);
        assert!(coarse.cell_count() < fine.cell_count());
        assert!(coarse.memory_bytes() < fine.memory_bytes());
        assert_eq!(coarse.cells_per_polygon(), 4);

        // Count refinements over a sweep: the fine covering needs fewer.
        let mut coarse_ref = 0u64;
        let mut fine_ref = 0u64;
        for i in 0..40 {
            for j in 0..40 {
                let p = Point::new(i as f64 * 25.0 + 2.0, j as f64 * 25.0 + 2.0);
                let _ = coarse.lookup_counting(&p, &mut coarse_ref);
                let _ = fine.lookup_counting(&p, &mut fine_ref);
            }
        }
        assert!(
            fine_ref <= coarse_ref,
            "finer covering should refine less: {fine_ref} vs {coarse_ref}"
        );
    }

    #[test]
    fn missing_points_return_nothing() {
        let si = ShapeIndex::build(&polygons(), &extent());
        assert!(si.lookup(&Point::new(50.0, 900.0)).is_empty());
        assert_eq!(si.lookup_first(&Point::new(50.0, 900.0)), None);
        assert_eq!(si.lookup_first(&Point::new(200.0, 200.0)), Some(0));
    }

    #[test]
    fn empty_index() {
        let si = ShapeIndex::build(&[], &extent());
        assert_eq!(si.polygon_count(), 0);
        assert_eq!(si.cell_count(), 0);
        assert!(si.lookup(&Point::new(1.0, 1.0)).is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn prop_shape_index_always_matches_exact_containment(
            px in 0f64..1024.0, py in 0f64..1024.0,
            budget in 4usize..64,
        ) {
            let polys = polygons();
            let si = ShapeIndex::with_cells_per_polygon(&polys, &extent(), budget);
            let p = Point::new(px, py);
            let expected: Vec<PolygonId> = polys
                .iter()
                .enumerate()
                .filter(|(_, poly)| poly.contains_point(&p))
                .map(|(i, _)| i as PolygonId)
                .collect();
            prop_assert_eq!(si.lookup(&p), expected);
        }
    }
}

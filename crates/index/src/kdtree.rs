//! Bulk-built k-d tree over points.
//!
//! The k-d tree baseline of the paper's data-access experiment. Built once
//! by recursive median splitting (alternating axes); supports box range
//! queries that return candidate point ids.

use crate::footprint::MemoryFootprint;
use dbsa_geom::{BoundingBox, Point};

#[derive(Debug)]
struct KdNode {
    /// The splitting point (also an indexed point).
    point: Point,
    id: u64,
    /// Split axis: 0 = x, 1 = y.
    axis: u8,
    left: Option<Box<KdNode>>,
    right: Option<Box<KdNode>>,
}

/// A static k-d tree over points.
#[derive(Debug)]
pub struct KdTree {
    root: Option<Box<KdNode>>,
    len: usize,
}

impl KdTree {
    /// Builds a k-d tree from a point collection (ids are slice positions).
    pub fn build(points: &[Point]) -> Self {
        let mut items: Vec<(Point, u64)> = points
            .iter()
            .enumerate()
            .map(|(i, p)| (*p, i as u64))
            .collect();
        let len = items.len();
        let root = build_rec(&mut items, 0);
        KdTree { root, len }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree (0 for an empty tree).
    pub fn height(&self) -> usize {
        fn h(node: &Option<Box<KdNode>>) -> usize {
            node.as_ref()
                .map(|n| 1 + h(&n.left).max(h(&n.right)))
                .unwrap_or(0)
        }
        h(&self.root)
    }

    /// Ids of all points inside the query box.
    pub fn query_bbox(&self, query: &BoundingBox) -> Vec<u64> {
        let mut out = Vec::new();
        self.for_each_in_bbox(query, |_, id| out.push(id));
        out
    }

    /// Visits every `(point, id)` pair inside the query box.
    pub fn for_each_in_bbox<F: FnMut(&Point, u64)>(&self, query: &BoundingBox, mut f: F) {
        fn visit<F: FnMut(&Point, u64)>(
            node: &Option<Box<KdNode>>,
            query: &BoundingBox,
            f: &mut F,
        ) {
            let Some(n) = node else { return };
            if query.contains_point(&n.point) {
                f(&n.point, n.id);
            }
            let (coord, lo, hi) = if n.axis == 0 {
                (n.point.x, query.min.x, query.max.x)
            } else {
                (n.point.y, query.min.y, query.max.y)
            };
            if lo <= coord {
                visit(&n.left, query, f);
            }
            if hi >= coord {
                visit(&n.right, query, f);
            }
        }
        visit(&self.root, query, &mut f);
    }

    /// The indexed point nearest to `target`, if the tree is non-empty.
    pub fn nearest(&self, target: &Point) -> Option<(Point, u64, f64)> {
        fn search(
            node: &Option<Box<KdNode>>,
            target: &Point,
            best: &mut Option<(Point, u64, f64)>,
        ) {
            let Some(n) = node else { return };
            let d = n.point.distance(target);
            if best.map(|(_, _, bd)| d < bd).unwrap_or(true) {
                *best = Some((n.point, n.id, d));
            }
            let diff = if n.axis == 0 {
                target.x - n.point.x
            } else {
                target.y - n.point.y
            };
            let (near, far) = if diff < 0.0 {
                (&n.left, &n.right)
            } else {
                (&n.right, &n.left)
            };
            search(near, target, best);
            if best.map(|(_, _, bd)| diff.abs() < bd).unwrap_or(true) {
                search(far, target, best);
            }
        }
        let mut best = None;
        search(&self.root, target, &mut best);
        best
    }
}

impl MemoryFootprint for KdTree {
    fn memory_bytes(&self) -> usize {
        // Each node: point (16) + id (8) + axis (1, padded) + 2 pointers (16).
        self.len * (std::mem::size_of::<KdNode>())
    }
}

fn build_rec(items: &mut [(Point, u64)], depth: usize) -> Option<Box<KdNode>> {
    if items.is_empty() {
        return None;
    }
    let axis = (depth % 2) as u8;
    let mid = items.len() / 2;
    items.select_nth_unstable_by(mid, |a, b| {
        let (ka, kb) = if axis == 0 {
            (a.0.x, b.0.x)
        } else {
            (a.0.y, b.0.y)
        };
        ka.partial_cmp(&kb).expect("finite coordinates")
    });
    let (point, id) = items[mid];
    let (left, right) = items.split_at_mut(mid);
    let right = &mut right[1..];
    Some(Box::new(KdNode {
        point,
        id,
        axis,
        left: build_rec(left, depth + 1),
        right: build_rec(right, depth + 1),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::prelude::*;

    fn random_points(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)))
            .collect()
    }

    fn naive(points: &[Point], q: &BoundingBox) -> Vec<u64> {
        points
            .iter()
            .enumerate()
            .filter(|(_, p)| q.contains_point(p))
            .map(|(i, _)| i as u64)
            .collect()
    }

    #[test]
    fn build_and_range_query() {
        let points = random_points(1500, 1);
        let tree = KdTree::build(&points);
        assert_eq!(tree.len(), 1500);
        assert!(
            tree.height() <= 2 * 11 + 1,
            "median splits keep the tree balanced"
        );
        for q in [
            BoundingBox::from_bounds(0.0, 0.0, 250.0, 250.0),
            BoundingBox::from_bounds(500.0, 100.0, 600.0, 900.0),
            BoundingBox::from_bounds(999.0, 999.0, 1000.0, 1000.0),
        ] {
            let mut hits = tree.query_bbox(&q);
            hits.sort_unstable();
            assert_eq!(hits, naive(&points, &q));
        }
    }

    #[test]
    fn empty_and_single_point_trees() {
        let empty = KdTree::build(&[]);
        assert!(empty.is_empty());
        assert_eq!(empty.height(), 0);
        assert!(empty
            .query_bbox(&BoundingBox::from_bounds(0.0, 0.0, 1.0, 1.0))
            .is_empty());
        assert!(empty.nearest(&Point::ORIGIN).is_none());

        let single = KdTree::build(&[Point::new(5.0, 5.0)]);
        assert_eq!(single.len(), 1);
        assert_eq!(
            single.query_bbox(&BoundingBox::from_bounds(0.0, 0.0, 10.0, 10.0)),
            vec![0]
        );
        let (p, id, d) = single.nearest(&Point::new(8.0, 9.0)).unwrap();
        assert_eq!(p, Point::new(5.0, 5.0));
        assert_eq!(id, 0);
        assert_eq!(d, 5.0);
    }

    #[test]
    fn nearest_matches_linear_scan() {
        let points = random_points(700, 2);
        let tree = KdTree::build(&points);
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..50 {
            let target = Point::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0));
            let (_, _, d) = tree.nearest(&target).unwrap();
            let expected = points
                .iter()
                .map(|p| p.distance(&target))
                .fold(f64::INFINITY, f64::min);
            assert!((d - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn duplicate_points_are_all_found() {
        let points = vec![Point::new(1.0, 1.0); 20];
        let tree = KdTree::build(&points);
        let hits = tree.query_bbox(&BoundingBox::from_bounds(0.0, 0.0, 2.0, 2.0));
        assert_eq!(hits.len(), 20);
    }

    #[test]
    fn memory_footprint_positive() {
        let tree = KdTree::build(&random_points(64, 3));
        assert!(tree.memory_bytes() >= 64 * 40);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_range_query_matches_naive(
            pts in proptest::collection::vec((0f64..100.0, 0f64..100.0), 0..250),
            qx in 0f64..100.0, qy in 0f64..100.0, w in 0f64..60.0, h in 0f64..60.0,
        ) {
            let points: Vec<Point> = pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let tree = KdTree::build(&points);
            let q = BoundingBox::from_bounds(qx, qy, qx + w, qy + h);
            let mut hits = tree.query_bbox(&q);
            hits.sort_unstable();
            prop_assert_eq!(hits, naive(&points, &q));
        }

        #[test]
        fn prop_nearest_matches_naive(
            pts in proptest::collection::vec((0f64..100.0, 0f64..100.0), 1..150),
            tx in 0f64..100.0, ty in 0f64..100.0,
        ) {
            let points: Vec<Point> = pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let tree = KdTree::build(&points);
            let target = Point::new(tx, ty);
            let (_, _, d) = tree.nearest(&target).unwrap();
            let expected = points.iter().map(|p| p.distance(&target)).fold(f64::INFINITY, f64::min);
            prop_assert!((d - expected).abs() < 1e-9);
        }
    }
}

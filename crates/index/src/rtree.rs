//! R-tree with quadratic-split insertion and STR bulk loading.
//!
//! This is the MBR-filtering baseline of the paper's experiments (the role
//! played by the Boost Geometry R\*-tree and the STR-packed R-tree of
//! Leutenegger et al.). Queries return *candidate* entry ids; the exact
//! point-in-polygon refinement happens in the query layer, which is exactly
//! the cost the distance-bounded approximations eliminate.

use crate::footprint::MemoryFootprint;
use dbsa_geom::{BoundingBox, Point};

/// An indexed entry: a bounding box plus the caller's identifier
/// (point index or polygon id).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RTreeEntry {
    /// Minimum bounding rectangle of the indexed object.
    pub bbox: BoundingBox,
    /// Caller-defined identifier.
    pub id: u64,
}

impl RTreeEntry {
    /// Creates an entry for an arbitrary box.
    pub fn new(bbox: BoundingBox, id: u64) -> Self {
        RTreeEntry { bbox, id }
    }

    /// Creates an entry for a point (degenerate box).
    pub fn point(p: Point, id: u64) -> Self {
        RTreeEntry {
            bbox: BoundingBox::new(p, p),
            id,
        }
    }
}

#[derive(Debug)]
enum Node {
    Leaf(Vec<RTreeEntry>),
    Inner(Vec<(BoundingBox, Node)>),
}

impl Node {
    fn bbox(&self) -> BoundingBox {
        match self {
            Node::Leaf(entries) => entries
                .iter()
                .fold(BoundingBox::EMPTY, |acc, e| acc.union(&e.bbox)),
            Node::Inner(children) => children
                .iter()
                .fold(BoundingBox::EMPTY, |acc, (b, _)| acc.union(b)),
        }
    }

    fn count_nodes(&self) -> usize {
        match self {
            Node::Leaf(_) => 1,
            Node::Inner(children) => {
                1 + children.iter().map(|(_, c)| c.count_nodes()).sum::<usize>()
            }
        }
    }

    fn height(&self) -> usize {
        match self {
            Node::Leaf(_) => 1,
            Node::Inner(children) => {
                1 + children.iter().map(|(_, c)| c.height()).max().unwrap_or(0)
            }
        }
    }
}

/// An R-tree over boxed entries.
#[derive(Debug)]
pub struct RTree {
    root: Node,
    capacity: usize,
    len: usize,
}

impl RTree {
    /// Default maximum entries per node (both leaves and inner nodes).
    pub const DEFAULT_CAPACITY: usize = 16;

    /// Creates an empty tree with the default node capacity.
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// Creates an empty tree with an explicit node capacity (>= 4).
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity >= 4, "node capacity must be at least 4");
        RTree {
            root: Node::Leaf(Vec::new()),
            capacity,
            len: 0,
        }
    }

    /// Bulk-loads a tree with the Sort-Tile-Recursive (STR) algorithm.
    ///
    /// Entries are sorted by x-center into vertical slices, each slice is
    /// sorted by y-center and packed into full leaves; upper levels are
    /// packed the same way until a single root remains.
    pub fn bulk_load_str(entries: Vec<RTreeEntry>, capacity: usize) -> Self {
        assert!(capacity >= 4, "node capacity must be at least 4");
        let len = entries.len();
        if entries.is_empty() {
            return Self::with_capacity(capacity);
        }
        // Pack leaves.
        let leaf_nodes = str_pack(entries, capacity, |e| e.bbox.center())
            .into_iter()
            .map(|chunk| {
                let node = Node::Leaf(chunk);
                (node.bbox(), node)
            })
            .collect::<Vec<_>>();
        // Pack inner levels until one node remains.
        let mut level = leaf_nodes;
        while level.len() > 1 {
            level = str_pack(level, capacity, |(b, _)| b.center())
                .into_iter()
                .map(|chunk| {
                    let bbox = chunk
                        .iter()
                        .fold(BoundingBox::EMPTY, |acc, (b, _)| acc.union(b));
                    (bbox, Node::Inner(chunk))
                })
                .collect();
        }
        let root = level
            .into_iter()
            .next()
            .map(|(_, n)| n)
            .unwrap_or(Node::Leaf(Vec::new()));
        RTree {
            root,
            capacity,
            len,
        }
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree in nodes.
    pub fn height(&self) -> usize {
        self.root.height()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.root.count_nodes()
    }

    /// Inserts an entry (Guttman insertion with quadratic split).
    pub fn insert(&mut self, entry: RTreeEntry) {
        self.len += 1;
        if let Some((left, right)) = insert_recursive(&mut self.root, entry, self.capacity) {
            // Root split: grow the tree by one level.
            let old_root = std::mem::replace(&mut self.root, Node::Leaf(Vec::new()));
            drop(old_root); // the split children fully replace the old root
            self.root = Node::Inner(vec![(left.bbox(), left), (right.bbox(), right)]);
        }
    }

    /// All entry ids whose box contains the query point.
    pub fn query_point(&self, p: &Point) -> Vec<u64> {
        let mut out = Vec::new();
        query_point_rec(&self.root, p, &mut out);
        out
    }

    /// All entry ids whose box intersects the query box.
    pub fn query_bbox(&self, bbox: &BoundingBox) -> Vec<u64> {
        let mut out = Vec::new();
        query_bbox_rec(&self.root, bbox, &mut out);
        out
    }

    /// Visits every entry whose box intersects the query box without
    /// materializing the result vector.
    pub fn for_each_in_bbox<F: FnMut(&RTreeEntry)>(&self, bbox: &BoundingBox, mut f: F) {
        for_each_rec(&self.root, bbox, &mut f);
    }
}

impl Default for RTree {
    fn default() -> Self {
        Self::new()
    }
}

impl MemoryFootprint for RTree {
    fn memory_bytes(&self) -> usize {
        // Leaves store entries (40 bytes each); inner nodes store one box +
        // pointer per child.
        fn bytes(node: &Node) -> usize {
            match node {
                Node::Leaf(entries) => entries.capacity() * std::mem::size_of::<RTreeEntry>(),
                Node::Inner(children) => {
                    children.capacity()
                        * (std::mem::size_of::<BoundingBox>() + std::mem::size_of::<usize>())
                        + children.iter().map(|(_, c)| bytes(c)).sum::<usize>()
                }
            }
        }
        bytes(&self.root)
    }
}

/// Splits `items` into STR tiles of at most `capacity` elements.
fn str_pack<T, F: Fn(&T) -> Point>(mut items: Vec<T>, capacity: usize, center: F) -> Vec<Vec<T>> {
    let n = items.len();
    let leaf_count = n.div_ceil(capacity);
    let slice_count = (leaf_count as f64).sqrt().ceil() as usize;
    let slice_size = n.div_ceil(slice_count.max(1));
    items.sort_by(|a, b| {
        center(a)
            .x
            .partial_cmp(&center(b).x)
            .expect("finite coords")
    });
    let mut out = Vec::with_capacity(leaf_count);
    let mut items = items.into_iter().peekable();
    while items.peek().is_some() {
        let mut slice: Vec<T> = items.by_ref().take(slice_size).collect();
        slice.sort_by(|a, b| {
            center(a)
                .y
                .partial_cmp(&center(b).y)
                .expect("finite coords")
        });
        let mut iter = slice.into_iter().peekable();
        while iter.peek().is_some() {
            out.push(iter.by_ref().take(capacity).collect());
        }
    }
    out
}

/// Recursive insertion; returns `Some((left, right))` when the child split
/// and the parent must absorb the two halves.
fn insert_recursive(node: &mut Node, entry: RTreeEntry, capacity: usize) -> Option<(Node, Node)> {
    match node {
        Node::Leaf(entries) => {
            entries.push(entry);
            if entries.len() > capacity {
                let (a, b) = quadratic_split(std::mem::take(entries), |e| e.bbox);
                Some((Node::Leaf(a), Node::Leaf(b)))
            } else {
                None
            }
        }
        Node::Inner(children) => {
            // Choose the child needing least enlargement (ties: smaller area).
            let idx = children
                .iter()
                .enumerate()
                .min_by(|(_, (b1, _)), (_, (b2, _))| {
                    let e1 = b1.enlargement(&entry.bbox);
                    let e2 = b2.enlargement(&entry.bbox);
                    e1.partial_cmp(&e2)
                        .expect("finite enlargement")
                        .then(b1.area().partial_cmp(&b2.area()).expect("finite area"))
                })
                .map(|(i, _)| i)
                .expect("inner nodes are never empty");
            let split = insert_recursive(&mut children[idx].1, entry, capacity);
            children[idx].0 = children[idx].1.bbox();
            if let Some((left, right)) = split {
                children.remove(idx);
                children.push((left.bbox(), left));
                children.push((right.bbox(), right));
                if children.len() > capacity {
                    let (a, b) = quadratic_split(std::mem::take(children), |(b, _)| *b);
                    return Some((Node::Inner(a), Node::Inner(b)));
                }
            }
            None
        }
    }
}

/// Guttman's quadratic split.
fn quadratic_split<T, F: Fn(&T) -> BoundingBox>(items: Vec<T>, bbox_of: F) -> (Vec<T>, Vec<T>) {
    let n = items.len();
    debug_assert!(n >= 2);
    // Pick the pair of seeds that wastes the most area if grouped together.
    let mut seed_a = 0;
    let mut seed_b = 1;
    let mut worst = f64::NEG_INFINITY;
    for i in 0..n {
        for j in (i + 1)..n {
            let d = bbox_of(&items[i]).union(&bbox_of(&items[j])).area()
                - bbox_of(&items[i]).area()
                - bbox_of(&items[j]).area();
            if d > worst {
                worst = d;
                seed_a = i;
                seed_b = j;
            }
        }
    }
    let min_fill = (n / 2).max(1).min(n - 1);
    let mut group_a: Vec<T> = Vec::new();
    let mut group_b: Vec<T> = Vec::new();
    let mut bbox_a = BoundingBox::EMPTY;
    let mut bbox_b = BoundingBox::EMPTY;
    for (i, item) in items.into_iter().enumerate() {
        let bb = bbox_of(&item);
        if i == seed_a {
            bbox_a.expand_to_box(&bb);
            group_a.push(item);
        } else if i == seed_b {
            bbox_b.expand_to_box(&bb);
            group_b.push(item);
        } else {
            // Assign by least enlargement, but keep both groups above the
            // minimum fill so neither ends up empty.
            let remaining_needed_by_a = min_fill.saturating_sub(group_a.len());
            let remaining_needed_by_b = min_fill.saturating_sub(group_b.len());
            let prefer_a = if remaining_needed_by_a >= remaining_needed_by_b + 2 {
                true
            } else if remaining_needed_by_b >= remaining_needed_by_a + 2 {
                false
            } else {
                bbox_a.enlargement(&bb) <= bbox_b.enlargement(&bb)
            };
            if prefer_a {
                bbox_a.expand_to_box(&bb);
                group_a.push(item);
            } else {
                bbox_b.expand_to_box(&bb);
                group_b.push(item);
            }
        }
    }
    if group_a.is_empty() {
        group_a.push(group_b.pop().expect("group_b cannot be empty if a is"));
    } else if group_b.is_empty() {
        group_b.push(group_a.pop().expect("group_a cannot be empty if b is"));
    }
    (group_a, group_b)
}

fn query_point_rec(node: &Node, p: &Point, out: &mut Vec<u64>) {
    match node {
        Node::Leaf(entries) => {
            for e in entries {
                if e.bbox.contains_point(p) {
                    out.push(e.id);
                }
            }
        }
        Node::Inner(children) => {
            for (bbox, child) in children {
                if bbox.contains_point(p) {
                    query_point_rec(child, p, out);
                }
            }
        }
    }
}

fn query_bbox_rec(node: &Node, query: &BoundingBox, out: &mut Vec<u64>) {
    match node {
        Node::Leaf(entries) => {
            for e in entries {
                if e.bbox.intersects(query) {
                    out.push(e.id);
                }
            }
        }
        Node::Inner(children) => {
            for (bbox, child) in children {
                if bbox.intersects(query) {
                    query_bbox_rec(child, query, out);
                }
            }
        }
    }
}

fn for_each_rec<F: FnMut(&RTreeEntry)>(node: &Node, query: &BoundingBox, f: &mut F) {
    match node {
        Node::Leaf(entries) => {
            for e in entries {
                if e.bbox.intersects(query) {
                    f(e);
                }
            }
        }
        Node::Inner(children) => {
            for (bbox, child) in children {
                if bbox.intersects(query) {
                    for_each_rec(child, query, f);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::prelude::*;

    fn random_points(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)))
            .collect()
    }

    fn naive_range(points: &[Point], bbox: &BoundingBox) -> Vec<u64> {
        points
            .iter()
            .enumerate()
            .filter(|(_, p)| bbox.contains_point(p))
            .map(|(i, _)| i as u64)
            .collect()
    }

    #[test]
    fn insertion_and_point_query() {
        let mut tree = RTree::new();
        let points = random_points(500, 1);
        for (i, p) in points.iter().enumerate() {
            tree.insert(RTreeEntry::point(*p, i as u64));
        }
        assert_eq!(tree.len(), 500);
        assert!(tree.height() > 1);
        // Querying an exact point finds it (and possibly coincident others).
        let hits = tree.query_point(&points[42]);
        assert!(hits.contains(&42));
    }

    #[test]
    fn range_queries_match_naive_scan_after_insertion() {
        let points = random_points(800, 2);
        let mut tree = RTree::with_capacity(8);
        for (i, p) in points.iter().enumerate() {
            tree.insert(RTreeEntry::point(*p, i as u64));
        }
        for (qx, qy, w, h) in [
            (0.0, 0.0, 100.0, 100.0),
            (250.0, 400.0, 300.0, 50.0),
            (900.0, 900.0, 100.0, 100.0),
        ] {
            let query = BoundingBox::from_bounds(qx, qy, qx + w, qy + h);
            let mut hits = tree.query_bbox(&query);
            hits.sort_unstable();
            assert_eq!(hits, naive_range(&points, &query), "query {query:?}");
        }
    }

    #[test]
    fn str_bulk_load_matches_naive_scan() {
        let points = random_points(1000, 3);
        let entries: Vec<RTreeEntry> = points
            .iter()
            .enumerate()
            .map(|(i, p)| RTreeEntry::point(*p, i as u64))
            .collect();
        let tree = RTree::bulk_load_str(entries, 16);
        assert_eq!(tree.len(), 1000);
        for (qx, qy, side) in [
            (100.0, 100.0, 200.0),
            (0.0, 500.0, 999.0),
            (450.0, 450.0, 10.0),
        ] {
            let query =
                BoundingBox::from_bounds(qx, qy, (qx + side).min(1000.0), (qy + side).min(1000.0));
            let mut hits = tree.query_bbox(&query);
            hits.sort_unstable();
            assert_eq!(hits, naive_range(&points, &query));
        }
    }

    #[test]
    fn str_tree_is_shallower_than_incremental_tree() {
        let points = random_points(2000, 4);
        let entries: Vec<RTreeEntry> = points
            .iter()
            .enumerate()
            .map(|(i, p)| RTreeEntry::point(*p, i as u64))
            .collect();
        let bulk = RTree::bulk_load_str(entries.clone(), 16);
        let mut incremental = RTree::with_capacity(16);
        for e in entries {
            incremental.insert(e);
        }
        assert!(bulk.height() <= incremental.height());
        assert!(bulk.node_count() <= incremental.node_count());
    }

    #[test]
    fn polygon_mbr_entries() {
        // Index boxes (polygon MBRs) rather than points.
        let boxes = [
            BoundingBox::from_bounds(0.0, 0.0, 10.0, 10.0),
            BoundingBox::from_bounds(20.0, 0.0, 30.0, 10.0),
            BoundingBox::from_bounds(5.0, 5.0, 25.0, 15.0),
        ];
        let mut tree = RTree::new();
        for (i, b) in boxes.iter().enumerate() {
            tree.insert(RTreeEntry::new(*b, i as u64));
        }
        let mut hits = tree.query_point(&Point::new(7.0, 7.0));
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 2]);
        assert_eq!(tree.query_point(&Point::new(50.0, 50.0)), Vec::<u64>::new());
    }

    #[test]
    fn empty_tree_queries() {
        let tree = RTree::new();
        assert!(tree.is_empty());
        assert!(tree.query_point(&Point::ORIGIN).is_empty());
        assert!(tree
            .query_bbox(&BoundingBox::from_bounds(0.0, 0.0, 1.0, 1.0))
            .is_empty());
        let empty_bulk = RTree::bulk_load_str(vec![], 8);
        assert!(empty_bulk.is_empty());
    }

    #[test]
    fn for_each_visits_same_entries_as_query() {
        let points = random_points(300, 9);
        let entries: Vec<RTreeEntry> = points
            .iter()
            .enumerate()
            .map(|(i, p)| RTreeEntry::point(*p, i as u64))
            .collect();
        let tree = RTree::bulk_load_str(entries, 8);
        let query = BoundingBox::from_bounds(200.0, 200.0, 600.0, 600.0);
        let mut visited = Vec::new();
        tree.for_each_in_bbox(&query, |e| visited.push(e.id));
        visited.sort_unstable();
        let mut expected = tree.query_bbox(&query);
        expected.sort_unstable();
        assert_eq!(visited, expected);
    }

    #[test]
    #[should_panic(expected = "at least 4")]
    fn rejects_tiny_capacity() {
        let _ = RTree::with_capacity(2);
    }

    #[test]
    fn memory_footprint_positive() {
        let points = random_points(100, 5);
        let tree = RTree::bulk_load_str(
            points
                .iter()
                .enumerate()
                .map(|(i, p)| RTreeEntry::point(*p, i as u64))
                .collect(),
            8,
        );
        assert!(tree.memory_bytes() >= 100 * std::mem::size_of::<RTreeEntry>());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_queries_match_naive_scan(
            pts in proptest::collection::vec((0f64..100.0, 0f64..100.0), 1..200),
            qx in 0f64..100.0, qy in 0f64..100.0, w in 0f64..60.0, h in 0f64..60.0,
            capacity in 4usize..20,
            bulk in proptest::bool::ANY,
        ) {
            let points: Vec<Point> = pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let entries: Vec<RTreeEntry> = points.iter().enumerate()
                .map(|(i, p)| RTreeEntry::point(*p, i as u64)).collect();
            let tree = if bulk {
                RTree::bulk_load_str(entries, capacity)
            } else {
                let mut t = RTree::with_capacity(capacity);
                for e in entries { t.insert(e); }
                t
            };
            let query = BoundingBox::from_bounds(qx, qy, qx + w, qy + h);
            let mut hits = tree.query_bbox(&query);
            hits.sort_unstable();
            prop_assert_eq!(hits, naive_range(&points, &query));
        }
    }
}

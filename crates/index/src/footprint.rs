//! Memory footprint reporting.

/// Indexes report an estimate of their in-memory size.
///
/// The paper's Section 5.1 compares the footprints of ACT (143 MB for the
/// Neighborhoods HR cells), the S2ShapeIndex (1.2 MB) and the R\*-tree
/// (27.9 KB); the benchmark harness reproduces that comparison through this
/// trait. Estimates count heap payloads (keys, nodes, entries) and ignore
/// allocator overhead, which is the same convention the paper's numbers use.
pub trait MemoryFootprint {
    /// Estimated number of bytes used by the index structure.
    fn memory_bytes(&self) -> usize;

    /// Human-readable footprint, e.g. `"1.2 MB"`.
    fn memory_human(&self) -> String {
        format_bytes(self.memory_bytes())
    }
}

/// Formats a byte count with binary-ish units matching the paper's style.
pub fn format_bytes(bytes: usize) -> String {
    const KB: f64 = 1024.0;
    const MB: f64 = 1024.0 * 1024.0;
    const GB: f64 = 1024.0 * 1024.0 * 1024.0;
    let b = bytes as f64;
    if b >= GB {
        format!("{:.1} GB", b / GB)
    } else if b >= MB {
        format!("{:.1} MB", b / MB)
    } else if b >= KB {
        format!("{:.1} KB", b / KB)
    } else {
        format!("{bytes} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(usize);
    impl MemoryFootprint for Fixed {
        fn memory_bytes(&self) -> usize {
            self.0
        }
    }

    #[test]
    fn formatting_units() {
        assert_eq!(format_bytes(512), "512 B");
        assert_eq!(format_bytes(2048), "2.0 KB");
        assert_eq!(format_bytes(1_572_864), "1.5 MB");
        assert_eq!(format_bytes(3 * 1024 * 1024 * 1024), "3.0 GB");
    }

    #[test]
    fn trait_default_uses_formatter() {
        assert_eq!(Fixed(28_570).memory_human(), "27.9 KB");
    }
}

//! Low-level geometric predicates.
//!
//! These are the building blocks for point-in-polygon tests, segment
//! intersection and convex hulls. They use a small epsilon tolerance rather
//! than exact arithmetic; the distance-bounded approximation framework is by
//! construction tolerant to errors far larger than `f64` rounding, so exact
//! predicates would add cost without changing any result the paper reports.

use crate::point::Point;

/// Tolerance used when classifying near-collinear configurations.
pub const EPSILON: f64 = 1e-12;

/// Orientation of an ordered point triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Orientation {
    /// The triple turns left (counter-clockwise).
    CounterClockwise,
    /// The triple turns right (clockwise).
    Clockwise,
    /// The three points are (numerically) collinear.
    Collinear,
}

/// Twice the signed area of triangle `(a, b, c)`.
///
/// Positive when the triangle is counter-clockwise.
#[inline]
pub fn signed_area2(a: &Point, b: &Point, c: &Point) -> f64 {
    (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
}

/// Classifies the turn made by the ordered triple `(a, b, c)`.
#[inline]
pub fn orientation(a: &Point, b: &Point, c: &Point) -> Orientation {
    let area2 = signed_area2(a, b, c);
    // Scale tolerance with coordinate magnitude so that city-sized
    // coordinates (1e5-scale meters) behave the same as unit-scale tests.
    let scale = (b.x - a.x).abs() + (b.y - a.y).abs() + (c.x - a.x).abs() + (c.y - a.y).abs();
    let tol = EPSILON * scale.max(1.0);
    if area2 > tol {
        Orientation::CounterClockwise
    } else if area2 < -tol {
        Orientation::Clockwise
    } else {
        Orientation::Collinear
    }
}

/// Whether point `p` lies on the closed segment `[a, b]`, assuming the three
/// points are collinear.
#[inline]
pub fn collinear_point_on_segment(a: &Point, b: &Point, p: &Point) -> bool {
    p.x >= a.x.min(b.x) - EPSILON
        && p.x <= a.x.max(b.x) + EPSILON
        && p.y >= a.y.min(b.y) - EPSILON
        && p.y <= a.y.max(b.y) + EPSILON
}

/// Whether point `p` lies on the closed segment `[a, b]` (within tolerance).
pub fn point_on_segment(a: &Point, b: &Point, p: &Point) -> bool {
    orientation(a, b, p) == Orientation::Collinear && collinear_point_on_segment(a, b, p)
}

/// Whether the closed segments `[p1, p2]` and `[q1, q2]` share at least one point.
pub fn segments_intersect(p1: &Point, p2: &Point, q1: &Point, q2: &Point) -> bool {
    let o1 = orientation(p1, p2, q1);
    let o2 = orientation(p1, p2, q2);
    let o3 = orientation(q1, q2, p1);
    let o4 = orientation(q1, q2, p2);

    if o1 != o2
        && o3 != o4
        && o1 != Orientation::Collinear
        && o2 != Orientation::Collinear
        && o3 != Orientation::Collinear
        && o4 != Orientation::Collinear
    {
        return true;
    }

    (o1 == Orientation::Collinear && collinear_point_on_segment(p1, p2, q1))
        || (o2 == Orientation::Collinear && collinear_point_on_segment(p1, p2, q2))
        || (o3 == Orientation::Collinear && collinear_point_on_segment(q1, q2, p1))
        || (o4 == Orientation::Collinear && collinear_point_on_segment(q1, q2, p2))
}

/// Intersection point of the two segments when they cross at a single
/// (proper or improper) point, `None` when disjoint or overlapping collinear.
pub fn segment_intersection_point(p1: &Point, p2: &Point, q1: &Point, q2: &Point) -> Option<Point> {
    let r = *p2 - *p1;
    let s = *q2 - *q1;
    let denom = r.cross(&s);
    let qp = *q1 - *p1;
    if denom.abs() < EPSILON {
        // Parallel (possibly overlapping): no unique intersection point.
        return None;
    }
    let t = qp.cross(&s) / denom;
    let u = qp.cross(&r) / denom;
    if (-EPSILON..=1.0 + EPSILON).contains(&t) && (-EPSILON..=1.0 + EPSILON).contains(&u) {
        Some(*p1 + r * t)
    } else {
        None
    }
}

/// Minimum distance from point `p` to the closed segment `[a, b]`.
pub fn point_segment_distance(a: &Point, b: &Point, p: &Point) -> f64 {
    let ab = *b - *a;
    let len2 = ab.dot(&ab);
    if len2 == 0.0 {
        return p.distance(a);
    }
    let t = ((*p - *a).dot(&ab) / len2).clamp(0.0, 1.0);
    let proj = *a + ab * t;
    p.distance(&proj)
}

/// Minimum distance between two closed segments.
pub fn segment_segment_distance(p1: &Point, p2: &Point, q1: &Point, q2: &Point) -> f64 {
    if segments_intersect(p1, p2, q1, q2) {
        return 0.0;
    }
    point_segment_distance(p1, p2, q1)
        .min(point_segment_distance(p1, p2, q2))
        .min(point_segment_distance(q1, q2, p1))
        .min(point_segment_distance(q1, q2, p2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn orientation_basic() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 0.0);
        assert_eq!(
            orientation(&a, &b, &Point::new(0.5, 1.0)),
            Orientation::CounterClockwise
        );
        assert_eq!(
            orientation(&a, &b, &Point::new(0.5, -1.0)),
            Orientation::Clockwise
        );
        assert_eq!(
            orientation(&a, &b, &Point::new(2.0, 0.0)),
            Orientation::Collinear
        );
    }

    #[test]
    fn signed_area_of_unit_right_triangle() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 0.0);
        let c = Point::new(0.0, 1.0);
        assert_eq!(signed_area2(&a, &b, &c), 1.0);
        assert_eq!(signed_area2(&a, &c, &b), -1.0);
    }

    #[test]
    fn point_on_segment_endpoints_and_interior() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(4.0, 4.0);
        assert!(point_on_segment(&a, &b, &a));
        assert!(point_on_segment(&a, &b, &b));
        assert!(point_on_segment(&a, &b, &Point::new(2.0, 2.0)));
        assert!(!point_on_segment(&a, &b, &Point::new(5.0, 5.0)));
        assert!(!point_on_segment(&a, &b, &Point::new(2.0, 2.5)));
    }

    #[test]
    fn crossing_segments_intersect() {
        let p1 = Point::new(0.0, 0.0);
        let p2 = Point::new(2.0, 2.0);
        let q1 = Point::new(0.0, 2.0);
        let q2 = Point::new(2.0, 0.0);
        assert!(segments_intersect(&p1, &p2, &q1, &q2));
        let ip = segment_intersection_point(&p1, &p2, &q1, &q2).unwrap();
        assert!((ip.x - 1.0).abs() < 1e-12 && (ip.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_segments_do_not_intersect() {
        let p1 = Point::new(0.0, 0.0);
        let p2 = Point::new(1.0, 0.0);
        let q1 = Point::new(0.0, 1.0);
        let q2 = Point::new(1.0, 1.0);
        assert!(!segments_intersect(&p1, &p2, &q1, &q2));
        assert!(segment_intersection_point(&p1, &p2, &q1, &q2).is_none());
    }

    #[test]
    fn touching_at_endpoint_intersects() {
        let p1 = Point::new(0.0, 0.0);
        let p2 = Point::new(1.0, 1.0);
        let q1 = Point::new(1.0, 1.0);
        let q2 = Point::new(2.0, 0.0);
        assert!(segments_intersect(&p1, &p2, &q1, &q2));
    }

    #[test]
    fn collinear_overlapping_segments_intersect() {
        let p1 = Point::new(0.0, 0.0);
        let p2 = Point::new(2.0, 0.0);
        let q1 = Point::new(1.0, 0.0);
        let q2 = Point::new(3.0, 0.0);
        assert!(segments_intersect(&p1, &p2, &q1, &q2));
        // No unique intersection point for overlapping collinear segments.
        assert!(segment_intersection_point(&p1, &p2, &q1, &q2).is_none());
    }

    #[test]
    fn point_segment_distance_cases() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 0.0);
        assert_eq!(point_segment_distance(&a, &b, &Point::new(5.0, 3.0)), 3.0);
        assert_eq!(point_segment_distance(&a, &b, &Point::new(-3.0, 4.0)), 5.0);
        assert_eq!(point_segment_distance(&a, &b, &Point::new(13.0, 4.0)), 5.0);
        // Degenerate segment behaves like a point.
        assert_eq!(point_segment_distance(&a, &a, &Point::new(3.0, 4.0)), 5.0);
    }

    #[test]
    fn segment_segment_distance_cases() {
        let d = segment_segment_distance(
            &Point::new(0.0, 0.0),
            &Point::new(1.0, 0.0),
            &Point::new(0.0, 2.0),
            &Point::new(1.0, 2.0),
        );
        assert_eq!(d, 2.0);
        let crossing = segment_segment_distance(
            &Point::new(0.0, 0.0),
            &Point::new(2.0, 2.0),
            &Point::new(0.0, 2.0),
            &Point::new(2.0, 0.0),
        );
        assert_eq!(crossing, 0.0);
    }

    proptest! {
        #[test]
        fn prop_orientation_antisymmetric(
            ax in -100f64..100.0, ay in -100f64..100.0,
            bx in -100f64..100.0, by in -100f64..100.0,
            cx in -100f64..100.0, cy in -100f64..100.0,
        ) {
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            let c = Point::new(cx, cy);
            let o1 = orientation(&a, &b, &c);
            let o2 = orientation(&a, &c, &b);
            match o1 {
                Orientation::CounterClockwise => prop_assert_eq!(o2, Orientation::Clockwise),
                Orientation::Clockwise => prop_assert_eq!(o2, Orientation::CounterClockwise),
                Orientation::Collinear => prop_assert_eq!(o2, Orientation::Collinear),
            }
        }

        #[test]
        fn prop_segment_intersection_symmetric(
            ax in -50f64..50.0, ay in -50f64..50.0, bx in -50f64..50.0, by in -50f64..50.0,
            cx in -50f64..50.0, cy in -50f64..50.0, dx in -50f64..50.0, dy in -50f64..50.0,
        ) {
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            let c = Point::new(cx, cy);
            let d = Point::new(dx, dy);
            prop_assert_eq!(
                segments_intersect(&a, &b, &c, &d),
                segments_intersect(&c, &d, &a, &b)
            );
        }

        #[test]
        fn prop_point_segment_distance_zero_for_on_segment_points(
            ax in -50f64..50.0, ay in -50f64..50.0, bx in -50f64..50.0, by in -50f64..50.0,
            t in 0f64..1.0,
        ) {
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            let p = a.lerp(&b, t);
            prop_assert!(point_segment_distance(&a, &b, &p) < 1e-7);
        }
    }
}

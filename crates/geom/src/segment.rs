//! Line segments.

use crate::bbox::BoundingBox;
use crate::point::Point;
use crate::predicates;

/// A closed line segment between two points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Start point.
    pub start: Point,
    /// End point.
    pub end: Point,
}

impl Segment {
    /// Creates a segment from its endpoints.
    pub const fn new(start: Point, end: Point) -> Self {
        Segment { start, end }
    }

    /// Length of the segment.
    pub fn length(&self) -> f64 {
        self.start.distance(&self.end)
    }

    /// Midpoint of the segment.
    pub fn midpoint(&self) -> Point {
        self.start.lerp(&self.end, 0.5)
    }

    /// Axis-aligned bounding box of the segment.
    pub fn bbox(&self) -> BoundingBox {
        BoundingBox::new(self.start, self.end)
    }

    /// Whether the segment is degenerate (both endpoints equal).
    pub fn is_degenerate(&self) -> bool {
        self.start == self.end
    }

    /// Minimum distance from the segment to a point.
    pub fn distance_to_point(&self, p: &Point) -> f64 {
        predicates::point_segment_distance(&self.start, &self.end, p)
    }

    /// Whether the point lies on the segment (within tolerance).
    pub fn contains_point(&self, p: &Point) -> bool {
        predicates::point_on_segment(&self.start, &self.end, p)
    }

    /// Whether this segment shares at least one point with `other`.
    pub fn intersects(&self, other: &Segment) -> bool {
        predicates::segments_intersect(&self.start, &self.end, &other.start, &other.end)
    }

    /// Single intersection point with `other`, if one exists.
    pub fn intersection_point(&self, other: &Segment) -> Option<Point> {
        predicates::segment_intersection_point(&self.start, &self.end, &other.start, &other.end)
    }

    /// Minimum distance between this segment and `other`.
    pub fn distance_to_segment(&self, other: &Segment) -> f64 {
        predicates::segment_segment_distance(&self.start, &self.end, &other.start, &other.end)
    }

    /// Point on the segment at parameter `t` in `[0, 1]`.
    pub fn point_at(&self, t: f64) -> Point {
        self.start.lerp(&self.end, t)
    }

    /// Whether the segment crosses or touches the given axis-aligned box.
    ///
    /// Used by the rasterizer to classify boundary cells and by the
    /// shape-index baseline to assign edges to grid cells.
    pub fn intersects_box(&self, bbox: &BoundingBox) -> bool {
        if bbox.is_empty() {
            return false;
        }
        if bbox.contains_point(&self.start) || bbox.contains_point(&self.end) {
            return true;
        }
        let corners = bbox.corners();
        for i in 0..4 {
            let edge = Segment::new(corners[i], corners[(i + 1) % 4]);
            if self.intersects(&edge) {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn length_and_midpoint() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(6.0, 8.0));
        assert_eq!(s.length(), 10.0);
        assert_eq!(s.midpoint(), Point::new(3.0, 4.0));
        assert!(!s.is_degenerate());
        assert!(Segment::new(Point::ORIGIN, Point::ORIGIN).is_degenerate());
    }

    #[test]
    fn bbox_covers_endpoints() {
        let s = Segment::new(Point::new(3.0, -1.0), Point::new(-2.0, 5.0));
        let b = s.bbox();
        assert!(b.contains_point(&s.start));
        assert!(b.contains_point(&s.end));
        assert_eq!(b, BoundingBox::from_bounds(-2.0, -1.0, 3.0, 5.0));
    }

    #[test]
    fn segment_box_intersection() {
        let bbox = BoundingBox::from_bounds(0.0, 0.0, 2.0, 2.0);
        // Fully inside.
        assert!(Segment::new(Point::new(0.5, 0.5), Point::new(1.5, 1.5)).intersects_box(&bbox));
        // Crossing through without endpoints inside.
        assert!(Segment::new(Point::new(-1.0, 1.0), Point::new(3.0, 1.0)).intersects_box(&bbox));
        // Completely outside.
        assert!(!Segment::new(Point::new(3.0, 3.0), Point::new(4.0, 4.0)).intersects_box(&bbox));
        // Touching a corner.
        assert!(Segment::new(Point::new(2.0, 2.0), Point::new(3.0, 3.0)).intersects_box(&bbox));
        // Empty box never intersects.
        assert!(
            !Segment::new(Point::ORIGIN, Point::new(1.0, 1.0)).intersects_box(&BoundingBox::EMPTY)
        );
    }

    #[test]
    fn intersection_point_of_crossing_segments() {
        let a = Segment::new(Point::new(0.0, 0.0), Point::new(4.0, 4.0));
        let b = Segment::new(Point::new(0.0, 4.0), Point::new(4.0, 0.0));
        assert!(a.intersects(&b));
        let p = a.intersection_point(&b).unwrap();
        assert!((p.x - 2.0).abs() < 1e-12 && (p.y - 2.0).abs() < 1e-12);
        assert_eq!(a.distance_to_segment(&b), 0.0);
    }

    #[test]
    fn point_at_traverses_segment() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        assert_eq!(s.point_at(0.0), s.start);
        assert_eq!(s.point_at(1.0), s.end);
        assert_eq!(s.point_at(0.25), Point::new(2.5, 0.0));
    }

    proptest! {
        #[test]
        fn prop_distance_to_contained_point_is_zero(
            ax in -50f64..50.0, ay in -50f64..50.0,
            bx in -50f64..50.0, by in -50f64..50.0,
            t in 0f64..1.0,
        ) {
            let s = Segment::new(Point::new(ax, ay), Point::new(bx, by));
            let p = s.point_at(t);
            prop_assert!(s.distance_to_point(&p) < 1e-7);
        }

        #[test]
        fn prop_bbox_intersection_consistent_with_contained_midpoint(
            ax in 0f64..10.0, ay in 0f64..10.0,
            bx in 0f64..10.0, by in 0f64..10.0,
        ) {
            // Segments fully inside the box always intersect it.
            let bbox = BoundingBox::from_bounds(0.0, 0.0, 10.0, 10.0);
            let s = Segment::new(Point::new(ax, ay), Point::new(bx, by));
            prop_assert!(s.intersects_box(&bbox));
        }
    }
}

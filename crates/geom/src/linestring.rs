//! Polylines (sequences of connected segments).

use crate::bbox::BoundingBox;
use crate::point::Point;
use crate::segment::Segment;

/// An open polyline: a sequence of at least two vertices connected by
/// straight segments.
///
/// Linestrings appear in the workloads as street centre-lines and as the
/// boundaries of query regions before they are closed into rings.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LineString {
    vertices: Vec<Point>,
}

impl LineString {
    /// Creates a linestring from its vertices.
    ///
    /// Fewer than two vertices yields a degenerate (empty-length) linestring,
    /// which is allowed but reports `is_valid() == false`.
    pub fn new(vertices: Vec<Point>) -> Self {
        LineString { vertices }
    }

    /// The vertices of the linestring.
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Whether the linestring has no vertices.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Whether the linestring has at least two vertices and all are finite.
    pub fn is_valid(&self) -> bool {
        self.vertices.len() >= 2 && self.vertices.iter().all(Point::is_finite)
    }

    /// Iterates over the constituent segments.
    pub fn segments(&self) -> impl Iterator<Item = Segment> + '_ {
        self.vertices.windows(2).map(|w| Segment::new(w[0], w[1]))
    }

    /// Total length of the polyline.
    pub fn length(&self) -> f64 {
        self.segments().map(|s| s.length()).sum()
    }

    /// Axis-aligned bounding box.
    pub fn bbox(&self) -> BoundingBox {
        BoundingBox::from_points(self.vertices.iter())
    }

    /// Minimum distance from the polyline to a point.
    pub fn distance_to_point(&self, p: &Point) -> f64 {
        if self.vertices.len() == 1 {
            return self.vertices[0].distance(p);
        }
        self.segments()
            .map(|s| s.distance_to_point(p))
            .fold(f64::INFINITY, f64::min)
    }

    /// Resamples the polyline at (roughly) `spacing` intervals, always keeping
    /// the original vertices. Used by the Hausdorff-distance estimator.
    pub fn densified(&self, spacing: f64) -> LineString {
        assert!(spacing > 0.0, "spacing must be positive");
        let mut out = Vec::new();
        for seg in self.segments() {
            out.push(seg.start);
            let n = (seg.length() / spacing).floor() as usize;
            for i in 1..=n {
                let t = i as f64 * spacing / seg.length();
                if t < 1.0 {
                    out.push(seg.point_at(t));
                }
            }
        }
        if let Some(last) = self.vertices.last() {
            out.push(*last);
        }
        LineString::new(out)
    }
}

impl From<Vec<Point>> for LineString {
    fn from(v: Vec<Point>) -> Self {
        LineString::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l_shape() -> LineString {
        LineString::new(vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(3.0, 4.0),
        ])
    }

    #[test]
    fn length_sums_segments() {
        assert_eq!(l_shape().length(), 7.0);
    }

    #[test]
    fn validity_rules() {
        assert!(l_shape().is_valid());
        assert!(!LineString::new(vec![Point::ORIGIN]).is_valid());
        assert!(!LineString::new(vec![]).is_valid());
        assert!(LineString::new(vec![]).is_empty());
        assert!(!LineString::new(vec![Point::new(f64::NAN, 0.0), Point::ORIGIN]).is_valid());
    }

    #[test]
    fn bbox_covers_all_vertices() {
        let b = l_shape().bbox();
        assert_eq!(b, BoundingBox::from_bounds(0.0, 0.0, 3.0, 4.0));
    }

    #[test]
    fn distance_to_point() {
        let l = l_shape();
        assert_eq!(l.distance_to_point(&Point::new(1.0, 0.0)), 0.0);
        assert_eq!(l.distance_to_point(&Point::new(1.0, 2.0)), 2.0);
        let single = LineString::new(vec![Point::new(1.0, 1.0)]);
        assert_eq!(single.distance_to_point(&Point::new(4.0, 5.0)), 5.0);
    }

    #[test]
    fn densified_preserves_endpoints_and_length() {
        let l = l_shape();
        let d = l.densified(0.5);
        assert_eq!(d.vertices().first(), l.vertices().first());
        assert_eq!(d.vertices().last(), l.vertices().last());
        assert!((d.length() - l.length()).abs() < 1e-9);
        assert!(d.len() > l.len());
        // Consecutive vertices are no farther apart than the spacing (plus slack).
        for w in d.vertices().windows(2) {
            assert!(w[0].distance(&w[1]) <= 0.5 + 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "spacing must be positive")]
    fn densified_rejects_zero_spacing() {
        let _ = l_shape().densified(0.0);
    }

    #[test]
    fn segments_iterator_count() {
        assert_eq!(l_shape().segments().count(), 2);
        assert_eq!(LineString::new(vec![Point::ORIGIN]).segments().count(), 0);
    }
}

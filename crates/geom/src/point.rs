//! 2-D point type and basic vector arithmetic.

use std::ops::{Add, Div, Mul, Neg, Sub};

/// A point (or 2-D vector) in the plane.
///
/// The same type is used for positions (taxi pickup locations, polygon
/// vertices) and for displacement vectors; the distinction is by usage.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate (east in the projected workloads).
    pub x: f64,
    /// Vertical coordinate (north in the projected workloads).
    pub y: f64,
}

impl Point {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn distance(&self, other: &Point) -> f64 {
        self.distance_squared(other).sqrt()
    }

    /// Squared Euclidean distance (avoids the square root when only
    /// comparisons are needed, e.g. nearest-neighbour style pruning).
    #[inline]
    pub fn distance_squared(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Dot product, treating both points as vectors.
    #[inline]
    pub fn dot(&self, other: &Point) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product magnitude (z component of the 3-D cross product).
    ///
    /// Positive when `other` is counter-clockwise from `self`.
    #[inline]
    pub fn cross(&self, other: &Point) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Euclidean length of the vector from the origin to this point.
    #[inline]
    pub fn norm(&self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Returns the vector scaled to unit length.
    ///
    /// Returns the zero vector unchanged (callers that need a direction must
    /// check for degeneracy themselves).
    #[inline]
    pub fn normalized(&self) -> Point {
        let n = self.norm();
        if n == 0.0 {
            *self
        } else {
            Point::new(self.x / n, self.y / n)
        }
    }

    /// Rotates the point by `angle` radians counter-clockwise around the origin.
    #[inline]
    pub fn rotated(&self, angle: f64) -> Point {
        let (s, c) = angle.sin_cos();
        Point::new(self.x * c - self.y * s, self.x * s + self.y * c)
    }

    /// Componentwise minimum of two points (lower-left corner of their bbox).
    #[inline]
    pub fn min(&self, other: &Point) -> Point {
        Point::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Componentwise maximum of two points (upper-right corner of their bbox).
    #[inline]
    pub fn max(&self, other: &Point) -> Point {
        Point::new(self.x.max(other.x), self.y.max(other.y))
    }

    /// Linear interpolation between `self` (t = 0) and `other` (t = 1).
    #[inline]
    pub fn lerp(&self, other: &Point, t: f64) -> Point {
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }

    /// Whether both coordinates are finite (neither NaN nor infinite).
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    #[inline]
    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Point {
    type Output = Point;
    #[inline]
    fn div(self, rhs: f64) -> Point {
        Point::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Point {
    type Output = Point;
    #[inline]
    fn neg(self) -> Point {
        Point::new(-self.x, -self.y)
    }
}

impl From<(f64, f64)> for Point {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl From<Point> for (f64, f64) {
    #[inline]
    fn from(p: Point) -> Self {
        (p.x, p.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.distance_squared(&b), 25.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(-1.5, 2.0);
        let b = Point::new(4.0, -7.25);
        assert_eq!(a.distance(&b), b.distance(&a));
    }

    #[test]
    fn cross_sign_encodes_orientation() {
        let east = Point::new(1.0, 0.0);
        let north = Point::new(0.0, 1.0);
        assert!(east.cross(&north) > 0.0);
        assert!(north.cross(&east) < 0.0);
        assert_eq!(east.cross(&east), 0.0);
    }

    #[test]
    fn vector_arithmetic() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, -1.0);
        assert_eq!(a + b, Point::new(4.0, 1.0));
        assert_eq!(a - b, Point::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
        assert_eq!(b / 2.0, Point::new(1.5, -0.5));
        assert_eq!(-a, Point::new(-1.0, -2.0));
    }

    #[test]
    fn normalized_has_unit_length() {
        let v = Point::new(3.0, 4.0).normalized();
        assert!((v.norm() - 1.0).abs() < 1e-12);
        assert_eq!(Point::ORIGIN.normalized(), Point::ORIGIN);
    }

    #[test]
    fn rotation_by_quarter_turn() {
        let v = Point::new(1.0, 0.0).rotated(std::f64::consts::FRAC_PI_2);
        assert!((v.x).abs() < 1e-12);
        assert!((v.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 20.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        assert_eq!(a.lerp(&b, 0.5), Point::new(5.0, 10.0));
    }

    #[test]
    fn min_max_are_componentwise() {
        let a = Point::new(1.0, 5.0);
        let b = Point::new(3.0, 2.0);
        assert_eq!(a.min(&b), Point::new(1.0, 2.0));
        assert_eq!(a.max(&b), Point::new(3.0, 5.0));
    }

    #[test]
    fn tuple_conversions_round_trip() {
        let p: Point = (2.5, -3.5).into();
        let t: (f64, f64) = p.into();
        assert_eq!(t, (2.5, -3.5));
    }

    #[test]
    fn is_finite_rejects_nan_and_inf() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 0.0).is_finite());
        assert!(!Point::new(0.0, f64::INFINITY).is_finite());
    }

    proptest! {
        #[test]
        fn prop_triangle_inequality(
            ax in -1e6f64..1e6, ay in -1e6f64..1e6,
            bx in -1e6f64..1e6, by in -1e6f64..1e6,
            cx in -1e6f64..1e6, cy in -1e6f64..1e6,
        ) {
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            let c = Point::new(cx, cy);
            prop_assert!(a.distance(&c) <= a.distance(&b) + b.distance(&c) + 1e-6);
        }

        #[test]
        fn prop_rotation_preserves_norm(x in -1e3f64..1e3, y in -1e3f64..1e3, angle in 0f64..std::f64::consts::TAU) {
            let p = Point::new(x, y);
            let r = p.rotated(angle);
            prop_assert!((p.norm() - r.norm()).abs() < 1e-6);
        }

        #[test]
        fn prop_dot_is_commutative(x1 in -1e3f64..1e3, y1 in -1e3f64..1e3, x2 in -1e3f64..1e3, y2 in -1e3f64..1e3) {
            let a = Point::new(x1, y1);
            let b = Point::new(x2, y2);
            prop_assert_eq!(a.dot(&b), b.dot(&a));
        }
    }
}

//! Polygons, rings and multi-polygons.
//!
//! The exact point-in-polygon test implemented here is the CPU-intensive
//! "refinement" operation whose elimination motivates the paper: it is
//! linear in the number of polygon vertices, and the evaluation's Boroughs
//! dataset averages 663 vertices per polygon.

use crate::bbox::BoundingBox;
use crate::point::Point;
use crate::predicates::{orientation, point_on_segment, Orientation};
use crate::segment::Segment;
use crate::PointLocation;

/// A closed ring of vertices (the last vertex connects back to the first).
///
/// The vertex list does **not** repeat the first vertex at the end; the
/// closing segment is implicit. Rings must have at least three vertices to
/// be valid.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Ring {
    vertices: Vec<Point>,
}

impl Ring {
    /// Creates a ring from its vertices (implicitly closed).
    ///
    /// A trailing duplicate of the first vertex, as produced by GeoJSON-style
    /// sources, is removed automatically.
    pub fn new(mut vertices: Vec<Point>) -> Self {
        if vertices.len() >= 2 && vertices.first() == vertices.last() {
            vertices.pop();
        }
        Ring { vertices }
    }

    /// The ring's vertices (without the closing duplicate).
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Whether the ring has no vertices.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Whether the ring has at least 3 finite vertices and non-zero area.
    pub fn is_valid(&self) -> bool {
        self.vertices.len() >= 3
            && self.vertices.iter().all(Point::is_finite)
            && self.signed_area().abs() > 0.0
    }

    /// Iterates over the ring's edges, including the closing edge.
    pub fn edges(&self) -> impl Iterator<Item = Segment> + '_ {
        let n = self.vertices.len();
        (0..n).map(move |i| Segment::new(self.vertices[i], self.vertices[(i + 1) % n]))
    }

    /// Signed area via the shoelace formula (positive for counter-clockwise).
    pub fn signed_area(&self) -> f64 {
        let n = self.vertices.len();
        if n < 3 {
            return 0.0;
        }
        let mut sum = 0.0;
        for i in 0..n {
            let a = &self.vertices[i];
            let b = &self.vertices[(i + 1) % n];
            sum += a.x * b.y - b.x * a.y;
        }
        sum * 0.5
    }

    /// Absolute enclosed area.
    pub fn area(&self) -> f64 {
        self.signed_area().abs()
    }

    /// Perimeter (sum of edge lengths, closing edge included).
    pub fn perimeter(&self) -> f64 {
        self.edges().map(|e| e.length()).sum()
    }

    /// Whether the vertices are ordered counter-clockwise.
    pub fn is_ccw(&self) -> bool {
        self.signed_area() > 0.0
    }

    /// Returns a copy with counter-clockwise orientation.
    pub fn oriented_ccw(&self) -> Ring {
        if self.is_ccw() {
            self.clone()
        } else {
            let mut v = self.vertices.clone();
            v.reverse();
            Ring { vertices: v }
        }
    }

    /// Axis-aligned bounding box.
    pub fn bbox(&self) -> BoundingBox {
        BoundingBox::from_points(self.vertices.iter())
    }

    /// Centroid of the ring (area-weighted).
    ///
    /// Falls back to the vertex average for degenerate (zero-area) rings.
    pub fn centroid(&self) -> Point {
        let a = self.signed_area();
        if a.abs() < 1e-12 {
            let n = self.vertices.len().max(1) as f64;
            return self.vertices.iter().fold(Point::ORIGIN, |acc, p| acc + *p) / n;
        }
        let n = self.vertices.len();
        let mut cx = 0.0;
        let mut cy = 0.0;
        for i in 0..n {
            let p = &self.vertices[i];
            let q = &self.vertices[(i + 1) % n];
            let cross = p.x * q.y - q.x * p.y;
            cx += (p.x + q.x) * cross;
            cy += (p.y + q.y) * cross;
        }
        Point::new(cx / (6.0 * a), cy / (6.0 * a))
    }

    /// Classifies a point against the ring using the crossing-number
    /// (ray-casting) algorithm, with an explicit boundary check.
    pub fn locate_point(&self, p: &Point) -> PointLocation {
        let n = self.vertices.len();
        if n < 3 {
            return PointLocation::Outside;
        }
        // Boundary check first: ray casting is unreliable exactly on edges.
        for edge in self.edges() {
            if point_on_segment(&edge.start, &edge.end, p) {
                return PointLocation::OnBoundary;
            }
        }
        let mut inside = false;
        let mut j = n - 1;
        for i in 0..n {
            let vi = &self.vertices[i];
            let vj = &self.vertices[j];
            if (vi.y > p.y) != (vj.y > p.y) {
                let x_cross = vj.x + (vi.x - vj.x) * (p.y - vj.y) / (vi.y - vj.y);
                if p.x < x_cross {
                    inside = !inside;
                }
            }
            j = i;
        }
        if inside {
            PointLocation::Inside
        } else {
            PointLocation::Outside
        }
    }

    /// Whether the point is inside the ring or on its boundary.
    pub fn contains_point(&self, p: &Point) -> bool {
        self.locate_point(p).is_inside_or_boundary()
    }

    /// Minimum distance from the point to the ring's boundary.
    pub fn boundary_distance(&self, p: &Point) -> f64 {
        self.edges()
            .map(|e| e.distance_to_point(p))
            .fold(f64::INFINITY, f64::min)
    }

    /// Whether the ring's boundary intersects the given box.
    pub fn boundary_intersects_box(&self, bbox: &BoundingBox) -> bool {
        self.edges().any(|e| e.intersects_box(bbox))
    }

    /// Whether the ring is convex (all turns in the same direction).
    pub fn is_convex(&self) -> bool {
        let n = self.vertices.len();
        if n < 3 {
            return false;
        }
        let mut sign: Option<Orientation> = None;
        for i in 0..n {
            let o = orientation(
                &self.vertices[i],
                &self.vertices[(i + 1) % n],
                &self.vertices[(i + 2) % n],
            );
            if o == Orientation::Collinear {
                continue;
            }
            match sign {
                None => sign = Some(o),
                Some(s) if s != o => return false,
                _ => {}
            }
        }
        true
    }
}

impl From<Vec<Point>> for Ring {
    fn from(v: Vec<Point>) -> Self {
        Ring::new(v)
    }
}

/// A polygon: one exterior ring plus zero or more interior rings (holes).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Polygon {
    exterior: Ring,
    holes: Vec<Ring>,
}

impl Polygon {
    /// Creates a polygon without holes.
    pub fn new(exterior: Ring) -> Self {
        Polygon {
            exterior,
            holes: Vec::new(),
        }
    }

    /// Creates a polygon with holes.
    pub fn with_holes(exterior: Ring, holes: Vec<Ring>) -> Self {
        Polygon { exterior, holes }
    }

    /// Convenience constructor from exterior vertex coordinates.
    pub fn from_coords(coords: &[(f64, f64)]) -> Self {
        Polygon::new(Ring::new(
            coords.iter().map(|&(x, y)| Point::new(x, y)).collect(),
        ))
    }

    /// Axis-aligned rectangle as a polygon.
    pub fn rectangle(bbox: &BoundingBox) -> Self {
        Polygon::new(Ring::new(bbox.corners().to_vec()))
    }

    /// The exterior ring.
    pub fn exterior(&self) -> &Ring {
        &self.exterior
    }

    /// The interior rings (holes).
    pub fn holes(&self) -> &[Ring] {
        &self.holes
    }

    /// Total number of vertices over all rings.
    pub fn vertex_count(&self) -> usize {
        self.exterior.len() + self.holes.iter().map(Ring::len).sum::<usize>()
    }

    /// Whether the exterior is valid and all holes are valid.
    pub fn is_valid(&self) -> bool {
        self.exterior.is_valid() && self.holes.iter().all(Ring::is_valid)
    }

    /// Enclosed area (exterior minus holes).
    pub fn area(&self) -> f64 {
        let hole_area: f64 = self.holes.iter().map(Ring::area).sum();
        (self.exterior.area() - hole_area).max(0.0)
    }

    /// Total boundary length (exterior plus holes).
    pub fn perimeter(&self) -> f64 {
        self.exterior.perimeter() + self.holes.iter().map(Ring::perimeter).sum::<f64>()
    }

    /// Axis-aligned bounding box (of the exterior ring).
    pub fn bbox(&self) -> BoundingBox {
        self.exterior.bbox()
    }

    /// Centroid of the exterior ring.
    pub fn centroid(&self) -> Point {
        self.exterior.centroid()
    }

    /// All edges of the polygon boundary (exterior and holes).
    pub fn edges(&self) -> impl Iterator<Item = Segment> + '_ {
        self.exterior
            .edges()
            .chain(self.holes.iter().flat_map(|h| h.edges()))
    }

    /// Exact point-location test taking holes into account.
    ///
    /// Runs in `O(vertex_count)` — this is the cost the distance-bounded
    /// raster approximation removes from the query path.
    pub fn locate_point(&self, p: &Point) -> PointLocation {
        match self.exterior.locate_point(p) {
            PointLocation::Outside => PointLocation::Outside,
            PointLocation::OnBoundary => PointLocation::OnBoundary,
            PointLocation::Inside => {
                for hole in &self.holes {
                    match hole.locate_point(p) {
                        PointLocation::Inside => return PointLocation::Outside,
                        PointLocation::OnBoundary => return PointLocation::OnBoundary,
                        PointLocation::Outside => {}
                    }
                }
                PointLocation::Inside
            }
        }
    }

    /// Exact point-in-polygon test (boundary inclusive).
    pub fn contains_point(&self, p: &Point) -> bool {
        self.locate_point(p).is_inside_or_boundary()
    }

    /// Minimum distance from the point to the polygon boundary (exterior or
    /// hole boundaries).
    pub fn boundary_distance(&self, p: &Point) -> f64 {
        let mut d = self.exterior.boundary_distance(p);
        for h in &self.holes {
            d = d.min(h.boundary_distance(p));
        }
        d
    }

    /// Signed distance to the polygon: negative inside, positive outside,
    /// zero on the boundary.
    pub fn signed_distance(&self, p: &Point) -> f64 {
        let d = self.boundary_distance(p);
        match self.locate_point(p) {
            PointLocation::Inside => -d,
            PointLocation::OnBoundary => 0.0,
            PointLocation::Outside => d,
        }
    }

    /// Whether the polygon boundary intersects the box.
    pub fn boundary_intersects_box(&self, bbox: &BoundingBox) -> bool {
        self.exterior.boundary_intersects_box(bbox)
            || self.holes.iter().any(|h| h.boundary_intersects_box(bbox))
    }

    /// Relation of an axis-aligned box to the polygon, used by the
    /// rasterizer and the hierarchical coverer.
    pub fn classify_box(&self, bbox: &BoundingBox) -> BoxRelation {
        if bbox.is_empty() || !self.bbox().intersects(bbox) {
            return BoxRelation::Disjoint;
        }
        if self.boundary_intersects_box(bbox) {
            return BoxRelation::Boundary;
        }
        // No boundary crossing: the box is entirely inside or entirely
        // outside; its center decides which.
        if self.contains_point(&bbox.center()) {
            BoxRelation::Inside
        } else {
            BoxRelation::Disjoint
        }
    }
}

/// Relation between an axis-aligned box and a polygon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoxRelation {
    /// The box lies entirely in the polygon interior.
    Inside,
    /// The box intersects the polygon boundary.
    Boundary,
    /// The box is entirely outside the polygon.
    Disjoint,
}

/// A collection of polygons treated as a single region (e.g. a borough made
/// of islands). The BRJ experiment's neighbourhood regions are
/// multi-polygons.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MultiPolygon {
    polygons: Vec<Polygon>,
}

impl MultiPolygon {
    /// Creates a multi-polygon from its parts.
    pub fn new(polygons: Vec<Polygon>) -> Self {
        MultiPolygon { polygons }
    }

    /// The constituent polygons.
    pub fn polygons(&self) -> &[Polygon] {
        &self.polygons
    }

    /// Number of constituent polygons.
    pub fn len(&self) -> usize {
        self.polygons.len()
    }

    /// Whether there are no constituent polygons.
    pub fn is_empty(&self) -> bool {
        self.polygons.is_empty()
    }

    /// Total enclosed area.
    pub fn area(&self) -> f64 {
        self.polygons.iter().map(Polygon::area).sum()
    }

    /// Total vertex count across all parts.
    pub fn vertex_count(&self) -> usize {
        self.polygons.iter().map(Polygon::vertex_count).sum()
    }

    /// Bounding box of all parts.
    pub fn bbox(&self) -> BoundingBox {
        self.polygons
            .iter()
            .fold(BoundingBox::EMPTY, |acc, p| acc.union(&p.bbox()))
    }

    /// Whether any part contains the point.
    pub fn contains_point(&self, p: &Point) -> bool {
        self.polygons.iter().any(|poly| poly.contains_point(p))
    }

    /// Minimum distance from the point to any part's boundary.
    pub fn boundary_distance(&self, p: &Point) -> f64 {
        self.polygons
            .iter()
            .map(|poly| poly.boundary_distance(p))
            .fold(f64::INFINITY, f64::min)
    }

    /// Signed distance to the union of the parts: negative inside any part,
    /// positive outside all of them, zero on a boundary. The magnitude is
    /// always [`boundary_distance`](Self::boundary_distance) to the nearest
    /// part boundary.
    pub fn signed_distance(&self, p: &Point) -> f64 {
        let d = self.boundary_distance(p);
        if self.contains_point(p) {
            -d
        } else {
            d
        }
    }

    /// Relation of a box to the union of the parts.
    pub fn classify_box(&self, bbox: &BoundingBox) -> BoxRelation {
        let mut relation = BoxRelation::Disjoint;
        for poly in &self.polygons {
            match poly.classify_box(bbox) {
                BoxRelation::Boundary => return BoxRelation::Boundary,
                BoxRelation::Inside => relation = BoxRelation::Inside,
                BoxRelation::Disjoint => {}
            }
        }
        relation
    }
}

impl From<Polygon> for MultiPolygon {
    fn from(p: Polygon) -> Self {
        MultiPolygon::new(vec![p])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn unit_square() -> Polygon {
        Polygon::from_coords(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)])
    }

    fn square_with_hole() -> Polygon {
        let exterior = Ring::new(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 4.0),
            Point::new(0.0, 4.0),
        ]);
        let hole = Ring::new(vec![
            Point::new(1.0, 1.0),
            Point::new(3.0, 1.0),
            Point::new(3.0, 3.0),
            Point::new(1.0, 3.0),
        ]);
        Polygon::with_holes(exterior, vec![hole])
    }

    fn l_polygon() -> Polygon {
        Polygon::from_coords(&[
            (0.0, 0.0),
            (4.0, 0.0),
            (4.0, 2.0),
            (2.0, 2.0),
            (2.0, 4.0),
            (0.0, 4.0),
        ])
    }

    #[test]
    fn ring_closing_duplicate_is_removed() {
        let r = Ring::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 0.0),
        ]);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn shoelace_area_and_orientation() {
        let ccw = Ring::new(vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
        ]);
        assert_eq!(ccw.signed_area(), 4.0);
        assert!(ccw.is_ccw());
        let cw = {
            let mut v = ccw.vertices().to_vec();
            v.reverse();
            Ring::new(v)
        };
        assert_eq!(cw.signed_area(), -4.0);
        assert!(!cw.is_ccw());
        assert!(cw.oriented_ccw().is_ccw());
        assert_eq!(cw.area(), 4.0);
    }

    #[test]
    fn ring_validity() {
        assert!(unit_square().exterior().is_valid());
        assert!(!Ring::new(vec![Point::ORIGIN, Point::new(1.0, 1.0)]).is_valid());
        // Degenerate collinear ring has zero area and is invalid.
        let degenerate = Ring::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
        ]);
        assert!(!degenerate.is_valid());
    }

    #[test]
    fn perimeter_and_centroid() {
        let sq = unit_square();
        assert_eq!(sq.perimeter(), 4.0);
        let c = sq.centroid();
        assert!((c.x - 0.5).abs() < 1e-12 && (c.y - 0.5).abs() < 1e-12);
    }

    #[test]
    fn point_in_convex_polygon() {
        let sq = unit_square();
        assert_eq!(
            sq.locate_point(&Point::new(0.5, 0.5)),
            PointLocation::Inside
        );
        assert_eq!(
            sq.locate_point(&Point::new(1.5, 0.5)),
            PointLocation::Outside
        );
        assert_eq!(
            sq.locate_point(&Point::new(1.0, 0.5)),
            PointLocation::OnBoundary
        );
        assert_eq!(
            sq.locate_point(&Point::new(0.0, 0.0)),
            PointLocation::OnBoundary
        );
    }

    #[test]
    fn point_in_concave_polygon() {
        let l = l_polygon();
        assert!(l.contains_point(&Point::new(1.0, 3.0)));
        assert!(l.contains_point(&Point::new(3.0, 1.0)));
        // The notch of the L is outside.
        assert!(!l.contains_point(&Point::new(3.0, 3.0)));
        assert_eq!(l.area(), 12.0);
        assert!(!l.exterior().is_convex());
        assert!(unit_square().exterior().is_convex());
    }

    #[test]
    fn point_in_polygon_with_hole() {
        let p = square_with_hole();
        assert!(p.contains_point(&Point::new(0.5, 0.5)));
        // Inside the hole => outside the polygon.
        assert!(!p.contains_point(&Point::new(2.0, 2.0)));
        // On the hole boundary counts as boundary.
        assert_eq!(
            p.locate_point(&Point::new(1.0, 2.0)),
            PointLocation::OnBoundary
        );
        assert_eq!(p.area(), 16.0 - 4.0);
        assert_eq!(p.vertex_count(), 8);
    }

    #[test]
    fn signed_distance_sign_convention() {
        let sq = unit_square();
        assert!(sq.signed_distance(&Point::new(0.5, 0.5)) < 0.0);
        assert!(sq.signed_distance(&Point::new(2.0, 0.5)) > 0.0);
        assert_eq!(sq.signed_distance(&Point::new(1.0, 0.5)), 0.0);
        assert_eq!(sq.signed_distance(&Point::new(2.0, 0.5)), 1.0);
    }

    #[test]
    fn classify_box_cases() {
        let p = square_with_hole();
        // Fully inside the solid part.
        assert_eq!(
            p.classify_box(&BoundingBox::from_bounds(0.2, 0.2, 0.8, 0.8)),
            BoxRelation::Inside
        );
        // Straddling the exterior boundary.
        assert_eq!(
            p.classify_box(&BoundingBox::from_bounds(-0.5, 0.2, 0.5, 0.8)),
            BoxRelation::Boundary
        );
        // Entirely outside.
        assert_eq!(
            p.classify_box(&BoundingBox::from_bounds(5.0, 5.0, 6.0, 6.0)),
            BoxRelation::Disjoint
        );
        // Entirely within the hole: no boundary crossing and center not contained.
        assert_eq!(
            p.classify_box(&BoundingBox::from_bounds(1.5, 1.5, 2.5, 2.5)),
            BoxRelation::Disjoint
        );
        // Straddling the hole boundary.
        assert_eq!(
            p.classify_box(&BoundingBox::from_bounds(0.5, 1.5, 1.5, 2.5)),
            BoxRelation::Boundary
        );
    }

    #[test]
    fn rectangle_polygon_matches_bbox() {
        let bbox = BoundingBox::from_bounds(1.0, 2.0, 5.0, 4.0);
        let rect = Polygon::rectangle(&bbox);
        assert_eq!(rect.area(), bbox.area());
        assert_eq!(rect.bbox(), bbox);
    }

    #[test]
    fn multipolygon_union_semantics() {
        let mp = MultiPolygon::new(vec![
            unit_square(),
            Polygon::from_coords(&[(2.0, 0.0), (3.0, 0.0), (3.0, 1.0), (2.0, 1.0)]),
        ]);
        assert_eq!(mp.len(), 2);
        assert_eq!(mp.area(), 2.0);
        assert!(mp.contains_point(&Point::new(0.5, 0.5)));
        assert!(mp.contains_point(&Point::new(2.5, 0.5)));
        assert!(!mp.contains_point(&Point::new(1.5, 0.5)));
        assert_eq!(mp.bbox(), BoundingBox::from_bounds(0.0, 0.0, 3.0, 1.0));
        assert_eq!(
            mp.classify_box(&BoundingBox::from_bounds(0.2, 0.2, 0.4, 0.4)),
            BoxRelation::Inside
        );
        assert_eq!(
            mp.classify_box(&BoundingBox::from_bounds(1.2, 0.2, 1.4, 0.4)),
            BoxRelation::Disjoint
        );
        assert_eq!(
            mp.classify_box(&BoundingBox::from_bounds(0.5, 0.5, 2.5, 0.6)),
            BoxRelation::Boundary
        );
    }

    #[test]
    fn boundary_distance_of_multipolygon() {
        let mp = MultiPolygon::from(unit_square());
        assert_eq!(mp.boundary_distance(&Point::new(2.0, 0.5)), 1.0);
        assert!(MultiPolygon::default().is_empty());
        assert_eq!(
            MultiPolygon::default().boundary_distance(&Point::ORIGIN),
            f64::INFINITY
        );
    }

    proptest! {
        #[test]
        fn prop_centroid_of_convex_quad_is_inside(
            w in 1f64..100.0, h in 1f64..100.0, ox in -50f64..50.0, oy in -50f64..50.0,
        ) {
            let poly = Polygon::from_coords(&[
                (ox, oy), (ox + w, oy), (ox + w, oy + h), (ox, oy + h),
            ]);
            prop_assert!(poly.contains_point(&poly.centroid()));
        }

        #[test]
        fn prop_points_inside_bbox_of_square_agree_with_exact(
            px in -2f64..3.0, py in -2f64..3.0,
        ) {
            // For an axis-aligned square, exact containment equals bbox containment.
            let sq = unit_square();
            let p = Point::new(px, py);
            prop_assert_eq!(sq.contains_point(&p), sq.bbox().contains_point(&p));
        }

        #[test]
        fn prop_signed_distance_magnitude_is_boundary_distance(
            px in -3f64..4.0, py in -3f64..4.0,
        ) {
            let p = Point::new(px, py);
            let poly = l_polygon();
            let sd = poly.signed_distance(&p);
            prop_assert!((sd.abs() - poly.boundary_distance(&p)).abs() < 1e-9);
        }

        #[test]
        fn prop_area_is_translation_invariant(
            dx in -1000f64..1000.0, dy in -1000f64..1000.0,
        ) {
            let base = l_polygon();
            let shifted = Polygon::new(Ring::new(
                base.exterior().vertices().iter().map(|p| *p + Point::new(dx, dy)).collect(),
            ));
            prop_assert!((base.area() - shifted.area()).abs() < 1e-6);
        }
    }
}

//! Axis-aligned bounding boxes.
//!
//! The bounding box is both a utility type (extents of datasets, grid
//! extents, canvas viewports) and the geometric payload of the MBR
//! approximation (see [`crate::approx::mbr`]).

use crate::point::Point;

/// An axis-aligned rectangle defined by its lower-left and upper-right corners.
///
/// Invariant: `min.x <= max.x && min.y <= max.y` for every box constructed
/// through the public constructors. An *empty* box (no contained points) is
/// represented by [`BoundingBox::EMPTY`] and reports `is_empty() == true`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundingBox {
    /// Lower-left corner (componentwise minimum).
    pub min: Point,
    /// Upper-right corner (componentwise maximum).
    pub max: Point,
}

impl BoundingBox {
    /// The empty box: contains no points, is the identity for [`union`](Self::union).
    pub const EMPTY: BoundingBox = BoundingBox {
        min: Point {
            x: f64::INFINITY,
            y: f64::INFINITY,
        },
        max: Point {
            x: f64::NEG_INFINITY,
            y: f64::NEG_INFINITY,
        },
    };

    /// Creates a box from two opposite corners given in any order.
    pub fn new(a: Point, b: Point) -> Self {
        BoundingBox {
            min: a.min(&b),
            max: a.max(&b),
        }
    }

    /// Creates a box from explicit coordinate bounds.
    ///
    /// # Panics
    /// Panics if `min_x > max_x` or `min_y > max_y`.
    pub fn from_bounds(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Self {
        assert!(
            min_x <= max_x && min_y <= max_y,
            "invalid bounds: ({min_x},{min_y}) .. ({max_x},{max_y})"
        );
        BoundingBox {
            min: Point::new(min_x, min_y),
            max: Point::new(max_x, max_y),
        }
    }

    /// The smallest box containing all the given points, or the empty box if
    /// the iterator is empty.
    pub fn from_points<'a, I: IntoIterator<Item = &'a Point>>(points: I) -> Self {
        let mut bbox = BoundingBox::EMPTY;
        for p in points {
            bbox.expand_to_point(p);
        }
        bbox
    }

    /// Whether the box contains no points at all.
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y
    }

    /// Width along the x axis (0 for the empty box).
    pub fn width(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.max.x - self.min.x
        }
    }

    /// Height along the y axis (0 for the empty box).
    pub fn height(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.max.y - self.min.y
        }
    }

    /// Area of the box (0 for the empty box).
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Perimeter (the R*-tree "margin" optimisation target).
    pub fn perimeter(&self) -> f64 {
        2.0 * (self.width() + self.height())
    }

    /// Center of the box.
    ///
    /// Meaningless for the empty box; callers must check [`is_empty`](Self::is_empty) first.
    pub fn center(&self) -> Point {
        Point::new(
            (self.min.x + self.max.x) * 0.5,
            (self.min.y + self.max.y) * 0.5,
        )
    }

    /// Whether the point lies inside the box (boundary inclusive).
    #[inline]
    pub fn contains_point(&self, p: &Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Whether `other` is entirely inside `self` (boundary inclusive).
    pub fn contains_box(&self, other: &BoundingBox) -> bool {
        if other.is_empty() {
            return true;
        }
        if self.is_empty() {
            return false;
        }
        self.min.x <= other.min.x
            && self.min.y <= other.min.y
            && self.max.x >= other.max.x
            && self.max.y >= other.max.y
    }

    /// Whether the two boxes share at least one point (boundary touching counts).
    #[inline]
    pub fn intersects(&self, other: &BoundingBox) -> bool {
        !(self.is_empty()
            || other.is_empty()
            || self.min.x > other.max.x
            || other.min.x > self.max.x
            || self.min.y > other.max.y
            || other.min.y > self.max.y)
    }

    /// The intersection of the two boxes, or the empty box when disjoint.
    pub fn intersection(&self, other: &BoundingBox) -> BoundingBox {
        if !self.intersects(other) {
            return BoundingBox::EMPTY;
        }
        BoundingBox {
            min: self.min.max(&other.min),
            max: self.max.min(&other.max),
        }
    }

    /// The smallest box containing both boxes.
    pub fn union(&self, other: &BoundingBox) -> BoundingBox {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        BoundingBox {
            min: self.min.min(&other.min),
            max: self.max.max(&other.max),
        }
    }

    /// Grows the box in place so that it contains `p`.
    pub fn expand_to_point(&mut self, p: &Point) {
        self.min = self.min.min(p);
        self.max = self.max.max(p);
    }

    /// Grows the box in place so that it contains `other`.
    pub fn expand_to_box(&mut self, other: &BoundingBox) {
        *self = self.union(other);
    }

    /// Returns a copy grown by `margin` on every side.
    ///
    /// A negative margin shrinks the box; if it would invert the box the
    /// empty box is returned.
    pub fn inflated(&self, margin: f64) -> BoundingBox {
        if self.is_empty() {
            return *self;
        }
        let min = Point::new(self.min.x - margin, self.min.y - margin);
        let max = Point::new(self.max.x + margin, self.max.y + margin);
        if min.x > max.x || min.y > max.y {
            BoundingBox::EMPTY
        } else {
            BoundingBox { min, max }
        }
    }

    /// Minimum Euclidean distance from the point to the box (0 if inside).
    pub fn distance_to_point(&self, p: &Point) -> f64 {
        if self.is_empty() {
            return f64::INFINITY;
        }
        let dx = (self.min.x - p.x).max(0.0).max(p.x - self.max.x);
        let dy = (self.min.y - p.y).max(0.0).max(p.y - self.max.y);
        (dx * dx + dy * dy).sqrt()
    }

    /// Maximum Euclidean distance from the point to any point of the box.
    pub fn max_distance_to_point(&self, p: &Point) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.corners()
            .iter()
            .map(|c| c.distance(p))
            .fold(0.0, f64::max)
    }

    /// The four corners in counter-clockwise order starting from `min`.
    pub fn corners(&self) -> [Point; 4] {
        [
            self.min,
            Point::new(self.max.x, self.min.y),
            self.max,
            Point::new(self.min.x, self.max.y),
        ]
    }

    /// Area increase needed to include `other` (the classic R-tree insertion
    /// heuristic).
    pub fn enlargement(&self, other: &BoundingBox) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Overlap area with `other` (0 when disjoint).
    pub fn overlap_area(&self, other: &BoundingBox) -> f64 {
        self.intersection(other).area()
    }
}

impl Default for BoundingBox {
    fn default() -> Self {
        BoundingBox::EMPTY
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> BoundingBox {
        BoundingBox::from_bounds(0.0, 0.0, 10.0, 5.0)
    }

    #[test]
    fn new_normalizes_corner_order() {
        let b = BoundingBox::new(Point::new(5.0, 1.0), Point::new(-2.0, 7.0));
        assert_eq!(b.min, Point::new(-2.0, 1.0));
        assert_eq!(b.max, Point::new(5.0, 7.0));
    }

    #[test]
    #[should_panic(expected = "invalid bounds")]
    fn from_bounds_rejects_inverted() {
        let _ = BoundingBox::from_bounds(1.0, 0.0, 0.0, 1.0);
    }

    #[test]
    fn empty_box_properties() {
        let e = BoundingBox::EMPTY;
        assert!(e.is_empty());
        assert_eq!(e.area(), 0.0);
        assert_eq!(e.width(), 0.0);
        assert!(!e.contains_point(&Point::ORIGIN));
        assert!(!e.intersects(&sample()));
        assert_eq!(e.union(&sample()), sample());
    }

    #[test]
    fn geometry_measures() {
        let b = sample();
        assert_eq!(b.width(), 10.0);
        assert_eq!(b.height(), 5.0);
        assert_eq!(b.area(), 50.0);
        assert_eq!(b.perimeter(), 30.0);
        assert_eq!(b.center(), Point::new(5.0, 2.5));
    }

    #[test]
    fn containment_is_boundary_inclusive() {
        let b = sample();
        assert!(b.contains_point(&Point::new(0.0, 0.0)));
        assert!(b.contains_point(&Point::new(10.0, 5.0)));
        assert!(b.contains_point(&Point::new(5.0, 2.0)));
        assert!(!b.contains_point(&Point::new(10.01, 2.0)));
        assert!(!b.contains_point(&Point::new(5.0, -0.01)));
    }

    #[test]
    fn box_containment() {
        let outer = sample();
        let inner = BoundingBox::from_bounds(1.0, 1.0, 4.0, 4.0);
        assert!(outer.contains_box(&inner));
        assert!(!inner.contains_box(&outer));
        assert!(outer.contains_box(&BoundingBox::EMPTY));
    }

    #[test]
    fn intersection_and_union() {
        let a = BoundingBox::from_bounds(0.0, 0.0, 4.0, 4.0);
        let b = BoundingBox::from_bounds(2.0, 2.0, 6.0, 6.0);
        assert!(a.intersects(&b));
        assert_eq!(
            a.intersection(&b),
            BoundingBox::from_bounds(2.0, 2.0, 4.0, 4.0)
        );
        assert_eq!(a.union(&b), BoundingBox::from_bounds(0.0, 0.0, 6.0, 6.0));
        assert_eq!(a.overlap_area(&b), 4.0);

        let c = BoundingBox::from_bounds(10.0, 10.0, 12.0, 12.0);
        assert!(!a.intersects(&c));
        assert!(a.intersection(&c).is_empty());
    }

    #[test]
    fn touching_boxes_intersect() {
        let a = BoundingBox::from_bounds(0.0, 0.0, 1.0, 1.0);
        let b = BoundingBox::from_bounds(1.0, 0.0, 2.0, 1.0);
        assert!(a.intersects(&b));
        assert_eq!(a.intersection(&b).area(), 0.0);
    }

    #[test]
    fn from_points_builds_hull_box() {
        let pts = [
            Point::new(1.0, 2.0),
            Point::new(-3.0, 4.0),
            Point::new(0.5, -1.0),
        ];
        let b = BoundingBox::from_points(pts.iter());
        assert_eq!(b, BoundingBox::from_bounds(-3.0, -1.0, 1.0, 4.0));
        assert!(BoundingBox::from_points([].iter()).is_empty());
    }

    #[test]
    fn distance_to_point_cases() {
        let b = sample();
        assert_eq!(b.distance_to_point(&Point::new(5.0, 2.0)), 0.0);
        assert_eq!(b.distance_to_point(&Point::new(13.0, 9.0)), 5.0);
        assert_eq!(b.distance_to_point(&Point::new(-3.0, 2.0)), 3.0);
        assert!(BoundingBox::EMPTY
            .distance_to_point(&Point::ORIGIN)
            .is_infinite());
    }

    #[test]
    fn max_distance_is_to_a_corner() {
        let b = BoundingBox::from_bounds(0.0, 0.0, 3.0, 4.0);
        assert_eq!(b.max_distance_to_point(&Point::ORIGIN), 5.0);
    }

    #[test]
    fn inflation_and_deflation() {
        let b = BoundingBox::from_bounds(0.0, 0.0, 4.0, 4.0);
        assert_eq!(
            b.inflated(1.0),
            BoundingBox::from_bounds(-1.0, -1.0, 5.0, 5.0)
        );
        assert_eq!(
            b.inflated(-1.0),
            BoundingBox::from_bounds(1.0, 1.0, 3.0, 3.0)
        );
        assert!(b.inflated(-3.0).is_empty());
    }

    #[test]
    fn enlargement_matches_union_growth() {
        let a = BoundingBox::from_bounds(0.0, 0.0, 2.0, 2.0);
        let b = BoundingBox::from_bounds(3.0, 0.0, 4.0, 2.0);
        assert_eq!(a.enlargement(&b), 8.0 - 4.0);
        assert_eq!(a.enlargement(&a), 0.0);
    }

    proptest! {
        #[test]
        fn prop_union_contains_both(
            ax in -100f64..100.0, ay in -100f64..100.0, aw in 0f64..50.0, ah in 0f64..50.0,
            bx in -100f64..100.0, by in -100f64..100.0, bw in 0f64..50.0, bh in 0f64..50.0,
        ) {
            let a = BoundingBox::from_bounds(ax, ay, ax + aw, ay + ah);
            let b = BoundingBox::from_bounds(bx, by, bx + bw, by + bh);
            let u = a.union(&b);
            prop_assert!(u.contains_box(&a));
            prop_assert!(u.contains_box(&b));
        }

        #[test]
        fn prop_intersection_contained_in_both(
            ax in -100f64..100.0, ay in -100f64..100.0, aw in 0f64..50.0, ah in 0f64..50.0,
            bx in -100f64..100.0, by in -100f64..100.0, bw in 0f64..50.0, bh in 0f64..50.0,
        ) {
            let a = BoundingBox::from_bounds(ax, ay, ax + aw, ay + ah);
            let b = BoundingBox::from_bounds(bx, by, bx + bw, by + bh);
            let i = a.intersection(&b);
            prop_assert!(a.contains_box(&i));
            prop_assert!(b.contains_box(&i));
        }

        #[test]
        fn prop_contained_point_has_zero_distance(
            px in -20f64..20.0, py in -20f64..20.0,
        ) {
            let b = BoundingBox::from_bounds(-20.0, -20.0, 20.0, 20.0);
            let p = Point::new(px, py);
            prop_assert!(b.contains_point(&p));
            prop_assert_eq!(b.distance_to_point(&p), 0.0);
        }
    }
}

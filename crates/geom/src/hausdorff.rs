//! Hausdorff distance.
//!
//! The paper's ε-approximation (Section 2.2) is defined through the
//! Hausdorff distance: a geometry `g'` ε-approximates `g` when
//! `d_H(g, g') <= ε`, where
//!
//! ```text
//! d_H(g, g') = max( sup_{p' in g'} inf_{p in g} d(p, p'),
//!                   sup_{p in g}  inf_{p' in g'} d(p, p') )
//! ```
//!
//! Exact Hausdorff distances between polygons and unions of raster cells are
//! expensive and unnecessary; this module provides the point-set and sampled
//! variants that the raster verification layer and the test suites use.

use crate::linestring::LineString;
use crate::point::Point;
use crate::polygon::Polygon;

/// Directed Hausdorff distance `sup_{a in A} inf_{b in B} d(a, b)` between
/// two finite point sets.
///
/// Returns 0 for an empty `A` and infinity for an empty `B` with non-empty `A`.
pub fn directed_hausdorff(a: &[Point], b: &[Point]) -> f64 {
    if a.is_empty() {
        return 0.0;
    }
    if b.is_empty() {
        return f64::INFINITY;
    }
    let mut max_min = 0.0f64;
    for p in a {
        let mut min_d = f64::INFINITY;
        for q in b {
            let d = p.distance_squared(q);
            if d < min_d {
                min_d = d;
                if min_d == 0.0 {
                    break;
                }
            }
        }
        let min_d = min_d.sqrt();
        if min_d > max_min {
            max_min = min_d;
        }
    }
    max_min
}

/// Symmetric Hausdorff distance between two finite point sets.
pub fn hausdorff_distance(a: &[Point], b: &[Point]) -> f64 {
    directed_hausdorff(a, b).max(directed_hausdorff(b, a))
}

/// Directed Hausdorff distance from a point set to a polygon **boundary**
/// (computed exactly per point using point-to-segment distances).
pub fn directed_hausdorff_to_polygon_boundary(points: &[Point], polygon: &Polygon) -> f64 {
    points
        .iter()
        .map(|p| polygon.boundary_distance(p))
        .fold(0.0, f64::max)
}

/// Approximate symmetric Hausdorff distance between two polygon boundaries,
/// obtained by densifying both boundaries at `spacing` and comparing the
/// sample sets against the exact opposite boundary.
///
/// The sampling error is at most `spacing / 2` in each direction, so the
/// returned value is within `spacing` of the true boundary Hausdorff
/// distance. Callers pick `spacing` well below the distance bound they are
/// checking.
pub fn polygon_boundary_hausdorff(a: &Polygon, b: &Polygon, spacing: f64) -> f64 {
    let sample = |poly: &Polygon| -> Vec<Point> {
        let mut pts = Vec::new();
        let mut rings: Vec<&crate::polygon::Ring> = vec![poly.exterior()];
        rings.extend(poly.holes().iter());
        for ring in rings {
            let mut vertices = ring.vertices().to_vec();
            if let Some(first) = vertices.first().copied() {
                vertices.push(first);
            }
            let ls = LineString::new(vertices).densified(spacing);
            pts.extend_from_slice(ls.vertices());
        }
        pts
    };
    let sa = sample(a);
    let sb = sample(b);
    let d_ab = sa
        .iter()
        .map(|p| b.boundary_distance(p))
        .fold(0.0, f64::max);
    let d_ba = sb
        .iter()
        .map(|p| a.boundary_distance(p))
        .fold(0.0, f64::max);
    d_ab.max(d_ba)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::polygon::Polygon;
    use proptest::prelude::*;

    #[test]
    fn directed_distance_basics() {
        let a = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
        let b = vec![Point::new(0.0, 3.0)];
        // Farthest point of a from its nearest in b: (1,0) -> (0,3) = sqrt(10)
        assert!((directed_hausdorff(&a, &b) - 10f64.sqrt()).abs() < 1e-12);
        // Reverse direction: (0,3) -> nearest (0,0) = 3
        assert_eq!(directed_hausdorff(&b, &a), 3.0);
        assert!((hausdorff_distance(&a, &b) - 10f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_set_conventions() {
        let a = vec![Point::new(1.0, 1.0)];
        assert_eq!(directed_hausdorff(&[], &a), 0.0);
        assert_eq!(directed_hausdorff(&a, &[]), f64::INFINITY);
    }

    #[test]
    fn identical_sets_have_zero_distance() {
        let a = vec![
            Point::new(0.0, 0.0),
            Point::new(5.0, 5.0),
            Point::new(-2.0, 3.0),
        ];
        assert_eq!(hausdorff_distance(&a, &a), 0.0);
    }

    #[test]
    fn subset_has_zero_directed_distance() {
        let b = vec![
            Point::new(0.0, 0.0),
            Point::new(5.0, 5.0),
            Point::new(-2.0, 3.0),
        ];
        let a = vec![Point::new(5.0, 5.0)];
        assert_eq!(directed_hausdorff(&a, &b), 0.0);
        assert!(directed_hausdorff(&b, &a) > 0.0);
    }

    #[test]
    fn point_set_to_polygon_boundary() {
        let sq = Polygon::from_coords(&[(0.0, 0.0), (4.0, 0.0), (4.0, 4.0), (0.0, 4.0)]);
        let pts = vec![Point::new(2.0, 2.0), Point::new(5.0, 2.0)];
        // Center is 2 from the boundary, outside point is 1.
        assert_eq!(directed_hausdorff_to_polygon_boundary(&pts, &sq), 2.0);
    }

    #[test]
    fn boundary_hausdorff_of_nested_squares() {
        let outer = Polygon::from_coords(&[(0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0)]);
        let inner = Polygon::from_coords(&[(1.0, 1.0), (9.0, 1.0), (9.0, 9.0), (1.0, 9.0)]);
        let d = polygon_boundary_hausdorff(&outer, &inner, 0.1);
        // Corner-to-corner distance is sqrt(2); sampling error <= 0.1.
        assert!((d - 2f64.sqrt()).abs() < 0.15, "d = {d}");
    }

    #[test]
    fn boundary_hausdorff_of_identical_polygons_is_zero() {
        let p = Polygon::from_coords(&[(0.0, 0.0), (4.0, 0.0), (4.0, 3.0), (0.0, 3.0)]);
        assert!(polygon_boundary_hausdorff(&p, &p, 0.25) < 1e-9);
    }

    proptest! {
        #[test]
        fn prop_symmetric_hausdorff_is_symmetric(
            pa in proptest::collection::vec((-50f64..50.0, -50f64..50.0), 1..20),
            pb in proptest::collection::vec((-50f64..50.0, -50f64..50.0), 1..20),
        ) {
            let a: Vec<Point> = pa.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let b: Vec<Point> = pb.iter().map(|&(x, y)| Point::new(x, y)).collect();
            prop_assert_eq!(hausdorff_distance(&a, &b), hausdorff_distance(&b, &a));
        }

        #[test]
        fn prop_hausdorff_upper_bounds_directed(
            pa in proptest::collection::vec((-50f64..50.0, -50f64..50.0), 1..20),
            pb in proptest::collection::vec((-50f64..50.0, -50f64..50.0), 1..20),
        ) {
            let a: Vec<Point> = pa.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let b: Vec<Point> = pb.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let h = hausdorff_distance(&a, &b);
            prop_assert!(h >= directed_hausdorff(&a, &b));
            prop_assert!(h >= directed_hausdorff(&b, &a));
        }

        #[test]
        fn prop_translation_shifts_hausdorff_at_most_by_offset(
            pa in proptest::collection::vec((-50f64..50.0, -50f64..50.0), 1..15),
            dx in -10f64..10.0, dy in -10f64..10.0,
        ) {
            let a: Vec<Point> = pa.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let shifted: Vec<Point> = a.iter().map(|p| *p + Point::new(dx, dy)).collect();
            let d = hausdorff_distance(&a, &shifted);
            let offset = (dx * dx + dy * dy).sqrt();
            prop_assert!(d <= offset + 1e-9);
        }
    }
}

//! # dbsa-geom — geometry substrate
//!
//! Planar geometry primitives and predicates used throughout the
//! distance-bounded spatial approximation (DBSA) stack:
//!
//! * [`Point`], [`Segment`], [`LineString`], [`Ring`], [`Polygon`] and
//!   [`MultiPolygon`] value types,
//! * robust-enough orientation / intersection predicates for query
//!   processing ([`predicates`]),
//! * exact point-in-polygon tests (the expensive "refinement" operation the
//!   paper wants to eliminate),
//! * the [`hausdorff`] module implementing the Hausdorff distance that
//!   defines the paper's ε distance bound (Section 2.2),
//! * classic geometric approximations from Section 2.1 of the paper
//!   ([`approx`]): MBR, rotated MBR, minimum bounding circle, convex hull,
//!   minimum bounding n-corner and clipped bounding rectangles.
//!
//! All coordinates are `f64` in an arbitrary planar coordinate system. The
//! workloads in the benchmark harness use meters in a local projection so
//! that distance bounds such as "4 m" are directly meaningful.

pub mod approx;
pub mod bbox;
pub mod clip;
pub mod convex_hull;
pub mod hausdorff;
pub mod linestring;
pub mod point;
pub mod polygon;
pub mod predicates;
pub mod segment;
pub mod simplify;

pub use approx::{
    clipped_bbox::ClippedBoundingBox, mbr::Mbr, min_circle::MinBoundingCircle,
    n_corner::MinBoundingNCorner, rotated_mbr::RotatedMbr, Approximation, ApproximationKind,
};
pub use bbox::BoundingBox;
pub use clip::{clip_ring_to_box, polygon_box_overlap_area, polygon_box_overlap_fraction};
pub use convex_hull::convex_hull;
pub use hausdorff::{directed_hausdorff, hausdorff_distance};
pub use linestring::LineString;
pub use point::Point;
pub use polygon::{MultiPolygon, Polygon, Ring};
pub use predicates::Orientation;
pub use segment::Segment;
pub use simplify::{simplify_polygon, simplify_polyline, simplify_ring};

/// Relation of a point to a region: strictly inside, on the boundary, or
/// strictly outside.
///
/// Exact geometric tests in the refinement step distinguish all three;
/// approximate raster evaluation collapses boundary handling into the
/// conservative / non-conservative policy of the raster approximation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointLocation {
    /// The point is in the interior of the region.
    Inside,
    /// The point lies on the boundary of the region.
    OnBoundary,
    /// The point is outside the region.
    Outside,
}

impl PointLocation {
    /// Whether the location counts as contained when boundaries are included.
    pub fn is_inside_or_boundary(self) -> bool {
        !matches!(self, PointLocation::Outside)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_location_boundary_counts_as_contained() {
        assert!(PointLocation::Inside.is_inside_or_boundary());
        assert!(PointLocation::OnBoundary.is_inside_or_boundary());
        assert!(!PointLocation::Outside.is_inside_or_boundary());
    }
}

//! Classic geometric approximations of spatial objects (paper Section 2.1).
//!
//! These are the approximations surveyed by Brinkhoff et al. and used by
//! traditional filter-and-refine pipelines: the Minimum Bounding Rectangle
//! (MBR), the Rotated MBR, the Minimum Bounding Circle, the Convex Hull, the
//! Minimum Bounding n-Corner and the Clipped Bounding Rectangle.
//!
//! They all share the [`Approximation`] interface: a *conservative*
//! containment filter (`may_contain_point` never produces false negatives
//! for points inside the original object) plus area / storage metrics used
//! in the approximation-quality experiments.
//!
//! Crucially — and this is the paper's argument — none of these can provide
//! a *distance bound*: the Hausdorff distance between an object and, say,
//! its MBR depends on the object's shape and can be arbitrarily large
//! (consider a thin diagonal sliver). Raster approximations
//! (`dbsa-raster`) are the distance-bounded alternative.

pub mod clipped_bbox;
pub mod mbr;
pub mod min_circle;
pub mod n_corner;
pub mod rotated_mbr;

use crate::bbox::BoundingBox;
use crate::convex_hull::convex_hull;
use crate::point::Point;
use crate::polygon::{Polygon, Ring};

/// Identifies the kind of a geometric approximation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ApproximationKind {
    /// Axis-aligned minimum bounding rectangle.
    Mbr,
    /// Minimum-area rotated bounding rectangle.
    RotatedMbr,
    /// Minimum bounding circle.
    MinCircle,
    /// Convex hull.
    ConvexHull,
    /// Minimum bounding n-corner (convex polygon with at most n vertices).
    NCorner,
    /// MBR with clipped corners (Clipped Bounding Rectangle).
    ClippedBbox,
}

/// Common interface of conservative geometric approximations.
///
/// A conservative approximation `A(g)` of geometry `g` satisfies
/// `g ⊆ A(g)`: every point of the original object is inside the
/// approximation, so using `may_contain_point` as a filter can produce
/// false positives but never false negatives.
pub trait Approximation {
    /// Builds the approximation of a polygon.
    fn from_polygon(polygon: &Polygon) -> Self
    where
        Self: Sized;

    /// Which approximation this is.
    fn kind(&self) -> ApproximationKind;

    /// Conservative containment filter: `false` guarantees the point is not
    /// in the original object; `true` means "maybe".
    fn may_contain_point(&self, p: &Point) -> bool;

    /// Area of the approximation region (the smaller the area relative to
    /// the object, the fewer false positives the filter admits).
    fn area(&self) -> f64;

    /// Axis-aligned bounding box of the approximation (used when the
    /// approximation itself is stored inside an R-tree style index).
    fn bbox(&self) -> BoundingBox;

    /// Approximate storage footprint in bytes (for the memory experiments).
    fn storage_bytes(&self) -> usize;

    /// False-area ratio with respect to the approximated polygon:
    /// `area(approximation) / area(polygon)`. A value of 1.0 is a perfect
    /// fit; larger values admit more false positives.
    fn false_area_ratio(&self, polygon: &Polygon) -> f64 {
        let pa = polygon.area();
        if pa == 0.0 {
            f64::INFINITY
        } else {
            self.area() / pa
        }
    }
}

/// The convex hull used as a conservative approximation.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvexHullApprox {
    hull: Ring,
}

impl ConvexHullApprox {
    /// The hull ring.
    pub fn ring(&self) -> &Ring {
        &self.hull
    }
}

impl Approximation for ConvexHullApprox {
    fn from_polygon(polygon: &Polygon) -> Self {
        let hull = convex_hull(polygon.exterior().vertices());
        ConvexHullApprox {
            hull: Ring::new(hull),
        }
    }

    fn kind(&self) -> ApproximationKind {
        ApproximationKind::ConvexHull
    }

    fn may_contain_point(&self, p: &Point) -> bool {
        self.hull.contains_point(p)
    }

    fn area(&self) -> f64 {
        self.hull.area()
    }

    fn bbox(&self) -> BoundingBox {
        self.hull.bbox()
    }

    fn storage_bytes(&self) -> usize {
        self.hull.len() * std::mem::size_of::<Point>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::polygon::Polygon;

    fn l_polygon() -> Polygon {
        Polygon::from_coords(&[
            (0.0, 0.0),
            (4.0, 0.0),
            (4.0, 2.0),
            (2.0, 2.0),
            (2.0, 4.0),
            (0.0, 4.0),
        ])
    }

    #[test]
    fn convex_hull_approx_is_conservative() {
        let poly = l_polygon();
        let hull = ConvexHullApprox::from_polygon(&poly);
        assert_eq!(hull.kind(), ApproximationKind::ConvexHull);
        // Every polygon vertex must be inside the hull.
        for v in poly.exterior().vertices() {
            assert!(hull.may_contain_point(v));
        }
        // The hull of the L-shape has area 14 (bbox 16 minus one corner triangle of 2).
        assert!((hull.area() - 14.0).abs() < 1e-9);
        assert!(hull.area() >= poly.area());
        assert!(hull.false_area_ratio(&poly) >= 1.0);
        assert_eq!(hull.bbox(), poly.bbox());
        assert!(hull.storage_bytes() > 0);
    }

    #[test]
    fn hull_filters_out_far_points() {
        let hull = ConvexHullApprox::from_polygon(&l_polygon());
        assert!(!hull.may_contain_point(&Point::new(10.0, 10.0)));
        // The notch of the L: the hull still says maybe (false positive),
        // demonstrating why approximations over-approximate.
        let notch_point = Point::new(3.0, 2.5);
        assert!(!l_polygon().contains_point(&notch_point));
        assert!(hull.may_contain_point(&notch_point));
    }

    #[test]
    fn false_area_ratio_handles_zero_area_polygon() {
        let degenerate = Polygon::from_coords(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]);
        let hull = ConvexHullApprox::from_polygon(&degenerate);
        assert!(hull.false_area_ratio(&degenerate).is_infinite());
    }
}

//! Minimum Bounding n-Corner approximation.
//!
//! A convex polygon with at most `n` vertices that encloses the object.
//! Following Brinkhoff et al., it interpolates between the MBR (n = 4,
//! axis-aligned) and the convex hull (n = hull size): more corners mean a
//! tighter fit but more storage and a costlier filter test.
//!
//! The construction used here repeatedly removes the hull vertex whose
//! removal adds the least area, replacing it with the intersection of its
//! neighbouring edges — a standard greedy scheme that keeps the polygon
//! enclosing (conservative) at every step.

use crate::approx::{Approximation, ApproximationKind};
use crate::bbox::BoundingBox;
use crate::convex_hull::convex_hull;
use crate::point::Point;
use crate::polygon::{Polygon, Ring};
use crate::predicates;

/// Convex enclosing polygon with a bounded number of corners.
#[derive(Debug, Clone, PartialEq)]
pub struct MinBoundingNCorner {
    ring: Ring,
    target_corners: usize,
}

impl MinBoundingNCorner {
    /// Default number of corners when built through [`Approximation::from_polygon`].
    pub const DEFAULT_CORNERS: usize = 5;

    /// Builds an enclosing convex polygon with at most `n` corners
    /// (`n >= 3`).
    pub fn with_corners(polygon: &Polygon, n: usize) -> Self {
        assert!(n >= 3, "an enclosing polygon needs at least 3 corners");
        let hull = convex_hull(polygon.exterior().vertices());
        if hull.len() <= n {
            return MinBoundingNCorner {
                ring: Ring::new(hull),
                target_corners: n,
            };
        }
        let mut vertices = hull;
        while vertices.len() > n {
            if !remove_cheapest_vertex(&mut vertices) {
                break;
            }
        }
        MinBoundingNCorner {
            ring: Ring::new(vertices),
            target_corners: n,
        }
    }

    /// The enclosing ring.
    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    /// The corner budget this approximation was built with.
    pub fn target_corners(&self) -> usize {
        self.target_corners
    }
}

/// Eliminates one edge of the convex polygon: the two endpoints of the
/// eliminated edge are replaced by the intersection of their *other*
/// adjacent edges, extended outward. The replacement point lies outside the
/// old polygon, so the result still encloses it; the added area is the
/// triangle formed by the eliminated edge and the new point. The edge with
/// the smallest added area is chosen. Returns false if no edge can be
/// eliminated (adjacent edges parallel or diverging for every candidate).
fn remove_cheapest_vertex(vertices: &mut Vec<Point>) -> bool {
    let n = vertices.len();
    if n <= 3 {
        return false;
    }
    let mut best: Option<(usize, Point, f64)> = None;
    for i in 0..n {
        // Eliminate the edge (a, b); extend (prev -> a) beyond a and
        // (next -> b) beyond b until they meet at p.
        let prev = vertices[(i + n - 1) % n];
        let a = vertices[i];
        let b = vertices[(i + 1) % n];
        let next = vertices[(i + 2) % n];
        let d1 = a - prev;
        let d2 = b - next;
        let denom = d1.cross(&d2);
        if denom.abs() < 1e-12 {
            continue; // parallel extensions never meet
        }
        // Solve a + d1*t = b + d2*u.
        let diff = b - a;
        let t = diff.cross(&d2) / denom;
        let u = diff.cross(&d1) / denom;
        if t < 0.0 || u < 0.0 {
            continue; // rays diverge: eliminating this edge would not enclose
        }
        let p = a + d1 * t;
        let added = predicates::signed_area2(&a, &p, &b).abs() * 0.5;
        match best {
            Some((_, _, best_area)) if best_area <= added => {}
            _ => best = Some((i, p, added)),
        }
    }
    if let Some((i, p, _)) = best {
        let next_idx = (i + 1) % vertices.len();
        vertices[i] = p;
        vertices.remove(next_idx);
        true
    } else {
        false
    }
}

impl Approximation for MinBoundingNCorner {
    fn from_polygon(polygon: &Polygon) -> Self {
        MinBoundingNCorner::with_corners(polygon, Self::DEFAULT_CORNERS)
    }

    fn kind(&self) -> ApproximationKind {
        ApproximationKind::NCorner
    }

    fn may_contain_point(&self, p: &Point) -> bool {
        self.ring.contains_point(p)
    }

    fn area(&self) -> f64 {
        self.ring.area()
    }

    fn bbox(&self) -> BoundingBox {
        self.ring.bbox()
    }

    fn storage_bytes(&self) -> usize {
        self.ring.len() * std::mem::size_of::<Point>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn octagon() -> Polygon {
        let pts: Vec<(f64, f64)> = (0..8)
            .map(|i| {
                let a = std::f64::consts::TAU * i as f64 / 8.0;
                (10.0 * a.cos(), 10.0 * a.sin())
            })
            .collect();
        Polygon::from_coords(&pts)
    }

    #[test]
    fn hull_smaller_than_budget_is_kept() {
        let tri = Polygon::from_coords(&[(0.0, 0.0), (4.0, 0.0), (2.0, 3.0)]);
        let nc = MinBoundingNCorner::with_corners(&tri, 5);
        assert_eq!(nc.ring().len(), 3);
        assert_eq!(nc.target_corners(), 5);
    }

    #[test]
    fn octagon_reduced_to_five_corners_still_encloses() {
        let poly = octagon();
        let nc = MinBoundingNCorner::with_corners(&poly, 5);
        assert!(nc.ring().len() <= 5);
        assert!(nc.ring().len() >= 3);
        for v in poly.exterior().vertices() {
            assert!(
                nc.may_contain_point(v),
                "vertex {:?} escaped the n-corner",
                v
            );
        }
        // Still a reasonable fit: no more than the bounding-box area.
        assert!(nc.area() <= poly.bbox().area() * 1.5);
    }

    #[test]
    fn more_corners_fit_at_least_as_tight() {
        let poly = octagon();
        let loose = MinBoundingNCorner::with_corners(&poly, 3);
        let tight = MinBoundingNCorner::with_corners(&poly, 6);
        assert!(tight.area() <= loose.area() + 1e-9);
        assert!(loose.area() >= poly.area());
        assert!(tight.area() >= poly.area() - 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least 3 corners")]
    fn rejects_fewer_than_three_corners() {
        let _ = MinBoundingNCorner::with_corners(&octagon(), 2);
    }

    #[test]
    fn default_build_uses_five_corners() {
        let nc = MinBoundingNCorner::from_polygon(&octagon());
        assert_eq!(nc.kind(), ApproximationKind::NCorner);
        assert!(nc.ring().len() <= MinBoundingNCorner::DEFAULT_CORNERS);
        assert!(nc.storage_bytes() >= 3 * std::mem::size_of::<Point>());
    }

    proptest! {
        #[test]
        fn prop_n_corner_is_conservative(
            pts in proptest::collection::vec((-100f64..100.0, -100f64..100.0), 6..25),
            n in 3usize..7,
        ) {
            let poly = Polygon::from_coords(&pts);
            prop_assume!(convex_hull(poly.exterior().vertices()).len() >= 3);
            let nc = MinBoundingNCorner::with_corners(&poly, n);
            prop_assume!(nc.ring().len() >= 3);
            for v in poly.exterior().vertices() {
                prop_assert!(nc.may_contain_point(v));
            }
        }
    }
}

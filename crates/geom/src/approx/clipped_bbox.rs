//! Clipped Bounding Rectangle approximation.
//!
//! Following Sidlauskas et al. (ICDE 2018), the clipped bounding rectangle
//! improves on the MBR by cutting away empty space concentrated around the
//! MBR corners: each corner may carry one diagonal "clip line" such that the
//! triangle between the corner and the clip line contains no part of the
//! object. The filter test is the MBR test plus up to four half-plane tests.

use crate::approx::{Approximation, ApproximationKind};
use crate::bbox::BoundingBox;
use crate::point::Point;
use crate::polygon::Polygon;

/// One clipped corner: the triangle cut off at a given MBR corner.
#[derive(Debug, Clone, Copy, PartialEq)]
struct CornerClip {
    /// The corner being clipped.
    corner: Point,
    /// Extent of the clip along the x direction away from the corner.
    dx: f64,
    /// Extent of the clip along the y direction away from the corner.
    dy: f64,
}

impl CornerClip {
    /// Whether the point falls inside the clipped-off triangle (i.e. is
    /// excluded by this clip).
    fn excludes(&self, p: &Point) -> bool {
        if self.dx <= 0.0 || self.dy <= 0.0 {
            return false;
        }
        // Normalized distances from the corner toward the interior.
        let u = (p.x - self.corner.x).abs() / self.dx;
        let v = (p.y - self.corner.y).abs() / self.dy;
        u + v < 1.0
    }

    /// Area of the clipped triangle.
    fn area(&self) -> f64 {
        0.5 * self.dx.max(0.0) * self.dy.max(0.0)
    }
}

/// MBR with up to four clipped corners.
#[derive(Debug, Clone, PartialEq)]
pub struct ClippedBoundingBox {
    bbox: BoundingBox,
    clips: Vec<CornerClip>,
}

impl ClippedBoundingBox {
    /// Number of probe steps used when growing a corner clip.
    const PROBE_STEPS: usize = 16;

    /// The underlying MBR.
    pub fn rect(&self) -> &BoundingBox {
        &self.bbox
    }

    /// Total area clipped away from the MBR.
    pub fn clipped_area(&self) -> f64 {
        self.clips.iter().map(CornerClip::area).sum()
    }

    /// Number of corners that carry a non-trivial clip.
    pub fn clip_count(&self) -> usize {
        self.clips.iter().filter(|c| c.area() > 0.0).count()
    }

    /// Builds the clip for one corner by growing the clip triangle until it
    /// would intersect the polygon.
    fn build_clip(polygon: &Polygon, corner: Point, bbox: &BoundingBox) -> CornerClip {
        let max_dx = bbox.width();
        let max_dy = bbox.height();
        let toward_x = if corner.x == bbox.min.x { 1.0 } else { -1.0 };
        let toward_y = if corner.y == bbox.min.y { 1.0 } else { -1.0 };

        // Probe increasing triangle sizes (as a fraction of the half-extent)
        // and keep the largest one whose hypotenuse does not cross the
        // polygon and whose interior contains no polygon vertex.
        let mut best = CornerClip {
            corner,
            dx: 0.0,
            dy: 0.0,
        };
        for step in (1..=Self::PROBE_STEPS).rev() {
            let frac = step as f64 / Self::PROBE_STEPS as f64 * 0.5;
            let dx = max_dx * frac;
            let dy = max_dy * frac;
            if dx <= 0.0 || dy <= 0.0 {
                continue;
            }
            let clip = CornerClip { corner, dx, dy };
            let a = Point::new(corner.x + toward_x * dx, corner.y);
            let b = Point::new(corner.x, corner.y + toward_y * dy);
            let hypotenuse = crate::segment::Segment::new(a, b);
            let crosses = polygon.edges().any(|e| e.intersects(&hypotenuse));
            let vertex_inside = polygon
                .exterior()
                .vertices()
                .iter()
                .any(|v| clip.excludes(v));
            let corner_in_polygon = polygon.contains_point(&corner);
            if !crosses && !vertex_inside && !corner_in_polygon {
                best = clip;
                break;
            }
        }
        best
    }
}

impl Approximation for ClippedBoundingBox {
    fn from_polygon(polygon: &Polygon) -> Self {
        let bbox = polygon.bbox();
        let clips = bbox
            .corners()
            .iter()
            .map(|&corner| Self::build_clip(polygon, corner, &bbox))
            .collect();
        ClippedBoundingBox { bbox, clips }
    }

    fn kind(&self) -> ApproximationKind {
        ApproximationKind::ClippedBbox
    }

    fn may_contain_point(&self, p: &Point) -> bool {
        if !self.bbox.contains_point(p) {
            return false;
        }
        !self.clips.iter().any(|c| c.excludes(p))
    }

    fn area(&self) -> f64 {
        (self.bbox.area() - self.clipped_area()).max(0.0)
    }

    fn bbox(&self) -> BoundingBox {
        self.bbox
    }

    fn storage_bytes(&self) -> usize {
        // MBR (4 floats) + four clips (2 floats each).
        (4 + 8) * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn triangle() -> Polygon {
        // Right triangle leaving the upper-left MBR corner empty.
        Polygon::from_coords(&[(0.0, 0.0), (10.0, 0.0), (10.0, 10.0)])
    }

    #[test]
    fn clips_empty_corner_of_triangle() {
        let poly = triangle();
        let cbb = ClippedBoundingBox::from_polygon(&poly);
        assert_eq!(cbb.kind(), ApproximationKind::ClippedBbox);
        // At least the empty (0,10) corner should be clipped.
        assert!(
            cbb.clip_count() >= 1,
            "expected at least one clipped corner"
        );
        assert!(cbb.clipped_area() > 0.0);
        assert!(cbb.area() < poly.bbox().area());
        // Far corner point excluded by the clip.
        assert!(!cbb.may_contain_point(&Point::new(0.5, 9.5)));
        // Outside the MBR entirely.
        assert!(!cbb.may_contain_point(&Point::new(20.0, 5.0)));
    }

    #[test]
    fn remains_conservative_for_polygon_points() {
        let poly = triangle();
        let cbb = ClippedBoundingBox::from_polygon(&poly);
        for v in poly.exterior().vertices() {
            assert!(cbb.may_contain_point(v));
        }
        // Interior samples.
        for &(x, y) in &[(5.0, 1.0), (9.0, 5.0), (8.0, 7.0), (9.9, 9.0)] {
            let p = Point::new(x, y);
            assert!(poly.contains_point(&p));
            assert!(cbb.may_contain_point(&p), "clip wrongly excludes {:?}", p);
        }
    }

    #[test]
    fn rectangle_polygon_gets_no_clips() {
        let rect = Polygon::from_coords(&[(0.0, 0.0), (4.0, 0.0), (4.0, 2.0), (0.0, 2.0)]);
        let cbb = ClippedBoundingBox::from_polygon(&rect);
        assert_eq!(cbb.clip_count(), 0);
        assert_eq!(cbb.area(), rect.bbox().area());
        assert_eq!(cbb.storage_bytes(), 96);
    }

    #[test]
    fn area_between_polygon_and_mbr() {
        let poly = triangle();
        let cbb = ClippedBoundingBox::from_polygon(&poly);
        assert!(cbb.area() >= poly.area() - 1e-9);
        assert!(cbb.area() <= poly.bbox().area() + 1e-9);
        assert!(cbb.false_area_ratio(&poly) <= Mbr::from_polygon(&poly).false_area_ratio(&poly));
    }

    use crate::approx::mbr::Mbr;

    proptest! {
        #[test]
        fn prop_clipped_bbox_is_conservative_for_interior_points(
            pts in proptest::collection::vec((-50f64..50.0, -50f64..50.0), 3..15),
            tx in 0.05f64..0.95, ty in 0.05f64..0.95,
        ) {
            let poly = Polygon::from_coords(&pts);
            prop_assume!(poly.area() > 1.0);
            let cbb = ClippedBoundingBox::from_polygon(&poly);
            // Sample a point inside the polygon via rejection on the bbox lerp.
            let bbox = poly.bbox();
            let p = Point::new(
                bbox.min.x + tx * bbox.width(),
                bbox.min.y + ty * bbox.height(),
            );
            prop_assume!(poly.contains_point(&p));
            prop_assert!(cbb.may_contain_point(&p), "clipped bbox excluded interior point {:?}", p);
        }

        #[test]
        fn prop_clipped_area_never_exceeds_mbr(
            pts in proptest::collection::vec((-50f64..50.0, -50f64..50.0), 3..15),
        ) {
            let poly = Polygon::from_coords(&pts);
            let cbb = ClippedBoundingBox::from_polygon(&poly);
            prop_assert!(cbb.area() <= poly.bbox().area() + 1e-9);
        }
    }
}

//! Minimum Bounding Rectangle (MBR) approximation.
//!
//! The MBR is the approximation used by virtually all production spatial
//! indexes (R-trees and friends). It is compact (4 floats) but coarse, and —
//! central to the paper's argument — it is **not distance-bounded**: the
//! distance from an MBR corner to the nearest point of the object depends
//! entirely on the object's shape ([`Mbr::corner_gap`] measures it).

use crate::approx::{Approximation, ApproximationKind};
use crate::bbox::BoundingBox;
use crate::point::Point;
use crate::polygon::Polygon;

/// Axis-aligned minimum bounding rectangle of a polygon.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mbr {
    bbox: BoundingBox,
}

impl Mbr {
    /// Wraps an existing bounding box as an MBR approximation.
    pub fn from_bbox(bbox: BoundingBox) -> Self {
        Mbr { bbox }
    }

    /// The underlying rectangle.
    pub fn rect(&self) -> &BoundingBox {
        &self.bbox
    }

    /// The largest distance from any MBR corner to the nearest point of the
    /// polygon boundary.
    ///
    /// This is the quantity the paper points to when it notes that MBRs
    /// cannot guarantee a distance bound: `corner_gap` is data dependent and
    /// unbounded (e.g. a thin diagonal polygon has gaps proportional to its
    /// diameter).
    pub fn corner_gap(&self, polygon: &Polygon) -> f64 {
        self.bbox
            .corners()
            .iter()
            .map(|c| {
                if polygon.contains_point(c) {
                    0.0
                } else {
                    polygon.boundary_distance(c)
                }
            })
            .fold(0.0, f64::max)
    }
}

impl Approximation for Mbr {
    fn from_polygon(polygon: &Polygon) -> Self {
        Mbr {
            bbox: polygon.bbox(),
        }
    }

    fn kind(&self) -> ApproximationKind {
        ApproximationKind::Mbr
    }

    fn may_contain_point(&self, p: &Point) -> bool {
        self.bbox.contains_point(p)
    }

    fn area(&self) -> f64 {
        self.bbox.area()
    }

    fn bbox(&self) -> BoundingBox {
        self.bbox
    }

    fn storage_bytes(&self) -> usize {
        4 * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn triangle() -> Polygon {
        Polygon::from_coords(&[(0.0, 0.0), (10.0, 0.0), (10.0, 10.0)])
    }

    #[test]
    fn mbr_of_triangle() {
        let mbr = Mbr::from_polygon(&triangle());
        assert_eq!(mbr.kind(), ApproximationKind::Mbr);
        assert_eq!(*mbr.rect(), BoundingBox::from_bounds(0.0, 0.0, 10.0, 10.0));
        assert_eq!(mbr.area(), 100.0);
        assert_eq!(mbr.storage_bytes(), 32);
        // The triangle covers only half of its MBR.
        assert_eq!(mbr.false_area_ratio(&triangle()), 2.0);
    }

    #[test]
    fn mbr_is_conservative() {
        let poly = triangle();
        let mbr = Mbr::from_polygon(&poly);
        for v in poly.exterior().vertices() {
            assert!(mbr.may_contain_point(v));
        }
        // A point inside the polygon is always inside the MBR.
        assert!(mbr.may_contain_point(&Point::new(8.0, 2.0)));
        // The upper-left corner region is a false positive area.
        assert!(mbr.may_contain_point(&Point::new(1.0, 9.0)));
        assert!(!poly.contains_point(&Point::new(1.0, 9.0)));
    }

    #[test]
    fn corner_gap_reflects_shape_dependence() {
        // The right triangle's MBR has a far-away corner at (0, 10):
        // the closest boundary point is on the hypotenuse.
        let gap = Mbr::from_polygon(&triangle()).corner_gap(&triangle());
        assert!((gap - 50f64.sqrt()).abs() < 1e-9, "gap = {gap}");

        // A rectangle-shaped polygon has no corner gap at all.
        let rect = Polygon::from_coords(&[(0.0, 0.0), (4.0, 0.0), (4.0, 2.0), (0.0, 2.0)]);
        assert_eq!(Mbr::from_polygon(&rect).corner_gap(&rect), 0.0);
    }

    #[test]
    fn corner_gap_grows_with_sliver_length() {
        // Thin diagonal sliver: corner gap grows with the diameter, showing
        // the MBR error is unbounded (paper Section 2.2).
        let short = Polygon::from_coords(&[(0.0, 0.0), (10.0, 10.0), (10.0, 10.1), (0.0, 0.1)]);
        let long = Polygon::from_coords(&[(0.0, 0.0), (100.0, 100.0), (100.0, 100.1), (0.0, 0.1)]);
        let g_short = Mbr::from_polygon(&short).corner_gap(&short);
        let g_long = Mbr::from_polygon(&long).corner_gap(&long);
        assert!(g_long > 5.0 * g_short);
    }

    proptest! {
        #[test]
        fn prop_mbr_contains_all_vertices(
            pts in proptest::collection::vec((-100f64..100.0, -100f64..100.0), 3..40)
        ) {
            let poly = Polygon::from_coords(&pts);
            let mbr = Mbr::from_polygon(&poly);
            for v in poly.exterior().vertices() {
                prop_assert!(mbr.may_contain_point(v));
            }
        }

        #[test]
        fn prop_mbr_area_at_least_polygon_area(
            w in 1f64..50.0, h in 1f64..50.0,
        ) {
            let poly = Polygon::from_coords(&[(0.0, 0.0), (w, 0.0), (w, h), (0.0, h), (w * 0.5, h * 0.5)]);
            let mbr = Mbr::from_polygon(&poly);
            prop_assert!(mbr.area() >= poly.area() - 1e-9);
        }
    }
}

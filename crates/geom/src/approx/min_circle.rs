//! Minimum Bounding Circle (MBC) approximation.
//!
//! Computed with Welzl's randomized-incremental algorithm (implemented here
//! deterministically with a move-to-front heuristic, which is fast enough
//! for the vertex counts in the workloads: hundreds of vertices).

use crate::approx::{Approximation, ApproximationKind};
use crate::bbox::BoundingBox;
use crate::point::Point;
use crate::polygon::Polygon;

/// A circle described by its center and radius.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Circle {
    /// Center of the circle.
    pub center: Point,
    /// Radius (non-negative).
    pub radius: f64,
}

impl Circle {
    /// The degenerate empty circle.
    pub const EMPTY: Circle = Circle {
        center: Point::ORIGIN,
        radius: -1.0,
    };

    /// Whether the circle contains the point (with a small tolerance).
    pub fn contains(&self, p: &Point) -> bool {
        if self.radius < 0.0 {
            return false;
        }
        self.center.distance(p) <= self.radius + 1e-9 * (1.0 + self.radius)
    }

    fn from_two(a: &Point, b: &Point) -> Circle {
        Circle {
            center: a.lerp(b, 0.5),
            radius: a.distance(b) * 0.5,
        }
    }

    fn from_three(a: &Point, b: &Point, c: &Point) -> Circle {
        // Circumcircle via perpendicular bisector intersection.
        let d = 2.0 * (a.x * (b.y - c.y) + b.x * (c.y - a.y) + c.x * (a.y - b.y));
        if d.abs() < 1e-12 {
            // Collinear: use the widest pair.
            let ab = Circle::from_two(a, b);
            let ac = Circle::from_two(a, c);
            let bc = Circle::from_two(b, c);
            let mut best = ab;
            for cand in [ac, bc] {
                if cand.radius > best.radius {
                    best = cand;
                }
            }
            return best;
        }
        let a2 = a.dot(a);
        let b2 = b.dot(b);
        let c2 = c.dot(c);
        let ux = (a2 * (b.y - c.y) + b2 * (c.y - a.y) + c2 * (a.y - b.y)) / d;
        let uy = (a2 * (c.x - b.x) + b2 * (a.x - c.x) + c2 * (b.x - a.x)) / d;
        let center = Point::new(ux, uy);
        Circle {
            radius: center.distance(a),
            center,
        }
    }
}

/// Minimum bounding circle of a polygon.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MinBoundingCircle {
    circle: Circle,
}

impl MinBoundingCircle {
    /// The enclosing circle.
    pub fn circle(&self) -> &Circle {
        &self.circle
    }

    /// Computes the minimum enclosing circle of a point set.
    pub fn from_points(points: &[Point]) -> Self {
        let pts: Vec<Point> = points.iter().filter(|p| p.is_finite()).copied().collect();
        MinBoundingCircle {
            circle: welzl(&pts),
        }
    }
}

/// Iterative Welzl-style construction: grow the circle whenever a point
/// falls outside, re-anchoring on boundary points. Deterministic and
/// `O(n)` expected for the shuffled case; worst case `O(n^3)` on tiny inputs
/// which is irrelevant at workload vertex counts.
fn welzl(points: &[Point]) -> Circle {
    if points.is_empty() {
        return Circle::EMPTY;
    }
    if points.len() == 1 {
        return Circle {
            center: points[0],
            radius: 0.0,
        };
    }
    let mut c = Circle::from_two(&points[0], &points[1]);
    for i in 2..points.len() {
        if c.contains(&points[i]) {
            continue;
        }
        // points[i] must be on the boundary of the new circle.
        c = Circle {
            center: points[i],
            radius: 0.0,
        };
        for j in 0..i {
            if c.contains(&points[j]) {
                continue;
            }
            c = Circle::from_two(&points[i], &points[j]);
            for k in 0..j {
                if !c.contains(&points[k]) {
                    c = Circle::from_three(&points[i], &points[j], &points[k]);
                }
            }
        }
    }
    c
}

impl Approximation for MinBoundingCircle {
    fn from_polygon(polygon: &Polygon) -> Self {
        MinBoundingCircle::from_points(polygon.exterior().vertices())
    }

    fn kind(&self) -> ApproximationKind {
        ApproximationKind::MinCircle
    }

    fn may_contain_point(&self, p: &Point) -> bool {
        self.circle.contains(p)
    }

    fn area(&self) -> f64 {
        if self.circle.radius < 0.0 {
            0.0
        } else {
            std::f64::consts::PI * self.circle.radius * self.circle.radius
        }
    }

    fn bbox(&self) -> BoundingBox {
        if self.circle.radius < 0.0 {
            return BoundingBox::EMPTY;
        }
        BoundingBox::from_bounds(
            self.circle.center.x - self.circle.radius,
            self.circle.center.y - self.circle.radius,
            self.circle.center.x + self.circle.radius,
            self.circle.center.y + self.circle.radius,
        )
    }

    fn storage_bytes(&self) -> usize {
        3 * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn circle_of_square_is_circumscribed() {
        let sq = Polygon::from_coords(&[(0.0, 0.0), (2.0, 0.0), (2.0, 2.0), (0.0, 2.0)]);
        let mbc = MinBoundingCircle::from_polygon(&sq);
        let c = mbc.circle();
        assert!((c.center.x - 1.0).abs() < 1e-9);
        assert!((c.center.y - 1.0).abs() < 1e-9);
        assert!((c.radius - 2f64.sqrt()).abs() < 1e-9);
        assert_eq!(mbc.kind(), ApproximationKind::MinCircle);
        assert_eq!(mbc.storage_bytes(), 24);
    }

    #[test]
    fn circle_of_two_point_diameter() {
        let mbc = MinBoundingCircle::from_points(&[Point::new(0.0, 0.0), Point::new(10.0, 0.0)]);
        assert_eq!(mbc.circle().radius, 5.0);
        assert_eq!(mbc.circle().center, Point::new(5.0, 0.0));
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(MinBoundingCircle::from_points(&[]).circle().radius, -1.0);
        let single = MinBoundingCircle::from_points(&[Point::new(3.0, 4.0)]);
        assert_eq!(single.circle().radius, 0.0);
        assert!(single.may_contain_point(&Point::new(3.0, 4.0)));
        assert_eq!(single.area(), 0.0);
        // Collinear points.
        let col = MinBoundingCircle::from_points(&[
            Point::new(0.0, 0.0),
            Point::new(5.0, 0.0),
            Point::new(10.0, 0.0),
        ]);
        assert!((col.circle().radius - 5.0).abs() < 1e-9);
    }

    #[test]
    fn obtuse_triangle_uses_longest_side_as_diameter() {
        // For an obtuse triangle the MEC is the circle on the longest side.
        let mbc = MinBoundingCircle::from_points(&[
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(5.0, 1.0),
        ]);
        assert!((mbc.circle().radius - 5.0).abs() < 1e-9);
    }

    #[test]
    fn bbox_encloses_circle() {
        let mbc = MinBoundingCircle::from_points(&[
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(2.0, 3.0),
        ]);
        let b = mbc.bbox();
        let c = mbc.circle();
        assert!(b.contains_point(&Point::new(c.center.x + c.radius, c.center.y)));
        assert!(b.contains_point(&Point::new(c.center.x, c.center.y - c.radius)));
    }

    proptest! {
        #[test]
        fn prop_min_circle_contains_all_points(
            pts in proptest::collection::vec((-100f64..100.0, -100f64..100.0), 1..40)
        ) {
            let points: Vec<Point> = pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let mbc = MinBoundingCircle::from_points(&points);
            for p in &points {
                prop_assert!(mbc.may_contain_point(p), "{:?} outside circle {:?}", p, mbc.circle());
            }
        }

        #[test]
        fn prop_min_circle_not_larger_than_bbox_circumcircle(
            pts in proptest::collection::vec((-100f64..100.0, -100f64..100.0), 2..40)
        ) {
            let points: Vec<Point> = pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let mbc = MinBoundingCircle::from_points(&points);
            let bbox = BoundingBox::from_points(points.iter());
            // The bbox's half-diagonal circle always encloses the points, so
            // the minimum circle cannot be larger.
            let half_diag = 0.5 * (bbox.width().powi(2) + bbox.height().powi(2)).sqrt();
            prop_assert!(mbc.circle().radius <= half_diag + 1e-6);
        }
    }
}

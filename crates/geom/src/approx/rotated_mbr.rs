//! Rotated Minimum Bounding Rectangle (RMBR).
//!
//! The minimum-area oriented rectangle enclosing the object, computed with
//! rotating calipers over the convex hull. It fits elongated diagonal
//! objects much better than the axis-aligned MBR at the cost of storing an
//! angle and of a slightly more expensive containment filter.

use crate::approx::{Approximation, ApproximationKind};
use crate::bbox::BoundingBox;
use crate::convex_hull::convex_hull;
use crate::point::Point;
use crate::polygon::Polygon;

/// Minimum-area rotated bounding rectangle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RotatedMbr {
    /// Center of the rectangle.
    center: Point,
    /// Half-extent along the rectangle's local x axis.
    half_width: f64,
    /// Half-extent along the rectangle's local y axis.
    half_height: f64,
    /// Rotation angle of the local x axis, in radians.
    angle: f64,
}

impl RotatedMbr {
    /// The rectangle's rotation angle in radians.
    pub fn angle(&self) -> f64 {
        self.angle
    }

    /// The rectangle's center.
    pub fn center(&self) -> Point {
        self.center
    }

    /// Width and height of the rectangle.
    pub fn dimensions(&self) -> (f64, f64) {
        (self.half_width * 2.0, self.half_height * 2.0)
    }

    /// The four corners of the rotated rectangle in CCW order.
    pub fn corners(&self) -> [Point; 4] {
        let local = [
            Point::new(-self.half_width, -self.half_height),
            Point::new(self.half_width, -self.half_height),
            Point::new(self.half_width, self.half_height),
            Point::new(-self.half_width, self.half_height),
        ];
        local.map(|p| p.rotated(self.angle) + self.center)
    }

    fn from_points(points: &[Point]) -> Self {
        let hull = convex_hull(points);
        if hull.len() < 3 {
            // Degenerate: fall back to an axis-aligned box around the points.
            let bbox = BoundingBox::from_points(points.iter());
            let (w, h) = (bbox.width(), bbox.height());
            return RotatedMbr {
                center: if bbox.is_empty() {
                    Point::ORIGIN
                } else {
                    bbox.center()
                },
                half_width: w * 0.5,
                half_height: h * 0.5,
                angle: 0.0,
            };
        }

        // Rotating calipers: the minimum-area enclosing rectangle has a side
        // collinear with one of the hull edges.
        let mut best_area = f64::INFINITY;
        let mut best = (Point::ORIGIN, 0.0, 0.0, 0.0);
        let n = hull.len();
        for i in 0..n {
            let a = hull[i];
            let b = hull[(i + 1) % n];
            let edge = (b - a).normalized();
            if edge.norm() == 0.0 {
                continue;
            }
            let angle = edge.y.atan2(edge.x);
            // Rotate all hull points into the edge frame and take their bbox.
            let mut min_x = f64::INFINITY;
            let mut max_x = f64::NEG_INFINITY;
            let mut min_y = f64::INFINITY;
            let mut max_y = f64::NEG_INFINITY;
            for p in &hull {
                let r = p.rotated(-angle);
                min_x = min_x.min(r.x);
                max_x = max_x.max(r.x);
                min_y = min_y.min(r.y);
                max_y = max_y.max(r.y);
            }
            let area = (max_x - min_x) * (max_y - min_y);
            if area < best_area {
                best_area = area;
                let local_center = Point::new((min_x + max_x) * 0.5, (min_y + max_y) * 0.5);
                best = (
                    local_center.rotated(angle),
                    (max_x - min_x) * 0.5,
                    (max_y - min_y) * 0.5,
                    angle,
                );
            }
        }
        RotatedMbr {
            center: best.0,
            half_width: best.1,
            half_height: best.2,
            angle: best.3,
        }
    }
}

impl Approximation for RotatedMbr {
    fn from_polygon(polygon: &Polygon) -> Self {
        RotatedMbr::from_points(polygon.exterior().vertices())
    }

    fn kind(&self) -> ApproximationKind {
        ApproximationKind::RotatedMbr
    }

    fn may_contain_point(&self, p: &Point) -> bool {
        // Transform into the rectangle's local frame and do an AABB test.
        let local = (*p - self.center).rotated(-self.angle);
        // A small tolerance absorbs rotation round-off at the corners.
        let tol = 1e-9 * (1.0 + self.half_width.max(self.half_height));
        local.x.abs() <= self.half_width + tol && local.y.abs() <= self.half_height + tol
    }

    fn area(&self) -> f64 {
        4.0 * self.half_width * self.half_height
    }

    fn bbox(&self) -> BoundingBox {
        BoundingBox::from_points(self.corners().iter())
    }

    fn storage_bytes(&self) -> usize {
        // center (2), half extents (2), angle (1)
        5 * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn axis_aligned_rectangle_is_recovered() {
        let rect = Polygon::from_coords(&[(0.0, 0.0), (6.0, 0.0), (6.0, 2.0), (0.0, 2.0)]);
        let rmbr = RotatedMbr::from_polygon(&rect);
        assert!((rmbr.area() - 12.0).abs() < 1e-9);
        let (w, h) = rmbr.dimensions();
        let (long, short) = if w > h { (w, h) } else { (h, w) };
        assert!((long - 6.0).abs() < 1e-9);
        assert!((short - 2.0).abs() < 1e-9);
    }

    #[test]
    fn diagonal_sliver_fits_much_better_than_mbr() {
        // A 45° sliver: MBR area is ~100, the rotated MBR is tiny.
        let sliver = Polygon::from_coords(&[(0.0, 0.0), (10.0, 10.0), (10.0, 10.5), (0.0, 0.5)]);
        let rmbr = RotatedMbr::from_polygon(&sliver);
        let mbr_area = sliver.bbox().area();
        assert!(
            rmbr.area() < mbr_area * 0.2,
            "rmbr {} vs mbr {}",
            rmbr.area(),
            mbr_area
        );
        // Still conservative.
        for v in sliver.exterior().vertices() {
            assert!(rmbr.may_contain_point(v));
        }
    }

    #[test]
    fn containment_filter_rejects_far_points() {
        let sliver = Polygon::from_coords(&[(0.0, 0.0), (10.0, 10.0), (10.0, 10.5), (0.0, 0.5)]);
        let rmbr = RotatedMbr::from_polygon(&sliver);
        // A point in the empty MBR corner is rejected by the rotated MBR.
        assert!(!rmbr.may_contain_point(&Point::new(0.5, 9.5)));
        assert!(rmbr.may_contain_point(&Point::new(5.0, 5.2)));
    }

    #[test]
    fn degenerate_polygon_falls_back_to_aabb() {
        let line = Polygon::from_coords(&[(0.0, 0.0), (5.0, 0.0), (10.0, 0.0)]);
        let rmbr = RotatedMbr::from_polygon(&line);
        assert_eq!(rmbr.area(), 0.0);
        assert!(rmbr.may_contain_point(&Point::new(5.0, 0.0)));
    }

    #[test]
    fn bbox_encloses_corners() {
        let poly = Polygon::from_coords(&[(0.0, 0.0), (4.0, 1.0), (5.0, 4.0), (1.0, 3.0)]);
        let rmbr = RotatedMbr::from_polygon(&poly);
        let bbox = rmbr.bbox();
        for c in rmbr.corners() {
            assert!(bbox.contains_point(&c));
        }
        assert_eq!(rmbr.kind(), ApproximationKind::RotatedMbr);
        assert_eq!(rmbr.storage_bytes(), 40);
    }

    proptest! {
        #[test]
        fn prop_rotated_mbr_is_conservative(
            pts in proptest::collection::vec((-100f64..100.0, -100f64..100.0), 3..30)
        ) {
            let poly = Polygon::from_coords(&pts);
            let rmbr = RotatedMbr::from_polygon(&poly);
            for v in poly.exterior().vertices() {
                prop_assert!(rmbr.may_contain_point(v), "vertex {:?} escaped the rotated MBR", v);
            }
        }

        #[test]
        fn prop_rotated_mbr_never_larger_than_axis_aligned(
            pts in proptest::collection::vec((-100f64..100.0, -100f64..100.0), 3..30)
        ) {
            let poly = Polygon::from_coords(&pts);
            let hull = convex_hull(poly.exterior().vertices());
            prop_assume!(hull.len() >= 3);
            let rmbr = RotatedMbr::from_polygon(&poly);
            prop_assert!(rmbr.area() <= poly.bbox().area() + 1e-6);
        }
    }
}

//! Polygon clipping against axis-aligned boxes (Sutherland–Hodgman).
//!
//! Clipping gives the *exact* overlap area between a geometry and a raster
//! cell. The non-conservative boundary policy of the raster approximations
//! can use it instead of point sampling, and the experiment reports use it
//! to quantify how much false area an approximation admits.

use crate::bbox::BoundingBox;
use crate::point::Point;
use crate::polygon::{Polygon, Ring};

/// One of the four half-planes bounding an axis-aligned box.
#[derive(Debug, Clone, Copy)]
enum Edge {
    Left(f64),
    Right(f64),
    Bottom(f64),
    Top(f64),
}

impl Edge {
    fn is_inside(&self, p: &Point) -> bool {
        match *self {
            Edge::Left(x) => p.x >= x,
            Edge::Right(x) => p.x <= x,
            Edge::Bottom(y) => p.y >= y,
            Edge::Top(y) => p.y <= y,
        }
    }

    /// Intersection of segment `[a, b]` with the edge's boundary line.
    fn intersect(&self, a: &Point, b: &Point) -> Point {
        match *self {
            Edge::Left(x) | Edge::Right(x) => {
                let t = (x - a.x) / (b.x - a.x);
                Point::new(x, a.y + t * (b.y - a.y))
            }
            Edge::Bottom(y) | Edge::Top(y) => {
                let t = (y - a.y) / (b.y - a.y);
                Point::new(a.x + t * (b.x - a.x), y)
            }
        }
    }
}

/// Clips a ring against an axis-aligned box, returning the vertices of the
/// clipped (convex-window) polygon. The result may be empty when the ring
/// lies entirely outside the box.
pub fn clip_ring_to_box(ring: &Ring, bbox: &BoundingBox) -> Vec<Point> {
    if bbox.is_empty() || ring.len() < 3 {
        return Vec::new();
    }
    let edges = [
        Edge::Left(bbox.min.x),
        Edge::Right(bbox.max.x),
        Edge::Bottom(bbox.min.y),
        Edge::Top(bbox.max.y),
    ];
    let mut output: Vec<Point> = ring.vertices().to_vec();
    for edge in edges {
        if output.is_empty() {
            break;
        }
        let input = std::mem::take(&mut output);
        let n = input.len();
        for i in 0..n {
            let current = input[i];
            let previous = input[(i + n - 1) % n];
            let current_in = edge.is_inside(&current);
            let previous_in = edge.is_inside(&previous);
            if current_in {
                if !previous_in {
                    output.push(edge.intersect(&previous, &current));
                }
                output.push(current);
            } else if previous_in {
                output.push(edge.intersect(&previous, &current));
            }
        }
    }
    output
}

/// Exact area of the intersection between a polygon (with holes) and an
/// axis-aligned box.
pub fn polygon_box_overlap_area(polygon: &Polygon, bbox: &BoundingBox) -> f64 {
    let exterior = Ring::new(clip_ring_to_box(polygon.exterior(), bbox)).area();
    let holes: f64 = polygon
        .holes()
        .iter()
        .map(|h| Ring::new(clip_ring_to_box(h, bbox)).area())
        .sum();
    (exterior - holes).max(0.0)
}

/// Exact overlap *fraction* of a box covered by a polygon (0..=1).
pub fn polygon_box_overlap_fraction(polygon: &Polygon, bbox: &BoundingBox) -> f64 {
    let area = bbox.area();
    if area == 0.0 {
        return 0.0;
    }
    (polygon_box_overlap_area(polygon, bbox) / area).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn square(min: f64, max: f64) -> Polygon {
        Polygon::from_coords(&[(min, min), (max, min), (max, max), (min, max)])
    }

    #[test]
    fn clip_fully_inside_returns_the_ring() {
        let poly = square(2.0, 4.0);
        let bbox = BoundingBox::from_bounds(0.0, 0.0, 10.0, 10.0);
        let clipped = Ring::new(clip_ring_to_box(poly.exterior(), &bbox));
        assert_eq!(clipped.area(), poly.area());
    }

    #[test]
    fn clip_fully_outside_is_empty() {
        let poly = square(20.0, 30.0);
        let bbox = BoundingBox::from_bounds(0.0, 0.0, 10.0, 10.0);
        assert!(clip_ring_to_box(poly.exterior(), &bbox).is_empty());
        assert_eq!(polygon_box_overlap_area(&poly, &bbox), 0.0);
    }

    #[test]
    fn clip_partial_overlap_has_exact_area() {
        // Square [0,4]² clipped to box [2,6]²: overlap is [2,4]² = 4.
        let poly = square(0.0, 4.0);
        let bbox = BoundingBox::from_bounds(2.0, 2.0, 6.0, 6.0);
        assert!((polygon_box_overlap_area(&poly, &bbox) - 4.0).abs() < 1e-12);
        assert!((polygon_box_overlap_fraction(&poly, &bbox) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn clip_triangle_produces_correct_area() {
        // Right triangle with legs 10 clipped to the box [0,8]²: the box
        // loses the corner triangle above the hypotenuse x + y = 10, whose
        // legs are 6, so the overlap is 64 − 18 = 46.
        let tri = Polygon::from_coords(&[(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)]);
        let bbox = BoundingBox::from_bounds(0.0, 0.0, 8.0, 8.0);
        let area = polygon_box_overlap_area(&tri, &bbox);
        assert!((area - 46.0).abs() < 1e-9, "area = {area}");
        // A box fully inside the triangle is untouched by clipping.
        let inside = BoundingBox::from_bounds(0.0, 0.0, 5.0, 5.0);
        assert!((polygon_box_overlap_area(&tri, &inside) - 25.0).abs() < 1e-9);
    }

    #[test]
    fn holes_reduce_the_overlap() {
        let exterior = Ring::new(vec![
            Point::new(0.0, 0.0),
            Point::new(8.0, 0.0),
            Point::new(8.0, 8.0),
            Point::new(0.0, 8.0),
        ]);
        let hole = Ring::new(vec![
            Point::new(2.0, 2.0),
            Point::new(6.0, 2.0),
            Point::new(6.0, 6.0),
            Point::new(2.0, 6.0),
        ]);
        let poly = Polygon::with_holes(exterior, vec![hole]);
        let bbox = BoundingBox::from_bounds(0.0, 0.0, 4.0, 4.0);
        // Box area 16, hole takes the [2,4]² corner (4).
        assert!((polygon_box_overlap_area(&poly, &bbox) - 12.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_inputs() {
        let poly = square(0.0, 4.0);
        assert!(clip_ring_to_box(poly.exterior(), &BoundingBox::EMPTY).is_empty());
        let degenerate = Ring::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)]);
        assert!(
            clip_ring_to_box(&degenerate, &BoundingBox::from_bounds(0.0, 0.0, 1.0, 1.0)).is_empty()
        );
        let zero_box = BoundingBox::from_bounds(1.0, 1.0, 1.0, 1.0);
        assert_eq!(polygon_box_overlap_fraction(&poly, &zero_box), 0.0);
    }

    proptest! {
        #[test]
        fn prop_overlap_area_bounded_by_both_inputs(
            px in -20f64..20.0, py in -20f64..20.0, pw in 1f64..30.0, ph in 1f64..30.0,
            bx in -20f64..20.0, by in -20f64..20.0, bw in 1f64..30.0, bh in 1f64..30.0,
        ) {
            let poly = Polygon::from_coords(&[(px, py), (px + pw, py), (px + pw, py + ph), (px, py + ph)]);
            let bbox = BoundingBox::from_bounds(bx, by, bx + bw, by + bh);
            let overlap = polygon_box_overlap_area(&poly, &bbox);
            prop_assert!(overlap <= poly.area() + 1e-9);
            prop_assert!(overlap <= bbox.area() + 1e-9);
            prop_assert!(overlap >= 0.0);
            // For two axis-aligned rectangles the overlap is the bbox intersection.
            let expected = poly.bbox().intersection(&bbox).area();
            prop_assert!((overlap - expected).abs() < 1e-9);
        }

        #[test]
        fn prop_fraction_is_normalized(
            size in 1f64..40.0, offset in -30f64..30.0,
        ) {
            let poly = Polygon::from_coords(&[(offset, offset), (offset + size, offset), (offset + size, offset + size), (offset, offset + size)]);
            let bbox = BoundingBox::from_bounds(0.0, 0.0, 10.0, 10.0);
            let f = polygon_box_overlap_fraction(&poly, &bbox);
            prop_assert!((0.0..=1.0).contains(&f));
        }
    }
}

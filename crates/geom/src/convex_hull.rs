//! Convex hull computation (Andrew's monotone chain).
//!
//! The hull is both a classic geometric approximation (Section 2.1 of the
//! paper, following Brinkhoff et al.) and a building block for the rotated
//! MBR and minimum-bounding n-corner approximations.

use crate::point::Point;
use crate::polygon::Ring;

/// Computes the convex hull of a point set.
///
/// Returns the hull vertices in counter-clockwise order without repeating
/// the first vertex. Collinear points on the hull boundary are dropped.
/// Degenerate inputs (fewer than 3 distinct points, or all collinear) return
/// the distinct points in sorted order.
pub fn convex_hull(points: &[Point]) -> Vec<Point> {
    let mut pts: Vec<Point> = points.iter().filter(|p| p.is_finite()).copied().collect();
    pts.sort_by(|a, b| {
        a.x.partial_cmp(&b.x)
            .unwrap()
            .then(a.y.partial_cmp(&b.y).unwrap())
    });
    pts.dedup_by(|a, b| a.x == b.x && a.y == b.y);
    let n = pts.len();
    if n < 3 {
        return pts;
    }

    let cross = |o: &Point, a: &Point, b: &Point| (*a - *o).cross(&(*b - *o));

    let mut lower: Vec<Point> = Vec::with_capacity(n);
    for p in &pts {
        while lower.len() >= 2 && cross(&lower[lower.len() - 2], &lower[lower.len() - 1], p) <= 0.0
        {
            lower.pop();
        }
        lower.push(*p);
    }

    let mut upper: Vec<Point> = Vec::with_capacity(n);
    for p in pts.iter().rev() {
        while upper.len() >= 2 && cross(&upper[upper.len() - 2], &upper[upper.len() - 1], p) <= 0.0
        {
            upper.pop();
        }
        upper.push(*p);
    }

    lower.pop();
    upper.pop();
    lower.extend(upper);
    if lower.len() < 3 {
        // All points collinear: fall back to the extreme points.
        return pts;
    }
    lower
}

/// Convex hull as a [`Ring`] (counter-clockwise).
pub fn convex_hull_ring(points: &[Point]) -> Ring {
    Ring::new(convex_hull(points))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::polygon::Polygon;
    use proptest::prelude::*;

    #[test]
    fn hull_of_square_with_interior_points() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 4.0),
            Point::new(0.0, 4.0),
            Point::new(2.0, 2.0),
            Point::new(1.0, 3.0),
        ];
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 4);
        let ring = Ring::new(hull);
        assert!(ring.is_ccw());
        assert_eq!(ring.area(), 16.0);
    }

    #[test]
    fn hull_drops_collinear_boundary_points() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 4.0),
            Point::new(0.0, 4.0),
        ];
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 4);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(convex_hull(&[]).is_empty());
        assert_eq!(convex_hull(&[Point::new(1.0, 1.0)]).len(), 1);
        assert_eq!(
            convex_hull(&[Point::new(1.0, 1.0), Point::new(2.0, 2.0)]).len(),
            2
        );
        // All collinear.
        let collinear = convex_hull(&[
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(2.0, 2.0),
            Point::new(3.0, 3.0),
        ]);
        assert_eq!(collinear.len(), 4);
        // Duplicates are removed.
        let dup = convex_hull(&[
            Point::new(0.0, 0.0),
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
        ]);
        assert_eq!(dup.len(), 3);
    }

    #[test]
    fn hull_ring_is_convex() {
        let pts: Vec<Point> = (0..20)
            .map(|i| {
                let a = i as f64 * 0.7;
                Point::new(
                    a.cos() * (1.0 + (i % 3) as f64),
                    a.sin() * (1.0 + (i % 5) as f64),
                )
            })
            .collect();
        let ring = convex_hull_ring(&pts);
        assert!(ring.is_convex());
        assert!(ring.is_ccw());
    }

    proptest! {
        #[test]
        fn prop_hull_contains_all_points(
            pts in proptest::collection::vec((-100f64..100.0, -100f64..100.0), 3..60)
        ) {
            let points: Vec<Point> = pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let hull = convex_hull(&points);
            prop_assume!(hull.len() >= 3);
            let poly = Polygon::new(Ring::new(hull));
            for p in &points {
                prop_assert!(poly.contains_point(p), "hull must contain every input point: {:?}", p);
            }
        }

        #[test]
        fn prop_hull_area_at_most_bbox_area(
            pts in proptest::collection::vec((-100f64..100.0, -100f64..100.0), 3..60)
        ) {
            let points: Vec<Point> = pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let hull = convex_hull(&points);
            prop_assume!(hull.len() >= 3);
            let ring = Ring::new(hull);
            let bbox = crate::bbox::BoundingBox::from_points(points.iter());
            prop_assert!(ring.area() <= bbox.area() + 1e-6);
        }

        #[test]
        fn prop_hull_is_convex_and_ccw(
            pts in proptest::collection::vec((-100f64..100.0, -100f64..100.0), 3..60)
        ) {
            let points: Vec<Point> = pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let hull = convex_hull(&points);
            prop_assume!(hull.len() >= 3);
            let ring = Ring::new(hull);
            prop_assert!(ring.is_convex());
            prop_assert!(ring.is_ccw());
        }
    }
}

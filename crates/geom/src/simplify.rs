//! Polyline / polygon simplification (Ramer–Douglas–Peucker).
//!
//! Simplification is the classic *vertex-count* reduction technique that
//! raster approximations compete with: instead of representing a complex
//! region with fewer vertices (which changes the shape by an uncontrolled
//! amount in general, but RDP bounds the deviation), the paper represents
//! it with bounded-size cells. Having both in the library lets the
//! ablation benches compare "simplify then test exactly" against
//! "rasterize and skip the test", and the generator uses it to build
//! reduced-complexity variants of region datasets.

use crate::point::Point;
use crate::polygon::{Polygon, Ring};
use crate::predicates::point_segment_distance;

/// Simplifies an open polyline with the Ramer–Douglas–Peucker algorithm:
/// the result contains a subset of the input vertices, always including the
/// endpoints, such that every dropped vertex is within `tolerance` of the
/// simplified polyline.
pub fn simplify_polyline(points: &[Point], tolerance: f64) -> Vec<Point> {
    assert!(tolerance >= 0.0, "tolerance must be non-negative");
    if points.len() <= 2 {
        return points.to_vec();
    }
    let mut keep = vec![false; points.len()];
    keep[0] = true;
    keep[points.len() - 1] = true;
    rdp_mark(points, 0, points.len() - 1, tolerance, &mut keep);
    points
        .iter()
        .zip(&keep)
        .filter(|(_, &k)| k)
        .map(|(p, _)| *p)
        .collect()
}

fn rdp_mark(points: &[Point], first: usize, last: usize, tolerance: f64, keep: &mut [bool]) {
    if last <= first + 1 {
        return;
    }
    let mut max_dist = 0.0;
    let mut max_idx = first;
    for i in (first + 1)..last {
        let d = point_segment_distance(&points[first], &points[last], &points[i]);
        if d > max_dist {
            max_dist = d;
            max_idx = i;
        }
    }
    if max_dist > tolerance {
        keep[max_idx] = true;
        rdp_mark(points, first, max_idx, tolerance, keep);
        rdp_mark(points, max_idx, last, tolerance, keep);
    }
}

/// Simplifies a closed ring: the ring is cut at its first vertex, simplified
/// as a polyline, and re-closed. Rings that would collapse below three
/// vertices are returned unchanged.
pub fn simplify_ring(ring: &Ring, tolerance: f64) -> Ring {
    if ring.len() < 4 {
        return ring.clone();
    }
    let mut open: Vec<Point> = ring.vertices().to_vec();
    open.push(ring.vertices()[0]);
    let mut simplified = simplify_polyline(&open, tolerance);
    simplified.pop(); // drop the closing duplicate again
    if simplified.len() < 3 {
        ring.clone()
    } else {
        Ring::new(simplified)
    }
}

/// Simplifies a polygon (exterior and holes). Holes that collapse to fewer
/// than three vertices are dropped.
pub fn simplify_polygon(polygon: &Polygon, tolerance: f64) -> Polygon {
    let exterior = simplify_ring(polygon.exterior(), tolerance);
    let holes: Vec<Ring> = polygon
        .holes()
        .iter()
        .map(|h| simplify_ring(h, tolerance))
        .filter(|h| h.len() >= 3 && h.area() > 0.0)
        .collect();
    Polygon::with_holes(exterior, holes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn collinear_points_are_removed() {
        let line: Vec<Point> = (0..10).map(|i| Point::new(i as f64, 0.0)).collect();
        let simplified = simplify_polyline(&line, 0.01);
        assert_eq!(simplified.len(), 2);
        assert_eq!(simplified[0], line[0]);
        assert_eq!(simplified[1], line[9]);
    }

    #[test]
    fn significant_vertices_are_kept() {
        let zigzag = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 5.0),
            Point::new(2.0, 0.0),
            Point::new(3.0, 5.0),
            Point::new(4.0, 0.0),
        ];
        let simplified = simplify_polyline(&zigzag, 0.5);
        assert_eq!(
            simplified.len(),
            zigzag.len(),
            "large deviations must survive"
        );
        let flattened = simplify_polyline(&zigzag, 10.0);
        assert_eq!(
            flattened.len(),
            2,
            "a huge tolerance keeps only the endpoints"
        );
    }

    #[test]
    fn dropped_vertices_stay_within_tolerance() {
        let wiggly: Vec<Point> = (0..50)
            .map(|i| Point::new(i as f64, (i as f64 * 0.7).sin() * 0.3))
            .collect();
        let tolerance = 0.35;
        let simplified = simplify_polyline(&wiggly, tolerance);
        assert!(simplified.len() < wiggly.len());
        // Every original vertex is within the tolerance of the simplified line.
        for p in &wiggly {
            let d = simplified
                .windows(2)
                .map(|w| point_segment_distance(&w[0], &w[1], p))
                .fold(f64::INFINITY, f64::min);
            assert!(d <= tolerance + 1e-9, "vertex {p:?} deviates by {d}");
        }
    }

    #[test]
    fn ring_and_polygon_simplification() {
        // A square with redundant edge midpoints.
        let ring = Ring::new(vec![
            Point::new(0.0, 0.0),
            Point::new(5.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 5.0),
            Point::new(10.0, 10.0),
            Point::new(5.0, 10.0),
            Point::new(0.0, 10.0),
            Point::new(0.0, 5.0),
        ]);
        let simplified = simplify_ring(&ring, 0.1);
        assert!(simplified.len() <= 5);
        assert!((simplified.area() - ring.area()).abs() < 1e-9);

        let poly = Polygon::with_holes(
            ring.clone(),
            vec![Ring::new(vec![
                Point::new(4.0, 4.0),
                Point::new(5.0, 4.0),
                Point::new(6.0, 4.0),
                Point::new(6.0, 6.0),
                Point::new(4.0, 6.0),
            ])],
        );
        let sp = simplify_polygon(&poly, 0.1);
        assert_eq!(sp.holes().len(), 1);
        assert!(sp.vertex_count() < poly.vertex_count());
    }

    #[test]
    fn tiny_rings_are_left_alone() {
        let tri = Ring::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
        ]);
        assert_eq!(simplify_ring(&tri, 100.0), tri);
        assert_eq!(simplify_polyline(&[Point::ORIGIN], 1.0).len(), 1);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_tolerance_is_rejected() {
        let _ = simplify_polyline(&[Point::ORIGIN, Point::new(1.0, 1.0)], -1.0);
    }

    proptest! {
        #[test]
        fn prop_simplified_is_subset_and_keeps_endpoints(
            pts in proptest::collection::vec((-100f64..100.0, -100f64..100.0), 2..60),
            tol in 0f64..20.0,
        ) {
            let points: Vec<Point> = pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let simplified = simplify_polyline(&points, tol);
            prop_assert!(simplified.len() >= 2);
            prop_assert_eq!(simplified[0], points[0]);
            prop_assert_eq!(*simplified.last().unwrap(), *points.last().unwrap());
            // Subset property (by value).
            for p in &simplified {
                prop_assert!(points.iter().any(|q| q == p));
            }
        }

        #[test]
        fn prop_deviation_is_bounded_by_tolerance(
            pts in proptest::collection::vec((-100f64..100.0, -100f64..100.0), 3..40),
            tol in 0.01f64..10.0,
        ) {
            let points: Vec<Point> = pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let simplified = simplify_polyline(&points, tol);
            for p in &points {
                let d = simplified
                    .windows(2)
                    .map(|w| point_segment_distance(&w[0], &w[1], p))
                    .fold(f64::INFINITY, f64::min);
                prop_assert!(d <= tol + 1e-6);
            }
        }
    }
}

//! Property tests of the exact distance primitives the distance-annotated
//! cell model is built on: point→segment, point→polygon-boundary, and the
//! signed-by-containment distance — each checked against an independent
//! brute-force reference (a dense parameter sweep for segments, an
//! all-segments scan assembled edge by edge for polygons), including the
//! degenerate inputs real data ships (collinear vertex runs, single- and
//! two-vertex "rings", zero-length edges).

use dbsa_geom::predicates::point_segment_distance;
use dbsa_geom::{MultiPolygon, Point, Polygon, Ring, Segment};
use proptest::prelude::*;

/// Brute-force point→segment distance: minimum over a dense sweep of the
/// segment's parameterization. Overestimates the true minimum by at most
/// `length / STEPS` (the sample spacing bounds how far the true foot of
/// the perpendicular can sit from the nearest sample).
fn sampled_segment_distance(a: &Point, b: &Point, p: &Point, steps: usize) -> f64 {
    (0..=steps)
        .map(|i| {
            let t = i as f64 / steps as f64;
            Point::new(a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t).distance(p)
        })
        .fold(f64::INFINITY, f64::min)
}

/// Brute-force point→polygon-boundary distance: an independent scan over
/// every edge of every ring (exterior and holes), using the closed-form
/// projection re-derived here rather than the library call.
fn brute_force_boundary_distance(poly: &Polygon, p: &Point) -> f64 {
    let ring_edges = |ring: &Ring| -> Vec<(Point, Point)> {
        let v = ring.vertices();
        (0..v.len()).map(|i| (v[i], v[(i + 1) % v.len()])).collect()
    };
    let mut edges: Vec<(Point, Point)> = ring_edges(poly.exterior());
    for hole in poly.holes() {
        edges.extend(ring_edges(hole));
    }
    edges
        .into_iter()
        .map(|(a, b)| {
            // Independent projection formula.
            let (abx, aby) = (b.x - a.x, b.y - a.y);
            let len2 = abx * abx + aby * aby;
            let t = if len2 == 0.0 {
                0.0
            } else {
                (((p.x - a.x) * abx + (p.y - a.y) * aby) / len2).clamp(0.0, 1.0)
            };
            let (cx, cy) = (a.x + abx * t, a.y + aby * t);
            ((p.x - cx).powi(2) + (p.y - cy).powi(2)).sqrt()
        })
        .fold(f64::INFINITY, f64::min)
}

fn l_polygon() -> Polygon {
    Polygon::from_coords(&[
        (0.0, 0.0),
        (40.0, 0.0),
        (40.0, 20.0),
        (20.0, 20.0),
        (20.0, 40.0),
        (0.0, 40.0),
    ])
}

/// A polygon with a collinear run on its bottom edge (three vertices on
/// one line) — the degenerate shape simplification pipelines emit.
fn collinear_run_polygon() -> Polygon {
    Polygon::from_coords(&[
        (0.0, 0.0),
        (10.0, 0.0),
        (20.0, 0.0),
        (30.0, 0.0),
        (30.0, 30.0),
        (0.0, 30.0),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// point→segment: the closed-form distance agrees with a dense sweep
    /// of the segment within the sweep's resolution, and is never above it.
    #[test]
    fn prop_point_segment_distance_matches_dense_sweep(
        ax in -50f64..50.0, ay in -50f64..50.0,
        bx in -50f64..50.0, by in -50f64..50.0,
        px in -80f64..80.0, py in -80f64..80.0,
    ) {
        let (a, b, p) = (Point::new(ax, ay), Point::new(bx, by), Point::new(px, py));
        let exact = point_segment_distance(&a, &b, &p);
        let steps = 4096;
        let sampled = sampled_segment_distance(&a, &b, &p, steps);
        let resolution = a.distance(&b) / steps as f64;
        prop_assert!(exact <= sampled + 1e-9, "closed form must lower-bound samples");
        prop_assert!(sampled - exact <= resolution + 1e-9,
            "sweep within one sample spacing: exact {exact}, sampled {sampled}");
    }

    /// Degenerate zero-length segments reduce to point distance.
    #[test]
    fn prop_degenerate_segment_is_point_distance(
        ax in -50f64..50.0, ay in -50f64..50.0,
        px in -50f64..50.0, py in -50f64..50.0,
    ) {
        let a = Point::new(ax, ay);
        let p = Point::new(px, py);
        let d = point_segment_distance(&a, &a, &p);
        prop_assert!((d - a.distance(&p)).abs() < 1e-12);
        // The Segment wrapper agrees.
        prop_assert_eq!(Segment::new(a, a).distance_to_point(&p), d);
    }

    /// point→polygon-boundary: the library distance equals an independent
    /// all-segments scan, for a concave polygon and one with a hole.
    #[test]
    fn prop_boundary_distance_equals_all_segments_scan(
        px in -30f64..70.0, py in -30f64..70.0,
    ) {
        let p = Point::new(px, py);
        for poly in [l_polygon(), collinear_run_polygon(), holed()] {
            let got = poly.boundary_distance(&p);
            let want = brute_force_boundary_distance(&poly, &p);
            prop_assert!((got - want).abs() < 1e-9, "{got} vs {want}");
        }
    }

    /// Signed distance: sign decided by containment, magnitude by the
    /// boundary scan; inside < 0, outside > 0, boundary = 0.
    #[test]
    fn prop_signed_distance_is_signed_by_containment(
        px in -30f64..70.0, py in -30f64..70.0,
    ) {
        let p = Point::new(px, py);
        for poly in [l_polygon(), collinear_run_polygon(), holed()] {
            let sd = poly.signed_distance(&p);
            let magnitude = brute_force_boundary_distance(&poly, &p);
            prop_assert!((sd.abs() - magnitude).abs() < 1e-9);
            if magnitude > 1e-9 {
                prop_assert_eq!(sd < 0.0, poly.contains_point(&p),
                    "sign must follow containment at {:?}", p);
            }
            // MultiPolygon wrapper agrees on the same geometry.
            let mp = MultiPolygon::from(poly.clone());
            prop_assert!((mp.signed_distance(&p) - sd).abs() < 1e-9);
        }
    }

    /// Degenerate rings: a single-segment (two-vertex) ring and a fully
    /// collinear three-vertex ring still answer boundary distances as an
    /// all-segments scan would, and never report any point as inside.
    #[test]
    fn prop_degenerate_rings_answer_distance_without_interior(
        px in -20f64..40.0, py in -20f64..40.0,
    ) {
        let p = Point::new(px, py);
        // Two-vertex "ring": edges are the segment and its reverse.
        let two = Polygon::new(Ring::new(vec![
            Point::new(0.0, 0.0),
            Point::new(20.0, 10.0),
        ]));
        let want = point_segment_distance(
            &Point::new(0.0, 0.0), &Point::new(20.0, 10.0), &p);
        prop_assert!((two.boundary_distance(&p) - want).abs() < 1e-12);
        prop_assert!(two.signed_distance(&p) >= 0.0, "no interior to be inside of");

        // Collinear zero-area triangle.
        let flat = Polygon::from_coords(&[(0.0, 0.0), (10.0, 5.0), (20.0, 10.0)]);
        let brute = brute_force_boundary_distance(&flat, &p);
        prop_assert!((flat.boundary_distance(&p) - brute).abs() < 1e-9);
        if brute > 1e-9 {
            prop_assert!(flat.signed_distance(&p) > 0.0);
        }
    }
}

fn holed() -> Polygon {
    Polygon::with_holes(
        Ring::new(vec![
            Point::new(0.0, 0.0),
            Point::new(40.0, 0.0),
            Point::new(40.0, 40.0),
            Point::new(0.0, 40.0),
        ]),
        vec![Ring::new(vec![
            Point::new(15.0, 15.0),
            Point::new(25.0, 15.0),
            Point::new(25.0, 25.0),
            Point::new(15.0, 25.0),
        ])],
    )
}

/// The Rasterizable trait's distance hooks dispatch to the same exact
/// primitives for both polygon flavors.
#[test]
fn rasterizable_distance_hooks_agree_with_geometry() {
    use dbsa_geom::BoundingBox;
    let poly = l_polygon();
    let mp = MultiPolygon::from(poly.clone());
    for (x, y) in [(-5.0, -5.0), (10.0, 10.0), (25.0, 25.0), (60.0, 3.0)] {
        let p = Point::new(x, y);
        assert_eq!(poly.boundary_distance(&p), mp.boundary_distance(&p));
        assert_eq!(poly.signed_distance(&p), mp.signed_distance(&p));
    }
    // Disjoint parts: the union's distance is the min over parts.
    let far = Polygon::rectangle(&BoundingBox::from_bounds(100.0, 100.0, 120.0, 120.0));
    let union = MultiPolygon::new(vec![poly.clone(), far.clone()]);
    let p = Point::new(99.0, 99.0);
    assert_eq!(
        union.boundary_distance(&p),
        poly.boundary_distance(&p).min(far.boundary_distance(&p))
    );
}

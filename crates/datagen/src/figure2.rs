//! The paper's motivating example (Figure 2).
//!
//! A region polygon `P`, a cloud of taxi pickup points, and two approximate
//! counts: one computed over the MBR of `P` (which includes points far from
//! `P`, in the empty MBR corner) and one computed over a conservative
//! uniform-raster approximation (which includes only points within the
//! distance bound of `P`'s boundary). The paper's argument: the raster
//! count (28) is *larger* and thus numerically "worse" than the MBR count
//! (22) against the exact count (18), yet it is the more meaningful answer
//! because every extra point is spatially close to the query region.

use dbsa_geom::{BoundingBox, Point, Polygon};

/// Classification of an example point, mirroring the colors in Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointColor {
    /// Inside the polygon (counted by every method).
    Black,
    /// Outside the polygon but inside its MBR, far from the boundary
    /// (counted only by the MBR approximation).
    Red,
    /// Outside the polygon but within the distance bound of its boundary
    /// (counted only by the raster approximation).
    Violet,
}

/// The fully deterministic Figure 2 layout.
#[derive(Debug, Clone)]
pub struct Figure2Example {
    polygon: Polygon,
    points: Vec<(Point, PointColor)>,
    epsilon: f64,
}

impl Figure2Example {
    /// Builds the example: 18 interior points, 4 far "MBR corner" points and
    /// 10 near-boundary points, over a right-triangle-like region whose legs
    /// lie on its MBR edges.
    pub fn new() -> Self {
        // The polygon: a right trapezoid whose left and bottom edges lie on
        // the MBR boundary, so points just outside those edges are outside
        // the MBR too (violet), while the cut-off upper-right corner leaves
        // room inside the MBR for far-away points (red).
        let polygon = Polygon::from_coords(&[
            (0.0, 0.0),
            (100.0, 0.0),
            (100.0, 30.0),
            (30.0, 100.0),
            (0.0, 100.0),
        ]);
        let epsilon = 6.0;

        let mut points = Vec::new();
        // 18 black points strictly inside, away from the boundary.
        let interior = [
            (10.0, 10.0),
            (20.0, 15.0),
            (30.0, 10.0),
            (45.0, 20.0),
            (60.0, 10.0),
            (75.0, 15.0),
            (88.0, 10.0),
            (15.0, 30.0),
            (30.0, 35.0),
            (50.0, 40.0),
            (70.0, 30.0),
            (10.0, 50.0),
            (25.0, 55.0),
            (40.0, 60.0),
            (12.0, 70.0),
            (25.0, 75.0),
            (10.0, 88.0),
            (20.0, 90.0),
        ];
        for &(x, y) in &interior {
            points.push((Point::new(x, y), PointColor::Black));
        }
        // 4 red points: inside the MBR, in the clipped corner, far from P.
        let red = [(80.0, 80.0), (90.0, 70.0), (70.0, 90.0), (92.0, 88.0)];
        for &(x, y) in &red {
            points.push((Point::new(x, y), PointColor::Red));
        }
        // 10 violet points: just outside the bottom/left edges (outside the
        // MBR) within epsilon of the boundary.
        let violet = [
            (15.0, -2.0),
            (35.0, -3.0),
            (55.0, -2.5),
            (75.0, -1.5),
            (95.0, -3.0),
            (-2.0, 15.0),
            (-3.0, 35.0),
            (-2.5, 55.0),
            (-1.5, 75.0),
            (-3.0, 95.0),
        ];
        for &(x, y) in &violet {
            points.push((Point::new(x, y), PointColor::Violet));
        }
        Figure2Example {
            polygon,
            points,
            epsilon,
        }
    }

    /// The query region `P`.
    pub fn polygon(&self) -> &Polygon {
        &self.polygon
    }

    /// The distance bound used by the raster approximation in the example.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// All example points with their Figure 2 color.
    pub fn points(&self) -> &[(Point, PointColor)] {
        &self.points
    }

    /// Just the point locations.
    pub fn locations(&self) -> Vec<Point> {
        self.points.iter().map(|(p, _)| *p).collect()
    }

    /// A bounding box comfortably containing the polygon and all points.
    pub fn extent(&self) -> BoundingBox {
        let mut bbox = self.polygon.bbox();
        for (p, _) in &self.points {
            bbox.expand_to_point(p);
        }
        bbox.inflated(self.epsilon)
    }

    /// The exact count of points inside `P` (18 in the paper).
    pub fn exact_count(&self) -> usize {
        self.points
            .iter()
            .filter(|(p, _)| self.polygon.contains_point(p))
            .count()
    }

    /// The count the MBR approximation produces (22 in the paper).
    pub fn mbr_count(&self) -> usize {
        let mbr = self.polygon.bbox();
        self.points
            .iter()
            .filter(|(p, _)| mbr.contains_point(p))
            .count()
    }

    /// The count a conservative ε-bounded approximation of `P` produces
    /// (28 in the paper): every point within ε of `P` (or inside it).
    pub fn raster_count(&self) -> usize {
        self.points
            .iter()
            .filter(|(p, _)| {
                self.polygon.contains_point(p) || self.polygon.boundary_distance(p) <= self.epsilon
            })
            .count()
    }
}

impl Default for Figure2Example {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_the_paper() {
        let ex = Figure2Example::new();
        assert_eq!(ex.exact_count(), 18, "exact count");
        assert_eq!(ex.mbr_count(), 22, "MBR count");
        assert_eq!(ex.raster_count(), 28, "raster count");
    }

    #[test]
    fn colors_are_consistent_with_geometry() {
        let ex = Figure2Example::new();
        let mbr = ex.polygon().bbox();
        for (p, color) in ex.points() {
            match color {
                PointColor::Black => {
                    assert!(ex.polygon().contains_point(p), "{p:?} should be inside")
                }
                PointColor::Red => {
                    assert!(!ex.polygon().contains_point(p));
                    assert!(mbr.contains_point(p), "{p:?} should be inside the MBR");
                    assert!(
                        ex.polygon().boundary_distance(p) > ex.epsilon(),
                        "red points must be far from the boundary"
                    );
                }
                PointColor::Violet => {
                    assert!(!ex.polygon().contains_point(p));
                    assert!(!mbr.contains_point(p), "{p:?} should be outside the MBR");
                    assert!(
                        ex.polygon().boundary_distance(p) <= ex.epsilon(),
                        "violet points must be within epsilon of the boundary"
                    );
                }
            }
        }
    }

    #[test]
    fn point_census_matches_figure() {
        let ex = Figure2Example::new();
        let count = |c: PointColor| ex.points().iter().filter(|(_, col)| *col == c).count();
        assert_eq!(count(PointColor::Black), 18);
        assert_eq!(count(PointColor::Red), 4);
        assert_eq!(count(PointColor::Violet), 10);
        assert_eq!(ex.points().len(), 32);
        assert_eq!(ex.locations().len(), 32);
    }

    #[test]
    fn extent_contains_everything() {
        let ex = Figure2Example::new();
        let extent = ex.extent();
        assert!(extent.contains_box(&ex.polygon().bbox()));
        for (p, _) in ex.points() {
            assert!(extent.contains_point(p));
        }
    }

    #[test]
    fn the_papers_argument_holds() {
        // The MBR count is numerically closer to exact, but its error comes
        // from points far away; the raster count's error is entirely within
        // the distance bound.
        let ex = Figure2Example::new();
        assert!(ex.mbr_count() < ex.raster_count());
        assert!(ex.mbr_count() > ex.exact_count());
        let mbr = ex.polygon().bbox();
        let worst_mbr_error_distance = ex
            .points()
            .iter()
            .filter(|(p, _)| mbr.contains_point(p) && !ex.polygon().contains_point(p))
            .map(|(p, _)| ex.polygon().boundary_distance(p))
            .fold(0.0f64, f64::max);
        assert!(
            worst_mbr_error_distance > ex.epsilon(),
            "the MBR's false positives are farther than epsilon from P"
        );
    }
}

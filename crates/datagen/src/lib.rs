//! # dbsa-datagen — synthetic workloads for the benchmark harness
//!
//! The paper's evaluation uses the NYC TLC taxi trip data set (1.2 billion
//! pickup points) joined against three NYC polygon data sets (Boroughs,
//! Neighborhoods, Census tracts). Neither the proprietary-scale point data
//! nor the exact shapefiles are available here, so this crate generates
//! synthetic equivalents that preserve the properties the experiments
//! depend on (see DESIGN.md, "Substitutions"):
//!
//! * [`TaxiPointGenerator`] — clustered pickup points: a configurable number
//!   of Gaussian hot-spots (airport, downtown, …) over a city-sized extent
//!   plus uniform background noise, with a fare-like attribute per point.
//!   Skew is the property that matters for the index experiments.
//! * [`PolygonSetGenerator`] — region datasets with a target region count
//!   and per-polygon vertex complexity, matching the paper's profiles:
//!   Boroughs (5 regions, ~663 vertices), Neighborhoods (289, ~31), Census
//!   (scaled from 39 200, ~14). Regions partition the extent (no overlap),
//!   as administrative boundaries do.
//! * [`figure2`] — the paper's motivating example (Figure 2): a polygon, a
//!   point cloud, and the MBR / uniform-raster approximate counts.
//!
//! All generators are seeded and deterministic so experiments are
//! reproducible run to run.

pub mod figure2;
pub mod points;
pub mod polygons;
pub mod profiles;

pub use figure2::Figure2Example;
pub use points::{TaxiPoint, TaxiPointGenerator};
pub use polygons::PolygonSetGenerator;
pub use profiles::DatasetProfile;

/// The city extent used by the default workloads: a 40 km × 40 km square in
/// a local meter-based projection (roughly the bounding box of New York City).
pub fn city_extent() -> dbsa_geom::BoundingBox {
    dbsa_geom::BoundingBox::from_bounds(0.0, 0.0, 40_000.0, 40_000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn city_extent_is_city_sized() {
        let e = city_extent();
        assert_eq!(e.width(), 40_000.0);
        assert_eq!(e.height(), 40_000.0);
    }
}

//! Clustered point generation (taxi-pickup-like workloads).

use dbsa_geom::{BoundingBox, Point};
use rand::prelude::*;

/// A generated point with its attributes (the `P(loc, a1, a2, ...)` schema
/// of the paper's aggregation query).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaxiPoint {
    /// Pickup location.
    pub location: Point,
    /// Fare-like attribute used for SUM / AVG aggregations.
    pub fare: f64,
    /// Passenger-count-like small integer attribute.
    pub passengers: u8,
}

/// Seeded generator of clustered points over an extent.
///
/// A fraction of the points is drawn from Gaussian clusters around randomly
/// placed hot-spots (heavily skewed, like taxi pickups around airports and
/// nightlife districts); the rest is uniform background noise.
#[derive(Debug, Clone)]
pub struct TaxiPointGenerator {
    extent: BoundingBox,
    hotspots: usize,
    cluster_fraction: f64,
    cluster_stddev: f64,
    seed: u64,
}

impl TaxiPointGenerator {
    /// Creates a generator with workload defaults: 12 hot-spots, 80 %
    /// clustered points, 800 m cluster spread.
    pub fn new(extent: BoundingBox, seed: u64) -> Self {
        TaxiPointGenerator {
            extent,
            hotspots: 12,
            cluster_fraction: 0.8,
            cluster_stddev: 800.0,
            seed,
        }
    }

    /// Sets the number of Gaussian hot-spots.
    pub fn hotspots(mut self, n: usize) -> Self {
        assert!(n >= 1, "at least one hotspot required");
        self.hotspots = n;
        self
    }

    /// Sets the fraction of points drawn from clusters (0..=1); the rest is
    /// uniform background.
    pub fn cluster_fraction(mut self, f: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&f),
            "cluster fraction must be in [0, 1]"
        );
        self.cluster_fraction = f;
        self
    }

    /// Sets the standard deviation (in world units) of each cluster.
    pub fn cluster_stddev(mut self, s: f64) -> Self {
        assert!(s > 0.0, "cluster spread must be positive");
        self.cluster_stddev = s;
        self
    }

    /// The extent points are generated in.
    pub fn extent(&self) -> &BoundingBox {
        &self.extent
    }

    /// Generates `n` points with attributes.
    pub fn generate(&self, n: usize) -> Vec<TaxiPoint> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let centers: Vec<Point> = (0..self.hotspots)
            .map(|_| {
                Point::new(
                    rng.gen_range(self.extent.min.x..self.extent.max.x),
                    rng.gen_range(self.extent.min.y..self.extent.max.y),
                )
            })
            .collect();
        (0..n)
            .map(|_| {
                let location = if rng.gen_bool(self.cluster_fraction) {
                    let c = centers[rng.gen_range(0..centers.len())];
                    // Box-Muller for a Gaussian offset, clamped to the extent.
                    let (dx, dy) = gaussian_pair(&mut rng, self.cluster_stddev);
                    Point::new(
                        (c.x + dx).clamp(self.extent.min.x, self.extent.max.x),
                        (c.y + dy).clamp(self.extent.min.y, self.extent.max.y),
                    )
                } else {
                    Point::new(
                        rng.gen_range(self.extent.min.x..self.extent.max.x),
                        rng.gen_range(self.extent.min.y..self.extent.max.y),
                    )
                };
                TaxiPoint {
                    location,
                    fare: rng.gen_range(2.5..80.0),
                    passengers: rng.gen_range(1..=6),
                }
            })
            .collect()
    }

    /// Generates only the locations (convenience for index experiments).
    pub fn generate_locations(&self, n: usize) -> Vec<Point> {
        self.generate(n).into_iter().map(|p| p.location).collect()
    }
}

/// One pair of independent N(0, stddev) samples via Box-Muller.
fn gaussian_pair<R: Rng>(rng: &mut R, stddev: f64) -> (f64, f64) {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let r = (-2.0 * u1.ln()).sqrt() * stddev;
    let theta = std::f64::consts::TAU * u2;
    (r * theta.cos(), r * theta.sin())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::city_extent;
    use proptest::prelude::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let g = TaxiPointGenerator::new(city_extent(), 42);
        let a = g.generate(1000);
        let b = g.generate(1000);
        assert_eq!(a, b, "same seed must give the same data");
        let c = TaxiPointGenerator::new(city_extent(), 43).generate(1000);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn all_points_are_inside_the_extent() {
        let g = TaxiPointGenerator::new(city_extent(), 7);
        for p in g.generate(5000) {
            assert!(city_extent().contains_point(&p.location));
            assert!(p.fare >= 2.5 && p.fare < 80.0);
            assert!((1..=6).contains(&p.passengers));
        }
    }

    #[test]
    fn clustered_points_are_skewed() {
        // With clustering, the densest small cell should hold far more than
        // the uniform expectation.
        let extent = city_extent();
        let clustered = TaxiPointGenerator::new(extent, 3)
            .cluster_fraction(0.9)
            .generate_locations(20_000);
        let uniform = TaxiPointGenerator::new(extent, 3)
            .cluster_fraction(0.0)
            .generate_locations(20_000);
        let cell_count = |pts: &[Point]| {
            let mut counts = vec![0usize; 100];
            for p in pts {
                let cx = ((p.x / extent.width() * 10.0) as usize).min(9);
                let cy = ((p.y / extent.height() * 10.0) as usize).min(9);
                counts[cy * 10 + cx] += 1;
            }
            *counts.iter().max().unwrap()
        };
        let clustered_max = cell_count(&clustered);
        let uniform_max = cell_count(&uniform);
        assert!(
            clustered_max > 2 * uniform_max,
            "clustered max cell {clustered_max} should dominate uniform {uniform_max}"
        );
    }

    #[test]
    fn builder_knobs_are_respected() {
        let g = TaxiPointGenerator::new(city_extent(), 1)
            .hotspots(3)
            .cluster_fraction(0.5)
            .cluster_stddev(100.0);
        assert_eq!(g.extent(), &city_extent());
        let pts = g.generate(100);
        assert_eq!(pts.len(), 100);
    }

    #[test]
    #[should_panic(expected = "cluster fraction")]
    fn rejects_invalid_fraction() {
        let _ = TaxiPointGenerator::new(city_extent(), 1).cluster_fraction(1.5);
    }

    #[test]
    #[should_panic(expected = "at least one hotspot")]
    fn rejects_zero_hotspots() {
        let _ = TaxiPointGenerator::new(city_extent(), 1).hotspots(0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn prop_generated_count_matches_request(n in 0usize..2000, seed in 0u64..100) {
            let g = TaxiPointGenerator::new(city_extent(), seed);
            prop_assert_eq!(g.generate(n).len(), n);
        }
    }
}

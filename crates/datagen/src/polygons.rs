//! Synthetic polygon (region) dataset generation.

use crate::profiles::DatasetProfile;
use dbsa_geom::{BoundingBox, MultiPolygon, Point, Polygon, Ring};
use rand::prelude::*;

/// Generates region datasets that partition an extent.
///
/// Regions are laid out on a near-square grid; every region is shrunk by a
/// small "street" gap (so neighbouring regions do not overlap — and so that
/// region boundaries are fuzzy zones, exactly the property the paper's
/// motivation appeals to), its edges are subdivided until the requested
/// vertex complexity is reached, and the subdivision vertices are jittered
/// by less than half the gap so the complexity is geometrically real without
/// creating overlaps.
#[derive(Debug, Clone)]
pub struct PolygonSetGenerator {
    extent: BoundingBox,
    region_count: usize,
    vertices_per_polygon: usize,
    multipolygon_fraction: f64,
    /// Rotation of the whole region grid around the extent center, in
    /// radians. Real administrative boundaries are not axis-aligned; without
    /// a rotation the regions' MBRs would be unrealistically tight, which
    /// would flatter every MBR-based baseline in the experiments.
    rotation: f64,
    seed: u64,
}

impl PolygonSetGenerator {
    /// Relative width of the gap ("street") between adjacent regions.
    const GAP_FRACTION: f64 = 0.02;

    /// Creates a generator for an explicit region count and complexity.
    pub fn new(
        extent: BoundingBox,
        region_count: usize,
        vertices_per_polygon: usize,
        seed: u64,
    ) -> Self {
        assert!(region_count >= 1, "need at least one region");
        assert!(
            vertices_per_polygon >= 4,
            "need at least 4 vertices per polygon"
        );
        PolygonSetGenerator {
            extent,
            region_count,
            vertices_per_polygon,
            multipolygon_fraction: 0.0,
            rotation: 0.0,
            seed,
        }
    }

    /// Creates a generator matching one of the paper's dataset profiles
    /// (scaled region counts, paper vertex complexity).
    pub fn from_profile(extent: BoundingBox, profile: DatasetProfile, seed: u64) -> Self {
        PolygonSetGenerator {
            extent,
            region_count: profile.scaled_region_count(),
            vertices_per_polygon: profile.vertices_per_polygon(),
            multipolygon_fraction: profile.multipolygon_fraction(),
            // Real city grids are not axis-aligned (Manhattan's is ~29° off
            // true north); rotating the synthetic partition keeps the MBR
            // baselines honest.
            rotation: 0.45,
            seed,
        }
    }

    /// Sets the fraction of regions generated as two-part multi-polygons.
    pub fn multipolygon_fraction(mut self, f: f64) -> Self {
        assert!((0.0..=1.0).contains(&f), "fraction must be in [0, 1]");
        self.multipolygon_fraction = f;
        self
    }

    /// Sets the rotation (radians) of the region grid around the extent
    /// center. Rotation preserves disjointness and vertex complexity but
    /// makes the regions' MBRs overlap, as real administrative boundaries do.
    pub fn rotation(mut self, radians: f64) -> Self {
        self.rotation = radians;
        self
    }

    /// The number of regions that will be generated.
    pub fn region_count(&self) -> usize {
        self.region_count
    }

    /// Generates the regions.
    pub fn generate(&self) -> Vec<MultiPolygon> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let cols = (self.region_count as f64).sqrt().ceil() as usize;
        let rows = self.region_count.div_ceil(cols);
        let cell_w = self.extent.width() / cols as f64;
        let cell_h = self.extent.height() / rows as f64;
        let gap = cell_w.min(cell_h) * Self::GAP_FRACTION;

        let mut out = Vec::with_capacity(self.region_count);
        'outer: for row in 0..rows {
            for col in 0..cols {
                if out.len() >= self.region_count {
                    break 'outer;
                }
                let cell = BoundingBox::from_bounds(
                    self.extent.min.x + col as f64 * cell_w + gap,
                    self.extent.min.y + row as f64 * cell_h + gap,
                    self.extent.min.x + (col + 1) as f64 * cell_w - gap,
                    self.extent.min.y + (row + 1) as f64 * cell_h - gap,
                );
                let make_multi = rng.gen_bool(self.multipolygon_fraction);
                let region = if make_multi {
                    // Split the cell into two islands separated by a channel.
                    let mid = cell.min.x + cell.width() * rng.gen_range(0.35..0.65);
                    let left =
                        BoundingBox::from_bounds(cell.min.x, cell.min.y, mid - gap, cell.max.y);
                    let right =
                        BoundingBox::from_bounds(mid + gap, cell.min.y, cell.max.x, cell.max.y);
                    let verts_each = (self.vertices_per_polygon / 2).max(4);
                    MultiPolygon::new(vec![
                        jittered_rectangle(&left, verts_each, gap * 0.45, &mut rng),
                        jittered_rectangle(&right, verts_each, gap * 0.45, &mut rng),
                    ])
                } else {
                    MultiPolygon::from(jittered_rectangle(
                        &cell,
                        self.vertices_per_polygon,
                        gap * 0.45,
                        &mut rng,
                    ))
                };
                out.push(region);
            }
        }
        if self.rotation != 0.0 {
            let center = self.extent.center();
            out = out
                .into_iter()
                .map(|region| rotate_region(&region, &center, self.rotation))
                .collect();
        }
        out
    }
}

/// Rotates every vertex of a region around `center` by `angle` radians.
fn rotate_region(region: &MultiPolygon, center: &Point, angle: f64) -> MultiPolygon {
    let rotate_ring = |ring: &dbsa_geom::Ring| -> Ring {
        Ring::new(
            ring.vertices()
                .iter()
                .map(|p| (*p - *center).rotated(angle) + *center)
                .collect(),
        )
    };
    MultiPolygon::new(
        region
            .polygons()
            .iter()
            .map(|poly| {
                Polygon::with_holes(
                    rotate_ring(poly.exterior()),
                    poly.holes().iter().map(rotate_ring).collect(),
                )
            })
            .collect(),
    )
}

/// Builds a polygon tracing `rect` with `target_vertices` vertices: the four
/// edges are subdivided evenly and every subdivision vertex is jittered by
/// at most `max_jitter` (corners are kept fixed so adjacent regions, which
/// are separated by at least `2 * max_jitter`, can never overlap).
fn jittered_rectangle<R: Rng>(
    rect: &BoundingBox,
    target_vertices: usize,
    max_jitter: f64,
    rng: &mut R,
) -> Polygon {
    let per_edge = (target_vertices / 4).max(1);
    let corners = rect.corners();
    let mut vertices = Vec::with_capacity(per_edge * 4);
    for i in 0..4 {
        let a = corners[i];
        let b = corners[(i + 1) % 4];
        for k in 0..per_edge {
            let t = k as f64 / per_edge as f64;
            let mut p = a.lerp(&b, t);
            if k > 0 {
                p = Point::new(
                    p.x + rng.gen_range(-max_jitter..max_jitter),
                    p.y + rng.gen_range(-max_jitter..max_jitter),
                );
            }
            vertices.push(p);
        }
    }
    Polygon::new(Ring::new(vertices))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::city_extent;
    use proptest::prelude::*;

    #[test]
    fn generates_requested_number_of_regions() {
        let gen = PolygonSetGenerator::new(city_extent(), 25, 16, 1);
        let regions = gen.generate();
        assert_eq!(regions.len(), 25);
        assert_eq!(gen.region_count(), 25);
    }

    #[test]
    fn vertex_complexity_matches_target() {
        for target in [14usize, 31, 120, 663] {
            let regions = PolygonSetGenerator::new(city_extent(), 9, target, 7).generate();
            let avg: f64 =
                regions.iter().map(|r| r.vertex_count() as f64).sum::<f64>() / regions.len() as f64;
            let rel = (avg - target as f64).abs() / target as f64;
            assert!(rel < 0.15, "target {target}, got average {avg}");
        }
    }

    #[test]
    fn regions_are_disjoint() {
        let regions = PolygonSetGenerator::new(city_extent(), 16, 40, 3).generate();
        // Sample points inside each region's interior and ensure no other
        // region claims them.
        for (i, region) in regions.iter().enumerate() {
            let c = region.polygons()[0].centroid();
            assert!(
                region.contains_point(&c),
                "region {i} must contain its centroid"
            );
            for (j, other) in regions.iter().enumerate() {
                if i != j {
                    assert!(
                        !other.contains_point(&c),
                        "regions {i} and {j} overlap at {c:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn regions_are_valid_and_inside_extent() {
        let regions = PolygonSetGenerator::new(city_extent(), 36, 24, 11).generate();
        let extent = city_extent().inflated(1.0);
        for region in &regions {
            assert!(!region.is_empty());
            assert!(region.area() > 0.0);
            assert!(extent.contains_box(&region.bbox()));
            for poly in region.polygons() {
                assert!(poly.is_valid(), "generated polygon must be valid");
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = PolygonSetGenerator::new(city_extent(), 9, 20, 5).generate();
        let b = PolygonSetGenerator::new(city_extent(), 9, 20, 5).generate();
        assert_eq!(a, b);
        let c = PolygonSetGenerator::new(city_extent(), 9, 20, 6).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn profile_based_generation() {
        let boroughs =
            PolygonSetGenerator::from_profile(city_extent(), DatasetProfile::Boroughs, 1);
        let regions = boroughs.generate();
        assert_eq!(regions.len(), 5);
        let avg: f64 = regions.iter().map(|r| r.vertex_count() as f64).sum::<f64>() / 5.0;
        assert!(
            avg > 500.0,
            "boroughs should be complex, got {avg} vertices"
        );
        // Some boroughs are multi-polygons (islands).
        assert!(regions.iter().any(|r| r.len() > 1));

        let neigh =
            PolygonSetGenerator::from_profile(city_extent(), DatasetProfile::Neighborhoods, 1)
                .generate();
        assert_eq!(neigh.len(), 289);
    }

    #[test]
    fn multipolygon_fraction_produces_islands() {
        let regions = PolygonSetGenerator::new(city_extent(), 16, 24, 9)
            .multipolygon_fraction(1.0)
            .generate();
        assert!(regions.iter().all(|r| r.len() == 2));
        let none = PolygonSetGenerator::new(city_extent(), 16, 24, 9).generate();
        assert!(none.iter().all(|r| r.len() == 1));
    }

    #[test]
    #[should_panic(expected = "at least one region")]
    fn rejects_zero_regions() {
        let _ = PolygonSetGenerator::new(city_extent(), 0, 10, 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn prop_total_region_area_is_close_to_extent_area(
            count in 1usize..60, verts in 4usize..64, seed in 0u64..50,
        ) {
            // Regions partition the extent up to the street gaps, so the total
            // area must be a large fraction of the extent but never exceed it.
            let extent = city_extent();
            let regions = PolygonSetGenerator::new(extent, count, verts, seed).generate();
            let total: f64 = regions.iter().map(MultiPolygon::area).sum();
            prop_assert!(total <= extent.area() * 1.001);
            // Unused grid cells (when count is not a perfect grid) reduce
            // coverage; require at least half the used cells' share.
            let cols = (count as f64).sqrt().ceil() as usize;
            let rows = count.div_ceil(cols);
            let used_fraction = count as f64 / (cols * rows) as f64;
            prop_assert!(total >= extent.area() * used_fraction * 0.7,
                "total {total} too small for used fraction {used_fraction}");
        }
    }
}

//! Dataset profiles matching the paper's polygon collections.

/// The polygon datasets of the paper's evaluation (Section 5.1), described
/// by their region count and average vertex complexity.
///
/// | dataset       | regions (paper) | avg. vertices |
/// |---------------|-----------------|---------------|
/// | Boroughs      | 5               | 663           |
/// | Neighborhoods | 289 (260 multi-polygon regions in §5.2) | 30.6 |
/// | Census        | 39 200          | 13.6          |
///
/// The Census count is scaled down by default so a laptop-scale run stays in
/// the seconds range; the scaling factor is reported by the harness and the
/// complexity profile (vertices per polygon) is preserved, which is what the
/// PIP-cost argument of Figure 6 depends on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetProfile {
    /// Few, very complex polygons (expensive PIP tests).
    Boroughs,
    /// Medium count, medium complexity.
    Neighborhoods,
    /// Many simple polygons (cheap PIP tests).
    Census,
}

impl DatasetProfile {
    /// All profiles, in the order Figure 6 reports them.
    pub const ALL: [DatasetProfile; 3] = [
        DatasetProfile::Boroughs,
        DatasetProfile::Neighborhoods,
        DatasetProfile::Census,
    ];

    /// Human-readable name as used in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetProfile::Boroughs => "Boroughs",
            DatasetProfile::Neighborhoods => "Neighborhoods",
            DatasetProfile::Census => "Census",
        }
    }

    /// Region count in the paper's dataset.
    pub fn paper_region_count(&self) -> usize {
        match self {
            DatasetProfile::Boroughs => 5,
            DatasetProfile::Neighborhoods => 289,
            DatasetProfile::Census => 39_200,
        }
    }

    /// Region count used by the laptop-scale reproduction.
    pub fn scaled_region_count(&self) -> usize {
        match self {
            DatasetProfile::Boroughs => 5,
            DatasetProfile::Neighborhoods => 289,
            // 39 200 census tracts scaled ~20x down; complexity preserved.
            DatasetProfile::Census => 1_936,
        }
    }

    /// Average vertices per polygon reported by the paper.
    pub fn vertices_per_polygon(&self) -> usize {
        match self {
            DatasetProfile::Boroughs => 663,
            DatasetProfile::Neighborhoods => 31,
            DatasetProfile::Census => 14,
        }
    }

    /// Fraction of regions generated as multi-polygons (only the
    /// neighbourhood-style datasets have islands in the paper's description).
    pub fn multipolygon_fraction(&self) -> f64 {
        match self {
            DatasetProfile::Boroughs => 0.4,
            DatasetProfile::Neighborhoods => 0.1,
            DatasetProfile::Census => 0.0,
        }
    }
}

impl std::fmt::Display for DatasetProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_match_paper_numbers() {
        assert_eq!(DatasetProfile::Boroughs.paper_region_count(), 5);
        assert_eq!(DatasetProfile::Boroughs.vertices_per_polygon(), 663);
        assert_eq!(DatasetProfile::Neighborhoods.paper_region_count(), 289);
        assert_eq!(DatasetProfile::Neighborhoods.vertices_per_polygon(), 31);
        assert_eq!(DatasetProfile::Census.paper_region_count(), 39_200);
        assert_eq!(DatasetProfile::Census.vertices_per_polygon(), 14);
    }

    #[test]
    fn complexity_ordering_is_preserved_when_scaling() {
        // Boroughs are few and complex; census are many and simple — the
        // relation the Figure 6 analysis relies on.
        let b = DatasetProfile::Boroughs;
        let n = DatasetProfile::Neighborhoods;
        let c = DatasetProfile::Census;
        assert!(b.scaled_region_count() < n.scaled_region_count());
        assert!(n.scaled_region_count() < c.scaled_region_count());
        assert!(b.vertices_per_polygon() > n.vertices_per_polygon());
        assert!(n.vertices_per_polygon() > c.vertices_per_polygon());
        assert!(c.scaled_region_count() <= c.paper_region_count());
    }

    #[test]
    fn names_and_display() {
        assert_eq!(DatasetProfile::Boroughs.to_string(), "Boroughs");
        assert_eq!(DatasetProfile::ALL.len(), 3);
    }
}

//! The concurrent serving tier: cross-query batched scheduling over
//! lock-free engine snapshots, with admission control and latency
//! accounting.
//!
//! A [`QueryService`] is a front end over a shared [`ShardedEngine`]:
//! clients [`submit`](QueryService::submit) queries from any thread and
//! receive a [`Ticket`]; a dedicated scheduler thread drains the admission
//! queue in batches, executes each batch over **one** engine snapshot via
//! [`EngineSnapshot::execute_batch`], and fulfills every ticket with a
//! [`CompletedQuery`] carrying the outcome plus its latency breakdown.
//!
//! **Batch window.** No timer and no artificial delay: while the scheduler
//! executes one batch, newly submitted queries accumulate in the queue;
//! the next drain takes them all (up to
//! [`max_batch`](ServingConfig::max_batch)). Under load batches grow
//! naturally and the cross-query sharing of
//! [`dbsa_query::multi`] kicks in — identical queries execute once,
//! bounded aggregates at different levels share one multi-level cursor
//! walk. An idle service parks on a condition variable and serves the
//! next query solo, at its solo latency.
//!
//! **Admission control.** The queue is bounded
//! ([`queue_capacity`](ServingConfig::queue_capacity)): a submission
//! against a full queue is rejected *at the caller* with
//! [`QueryError::Overloaded`] — counted, never silently dropped. After
//! [`shutdown`](QueryService::shutdown) (or drop) the service stops
//! admitting ([`QueryError::ServiceStopped`]) but drains every
//! already-admitted query before the scheduler exits — graceful drain.
//!
//! **Determinism guarantee.** Every response is bit-for-bit identical to
//! executing that query alone against the same snapshot: batching is pure
//! scheduling (see the determinism policy of
//! [`dbsa_query::multi`]). Ingest and compaction never block readers —
//! the scheduler picks up whatever snapshot is published when its batch
//! starts, and the served generation is reported per response.

use crate::sharded::{EngineSnapshot, ShardedEngine};
use dbsa_geom::Point;
use dbsa_query::{DistanceSpec, JoinResult, KnnNeighbor, QueryError, QueryPlan, QuerySpec};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// One client query, as admitted by the serving tier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryRequest {
    /// `SELECT AGG(a) … GROUP BY region` under a per-query accuracy spec.
    Aggregate(QuerySpec),
    /// `WITHIN_DISTANCE(d)` semi-join under a per-query accuracy spec.
    WithinDistance(DistanceSpec),
    /// Approximate k-nearest-regions for a probe point.
    Knn {
        /// The probe point.
        probe: Point,
        /// Number of neighbors requested.
        k: usize,
    },
    /// Exact (frontier-refined) k-nearest-regions for a probe point.
    KnnExact {
        /// The probe point.
        probe: Point,
        /// Number of neighbors requested.
        k: usize,
    },
}

/// The answer to one [`QueryRequest`].
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResponse {
    /// Answer to [`QueryRequest::Aggregate`].
    Aggregate {
        /// The plan the request resolved to.
        plan: QueryPlan,
        /// Per-region aggregates.
        result: JoinResult,
    },
    /// Answer to [`QueryRequest::WithinDistance`].
    WithinDistance {
        /// The plan the request resolved to.
        plan: QueryPlan,
        /// Per-region within-distance aggregates.
        result: JoinResult,
    },
    /// Answer to [`QueryRequest::Knn`] / [`QueryRequest::KnnExact`].
    Knn {
        /// Up to `k` neighbors with guaranteed distance intervals.
        neighbors: Vec<KnnNeighbor>,
    },
}

/// A finished query as delivered to its owner: outcome plus accounting.
#[derive(Debug, Clone)]
pub struct CompletedQuery {
    /// The query's result, or its typed failure.
    pub outcome: Result<QueryResponse, QueryError>,
    /// The snapshot generation that served the query.
    pub generation: u64,
    /// How many queries shared the batch this one ran in.
    pub batch_size: usize,
    /// Time spent waiting in the admission queue.
    pub queued: Duration,
    /// Total time from submission to fulfillment.
    pub total: Duration,
}

/// Configuration of a [`QueryService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServingConfig {
    /// Admission-queue bound: submissions beyond it are rejected with
    /// [`QueryError::Overloaded`].
    pub queue_capacity: usize,
    /// Maximum queries drained into one batch.
    pub max_batch: usize,
    /// Shard-level worker threads per batch execution.
    pub threads: usize,
}

impl Default for ServingConfig {
    fn default() -> Self {
        ServingConfig {
            queue_capacity: 1024,
            max_batch: 64,
            threads: 1,
        }
    }
}

/// Monotonic serving counters owned by the engine; snapshot them through
/// [`ShardedEngine::stats`] (they appear as
/// [`EngineStats::serving`](crate::engine::EngineStats::serving)).
#[derive(Debug, Default)]
pub(crate) struct ServingCounters {
    admitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    queued: AtomicU64,
    batches: AtomicU64,
    batched_queries: AtomicU64,
    max_batch: AtomicU64,
    last_generation: AtomicU64,
}

impl ServingCounters {
    pub(crate) fn stats(&self) -> ServingStats {
        ServingStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            queued: self.queued.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_queries: self.batched_queries.load(Ordering::Relaxed),
            max_batch: self.max_batch.load(Ordering::Relaxed),
            last_generation: self.last_generation.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time view of the serving counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServingStats {
    /// Queries admitted into the queue since engine construction.
    pub admitted: u64,
    /// Queries rejected at submission (overload or stopped service).
    pub rejected: u64,
    /// Queries completed (fulfilled tickets).
    pub completed: u64,
    /// Queries currently waiting in the admission queue.
    pub queued: u64,
    /// Batches executed.
    pub batches: u64,
    /// Total queries across all executed batches.
    pub batched_queries: u64,
    /// Largest batch executed (peak batch occupancy).
    pub max_batch: u64,
    /// Snapshot generation of the most recently executed batch.
    pub last_generation: u64,
}

impl ServingStats {
    /// Mean batch occupancy: queries per executed batch (0 when no batch
    /// ran yet).
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_queries as f64 / self.batches as f64
        }
    }
}

/// Rendezvous slot between a [`Ticket`] and the scheduler.
#[derive(Default)]
struct Slot {
    state: Mutex<Option<CompletedQuery>>,
    ready: Condvar,
}

/// The client's claim on an admitted query: wait (or poll) for the
/// [`CompletedQuery`].
pub struct Ticket {
    slot: Arc<Slot>,
}

impl Ticket {
    /// Blocks until the query completes. Admitted queries always complete
    /// — shutdown drains the queue before the scheduler exits.
    pub fn wait(self) -> CompletedQuery {
        let mut state = self.slot.state.lock().expect("slot lock poisoned");
        loop {
            if let Some(done) = state.take() {
                return done;
            }
            state = self.slot.ready.wait(state).expect("slot lock poisoned");
        }
    }

    /// Non-blocking poll: the completion if it already happened.
    pub fn try_take(&self) -> Option<CompletedQuery> {
        self.slot.state.lock().expect("slot lock poisoned").take()
    }
}

/// The scheduler's side of an admitted query: fulfilling it wakes the
/// owner's [`Ticket`].
pub struct QueryHandle {
    slot: Arc<Slot>,
    submitted: Instant,
}

impl QueryHandle {
    fn fulfill(self, done: CompletedQuery) {
        *self.slot.state.lock().expect("slot lock poisoned") = Some(done);
        self.slot.ready.notify_one();
    }
}

struct PendingQuery {
    request: QueryRequest,
    handle: QueryHandle,
}

struct ServiceQueue {
    pending: VecDeque<PendingQuery>,
    closed: bool,
}

struct ServiceShared {
    queue: Mutex<ServiceQueue>,
    work: Condvar,
    config: ServingConfig,
}

/// The concurrent serving front end over a [`ShardedEngine`]. See the
/// module docs for the batching, admission and determinism contracts.
pub struct QueryService {
    engine: Arc<ShardedEngine>,
    shared: Arc<ServiceShared>,
    scheduler: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl QueryService {
    /// Starts the serving tier over `engine`: spawns the scheduler thread
    /// and begins admitting queries immediately.
    ///
    /// # Panics
    /// Panics when the engine holds no regions (every request type needs
    /// the region index) or when `config` has a zero capacity or batch
    /// size.
    pub fn start(engine: Arc<ShardedEngine>, config: ServingConfig) -> QueryService {
        assert!(
            !engine.regions().is_empty(),
            "the serving tier requires an engine with regions loaded"
        );
        assert!(config.queue_capacity > 0, "queue capacity must be positive");
        assert!(config.max_batch > 0, "max batch must be positive");
        let shared = Arc::new(ServiceShared {
            queue: Mutex::new(ServiceQueue {
                pending: VecDeque::new(),
                closed: false,
            }),
            work: Condvar::new(),
            config,
        });
        let scheduler = {
            let engine = Arc::clone(&engine);
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("dbsa-serving".into())
                .spawn(move || scheduler_loop(&engine, &shared))
                .expect("failed to spawn the serving scheduler")
        };
        QueryService {
            engine,
            shared,
            scheduler: Mutex::new(Some(scheduler)),
        }
    }

    /// The engine this service fronts.
    pub fn engine(&self) -> &Arc<ShardedEngine> {
        &self.engine
    }

    /// Submits a query for batched execution. Returns the [`Ticket`] to
    /// wait on, [`QueryError::Overloaded`] when the admission queue is
    /// full, or [`QueryError::ServiceStopped`] after shutdown began.
    pub fn submit(&self, request: QueryRequest) -> Result<Ticket, QueryError> {
        let counters = self.engine.serving_counters();
        let mut queue = self.shared.queue.lock().expect("queue lock poisoned");
        if queue.closed {
            counters.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(QueryError::ServiceStopped);
        }
        if queue.pending.len() >= self.shared.config.queue_capacity {
            counters.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(QueryError::Overloaded {
                queued: queue.pending.len(),
                capacity: self.shared.config.queue_capacity,
            });
        }
        let slot = Arc::new(Slot::default());
        queue.pending.push_back(PendingQuery {
            request,
            handle: QueryHandle {
                slot: Arc::clone(&slot),
                submitted: Instant::now(),
            },
        });
        counters.admitted.fetch_add(1, Ordering::Relaxed);
        counters.queued.fetch_add(1, Ordering::Relaxed);
        drop(queue);
        self.shared.work.notify_one();
        Ok(Ticket { slot })
    }

    /// Convenience: submit and wait.
    pub fn query(&self, request: QueryRequest) -> Result<CompletedQuery, QueryError> {
        self.submit(request).map(Ticket::wait)
    }

    /// Stops admitting queries, drains everything already admitted and
    /// joins the scheduler. Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        {
            let mut queue = self.shared.queue.lock().expect("queue lock poisoned");
            queue.closed = true;
        }
        self.shared.work.notify_all();
        let handle = self
            .scheduler
            .lock()
            .expect("scheduler slot poisoned")
            .take();
        if let Some(handle) = handle {
            handle.join().expect("serving scheduler panicked");
        }
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The scheduler: drain a batch, execute it over one snapshot, scatter the
/// completions, repeat — exiting only once the service is closed *and* the
/// queue is empty (graceful drain).
fn scheduler_loop(engine: &Arc<ShardedEngine>, shared: &Arc<ServiceShared>) {
    let counters = engine.serving_counters();
    loop {
        let batch: Vec<PendingQuery> = {
            let mut queue = shared.queue.lock().expect("queue lock poisoned");
            loop {
                if !queue.pending.is_empty() {
                    break;
                }
                if queue.closed {
                    return;
                }
                queue = shared.work.wait(queue).expect("queue lock poisoned");
            }
            let n = queue.pending.len().min(shared.config.max_batch);
            queue.pending.drain(..n).collect()
        };
        let started = Instant::now();
        let batch_size = batch.len();
        counters
            .queued
            .fetch_sub(batch_size as u64, Ordering::Relaxed);
        counters.batches.fetch_add(1, Ordering::Relaxed);
        counters
            .batched_queries
            .fetch_add(batch_size as u64, Ordering::Relaxed);
        counters
            .max_batch
            .fetch_max(batch_size as u64, Ordering::Relaxed);

        // One snapshot per batch: ingest/compact publishes never block this
        // read, and every query of the batch sees the same generation.
        let snapshot: Arc<EngineSnapshot> = engine.snapshot();
        let requests: Vec<QueryRequest> = batch.iter().map(|p| p.request).collect();
        let outcomes = snapshot.execute_batch(&requests, shared.config.threads);
        counters
            .last_generation
            .store(snapshot.generation(), Ordering::Relaxed);
        for (pending, outcome) in batch.into_iter().zip(outcomes) {
            let queued = started.saturating_duration_since(pending.handle.submitted);
            let total = pending.handle.submitted.elapsed();
            pending.handle.fulfill(CompletedQuery {
                outcome,
                generation: snapshot.generation(),
                batch_size,
                queued,
                total,
            });
            counters.completed.fetch_add(1, Ordering::Relaxed);
        }
    }
}

//! The concurrent serving tier: cross-query batched scheduling over
//! lock-free engine snapshots, with admission control, latency accounting
//! and end-to-end fault tolerance.
//!
//! A [`QueryService`] is a front end over a shared [`ShardedEngine`]:
//! clients [`submit`](QueryService::submit) queries from any thread and
//! receive a [`Ticket`]; a dedicated scheduler thread drains the admission
//! queue in batches, executes each batch over **one** engine snapshot, and
//! fulfills every ticket with a [`CompletedQuery`] carrying the outcome
//! plus its latency breakdown.
//!
//! **Batch window.** No timer and no artificial delay: while the scheduler
//! executes one batch, newly submitted queries accumulate in the queue;
//! the next drain takes them all (up to
//! [`max_batch`](ServingConfig::max_batch)). Under load batches grow
//! naturally and the cross-query sharing of
//! [`dbsa_query::multi`] kicks in — identical queries execute once,
//! bounded aggregates at different levels share one multi-level cursor
//! walk. An idle service parks on a condition variable and serves the
//! next query solo, at its solo latency.
//!
//! **Admission control.** The queue is bounded
//! ([`queue_capacity`](ServingConfig::queue_capacity)): a submission
//! against a full queue is rejected *at the caller* with
//! [`QueryError::Overloaded`] — counted, never silently dropped. After
//! [`shutdown`](QueryService::shutdown) (or drop) the service stops
//! admitting ([`QueryError::ServiceStopped`]) but drains every
//! already-admitted query before the scheduler exits — graceful drain.
//!
//! **Determinism guarantee.** Every non-degraded response is bit-for-bit
//! identical to executing that query alone against the same snapshot:
//! batching is pure scheduling (see the determinism policy of
//! [`dbsa_query::multi`]). Ingest and compaction never block readers —
//! the scheduler picks up whatever snapshot is published when its batch
//! starts, and the served generation is reported per response.
//!
//! # Failure model
//!
//! * **Deadlines.** A request may carry a deadline (relative to
//!   submission). It is checked at admission (a zero deadline is rejected
//!   immediately), at batch formation, and again between batch groups;
//!   a query whose budget ran out fails with
//!   [`QueryError::DeadlineExceeded`] carrying its queue/elapsed split. A
//!   query that *starts* executing in time but finishes late delivers its
//!   (late) result — work already spent is not thrown away.
//! * **Bounded degradation.** When the scheduler estimates (from an EWMA
//!   of recent per-group execution times) that exact refinement cannot fit
//!   a query's remaining budget, it re-plans the query via the
//!   [`QueryPlanner`](dbsa_query::QueryPlanner) to the approximate answer
//!   at the finest level that still fits — the paper's core lever: one
//!   distance-bounded approximation answers any query with a guaranteed
//!   bound. Degradation is **never silent**: the response carries
//!   `degraded: Some(`[`GuaranteedBound`]`)` stating the bound the served
//!   level guarantees. Bounded requests never degrade (their bound is a
//!   contract); only exact requests trade accuracy for latency, governed
//!   by [`DegradePolicy`].
//! * **Panic isolation.** Per-query preparation and each batch group
//!   execute under `catch_unwind`: a panicking query fails only itself
//!   (and, for a shared group, its group) with [`QueryError::Internal`].
//!   Every lock acquisition recovers from poisoning instead of spreading
//!   it, a handle dropped without fulfillment completes its ticket with
//!   `Internal` (no client ever blocks forever), and a supervisor restarts
//!   the scheduler thread if it dies — counted in
//!   [`ServingStats::scheduler_restarts`].
//! * **Cancellation.** Dropping a [`Ticket`] without waiting cancels the
//!   query: the scheduler skips it at batch formation and between batch
//!   groups, so abandoned clients never leak queue slots or spend engine
//!   time.
//! * **Deterministic fault injection.** A seeded [`FaultPlan`] in the
//!   [`ServingConfig`] can panic the Nth query, delay every Nth per-shard
//!   execution, stall batch formation, and kill the scheduler thread —
//!   all driven by counters, not clocks, so chaos tests replay exactly.

use crate::sharded::{EngineSnapshot, ShardedEngine};
use dbsa_geom::Point;
use dbsa_query::{
    BatchQuery, DistanceSpec, GuaranteedBound, JoinResult, KnnNeighbor, QueryError, QueryPlan,
    QuerySpec,
};
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Poison-recovering lock acquisition: a thread that panicked while
/// holding the lock leaves the data behind, not a wedged service. All
/// serving-tier state is written atomically enough that the recovered
/// value is always usable (queue contents, completion slots).
fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// What a client asks of the engine (without delivery metadata).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryKind {
    /// `SELECT AGG(a) … GROUP BY region` under a per-query accuracy spec.
    Aggregate(QuerySpec),
    /// `WITHIN_DISTANCE(d)` semi-join under a per-query accuracy spec.
    WithinDistance(DistanceSpec),
    /// Approximate k-nearest-regions for a probe point.
    Knn {
        /// The probe point.
        probe: Point,
        /// Number of neighbors requested.
        k: usize,
    },
    /// Exact (frontier-refined) k-nearest-regions for a probe point.
    KnnExact {
        /// The probe point.
        probe: Point,
        /// Number of neighbors requested.
        k: usize,
    },
}

/// One client query, as admitted by the serving tier: the request body
/// plus an optional deadline (relative to submission).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryRequest {
    /// What is being asked.
    pub kind: QueryKind,
    /// Latency budget measured from submission. `None` means unbounded.
    /// See the module docs for the exact check points and the degradation
    /// policy a tight budget can trigger.
    pub deadline: Option<Duration>,
}

impl QueryRequest {
    /// An aggregation request.
    pub fn aggregate(spec: QuerySpec) -> Self {
        QueryKind::Aggregate(spec).into()
    }

    /// A within-distance request.
    pub fn within_distance(spec: DistanceSpec) -> Self {
        QueryKind::WithinDistance(spec).into()
    }

    /// An approximate k-nearest-regions request.
    pub fn knn(probe: Point, k: usize) -> Self {
        QueryKind::Knn { probe, k }.into()
    }

    /// An exact k-nearest-regions request.
    pub fn knn_exact(probe: Point, k: usize) -> Self {
        QueryKind::KnnExact { probe, k }.into()
    }

    /// Attaches a deadline (measured from submission).
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

impl From<QueryKind> for QueryRequest {
    fn from(kind: QueryKind) -> Self {
        QueryRequest {
            kind,
            deadline: None,
        }
    }
}

/// The answer to one [`QueryRequest`].
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResponse {
    /// Answer to [`QueryKind::Aggregate`].
    Aggregate {
        /// The plan the request resolved to.
        plan: QueryPlan,
        /// Per-region aggregates.
        result: JoinResult,
    },
    /// Answer to [`QueryKind::WithinDistance`].
    WithinDistance {
        /// The plan the request resolved to.
        plan: QueryPlan,
        /// Per-region within-distance aggregates.
        result: JoinResult,
    },
    /// Answer to [`QueryKind::Knn`] / [`QueryKind::KnnExact`].
    Knn {
        /// Up to `k` neighbors with guaranteed distance intervals.
        neighbors: Vec<KnnNeighbor>,
    },
}

/// A finished query as delivered to its owner: outcome plus accounting.
#[derive(Debug, Clone)]
pub struct CompletedQuery {
    /// The query's result, or its typed failure.
    pub outcome: Result<QueryResponse, QueryError>,
    /// The snapshot generation that served the query.
    pub generation: u64,
    /// How many queries shared the batch this one ran in.
    pub batch_size: usize,
    /// Time spent waiting in the admission queue.
    pub queued: Duration,
    /// Total time from submission to fulfillment.
    pub total: Duration,
    /// `Some` when deadline pressure degraded an exact request to the
    /// approximate answer: the bound the served level still guarantees.
    /// `None` for every answer served exactly as requested.
    pub degraded: Option<GuaranteedBound>,
}

/// When the scheduler may degrade an **exact** request to the approximate
/// answer (with its [`GuaranteedBound`]). Bounded requests never degrade.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DegradePolicy {
    /// Never degrade: exact requests run exact, even past their deadline.
    Never,
    /// Degrade when the EWMA cost estimate of the exact path exceeds the
    /// query's remaining deadline budget (no-op for queries without a
    /// deadline). The cost model starts empty, so the first query of each
    /// execution shape always runs exactly as requested and seeds the
    /// estimate.
    #[default]
    Deadline,
    /// Degrade every degradable request unconditionally — deterministic,
    /// timing-free; meant for tests and benchmarks of the degraded path.
    Always,
}

/// Deterministic fault injection for the serving tier. All triggers are
/// counter-driven (`sequence + seed ≡ one_in − 1 (mod one_in)`), never
/// clock-driven, so a seeded plan replays the same faults on the same
/// query sequence — the chaos suite's reproducibility contract. The
/// default plan is inert.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Phase offset mixed into every 1-in-N trigger.
    pub seed: u64,
    /// Panic the per-query preparation of one in this many prepared
    /// queries (0 disables). The panic is isolated: only that query fails,
    /// with [`QueryError::Internal`].
    pub panic_query_one_in: u64,
    /// Delay one in this many per-shard executions (0 disables) by
    /// [`slow_shard_delay`](Self::slow_shard_delay) — the "slow shard"
    /// fault.
    pub slow_shard_one_in: u64,
    /// How long a faulted shard execution sleeps.
    pub slow_shard_delay: Duration,
    /// Stall inserted before each batch is formed (zero disables) —
    /// widens the batch window and eats deadline budget deterministically.
    pub batch_stall: Duration,
    /// Panic the scheduler thread itself after draining one in this many
    /// batches (0 disables). Deliberately *outside* the per-query unwind
    /// boundary: the drained batch's handles drop (each ticket completes
    /// with [`QueryError::Internal`]) and the supervisor restarts the
    /// scheduler — the failure mode
    /// [`ServingStats::scheduler_restarts`] counts.
    pub panic_scheduler_one_in: u64,
}

impl FaultPlan {
    /// Whether the 1-in-`one_in` trigger fires for `sequence`.
    fn fires(&self, one_in: u64, sequence: u64) -> bool {
        one_in != 0 && sequence.wrapping_add(self.seed) % one_in == one_in - 1
    }

    /// Whether this plan injects no faults at all (the default).
    pub fn is_inert(&self) -> bool {
        *self == FaultPlan::default()
    }
}

/// Configuration of a [`QueryService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServingConfig {
    /// Admission-queue bound: submissions beyond it are rejected with
    /// [`QueryError::Overloaded`].
    pub queue_capacity: usize,
    /// Maximum queries drained into one batch.
    pub max_batch: usize,
    /// Shard-level worker threads per batch execution.
    pub threads: usize,
    /// When deadline pressure may degrade exact requests.
    pub degrade: DegradePolicy,
    /// Deterministic fault injection (inert by default).
    pub faults: FaultPlan,
}

impl Default for ServingConfig {
    fn default() -> Self {
        ServingConfig {
            queue_capacity: 1024,
            max_batch: 64,
            threads: 1,
            degrade: DegradePolicy::default(),
            faults: FaultPlan::default(),
        }
    }
}

/// Monotonic serving counters owned by the engine; snapshot them through
/// [`ShardedEngine::stats`] (they appear as
/// [`EngineStats::serving`](crate::engine::EngineStats::serving)).
#[derive(Debug, Default)]
pub(crate) struct ServingCounters {
    admitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    queued: AtomicU64,
    batches: AtomicU64,
    batched_queries: AtomicU64,
    max_batch: AtomicU64,
    last_generation: AtomicU64,
    cancelled: AtomicU64,
    deadline_missed: AtomicU64,
    degraded: AtomicU64,
    isolated_panics: AtomicU64,
    scheduler_restarts: AtomicU64,
}

impl ServingCounters {
    pub(crate) fn stats(&self) -> ServingStats {
        ServingStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            queued: self.queued.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_queries: self.batched_queries.load(Ordering::Relaxed),
            max_batch: self.max_batch.load(Ordering::Relaxed),
            last_generation: self.last_generation.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            deadline_missed: self.deadline_missed.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            isolated_panics: self.isolated_panics.load(Ordering::Relaxed),
            scheduler_restarts: self.scheduler_restarts.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time view of the serving counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServingStats {
    /// Queries admitted into the queue since engine construction.
    pub admitted: u64,
    /// Queries rejected at submission (overload, stopped service, or an
    /// already-expired deadline).
    pub rejected: u64,
    /// Queries completed (fulfilled tickets), including typed failures.
    pub completed: u64,
    /// Queries currently waiting in the admission queue.
    pub queued: u64,
    /// Batches executed.
    pub batches: u64,
    /// Total queries across all executed batches.
    pub batched_queries: u64,
    /// Largest batch executed (peak batch occupancy).
    pub max_batch: u64,
    /// Snapshot generation of the most recently executed batch.
    pub last_generation: u64,
    /// Admitted queries skipped because their [`Ticket`] was dropped
    /// before execution (cancel-on-drop).
    pub cancelled: u64,
    /// Queries that failed with [`QueryError::DeadlineExceeded`]
    /// (admission-time rejections included).
    pub deadline_missed: u64,
    /// Answers delivered degraded (approximate with a
    /// [`GuaranteedBound`]) under deadline pressure.
    pub degraded: u64,
    /// Queries that failed with [`QueryError::Internal`]: execution
    /// panics contained to the query (or its batch group).
    pub isolated_panics: u64,
    /// Times the supervisor restarted a dead scheduler thread. Stays 0
    /// unless a panic escapes the per-query/per-group isolation (e.g. the
    /// injected scheduler fault).
    pub scheduler_restarts: u64,
}

impl ServingStats {
    /// Mean batch occupancy: queries per executed batch (0 when no batch
    /// ran yet).
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_queries as f64 / self.batches as f64
        }
    }
}

/// Rendezvous slot between a [`Ticket`] and the scheduler.
#[derive(Default)]
struct Slot {
    state: Mutex<Option<CompletedQuery>>,
    ready: Condvar,
    /// Set by [`Ticket::drop`]: the owner walked away, the scheduler may
    /// skip the query.
    cancelled: AtomicBool,
}

/// The client's claim on an admitted query: wait (or poll) for the
/// [`CompletedQuery`].
///
/// **Cancel-on-drop.** Dropping a ticket without consuming its completion
/// cancels the query: the scheduler skips it at batch formation and
/// between batch groups (counted in [`ServingStats::cancelled`]), so an
/// abandoned client never leaks a queue slot or engine time. A query
/// already executing when its ticket drops still runs to completion; its
/// result is discarded.
#[must_use = "dropping a Ticket cancels the query; call wait() (or wait_timeout/try_wait) to receive it"]
pub struct Ticket {
    slot: Arc<Slot>,
    taken: bool,
}

impl Ticket {
    /// Blocks until the query completes. Admitted queries always complete
    /// — shutdown drains the queue before the scheduler exits, and even a
    /// scheduler panic fulfills the abandoned handles with
    /// [`QueryError::Internal`].
    pub fn wait(mut self) -> CompletedQuery {
        let mut state = lock_recover(&self.slot.state);
        loop {
            if let Some(done) = state.take() {
                drop(state);
                self.taken = true;
                return done;
            }
            state = self
                .slot
                .ready
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Bounded wait: the completion if it arrives within `timeout`,
    /// otherwise the ticket itself back (still live — wait again, poll, or
    /// drop it to cancel).
    pub fn wait_timeout(mut self, timeout: Duration) -> Result<CompletedQuery, Ticket> {
        let give_up = Instant::now() + timeout;
        let mut state = lock_recover(&self.slot.state);
        loop {
            if let Some(done) = state.take() {
                drop(state);
                self.taken = true;
                return Ok(done);
            }
            let now = Instant::now();
            if now >= give_up {
                drop(state);
                return Err(self);
            }
            let (guard, _) = self
                .slot
                .ready
                .wait_timeout(state, give_up - now)
                .unwrap_or_else(PoisonError::into_inner);
            state = guard;
        }
    }

    /// Non-blocking poll: the completion if it already happened.
    pub fn try_wait(&self) -> Option<CompletedQuery> {
        lock_recover(&self.slot.state).take()
    }
}

impl Drop for Ticket {
    fn drop(&mut self) {
        if !self.taken {
            self.slot.cancelled.store(true, Ordering::Release);
        }
    }
}

/// The scheduler's side of an admitted query: fulfilling it wakes the
/// owner's [`Ticket`]. Dropping it unfulfilled (the scheduler unwound
/// mid-batch) completes the ticket with [`QueryError::Internal`] — the
/// containment of last resort that keeps clients from blocking forever.
pub struct QueryHandle {
    slot: Arc<Slot>,
    submitted: Instant,
    counters: Arc<ServingCounters>,
    fulfilled: bool,
}

impl QueryHandle {
    fn cancelled(&self) -> bool {
        self.slot.cancelled.load(Ordering::Acquire)
    }

    fn fulfill(mut self, done: CompletedQuery) {
        self.fulfilled = true;
        self.counters.completed.fetch_add(1, Ordering::Relaxed);
        match &done.outcome {
            Ok(_) if done.degraded.is_some() => {
                self.counters.degraded.fetch_add(1, Ordering::Relaxed);
            }
            Err(QueryError::Internal) => {
                self.counters
                    .isolated_panics
                    .fetch_add(1, Ordering::Relaxed);
            }
            Err(QueryError::DeadlineExceeded { .. }) => {
                self.counters
                    .deadline_missed
                    .fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
        *lock_recover(&self.slot.state) = Some(done);
        self.slot.ready.notify_one();
    }

    /// Marks a cancelled query as handled without producing a completion
    /// (its owner dropped the ticket — nobody is waiting).
    fn abandon(mut self) {
        self.fulfilled = true;
        self.counters.cancelled.fetch_add(1, Ordering::Relaxed);
    }
}

impl Drop for QueryHandle {
    fn drop(&mut self) {
        if self.fulfilled {
            return;
        }
        self.counters.completed.fetch_add(1, Ordering::Relaxed);
        self.counters
            .isolated_panics
            .fetch_add(1, Ordering::Relaxed);
        let total = self.submitted.elapsed();
        *lock_recover(&self.slot.state) = Some(CompletedQuery {
            outcome: Err(QueryError::Internal),
            generation: 0,
            batch_size: 0,
            queued: total,
            total,
            degraded: None,
        });
        self.slot.ready.notify_one();
    }
}

struct PendingQuery {
    request: QueryRequest,
    handle: QueryHandle,
}

struct ServiceQueue {
    pending: VecDeque<PendingQuery>,
    closed: bool,
}

/// Counters driving the deterministic [`FaultPlan`] triggers. Owned by the
/// service (not the scheduler thread) so sequences survive supervisor
/// restarts.
#[derive(Default)]
struct FaultSequences {
    queries: AtomicU64,
    shard_execs: AtomicU64,
    batches: AtomicU64,
}

struct ServiceShared {
    queue: Mutex<ServiceQueue>,
    work: Condvar,
    config: ServingConfig,
    fault_sequences: FaultSequences,
}

/// The concurrent serving front end over a [`ShardedEngine`]. See the
/// module docs for the batching, admission, determinism and failure-model
/// contracts.
pub struct QueryService {
    engine: Arc<ShardedEngine>,
    shared: Arc<ServiceShared>,
    scheduler: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl QueryService {
    /// Starts the serving tier over `engine`: spawns the (supervised)
    /// scheduler thread and begins admitting queries immediately.
    ///
    /// # Panics
    /// Panics when the engine holds no regions (every request type needs
    /// the region index) or when `config` has a zero capacity or batch
    /// size.
    pub fn start(engine: Arc<ShardedEngine>, config: ServingConfig) -> QueryService {
        assert!(
            !engine.regions().is_empty(),
            "the serving tier requires an engine with regions loaded"
        );
        assert!(config.queue_capacity > 0, "queue capacity must be positive");
        assert!(config.max_batch > 0, "max batch must be positive");
        let shared = Arc::new(ServiceShared {
            queue: Mutex::new(ServiceQueue {
                pending: VecDeque::new(),
                closed: false,
            }),
            work: Condvar::new(),
            config,
            fault_sequences: FaultSequences::default(),
        });
        let scheduler = {
            let engine = Arc::clone(&engine);
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("dbsa-serving".into())
                .spawn(move || supervise(&engine, &shared))
                .expect("failed to spawn the serving scheduler")
        };
        QueryService {
            engine,
            shared,
            scheduler: Mutex::new(Some(scheduler)),
        }
    }

    /// The engine this service fronts.
    pub fn engine(&self) -> &Arc<ShardedEngine> {
        &self.engine
    }

    /// Submits a query for batched execution. Returns the [`Ticket`] to
    /// wait on, [`QueryError::Overloaded`] when the admission queue is
    /// full, [`QueryError::ServiceStopped`] after shutdown began, or
    /// [`QueryError::DeadlineExceeded`] for a deadline that is already
    /// unmeetable at admission (zero budget).
    pub fn submit(&self, request: QueryRequest) -> Result<Ticket, QueryError> {
        let counters = self.engine.serving_counters();
        if matches!(request.deadline, Some(d) if d.is_zero()) {
            counters.rejected.fetch_add(1, Ordering::Relaxed);
            counters.deadline_missed.fetch_add(1, Ordering::Relaxed);
            return Err(QueryError::DeadlineExceeded {
                queued: Duration::ZERO,
                elapsed: Duration::ZERO,
            });
        }
        let mut queue = lock_recover(&self.shared.queue);
        if queue.closed {
            counters.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(QueryError::ServiceStopped);
        }
        if queue.pending.len() >= self.shared.config.queue_capacity {
            counters.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(QueryError::Overloaded {
                queued: queue.pending.len(),
                capacity: self.shared.config.queue_capacity,
            });
        }
        let slot = Arc::new(Slot::default());
        queue.pending.push_back(PendingQuery {
            request,
            handle: QueryHandle {
                slot: Arc::clone(&slot),
                submitted: Instant::now(),
                counters: Arc::clone(counters),
                fulfilled: false,
            },
        });
        counters.admitted.fetch_add(1, Ordering::Relaxed);
        counters.queued.fetch_add(1, Ordering::Relaxed);
        drop(queue);
        self.shared.work.notify_one();
        Ok(Ticket { slot, taken: false })
    }

    /// Convenience: submit and wait.
    pub fn query(&self, request: QueryRequest) -> Result<CompletedQuery, QueryError> {
        self.submit(request).map(Ticket::wait)
    }

    /// Stops admitting queries, drains everything already admitted and
    /// joins the scheduler. Idempotent; also runs on drop. Returns
    /// [`QueryError::Internal`] if the scheduler thread itself died of a
    /// panic that even the supervisor could not contain — reported as a
    /// value, never re-thrown into the caller.
    pub fn shutdown(&self) -> Result<(), QueryError> {
        {
            let mut queue = lock_recover(&self.shared.queue);
            queue.closed = true;
        }
        self.shared.work.notify_all();
        let handle = lock_recover(&self.scheduler).take();
        match handle {
            Some(handle) => handle.join().map_err(|_| QueryError::Internal),
            None => Ok(()),
        }
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        let _ = self.shutdown();
    }
}

/// Execution-shape key of the EWMA cost model. Distance thresholds are
/// deliberately ignored: the scan cost is dominated by the level, not the
/// threshold, and collapsing them lets estimates warm up fast.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum CostKey {
    AggregateAt(u8),
    AggregateRefined,
    WithinAt(u8),
    WithinRefined,
    Knn,
    KnnExact,
}

impl CostKey {
    fn of(query: &BatchQuery) -> CostKey {
        match query {
            BatchQuery::AggregateAt { level } => CostKey::AggregateAt(*level),
            BatchQuery::AggregateRefined => CostKey::AggregateRefined,
            BatchQuery::WithinAt { level, .. } => CostKey::WithinAt(*level),
            BatchQuery::WithinRefined { .. } => CostKey::WithinRefined,
        }
    }
}

/// EWMA of per-group execution times (milliseconds), keyed by execution
/// shape. Scheduler-thread local; resets when the supervisor restarts the
/// scheduler (a fresh thread re-learns quickly).
#[derive(Default)]
struct CostModel {
    ms: HashMap<CostKey, f64>,
}

const EWMA_ALPHA: f64 = 0.3;

impl CostModel {
    fn observe(&mut self, key: CostKey, sample_ms: f64) {
        match self.ms.get_mut(&key) {
            Some(estimate) => *estimate = EWMA_ALPHA * sample_ms + (1.0 - EWMA_ALPHA) * *estimate,
            None => {
                self.ms.insert(key, sample_ms);
            }
        }
    }

    fn estimate(&self, key: CostKey) -> Option<f64> {
        self.ms.get(&key).copied()
    }
}

/// The finest level whose estimated cost fits the remaining budget,
/// walking finest → coarsest. Unknown estimates count as affordable (run
/// it, learn from it); if nothing fits, level 0 — the cheapest the index
/// has.
fn affordable_level(
    cost: &CostModel,
    finest: u8,
    remaining_ms: f64,
    key_of: impl Fn(u8) -> CostKey,
) -> u8 {
    for level in (0..=finest).rev() {
        match cost.estimate(key_of(level)) {
            None => return level,
            Some(estimate) if estimate <= remaining_ms => return level,
            Some(_) => {}
        }
    }
    0
}

fn ms(duration: Duration) -> f64 {
    duration.as_secs_f64() * 1e3
}

/// The planned execution shape of one prepared query.
enum Shape {
    Join {
        query: BatchQuery,
        plan: QueryPlan,
        distance: bool,
    },
    Knn {
        probe: Point,
        k: usize,
        exact: bool,
    },
}

struct ReadyQuery {
    pending: PendingQuery,
    shape: Shape,
    degraded: Option<GuaranteedBound>,
}

/// The supervisor: keeps a scheduler alive until the service closes. A
/// panic that escapes the scheduler's own isolation (batch bookkeeping, or
/// the injected scheduler fault) lands here; the batch's handles have
/// already fulfilled their tickets with [`QueryError::Internal`] on drop,
/// the poisoned queue lock is recovered on next acquisition, and a fresh
/// scheduler iteration starts — invisible to clients beyond the failed
/// batch.
fn supervise(engine: &Arc<ShardedEngine>, shared: &Arc<ServiceShared>) {
    let counters = Arc::clone(engine.serving_counters());
    loop {
        let mut cost = CostModel::default();
        let run = catch_unwind(AssertUnwindSafe(|| {
            scheduler_loop(engine, shared, &mut cost)
        }));
        match run {
            Ok(()) => break,
            Err(_) => {
                counters.scheduler_restarts.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// The scheduler: drain a batch, execute it over one snapshot, scatter the
/// completions, repeat — exiting only once the service is closed *and* the
/// queue is empty (graceful drain).
fn scheduler_loop(engine: &Arc<ShardedEngine>, shared: &Arc<ServiceShared>, cost: &mut CostModel) {
    let counters = Arc::clone(engine.serving_counters());
    let faults = shared.config.faults;
    loop {
        // Injected batch-formation stall (inert by default).
        if !faults.batch_stall.is_zero() {
            std::thread::sleep(faults.batch_stall);
        }
        let batch: Vec<PendingQuery> = {
            let mut queue = lock_recover(&shared.queue);
            loop {
                if !queue.pending.is_empty() {
                    break;
                }
                if queue.closed {
                    return;
                }
                queue = shared
                    .work
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            let n = queue.pending.len().min(shared.config.max_batch);
            queue.pending.drain(..n).collect()
        };
        let batch_size = batch.len();
        counters
            .queued
            .fetch_sub(batch_size as u64, Ordering::Relaxed);
        counters.batches.fetch_add(1, Ordering::Relaxed);
        counters
            .batched_queries
            .fetch_add(batch_size as u64, Ordering::Relaxed);
        counters
            .max_batch
            .fetch_max(batch_size as u64, Ordering::Relaxed);

        let batch_sequence = shared
            .fault_sequences
            .batches
            .fetch_add(1, Ordering::Relaxed);
        // Deliberately outside the per-query isolation: the drained batch's
        // handles drop (tickets complete with `Internal`) and the
        // supervisor restarts the scheduler.
        assert!(
            !faults.fires(faults.panic_scheduler_one_in, batch_sequence),
            "injected scheduler fault (batch {batch_sequence})"
        );

        // One snapshot per batch: ingest/compact publishes never block this
        // read, and every query of the batch sees the same generation.
        let snapshot = engine.snapshot();
        counters
            .last_generation
            .store(snapshot.generation(), Ordering::Relaxed);
        run_batch(&snapshot, batch, shared, cost);
    }
}

/// Executes one drained batch: prepare every query (deadline check,
/// planning, degradation decision) under per-query unwind isolation, then
/// run the prepared queries group by group — each group under its own
/// unwind boundary, with cancellation and deadline re-checks between
/// groups.
fn run_batch(
    snapshot: &EngineSnapshot,
    batch: Vec<PendingQuery>,
    shared: &ServiceShared,
    cost: &mut CostModel,
) {
    let faults = shared.config.faults;
    let formed = Instant::now();
    let batch_size = batch.len();
    let generation = snapshot.generation();
    let complete = |handle: QueryHandle,
                    outcome: Result<QueryResponse, QueryError>,
                    degraded: Option<GuaranteedBound>| {
        let queued = formed.saturating_duration_since(handle.submitted);
        let total = handle.submitted.elapsed();
        handle.fulfill(CompletedQuery {
            outcome,
            generation,
            batch_size,
            queued,
            total,
            degraded,
        });
    };

    // Phase 1 — per-query preparation, each under its own unwind boundary:
    // a panicking query fails alone with `Internal`.
    let mut ready: Vec<Option<ReadyQuery>> = Vec::with_capacity(batch.len());
    for pending in batch {
        if pending.handle.cancelled() {
            pending.handle.abandon();
            continue;
        }
        let sequence = shared
            .fault_sequences
            .queries
            .fetch_add(1, Ordering::Relaxed);
        let prep = catch_unwind(AssertUnwindSafe(|| {
            assert!(
                !faults.fires(faults.panic_query_one_in, sequence),
                "injected query fault (query {sequence})"
            );
            prepare(snapshot, &pending, formed, shared.config.degrade, cost)
        }));
        match prep {
            Ok(Ok((shape, degraded))) => ready.push(Some(ReadyQuery {
                pending,
                shape,
                degraded,
            })),
            Ok(Err(err)) => complete(pending.handle, Err(err), None),
            Err(_) => complete(pending.handle, Err(QueryError::Internal), None),
        }
    }

    // Phase 2 — batch groups: every AggregateAt query joins one shared
    // unit (they share a single multi-level cursor walk); every other
    // distinct join shape is its own unit; each kNN probe is a unit.
    // Units keep first-appearance order.
    let mut units: Vec<Vec<usize>> = Vec::new();
    let mut agg_unit: Option<usize> = None;
    let mut shape_units: Vec<(BatchQuery, usize)> = Vec::new();
    for (i, slot) in ready.iter().enumerate() {
        let Some(rq) = slot else { continue };
        match &rq.shape {
            Shape::Knn { .. } => units.push(vec![i]),
            Shape::Join { query, .. } => {
                if matches!(query, BatchQuery::AggregateAt { .. }) {
                    let u = *agg_unit.get_or_insert_with(|| {
                        units.push(Vec::new());
                        units.len() - 1
                    });
                    units[u].push(i);
                } else {
                    match shape_units.iter().find(|(shape, _)| shape == query) {
                        Some(&(_, u)) => units[u].push(i),
                        None => {
                            units.push(vec![i]);
                            shape_units.push((*query, units.len() - 1));
                        }
                    }
                }
            }
        }
    }

    // Phase 3 — execute unit by unit, re-checking cancellation and
    // deadlines between batch groups.
    for unit in units {
        let mut live: Vec<ReadyQuery> = Vec::new();
        for i in unit {
            let Some(rq) = ready[i].take() else { continue };
            if rq.pending.handle.cancelled() {
                rq.pending.handle.abandon();
                continue;
            }
            if let Some(deadline) = rq.pending.request.deadline {
                let elapsed = rq.pending.handle.submitted.elapsed();
                if elapsed >= deadline {
                    let queued = formed.saturating_duration_since(rq.pending.handle.submitted);
                    complete(
                        rq.pending.handle,
                        Err(QueryError::DeadlineExceeded { queued, elapsed }),
                        None,
                    );
                    continue;
                }
            }
            live.push(rq);
        }
        if live.is_empty() {
            continue;
        }
        let unit_started = Instant::now();
        match &live[0].shape {
            Shape::Knn { probe, k, exact } => {
                let (probe, k, exact) = (*probe, *k, *exact);
                debug_assert_eq!(live.len(), 1, "knn units are singletons");
                let run = catch_unwind(AssertUnwindSafe(|| {
                    if exact {
                        snapshot.knn_exact(&probe, k)
                    } else {
                        snapshot.knn(&probe, k)
                    }
                }));
                let rq = live.pop().expect("knn unit has its member");
                match run {
                    Ok(outcome) => {
                        cost.observe(
                            if exact {
                                CostKey::KnnExact
                            } else {
                                CostKey::Knn
                            },
                            ms(unit_started.elapsed()),
                        );
                        complete(
                            rq.pending.handle,
                            outcome.map(|neighbors| QueryResponse::Knn { neighbors }),
                            rq.degraded,
                        );
                    }
                    Err(_) => complete(rq.pending.handle, Err(QueryError::Internal), rq.degraded),
                }
            }
            Shape::Join { .. } => {
                let shapes: Vec<BatchQuery> = live
                    .iter()
                    .map(|rq| match &rq.shape {
                        Shape::Join { query, .. } => *query,
                        Shape::Knn { .. } => unreachable!("knn never joins a join unit"),
                    })
                    .collect();
                // The slow-shard fault: a counter-driven delay observed
                // through the execution hook, never changing what is
                // computed.
                let sequences = &shared.fault_sequences;
                let observe = |_shard: usize| {
                    let n = sequences.shard_execs.fetch_add(1, Ordering::Relaxed);
                    if faults.fires(faults.slow_shard_one_in, n) {
                        std::thread::sleep(faults.slow_shard_delay);
                    }
                };
                let hook: Option<&(dyn Fn(usize) + Sync)> = if faults.slow_shard_one_in != 0 {
                    Some(&observe)
                } else {
                    None
                };
                let run = catch_unwind(AssertUnwindSafe(|| {
                    snapshot.execute_query_groups(&shapes, shared.config.threads, hook)
                }));
                match run {
                    Ok(results) => {
                        let elapsed_ms = ms(unit_started.elapsed());
                        let mut seen: Vec<CostKey> = Vec::new();
                        for shape in &shapes {
                            let key = CostKey::of(shape);
                            if !seen.contains(&key) {
                                seen.push(key);
                            }
                        }
                        for key in seen {
                            cost.observe(key, elapsed_ms);
                        }
                        for (rq, result) in live.into_iter().zip(results) {
                            let Shape::Join { plan, distance, .. } = rq.shape else {
                                unreachable!("join unit members are join shapes")
                            };
                            let response = if distance {
                                QueryResponse::WithinDistance { plan, result }
                            } else {
                                QueryResponse::Aggregate { plan, result }
                            };
                            complete(rq.pending.handle, Ok(response), rq.degraded);
                        }
                    }
                    Err(_) => {
                        for rq in live {
                            complete(rq.pending.handle, Err(QueryError::Internal), rq.degraded);
                        }
                    }
                }
            }
        }
    }
}

/// Plans one query: deadline check at batch formation, planner routing,
/// and — for exact requests under pressure — the degradation decision.
fn prepare(
    snapshot: &EngineSnapshot,
    pending: &PendingQuery,
    formed: Instant,
    policy: DegradePolicy,
    cost: &CostModel,
) -> Result<(Shape, Option<GuaranteedBound>), QueryError> {
    if let Some(deadline) = pending.request.deadline {
        let elapsed = pending.handle.submitted.elapsed();
        if elapsed >= deadline {
            let queued = formed.saturating_duration_since(pending.handle.submitted);
            return Err(QueryError::DeadlineExceeded { queued, elapsed });
        }
    }
    let join = snapshot.join_shared();
    let remaining_ms = match (policy, pending.request.deadline) {
        (DegradePolicy::Always, _) | (_, None) => f64::INFINITY,
        (_, Some(deadline)) => ms(deadline.saturating_sub(pending.handle.submitted.elapsed())),
    };
    let degrade_now = |exact_key: CostKey| match policy {
        DegradePolicy::Never => false,
        DegradePolicy::Always => true,
        DegradePolicy::Deadline => {
            pending.request.deadline.is_some()
                && cost
                    .estimate(exact_key)
                    .is_some_and(|estimate| estimate > remaining_ms)
        }
    };
    let marker = |plan: &QueryPlan| GuaranteedBound {
        epsilon: plan.guaranteed_bound,
        level: plan.level,
    };
    match pending.request.kind {
        QueryKind::Aggregate(spec) => {
            let plan = join.plan(&spec);
            if plan.exact_refinement && degrade_now(CostKey::AggregateRefined) {
                let level = affordable_level(
                    cost,
                    join.finest_level(),
                    remaining_ms,
                    CostKey::AggregateAt,
                );
                let plan = join.planner().plan_at_level(level);
                return Ok((
                    Shape::Join {
                        query: BatchQuery::aggregate(&plan),
                        plan,
                        distance: false,
                    },
                    Some(marker(&plan)),
                ));
            }
            Ok((
                Shape::Join {
                    query: BatchQuery::aggregate(&plan),
                    plan,
                    distance: false,
                },
                None,
            ))
        }
        QueryKind::WithinDistance(spec) => {
            let plan = join.distance().plan(&spec);
            if plan.exact_refinement && degrade_now(CostKey::WithinRefined) {
                let level =
                    affordable_level(cost, join.finest_level(), remaining_ms, CostKey::WithinAt);
                let plan = join.planner().plan_distance_at_level(level);
                return Ok((
                    Shape::Join {
                        query: BatchQuery::within_distance(&plan, spec.distance()),
                        plan,
                        distance: true,
                    },
                    Some(marker(&plan)),
                ));
            }
            Ok((
                Shape::Join {
                    query: BatchQuery::within_distance(&plan, spec.distance()),
                    plan,
                    distance: true,
                },
                None,
            ))
        }
        QueryKind::Knn { probe, k } => Ok((
            Shape::Knn {
                probe,
                k,
                exact: false,
            },
            None,
        )),
        QueryKind::KnnExact { probe, k } => {
            if degrade_now(CostKey::KnnExact) {
                // The approximate kNN's neighbor intervals are governed by
                // the distance annotations' slack at the finest level.
                let plan = join.planner().plan_distance_at_level(join.finest_level());
                return Ok((
                    Shape::Knn {
                        probe,
                        k,
                        exact: false,
                    },
                    Some(marker(&plan)),
                ));
            }
            Ok((
                Shape::Knn {
                    probe,
                    k,
                    exact: true,
                },
                None,
            ))
        }
    }
}

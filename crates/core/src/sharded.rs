//! The sharded, concurrently-servable engine.
//!
//! [`crate::ApproximateEngine`] is a build-once, single-table facade. This
//! module turns the same query classes into a serving architecture:
//!
//! * **Z-order range partitioning** — the point table is split into
//!   [`EngineShard`]s along weighted Morton key ranges
//!   (`dbsa_grid::partition_sorted_keys`), so each shard owns a contiguous,
//!   spatially coherent slice of the key domain and balanced point counts
//!   even under heavy skew.
//! * **Frozen per-shard query state** — every shard stores its rows sorted
//!   by leaf key ([`LinearizedPointTable`] plus the aligned value column),
//!   which *is* the probe schedule of the batched join: queries walk it
//!   with a prefix-sharing cursor, with no per-query leaf-id computation,
//!   no sort and no match scatter.
//! * **Snapshot-based concurrent serving** — all query state is immutable
//!   and shared through [`Arc`]s. Readers grab an [`EngineSnapshot`] (one
//!   `RwLock`-guarded `Arc` clone) and run any number of queries without
//!   further coordination; writers publish whole new snapshots.
//! * **Incremental ingest** — [`ShardedEngine::append_points`] lands new
//!   rows in a *delta shard* (rebuilt per batch, immediately visible in the
//!   next snapshot); [`ShardedEngine::compact`] re-partitions base + delta
//!   into fresh balanced shards. Concurrent compactions are skipped, not
//!   queued (`Mutex::try_lock`).
//! * **Shard pruning** — a shard is skipped when its key span cannot
//!   intersect the query: the region trie's covered key range for the
//!   aggregation join (the *chosen level's* range for planned coarse-bound
//!   queries), the query raster's leaf-key ranges for ad-hoc containment.
//!   Both tests are single interval intersections, courtesy of the Z-order
//!   descendant-range property.
//! * **Per-query accuracy** — every snapshot serves
//!   [`EngineSnapshot::aggregate_by_region_spec`]: the request carries a
//!   [`QuerySpec`] (a distance bound, or exactness), the planner maps it
//!   onto a truncation level of the shared level-stacked frozen trie, and
//!   exact requests refine boundary-cell matches per shard — one index
//!   build, any bound, exact on demand, without rebuilding or re-sharding
//!   anything.

use crate::engine::{EngineStats, ShardStats};
use crate::serving::{
    QueryKind, QueryRequest, QueryResponse, QueryService, ServingConfig, ServingCounters,
};
use dbsa_geom::{BoundingBox, MultiPolygon, Point, Polygon};
use dbsa_grid::{partition_sorted_keys, split_at_ranges, GridExtent, KeyRange};
use dbsa_query::{
    ApproximateCellJoin, BatchQuery, DistanceSpec, JoinResult, KnnNeighbor, LinearizedPointTable,
    PointIndexVariant, QueryError, QueryPlan, QuerySpec, RegionAggregate, ResultRange, ShardProbe,
};
use dbsa_raster::{BoundaryPolicy, DistanceBound, HierarchicalRaster, Rasterizable};
use parking_lot::{Mutex, RwLock};
use std::sync::Arc;

/// One shard of the sharded engine: the rows whose Morton leaf keys fall
/// into a contiguous [`KeyRange`], stored sorted by key, with the
/// linearized point table built over exactly those rows.
///
/// Immutable after construction — shards are shared across snapshots via
/// `Arc` and never mutated in place.
pub struct EngineShard {
    pub(crate) key_range: KeyRange,
    /// The shard's points, sorted by leaf key (aligned with the table's
    /// key and value columns through one shared sort).
    pub(crate) points: Vec<Point>,
    pub(crate) table: LinearizedPointTable,
}

impl EngineShard {
    /// Builds a shard from pre-sorted, aligned columns (one sort upstream
    /// keeps keys, points and values consistently paired).
    fn from_sorted_columns(
        key_range: KeyRange,
        keys: Vec<u64>,
        points: Vec<Point>,
        values: Vec<f64>,
        extent: &GridExtent,
        spline_radix_bits: u32,
        spline_error: usize,
    ) -> Self {
        debug_assert_eq!(keys.len(), points.len());
        debug_assert!(keys.iter().all(|k| key_range.contains(*k)));
        let table = LinearizedPointTable::from_sorted_rows(
            keys,
            values,
            extent,
            spline_radix_bits,
            spline_error,
        );
        EngineShard {
            key_range,
            points,
            table,
        }
    }

    /// The contiguous key range this shard is responsible for.
    pub fn key_range(&self) -> KeyRange {
        self.key_range
    }

    /// Number of points stored in the shard.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the shard holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The shard's points in key order.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// The shard's attribute values in key order.
    pub fn values(&self) -> &[f64] {
        self.table.values_in_key_order()
    }

    /// The shard's linearized point table (frozen query state).
    pub fn table(&self) -> &LinearizedPointTable {
        &self.table
    }

    /// The shard's probe schedule for the aggregation join. Carries the
    /// key-aligned point column so exact-refinement queries can run
    /// point-in-polygon tests without re-sorting anything.
    fn probe(&self) -> ShardProbe<'_> {
        ShardProbe::with_points(
            self.table.keys(),
            &self.points,
            self.table.values_in_key_order(),
        )
    }

    /// Whether any of the query raster's cells can contain one of this
    /// shard's keys — the pruning test for ad-hoc containment queries.
    fn intersects_any_cell(&self, raster: &HierarchicalRaster) -> bool {
        let Some((lo, hi)) = self.table.key_range() else {
            return false;
        };
        let span = KeyRange::new(lo, hi);
        raster.cells().iter().any(|c| span.intersects_cell(c.id))
    }

    fn stats(&self, delta: bool) -> ShardStats {
        ShardStats {
            points: self.points.len(),
            point_index_bytes: self
                .table
                .index_memory_bytes(PointIndexVariant::RadixSpline),
            key_range: self.key_range,
            delta,
        }
    }
}

/// One shard's columns as produced by [`partition_rows`]: the assigned key
/// range plus the key-sorted, aligned key/point/value columns.
type ShardColumns = (KeyRange, Vec<u64>, Vec<Point>, Vec<f64>);

/// Sorts the rows by leaf key once and splits them into per-shard columns
/// along weighted Morton key ranges. Ties (equal keys) break by original
/// row index, so the layout is fully deterministic.
fn partition_rows(
    points: &[Point],
    values: &[f64],
    extent: &GridExtent,
    target_shards: usize,
) -> Vec<ShardColumns> {
    assert_eq!(points.len(), values.len(), "one value per point required");
    let mut order: Vec<(u64, u32)> = points
        .iter()
        .enumerate()
        .map(|(i, p)| (extent.leaf_cell_id(p).raw(), i as u32))
        .collect();
    order.sort_unstable();
    let sorted_keys: Vec<u64> = order.iter().map(|(k, _)| *k).collect();
    let ranges = partition_sorted_keys(&sorted_keys, target_shards);
    let bounds = split_at_ranges(&sorted_keys, &ranges);

    ranges
        .into_iter()
        .zip(bounds)
        .map(|(range, (from, to))| {
            let keys = sorted_keys[from..to].to_vec();
            let pts: Vec<Point> = order[from..to]
                .iter()
                .map(|&(_, i)| points[i as usize])
                .collect();
            let vals: Vec<f64> = order[from..to]
                .iter()
                .map(|&(_, i)| values[i as usize])
                .collect();
            (range, keys, pts, vals)
        })
        .collect()
}

/// An immutable, internally consistent view of the sharded engine: base
/// shards, the current delta shard, and the shared region index. Cheap to
/// clone (`Arc`s all the way down); queries need no lock once they hold
/// one, so any number of clients can serve reads concurrently with ingest.
pub struct EngineSnapshot {
    pub(crate) bound: DistanceBound,
    pub(crate) extent: GridExtent,
    pub(crate) regions: Arc<Vec<MultiPolygon>>,
    pub(crate) join: Option<Arc<ApproximateCellJoin>>,
    pub(crate) shards: Vec<Arc<EngineShard>>,
    pub(crate) delta: Option<Arc<EngineShard>>,
    pub(crate) generation: u64,
}

impl EngineSnapshot {
    /// The distance bound every answer honours.
    pub fn bound(&self) -> DistanceBound {
        self.bound
    }

    /// The grid extent shared by all shards.
    pub fn extent(&self) -> &GridExtent {
        &self.extent
    }

    /// The loaded regions.
    pub fn regions(&self) -> &[MultiPolygon] {
        &self.regions
    }

    /// Monotonically increasing snapshot version (bumped by every publish:
    /// each `append_points` batch and each `compact`).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of base shards (excluding the delta shard).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The base shards, ascending by key range.
    pub fn shards(&self) -> &[Arc<EngineShard>] {
        &self.shards
    }

    /// The uncompacted ingest shard, if any points are pending.
    pub fn delta_shard(&self) -> Option<&Arc<EngineShard>> {
        self.delta.as_ref()
    }

    /// Total number of points visible in this snapshot (base + delta).
    pub fn point_count(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum::<usize>()
            + self.delta.as_ref().map(|d| d.len()).unwrap_or(0)
    }

    /// All shards in merge order: base shards ascending, delta last.
    fn all_shards(&self) -> impl Iterator<Item = &Arc<EngineShard>> {
        self.shards.iter().chain(self.delta.iter())
    }

    fn join(&self) -> &Arc<ApproximateCellJoin> {
        self.join.as_ref().expect("no regions loaded")
    }

    /// The shared region join, for the serving tier's planner access.
    ///
    /// # Panics
    /// Panics if no regions were loaded.
    pub(crate) fn join_shared(&self) -> &Arc<ApproximateCellJoin> {
        self.join()
    }

    /// Executes a pre-planned batch of join shapes over all shards — the
    /// serving tier's batch-group entry point. `hook` (when present)
    /// observes every per-shard execution; it is the fault-injection
    /// seam for the deterministic slow-shard delay and never changes what
    /// is computed.
    ///
    /// # Panics
    /// Panics if no regions were loaded.
    pub(crate) fn execute_query_groups(
        &self,
        shapes: &[BatchQuery],
        threads: usize,
        hook: Option<&(dyn Fn(usize) + Sync)>,
    ) -> Vec<JoinResult> {
        let join = self.join();
        let probes: Vec<ShardProbe<'_>> = self.all_shards().map(|s| s.probe()).collect();
        join.execute_shards_multi_hooked(shapes, &probes, &self.regions, threads, hook)
    }

    /// `SELECT AGG(a) … GROUP BY region` over all shards, sequentially.
    ///
    /// # Panics
    /// Panics if no regions were loaded.
    pub fn aggregate_by_region(&self) -> JoinResult {
        self.aggregate_by_region_parallel(1)
    }

    /// Shard-parallel variant of
    /// [`aggregate_by_region`](Self::aggregate_by_region) with up to
    /// `threads` workers.
    ///
    /// Shard partials merge in shard order (delta last), so for a fixed
    /// snapshot the result is bit-for-bit reproducible regardless of
    /// `threads`; across different shard counts, counts and unmatched
    /// totals are identical and f64 sums agree up to rounding. Shards
    /// whose key span misses the region trie's covered key range are
    /// pruned without probing.
    ///
    /// # Panics
    /// Panics if no regions were loaded.
    pub fn aggregate_by_region_parallel(&self, threads: usize) -> JoinResult {
        let join = self.join();
        let probes: Vec<ShardProbe<'_>> = self.all_shards().map(|s| s.probe()).collect();
        join.execute_shards(&probes, threads)
    }

    /// Plans a [`QuerySpec`] against the shared region index without
    /// executing it.
    ///
    /// # Panics
    /// Panics if no regions were loaded.
    pub fn plan_query(&self, spec: &QuerySpec) -> QueryPlan {
        self.join().plan(spec)
    }

    /// [`aggregate_by_region_parallel`](Self::aggregate_by_region_parallel)
    /// with a **per-query accuracy spec**: one snapshot of one frozen index
    /// serves any bound at or above the build bound, or the exact answer,
    /// per request. Shard pruning intersects each shard's key span against
    /// the **chosen level's** covered key range — a coarser level's
    /// truncated covering is wider, so fewer shards prune, exactly as the
    /// coarser approximation demands. Exact specs refine boundary-cell
    /// matches per shard (interior matches are accepted from the frozen
    /// probe schedule wholesale).
    ///
    /// Determinism follows the sharded policy: for a fixed snapshot and
    /// spec the result is bit-for-bit reproducible regardless of
    /// `threads`; exact-spec counts, min/max and unmatched equal
    /// `RTreeExactJoin` over the snapshot's rows for any shard count, f64
    /// sums bit-for-bit for one shard and up to summation-order rounding
    /// otherwise.
    ///
    /// # Panics
    /// Panics if no regions were loaded.
    pub fn aggregate_by_region_spec(
        &self,
        spec: &QuerySpec,
        threads: usize,
    ) -> (QueryPlan, JoinResult) {
        let join = self.join();
        let probes: Vec<ShardProbe<'_>> = self.all_shards().map(|s| s.probe()).collect();
        join.execute_shards_spec(spec, &probes, &self.regions, threads)
    }

    /// The `WITHIN_DISTANCE(d)` semi-join over every shard (base shards
    /// ascending, delta last), served from the shared distance-annotated
    /// region index. **Per-shard distance pruning:** a shard whose
    /// Z-order key span provably lies farther than `d` from the index's
    /// covered key range (compared through the spans' common-ancestor
    /// cell boxes) contributes an all-unmatched partial without touching
    /// a single point.
    ///
    /// Determinism follows the sharded policy: partials merge in shard
    /// index order, so for a fixed snapshot and spec the result is
    /// bit-for-bit reproducible regardless of `threads`; exact-spec
    /// matched/unmatched sets equal the brute-force baseline for any
    /// shard count, f64 sums to summation-order rounding.
    ///
    /// # Panics
    /// Panics if no regions were loaded.
    pub fn within_distance(&self, spec: &DistanceSpec, threads: usize) -> (QueryPlan, JoinResult) {
        let join = self.join();
        let probes: Vec<ShardProbe<'_>> = self.all_shards().map(|s| s.probe()).collect();
        join.distance()
            .execute_shards_spec(spec, &probes, &self.regions, threads)
    }

    /// The `k` nearest regions to a probe point with guaranteed distance
    /// intervals, from the shared frozen region index (shards hold points,
    /// not regions — the probe point arrives with the request).
    ///
    /// # Panics
    /// Panics if no regions were loaded.
    pub fn knn(&self, p: &Point, k: usize) -> Result<Vec<KnnNeighbor>, QueryError> {
        let join = self.join();
        join.distance().knn(p, k, join.finest_level())
    }

    /// The exact `k` nearest regions (frontier-refined, counted exact
    /// distance tests).
    ///
    /// # Panics
    /// Panics if no regions were loaded.
    pub fn knn_exact(&self, p: &Point, k: usize) -> Result<Vec<KnnNeighbor>, QueryError> {
        self.join()
            .distance()
            .knn_refined(p, k, &self.regions)
            .map(|(neighbors, _)| neighbors)
    }

    /// Executes a batch of client queries over this one snapshot, sharing
    /// work *across* queries: all batchable requests (bounded and exact
    /// aggregates, within-distance semi-joins) are grouped through
    /// [`dbsa_query::multi::BatchQuery`] and routed through **one**
    /// [`execute_shards_multi`](ApproximateCellJoin::execute_shards_multi)
    /// pass — identical queries execute once, bounded aggregates at
    /// different truncation levels share a single multi-level cursor walk
    /// over each shard's probe schedule. kNN requests (point-probe, not
    /// per-shard scans) are answered inline.
    ///
    /// **Determinism guarantee:** response `i` is bit-for-bit identical to
    /// executing `requests[i]` alone against this snapshot, for any batch
    /// composition and any `threads` — batching is pure scheduling (see
    /// [`dbsa_query::multi`]).
    ///
    /// # Panics
    /// Panics if no regions were loaded.
    pub fn execute_batch(
        &self,
        requests: &[QueryRequest],
        threads: usize,
    ) -> Vec<Result<QueryResponse, QueryError>> {
        let join = self.join();
        // Plan every batchable request; remember which output slot each
        // batched query owns.
        let mut batched: Vec<BatchQuery> = Vec::new();
        let mut owners: Vec<(usize, QueryPlan, bool)> = Vec::new();
        let mut responses: Vec<Option<Result<QueryResponse, QueryError>>> =
            Vec::with_capacity(requests.len());
        for (idx, request) in requests.iter().enumerate() {
            match &request.kind {
                QueryKind::Aggregate(spec) => {
                    let plan = join.plan(spec);
                    batched.push(BatchQuery::aggregate(&plan));
                    owners.push((idx, plan, false));
                    responses.push(None);
                }
                QueryKind::WithinDistance(spec) => {
                    let plan = join.distance().plan(spec);
                    batched.push(BatchQuery::within_distance(&plan, spec.distance()));
                    owners.push((idx, plan, true));
                    responses.push(None);
                }
                QueryKind::Knn { probe, k } => {
                    let outcome = join
                        .distance()
                        .knn(probe, *k, join.finest_level())
                        .map(|neighbors| QueryResponse::Knn { neighbors });
                    responses.push(Some(outcome));
                }
                QueryKind::KnnExact { probe, k } => {
                    let outcome = join
                        .distance()
                        .knn_refined(probe, *k, &self.regions)
                        .map(|(neighbors, _)| QueryResponse::Knn { neighbors });
                    responses.push(Some(outcome));
                }
            }
        }
        if !batched.is_empty() {
            let probes: Vec<ShardProbe<'_>> = self.all_shards().map(|s| s.probe()).collect();
            let results = join.execute_shards_multi(&batched, &probes, &self.regions, threads);
            for ((idx, plan, is_distance), result) in owners.into_iter().zip(results) {
                responses[idx] = Some(Ok(if is_distance {
                    QueryResponse::WithinDistance { plan, result }
                } else {
                    QueryResponse::Aggregate { plan, result }
                }));
            }
        }
        responses
            .into_iter()
            .map(|r| r.expect("every request slot fulfilled"))
            .collect()
    }

    /// Ad-hoc containment aggregate over an arbitrary rasterizable region,
    /// approximated with at most `cell_budget` hierarchical cells. The
    /// region is rasterized once; shards whose key span intersects none of
    /// the raster's leaf-key ranges are pruned. Returns the aggregate and
    /// the number of cells used.
    pub fn aggregate_in_region<G: Rasterizable>(
        &self,
        region: &G,
        cell_budget: usize,
    ) -> (RegionAggregate, usize) {
        let raster = HierarchicalRaster::with_cell_budget(
            region,
            &self.extent,
            cell_budget,
            BoundaryPolicy::Conservative,
        );
        let mut agg = RegionAggregate::default();
        for shard in self.all_shards() {
            if shard.intersects_any_cell(&raster) {
                let partial = shard
                    .table
                    .aggregate_cells(raster.cells(), PointIndexVariant::RadixSpline);
                agg.merge(&partial);
            }
        }
        (agg, raster.cell_count())
    }

    /// [`aggregate_in_region`](Self::aggregate_in_region) for plain
    /// polygons (the Figure 4 query).
    pub fn aggregate_in_polygon(
        &self,
        polygon: &Polygon,
        cell_budget: usize,
    ) -> (RegionAggregate, usize) {
        self.aggregate_in_region(polygon, cell_budget)
    }

    /// Guaranteed result ranges (Section 6) for the per-region counts,
    /// evaluated through the planner path at the build-time bound (the
    /// pruned, sharded join at the finest level).
    ///
    /// # Panics
    /// Panics if no regions were loaded.
    pub fn count_ranges(&self) -> Vec<ResultRange> {
        self.count_ranges_spec(&QuerySpec::within(self.bound), 1).1
    }

    /// [`count_ranges`](Self::count_ranges) under a per-query accuracy
    /// spec: looser bounds serve from coarser truncation levels and yield
    /// wider ranges; [`QuerySpec::exact`] degenerates every range to its
    /// exact count.
    ///
    /// Range semantics follow the join's attribution policy: a point
    /// within the *served* bound of a boundary shared by two regions may
    /// be attributed to either side (at coarse levels, to the truncated
    /// covering's first region), so per-region ranges are guaranteed
    /// relative to that ε-admissible attribution — strict per-region
    /// coverage of the exact count holds when regions are separated by
    /// more than the served bound, and the *summed* range always covers
    /// the total exact count (interior matches are true positives; the
    /// conservative covering can only over-match).
    ///
    /// # Panics
    /// Panics if no regions were loaded.
    pub fn count_ranges_spec(
        &self,
        spec: &QuerySpec,
        threads: usize,
    ) -> (QueryPlan, Vec<ResultRange>) {
        let (plan, result) = self.aggregate_by_region_spec(spec, threads);
        let ranges = result
            .regions
            .iter()
            .map(ResultRange::count_range)
            .collect();
        (plan, ranges)
    }

    /// All rows visible in this snapshot, in merge order (shard by shard,
    /// key order within each shard). Compaction and exact validation both
    /// read this.
    pub fn all_rows(&self) -> (Vec<Point>, Vec<f64>) {
        let n = self.point_count();
        let mut points = Vec::with_capacity(n);
        let mut values = Vec::with_capacity(n);
        for shard in self.all_shards() {
            points.extend_from_slice(shard.points());
            values.extend_from_slice(shard.values());
        }
        (points, values)
    }

    /// Structural statistics with the per-shard breakdown (delta last).
    pub fn stats(&self) -> EngineStats {
        let per_shard: Vec<ShardStats> = self
            .shards
            .iter()
            .map(|s| s.stats(false))
            .chain(self.delta.iter().map(|d| d.stats(true)))
            .collect();
        EngineStats {
            points: self.point_count(),
            regions: self.regions.len(),
            epsilon: self.bound.epsilon(),
            region_raster_cells: self
                .join
                .as_ref()
                .map(|j| j.raster_cell_count())
                .unwrap_or(0),
            region_trie_nodes: self
                .join
                .as_ref()
                .map(|j| j.trie_stats().nodes)
                .unwrap_or(0),
            region_index_bytes: self.join.as_ref().map(|j| j.memory_bytes()).unwrap_or(0),
            point_index_bytes: per_shard.iter().map(|s| s.point_index_bytes).sum(),
            per_shard,
            serving: crate::serving::ServingStats::default(),
        }
    }
}

/// Rows appended since the last compaction (the authoritative delta; the
/// snapshot's delta *shard* is rebuilt from it on every append).
#[derive(Default)]
pub(crate) struct DeltaBuffer {
    pub(crate) points: Vec<Point>,
    pub(crate) values: Vec<f64>,
}

/// Builder for [`ShardedEngine`].
#[derive(Debug, Default)]
pub struct ShardedEngineBuilder {
    bound: Option<DistanceBound>,
    extent: Option<BoundingBox>,
    points: Vec<Point>,
    values: Vec<f64>,
    regions: Vec<MultiPolygon>,
    spline_radix_bits: u32,
    spline_error: usize,
    shards: Option<usize>,
}

impl ShardedEngineBuilder {
    /// Creates a builder with the paper's default index parameters.
    pub fn new() -> Self {
        ShardedEngineBuilder {
            spline_radix_bits: 25,
            spline_error: 32,
            ..Default::default()
        }
    }

    /// Sets the distance bound ε (required).
    pub fn distance_bound(mut self, bound: DistanceBound) -> Self {
        self.bound = Some(bound);
        self
    }

    /// Sets the world extent (optional: inferred from the data otherwise).
    pub fn extent(mut self, extent: BoundingBox) -> Self {
        self.extent = Some(extent);
        self
    }

    /// Loads the point table with one aggregate attribute per point.
    pub fn points(mut self, points: Vec<Point>, values: Vec<f64>) -> Self {
        assert_eq!(points.len(), values.len(), "one value per point required");
        self.points = points;
        self.values = values;
        self
    }

    /// Loads the regions used for `GROUP BY region` aggregation.
    pub fn regions(mut self, regions: Vec<MultiPolygon>) -> Self {
        self.regions = regions;
        self
    }

    /// Overrides the RadixSpline parameters.
    pub fn spline_parameters(mut self, radix_bits: u32, spline_error: usize) -> Self {
        self.spline_radix_bits = radix_bits;
        self.spline_error = spline_error;
        self
    }

    /// Sets the target shard count (default: available parallelism).
    ///
    /// The effective count can be lower when the data has fewer distinct
    /// keys than shards; it is fixed until the next
    /// [`compact`](ShardedEngine::compact).
    pub fn shards(mut self, shards: usize) -> Self {
        assert!(shards > 0, "at least one shard is required");
        self.shards = Some(shards);
        self
    }

    /// Builds the engine: partitions and linearizes the points, rasterizes
    /// and indexes the regions, publishes the first snapshot.
    ///
    /// # Panics
    /// Panics if no distance bound was provided, or if neither an extent
    /// nor any data to infer it from is available.
    pub fn build(self) -> ShardedEngine {
        let bound = self.bound.expect("a distance bound is required");
        let extent_bbox = self.extent.unwrap_or_else(|| {
            let mut bbox = BoundingBox::from_points(self.points.iter());
            for r in &self.regions {
                bbox.expand_to_box(&r.bbox());
            }
            assert!(
                !bbox.is_empty(),
                "provide an extent or at least some points/regions to infer it"
            );
            bbox.inflated(bound.epsilon())
        });
        let extent = GridExtent::covering(&extent_bbox);
        let target_shards = self
            .shards
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
        let regions = Arc::new(self.regions);
        let join = (!regions.is_empty())
            .then(|| Arc::new(ApproximateCellJoin::build(&regions, &extent, bound)));

        let shards: Vec<Arc<EngineShard>> =
            partition_rows(&self.points, &self.values, &extent, target_shards)
                .into_iter()
                .map(|(range, keys, pts, vals)| {
                    Arc::new(EngineShard::from_sorted_columns(
                        range,
                        keys,
                        pts,
                        vals,
                        &extent,
                        self.spline_radix_bits,
                        self.spline_error,
                    ))
                })
                .collect();

        let snapshot = EngineSnapshot {
            bound,
            extent,
            regions: Arc::clone(&regions),
            join,
            shards,
            delta: None,
            generation: 0,
        };
        ShardedEngine {
            bound,
            extent,
            regions,
            spline_radix_bits: self.spline_radix_bits,
            spline_error: self.spline_error,
            target_shards,
            snapshot: RwLock::new(Arc::new(snapshot)),
            delta: RwLock::new(DeltaBuffer::default()),
            compaction: Mutex::new(()),
            serving: Arc::new(ServingCounters::default()),
        }
    }
}

/// The sharded engine: a router over Z-order range-partitioned
/// [`EngineShard`]s with snapshot-based concurrent reads and incremental
/// ingest. See the module docs for the architecture.
pub struct ShardedEngine {
    pub(crate) bound: DistanceBound,
    pub(crate) extent: GridExtent,
    pub(crate) regions: Arc<Vec<MultiPolygon>>,
    pub(crate) spline_radix_bits: u32,
    pub(crate) spline_error: usize,
    pub(crate) target_shards: usize,
    /// The currently published snapshot. Readers hold the read lock only
    /// long enough to clone the `Arc`; publishes swap the `Arc` under the
    /// write lock. Lock order: `delta` before `snapshot`.
    pub(crate) snapshot: RwLock<Arc<EngineSnapshot>>,
    /// Rows appended since the last compaction.
    pub(crate) delta: RwLock<DeltaBuffer>,
    /// Held for the duration of a compaction so concurrent `compact`
    /// calls skip instead of queueing.
    pub(crate) compaction: Mutex<()>,
    /// Monotonic serving-tier counters, updated by every [`QueryService`]
    /// fronting this engine and reported through [`stats`](Self::stats).
    /// Shared (`Arc`) so in-flight query handles can record their outcome
    /// even while a scheduler thread is unwinding from a panic.
    pub(crate) serving: Arc<ServingCounters>,
}

impl ShardedEngine {
    /// Starts building a sharded engine.
    pub fn builder() -> ShardedEngineBuilder {
        ShardedEngineBuilder::new()
    }

    /// The distance bound every answer honours.
    pub fn bound(&self) -> DistanceBound {
        self.bound
    }

    /// The grid extent used for linearization and rasterization.
    pub fn extent(&self) -> &GridExtent {
        &self.extent
    }

    /// The loaded regions.
    pub fn regions(&self) -> &[MultiPolygon] {
        &self.regions
    }

    /// The target shard count compaction re-partitions to.
    pub fn target_shards(&self) -> usize {
        self.target_shards
    }

    /// The currently published snapshot. The returned `Arc` stays valid
    /// (and internally consistent) for as long as the caller holds it, no
    /// matter how many appends or compactions happen meanwhile.
    pub fn snapshot(&self) -> Arc<EngineSnapshot> {
        Arc::clone(&self.snapshot.read())
    }

    /// Number of rows appended since the last compaction.
    pub fn pending_points(&self) -> usize {
        self.delta.read().points.len()
    }

    /// Appends a batch of rows. The rows land in the delta shard, which is
    /// rebuilt from all pending rows (O(d log d) for d pending) and
    /// published in a fresh snapshot — visible to every subsequent
    /// [`snapshot`](Self::snapshot) call, while snapshots already handed
    /// out are untouched. Call [`compact`](Self::compact) periodically to
    /// fold the delta into the balanced base shards.
    pub fn append_points(&self, points: Vec<Point>, values: Vec<f64>) {
        assert_eq!(points.len(), values.len(), "one value per point required");
        if points.is_empty() {
            return;
        }
        let mut delta = self.delta.write();
        delta.points.extend_from_slice(&points);
        delta.values.extend_from_slice(&values);
        // One delta shard over the full key domain; per-append rebuild
        // keeps it sorted (its own frozen probe schedule).
        let mut columns = partition_rows(&delta.points, &delta.values, &self.extent, 1);
        let (range, keys, pts, vals) = columns.pop().expect("single delta partition");
        debug_assert!(columns.is_empty());
        let delta_shard = Arc::new(EngineShard::from_sorted_columns(
            range,
            keys,
            pts,
            vals,
            &self.extent,
            self.spline_radix_bits,
            self.spline_error,
        ));
        self.publish(|current| EngineSnapshot {
            bound: current.bound,
            extent: current.extent,
            regions: Arc::clone(&current.regions),
            join: current.join.clone(),
            shards: current.shards.clone(),
            delta: Some(delta_shard),
            generation: current.generation + 1,
        });
    }

    /// Folds the delta into the base: re-partitions all rows into
    /// `target_shards` fresh, balanced shards and publishes a snapshot
    /// with an empty delta. Returns `false` (without blocking or doing
    /// work) when another compaction is already running.
    pub fn compact(&self) -> bool {
        // Skip — don't queue — when a compaction is in flight.
        let Some(_running) = self.compaction.try_lock() else {
            return false;
        };
        let mut delta = self.delta.write();
        let (points, values) = self.snapshot().all_rows();
        let shards: Vec<Arc<EngineShard>> =
            partition_rows(&points, &values, &self.extent, self.target_shards)
                .into_iter()
                .map(|(range, keys, pts, vals)| {
                    Arc::new(EngineShard::from_sorted_columns(
                        range,
                        keys,
                        pts,
                        vals,
                        &self.extent,
                        self.spline_radix_bits,
                        self.spline_error,
                    ))
                })
                .collect();
        delta.points.clear();
        delta.values.clear();
        self.publish(|current| EngineSnapshot {
            bound: current.bound,
            extent: current.extent,
            regions: Arc::clone(&current.regions),
            join: current.join.clone(),
            shards,
            delta: None,
            generation: current.generation + 1,
        });
        true
    }

    /// Swaps in a new snapshot derived from the current one. Callers hold
    /// the `delta` write lock, which serializes all publishes.
    fn publish<F: FnOnce(&EngineSnapshot) -> EngineSnapshot>(&self, make: F) {
        let mut slot = self.snapshot.write();
        *slot = Arc::new(make(&slot));
    }

    /// Starts a [`QueryService`] serving tier over this engine: concurrent
    /// clients submit queries, the scheduler batches them across queries
    /// and executes each batch over one published snapshot. Several
    /// services may front the same engine; they share its serving
    /// counters.
    ///
    /// # Panics
    /// Panics when the engine holds no regions.
    pub fn serve(self: &Arc<Self>, config: ServingConfig) -> QueryService {
        QueryService::start(Arc::clone(self), config)
    }

    /// The engine-lifetime serving counters (shared by every
    /// [`QueryService`] fronting this engine).
    pub(crate) fn serving_counters(&self) -> &Arc<ServingCounters> {
        &self.serving
    }

    /// Structural statistics of the current snapshot, including the
    /// per-shard breakdown, overlaid with the engine-lifetime serving
    /// counters.
    pub fn stats(&self) -> EngineStats {
        let mut stats = self.snapshot().stats();
        stats.serving = self.serving.stats();
        stats
    }

    /// [`EngineSnapshot::aggregate_by_region`] on the current snapshot.
    pub fn aggregate_by_region(&self) -> JoinResult {
        self.snapshot().aggregate_by_region()
    }

    /// [`EngineSnapshot::aggregate_by_region_parallel`] on the current
    /// snapshot.
    pub fn aggregate_by_region_parallel(&self, threads: usize) -> JoinResult {
        self.snapshot().aggregate_by_region_parallel(threads)
    }

    /// [`EngineSnapshot::plan_query`] on the current snapshot.
    pub fn plan_query(&self, spec: &QuerySpec) -> QueryPlan {
        self.snapshot().plan_query(spec)
    }

    /// [`EngineSnapshot::aggregate_by_region_spec`] on the current
    /// snapshot.
    pub fn aggregate_by_region_spec(
        &self,
        spec: &QuerySpec,
        threads: usize,
    ) -> (QueryPlan, JoinResult) {
        self.snapshot().aggregate_by_region_spec(spec, threads)
    }

    /// [`EngineSnapshot::count_ranges_spec`] on the current snapshot.
    pub fn count_ranges_spec(
        &self,
        spec: &QuerySpec,
        threads: usize,
    ) -> (QueryPlan, Vec<ResultRange>) {
        self.snapshot().count_ranges_spec(spec, threads)
    }

    /// [`EngineSnapshot::aggregate_in_region`] on the current snapshot.
    pub fn aggregate_in_region<G: Rasterizable>(
        &self,
        region: &G,
        cell_budget: usize,
    ) -> (RegionAggregate, usize) {
        self.snapshot().aggregate_in_region(region, cell_budget)
    }

    /// [`EngineSnapshot::aggregate_in_polygon`] on the current snapshot.
    pub fn aggregate_in_polygon(
        &self,
        polygon: &Polygon,
        cell_budget: usize,
    ) -> (RegionAggregate, usize) {
        self.snapshot().aggregate_in_polygon(polygon, cell_budget)
    }

    /// [`EngineSnapshot::count_ranges`] on the current snapshot.
    pub fn count_ranges(&self) -> Vec<ResultRange> {
        self.snapshot().count_ranges()
    }

    /// [`EngineSnapshot::within_distance`] on the current snapshot.
    pub fn within_distance(&self, spec: &DistanceSpec, threads: usize) -> (QueryPlan, JoinResult) {
        self.snapshot().within_distance(spec, threads)
    }

    /// [`EngineSnapshot::knn`] on the current snapshot.
    pub fn knn(&self, p: &Point, k: usize) -> Result<Vec<KnnNeighbor>, QueryError> {
        self.snapshot().knn(p, k)
    }

    /// [`EngineSnapshot::knn_exact`] on the current snapshot.
    pub fn knn_exact(&self, p: &Point, k: usize) -> Result<Vec<KnnNeighbor>, QueryError> {
        self.snapshot().knn_exact(p, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbsa_datagen::{city_extent, PolygonSetGenerator, TaxiPointGenerator};

    fn workload(n: usize, regions: usize) -> (Vec<Point>, Vec<f64>, Vec<MultiPolygon>) {
        let taxi = TaxiPointGenerator::new(city_extent(), 7).generate(n);
        let points: Vec<Point> = taxi.iter().map(|t| t.location).collect();
        let values: Vec<f64> = taxi.iter().map(|t| t.fare).collect();
        let polys = PolygonSetGenerator::new(city_extent(), regions, 18, 11).generate();
        (points, values, polys)
    }

    fn build(n: usize, regions: usize, shards: usize) -> ShardedEngine {
        let (points, values, polys) = workload(n, regions);
        ShardedEngine::builder()
            .distance_bound(DistanceBound::meters(10.0))
            .extent(city_extent())
            .points(points, values)
            .regions(polys)
            .shards(shards)
            .build()
    }

    #[test]
    fn shards_partition_the_points_in_key_order() {
        let engine = build(6_000, 9, 4);
        let snap = engine.snapshot();
        assert_eq!(snap.shard_count(), 4);
        assert_eq!(snap.point_count(), 6_000);
        assert_eq!(snap.generation(), 0);
        let mut prev_hi: Option<u64> = None;
        for shard in snap.shards() {
            let range = shard.key_range();
            if let Some(hi) = prev_hi {
                assert_eq!(hi.wrapping_add(1), range.lo, "contiguous ranges");
            }
            prev_hi = Some(range.hi);
            // Every key in range, keys sorted.
            let keys = shard.table().keys();
            assert!(keys.windows(2).all(|w| w[0] <= w[1]));
            assert!(keys.iter().all(|k| range.contains(*k)));
            // Weighted split: no shard is empty or grossly oversized.
            assert!(!shard.is_empty());
            assert!(shard.len() < 6_000);
        }
        assert_eq!(prev_hi, Some(u64::MAX));
    }

    #[test]
    fn sharded_aggregation_matches_the_monolithic_engine() {
        let (points, values, polys) = workload(8_000, 9);
        let mono = crate::ApproximateEngine::builder()
            .distance_bound(DistanceBound::meters(10.0))
            .extent(city_extent())
            .points(points.clone(), values.clone())
            .regions(polys.clone())
            .build();
        let reference = mono.aggregate_by_region();
        for shards in [1usize, 2, 8] {
            let engine = ShardedEngine::builder()
                .distance_bound(DistanceBound::meters(10.0))
                .extent(city_extent())
                .points(points.clone(), values.clone())
                .regions(polys.clone())
                .shards(shards)
                .build();
            let result = engine.aggregate_by_region_parallel(4);
            assert_eq!(result.unmatched, reference.unmatched, "{shards} shards");
            assert_eq!(result.pip_tests, 0);
            for (a, b) in result.regions.iter().zip(&reference.regions) {
                assert_eq!(a.count, b.count);
                assert_eq!(a.boundary_count, b.boundary_count);
                assert_eq!(a.min, b.min);
                assert_eq!(a.max, b.max);
                assert!((a.sum - b.sum).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn adhoc_containment_prunes_but_stays_exactly_equal() {
        let (points, values, polys) = workload(6_000, 4);
        let mono = crate::ApproximateEngine::builder()
            .distance_bound(DistanceBound::meters(10.0))
            .extent(city_extent())
            .points(points.clone(), values.clone())
            .regions(polys.clone())
            .build();
        let query = Polygon::from_coords(&[
            (5_000.0, 5_000.0),
            (20_000.0, 6_000.0),
            (18_000.0, 22_000.0),
            (6_000.0, 20_000.0),
        ]);
        let (mono_agg, mono_cells) = mono.aggregate_in_polygon(&query, 512);
        let engine = build_from(points, values, polys, 8);
        let (agg, cells) = engine.aggregate_in_polygon(&query, 512);
        assert_eq!(cells, mono_cells);
        assert_eq!(agg.count, mono_agg.count);
        assert_eq!(agg.boundary_count, mono_agg.boundary_count);
        assert_eq!(agg.min, mono_agg.min);
        assert_eq!(agg.max, mono_agg.max);
        assert!((agg.sum - mono_agg.sum).abs() < 1e-6);
    }

    fn build_from(
        points: Vec<Point>,
        values: Vec<f64>,
        polys: Vec<MultiPolygon>,
        shards: usize,
    ) -> ShardedEngine {
        ShardedEngine::builder()
            .distance_bound(DistanceBound::meters(10.0))
            .extent(city_extent())
            .points(points, values)
            .regions(polys)
            .shards(shards)
            .build()
    }

    #[test]
    fn append_is_visible_and_compact_folds_it_in() {
        let engine = build(3_000, 9, 4);
        let before = engine.aggregate_by_region();
        let snap0 = engine.snapshot();

        let (extra_points, extra_values, _) = workload(500, 1);
        engine.append_points(extra_points.clone(), extra_values.clone());
        assert_eq!(engine.pending_points(), 500);
        let snap1 = engine.snapshot();
        assert_eq!(snap1.generation(), 1);
        assert_eq!(snap1.point_count(), 3_500);
        assert!(snap1.delta_shard().is_some());
        // The old snapshot is untouched.
        assert_eq!(snap0.point_count(), 3_000);

        let after_append = engine.aggregate_by_region();
        let matched_delta = after_append.total_matched() + after_append.unmatched
            - before.total_matched()
            - before.unmatched;
        assert_eq!(matched_delta, 500);

        assert!(engine.compact());
        assert_eq!(engine.pending_points(), 0);
        let snap2 = engine.snapshot();
        assert_eq!(snap2.generation(), 2);
        assert!(snap2.delta_shard().is_none());
        assert_eq!(snap2.point_count(), 3_500);
        assert_eq!(snap2.shard_count(), 4);

        // Compaction preserves the query answer (counts exactly).
        let after_compact = engine.aggregate_by_region();
        for (a, b) in after_compact.regions.iter().zip(&after_append.regions) {
            assert_eq!(a.count, b.count);
            assert!((a.sum - b.sum).abs() < 1e-6);
        }
        assert_eq!(after_compact.unmatched, after_append.unmatched);
    }

    #[test]
    fn stats_break_down_per_shard_and_stay_exact() {
        let engine = build(4_000, 9, 4);
        let (extra_points, extra_values, _) = workload(300, 1);
        engine.append_points(extra_points, extra_values);
        let stats = engine.stats();
        assert_eq!(stats.points, 4_300);
        assert_eq!(stats.regions, 9);
        assert_eq!(stats.per_shard.len(), 5, "4 base shards + delta");
        assert_eq!(
            stats.per_shard.iter().map(|s| s.points).sum::<usize>(),
            4_300
        );
        assert_eq!(
            stats
                .per_shard
                .iter()
                .map(|s| s.point_index_bytes)
                .sum::<usize>(),
            stats.point_index_bytes
        );
        assert_eq!(stats.per_shard.iter().filter(|s| s.delta).count(), 1);
        assert!(stats.per_shard.last().unwrap().delta);
    }

    #[test]
    fn count_ranges_cover_exact_counts_under_sharding() {
        let engine = build(4_000, 9, 8);
        let snap = engine.snapshot();
        let ranges = engine.count_ranges();
        let (points, _) = snap.all_rows();
        for (range, region) in ranges.iter().zip(snap.regions()) {
            let exact = points.iter().filter(|p| region.contains_point(p)).count();
            assert!(
                range.contains(exact as f64),
                "exact {exact} outside [{}, {}]",
                range.lower,
                range.upper
            );
        }
    }

    #[test]
    fn sharded_within_distance_matches_the_monolithic_engine() {
        let (points, values, polys) = workload(5_000, 9);
        let mono = crate::ApproximateEngine::builder()
            .distance_bound(DistanceBound::meters(10.0))
            .extent(city_extent())
            .points(points.clone(), values.clone())
            .regions(polys.clone())
            .build();
        let d = 180.0;
        let spec = DistanceSpec::within(d).unwrap();
        let (_, reference) = mono.within_distance(&spec);
        assert_eq!(reference.regions, mono.within_distance_exact(d).regions);
        for shards in [1usize, 2, 8] {
            let engine = build_from(points.clone(), values.clone(), polys.clone(), shards);
            let (plan, result) = engine.within_distance(&spec, 4);
            assert!(plan.exact_refinement);
            assert_eq!(result.unmatched, reference.unmatched, "{shards} shards");
            for (a, b) in result.regions.iter().zip(&reference.regions) {
                assert_eq!(a.count, b.count);
                assert!((a.sum - b.sum).abs() < 1e-6);
            }
            // kNN serves from the shared region index.
            let p = points[3];
            let approx = engine.knn(&p, 2).unwrap();
            let exact = engine.knn_exact(&p, 2).unwrap();
            assert_eq!(approx.len(), 2);
            for e in &exact {
                if let Some(a) = approx.iter().find(|a| a.region == e.region) {
                    assert!(a.contains(e.lo));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "no regions loaded")]
    fn aggregation_without_regions_panics() {
        let (points, values, _) = workload(100, 1);
        let engine = ShardedEngine::builder()
            .distance_bound(DistanceBound::meters(5.0))
            .extent(city_extent())
            .points(points, values)
            .shards(2)
            .build();
        let _ = engine.aggregate_by_region();
    }

    #[test]
    fn empty_engine_accepts_ingest() {
        let engine = ShardedEngine::builder()
            .distance_bound(DistanceBound::meters(5.0))
            .extent(city_extent())
            .shards(4)
            .build();
        assert_eq!(engine.snapshot().point_count(), 0);
        let (points, values, _) = workload(200, 1);
        engine.append_points(points, values);
        assert_eq!(engine.snapshot().point_count(), 200);
        assert!(engine.compact());
        let snap = engine.snapshot();
        assert_eq!(snap.point_count(), 200);
        assert!(snap.delta_shard().is_none());
    }
}

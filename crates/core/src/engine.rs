//! The high-level approximate spatial query engine.
//!
//! [`ApproximateEngine`] bundles the pieces a downstream application needs:
//! it linearizes and indexes a point table, builds distance-bounded raster
//! approximations of the query regions, indexes them in the Adaptive Cell
//! Trie, and exposes the query classes the paper discusses — per-region
//! aggregation, ad-hoc polygon containment counts, and result-range
//! estimation — all without ever running an exact geometric test at query
//! time. Exact evaluation paths are kept available for validation.

use crate::serving::ServingStats;
use dbsa_geom::{BoundingBox, MultiPolygon, Point, Polygon};
use dbsa_grid::{partition_sorted_keys, split_at_ranges, GridExtent, KeyRange};
use dbsa_query::{
    ApproximateCellJoin, BruteForceDistanceJoin, DistanceSpec, JoinResult, KnnNeighbor,
    LinearizedPointTable, PointIndexVariant, QueryError, QueryPlan, QuerySpec, RTreeExactJoin,
    RegionAggregate, ResultRange, ShardProbe,
};
use dbsa_raster::{DistanceBound, Rasterizable};

/// Builder for [`ApproximateEngine`].
#[derive(Debug, Default)]
pub struct ApproximateEngineBuilder {
    bound: Option<DistanceBound>,
    extent: Option<BoundingBox>,
    points: Vec<Point>,
    values: Vec<f64>,
    regions: Vec<MultiPolygon>,
    spline_radix_bits: u32,
    spline_error: usize,
}

impl ApproximateEngineBuilder {
    /// Creates a builder with the paper's default index parameters.
    pub fn new() -> Self {
        ApproximateEngineBuilder {
            spline_radix_bits: 25,
            spline_error: 32,
            ..Default::default()
        }
    }

    /// Sets the distance bound ε (required).
    pub fn distance_bound(mut self, bound: DistanceBound) -> Self {
        self.bound = Some(bound);
        self
    }

    /// Sets the world extent (optional: inferred from the data otherwise).
    pub fn extent(mut self, extent: BoundingBox) -> Self {
        self.extent = Some(extent);
        self
    }

    /// Loads the point table with one aggregate attribute per point.
    pub fn points(mut self, points: Vec<Point>, values: Vec<f64>) -> Self {
        assert_eq!(points.len(), values.len(), "one value per point required");
        self.points = points;
        self.values = values;
        self
    }

    /// Loads the regions used for `GROUP BY region` aggregation.
    pub fn regions(mut self, regions: Vec<MultiPolygon>) -> Self {
        self.regions = regions;
        self
    }

    /// Overrides the RadixSpline parameters.
    pub fn spline_parameters(mut self, radix_bits: u32, spline_error: usize) -> Self {
        self.spline_radix_bits = radix_bits;
        self.spline_error = spline_error;
        self
    }

    /// Builds the engine: linearizes the points, rasterizes and indexes the
    /// regions.
    ///
    /// # Panics
    /// Panics if no distance bound was provided, or if neither an extent nor
    /// any data to infer it from is available.
    pub fn build(self) -> ApproximateEngine {
        let bound = self.bound.expect("a distance bound is required");
        let extent_bbox = self.extent.unwrap_or_else(|| {
            let mut bbox = BoundingBox::from_points(self.points.iter());
            for r in &self.regions {
                bbox.expand_to_box(&r.bbox());
            }
            assert!(
                !bbox.is_empty(),
                "provide an extent or at least some points/regions to infer it"
            );
            bbox.inflated(bound.epsilon())
        });
        let extent = GridExtent::covering(&extent_bbox);
        let table = LinearizedPointTable::build_with_spline_params(
            &self.points,
            &self.values,
            &extent,
            self.spline_radix_bits,
            self.spline_error,
        );
        let join = (!self.regions.is_empty())
            .then(|| ApproximateCellJoin::build(&self.regions, &extent, bound));
        ApproximateEngine {
            bound,
            extent,
            table,
            join,
            points: self.points,
            values: self.values,
            regions: self.regions,
        }
    }
}

/// Per-shard slice of an engine's footprint: how many points a shard holds
/// and what its point index costs, so footprint reporting stays exact under
/// sharding (the totals in [`EngineStats`] are sums of these).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardStats {
    /// Points stored in the shard.
    pub points: usize,
    /// Memory of the shard's point index (keys + learned index), in bytes.
    pub point_index_bytes: usize,
    /// The contiguous Morton key range the shard is responsible for.
    pub key_range: KeyRange,
    /// Whether this is the uncompacted ingest (delta) shard.
    pub delta: bool,
}

/// Statistics describing an engine instance.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineStats {
    /// Number of indexed points.
    pub points: usize,
    /// Number of indexed regions.
    pub regions: usize,
    /// The distance bound ε.
    pub epsilon: f64,
    /// Total raster cells indexed for the regions.
    pub region_raster_cells: usize,
    /// Nodes in the frozen region trie (contiguous cache-conscious layout).
    pub region_trie_nodes: usize,
    /// Memory of the region index (frozen ACT), in bytes — exact, O(1).
    pub region_index_bytes: usize,
    /// Memory of the point index (keys + learned index), in bytes — the
    /// sum of the per-shard figures.
    pub point_index_bytes: usize,
    /// Per-shard memory/points breakdown (a single full-range entry for
    /// the monolithic engine; base shards ascending then the delta shard
    /// for the sharded engine).
    pub per_shard: Vec<ShardStats>,
    /// Serving-tier counters (admissions, rejections, batch occupancy,
    /// last generation served, plus the fault-tolerance ledger: deadline
    /// misses, cancellations, degraded answers, isolated panics and
    /// scheduler restarts). All-zero for the monolithic engine and for
    /// snapshots read outside a serving tier.
    pub serving: ServingStats,
}

/// The approximate spatial query engine.
pub struct ApproximateEngine {
    bound: DistanceBound,
    extent: GridExtent,
    table: LinearizedPointTable,
    join: Option<ApproximateCellJoin>,
    points: Vec<Point>,
    values: Vec<f64>,
    regions: Vec<MultiPolygon>,
}

impl ApproximateEngine {
    /// Starts building an engine.
    pub fn builder() -> ApproximateEngineBuilder {
        ApproximateEngineBuilder::new()
    }

    /// The distance bound every answer honours.
    pub fn bound(&self) -> DistanceBound {
        self.bound
    }

    /// The grid extent used for linearization and rasterization.
    pub fn extent(&self) -> &GridExtent {
        &self.extent
    }

    /// The loaded regions.
    pub fn regions(&self) -> &[MultiPolygon] {
        &self.regions
    }

    /// The loaded points.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Structural statistics of the engine.
    pub fn stats(&self) -> EngineStats {
        let point_index_bytes = self
            .table
            .index_memory_bytes(PointIndexVariant::RadixSpline);
        EngineStats {
            points: self.points.len(),
            regions: self.regions.len(),
            epsilon: self.bound.epsilon(),
            region_raster_cells: self
                .join
                .as_ref()
                .map(|j| j.raster_cell_count())
                .unwrap_or(0),
            region_trie_nodes: self
                .join
                .as_ref()
                .map(|j| j.trie_stats().nodes)
                .unwrap_or(0),
            region_index_bytes: self.join.as_ref().map(|j| j.memory_bytes()).unwrap_or(0),
            point_index_bytes,
            per_shard: vec![ShardStats {
                points: self.points.len(),
                point_index_bytes,
                key_range: KeyRange::FULL,
                delta: false,
            }],
            serving: ServingStats::default(),
        }
    }

    /// `SELECT AGG(a) … GROUP BY region` evaluated approximately through the
    /// frozen Adaptive Cell Trie — no point-in-polygon test is executed.
    /// Probes run batched in leaf-key order over the cache-conscious frozen
    /// layout (see `dbsa_index::FrozenCellTrie`).
    ///
    /// # Panics
    /// Panics if no regions were loaded.
    pub fn aggregate_by_region(&self) -> JoinResult {
        self.join
            .as_ref()
            .expect("no regions loaded")
            .execute(&self.points, &self.values)
    }

    /// Plans a [`QuerySpec`] against the region index without executing it:
    /// which truncation level of the level-stacked trie serves it, the
    /// bound that level guarantees, and the estimated probe cost.
    ///
    /// # Panics
    /// Panics if no regions were loaded.
    pub fn plan_query(&self, spec: &QuerySpec) -> QueryPlan {
        self.join.as_ref().expect("no regions loaded").plan(spec)
    }

    /// [`aggregate_by_region`](Self::aggregate_by_region) with a
    /// **per-query accuracy spec**: the same frozen index build answers at
    /// any bound at or above the build bound (coarser truncation levels of
    /// the level-stacked trie), or exactly ([`QuerySpec::exact`]) by
    /// refining boundary-cell matches with exact point-in-polygon tests —
    /// no rebuild in either case. Returns the plan alongside the result so
    /// callers can report the level chosen and the bound actually served.
    ///
    /// The exact path's per-region aggregates and unmatched count are
    /// bit-for-bit identical to
    /// [`aggregate_by_region_exact`](Self::aggregate_by_region_exact);
    /// only `pip_tests` differs (the filter eliminates most of them).
    ///
    /// # Panics
    /// Panics if no regions were loaded.
    pub fn aggregate_by_region_spec(&self, spec: &QuerySpec) -> (QueryPlan, JoinResult) {
        self.join.as_ref().expect("no regions loaded").execute_spec(
            spec,
            &self.points,
            &self.values,
            &self.regions,
        )
    }

    /// Multi-threaded variant of [`aggregate_by_region`](Self::aggregate_by_region).
    ///
    /// Routed through the shard-level execution path: the table's sorted
    /// key/value columns are split into `threads` contiguous Morton key
    /// ranges (weighted by point count, never splitting equal keys) and
    /// executed as shard probe schedules, partials merged in shard order
    /// via [`JoinResult::merge`].
    ///
    /// **Determinism policy:** for a fixed `threads` value the result is
    /// bit-for-bit reproducible (shard layout and merge order are both
    /// functions of the data and `threads` alone). Across different
    /// `threads` values — and relative to the sequential
    /// [`aggregate_by_region`](Self::aggregate_by_region) — counts,
    /// unmatched totals, min/max and boundary counts are identical; only
    /// f64 sums may differ in final-bit rounding because the summation
    /// order changes with the shard layout.
    ///
    /// # Panics
    /// Panics if no regions were loaded.
    pub fn aggregate_by_region_parallel(&self, threads: usize) -> JoinResult {
        let join = self.join.as_ref().expect("no regions loaded");
        let keys = self.table.keys();
        let values = self.table.values_in_key_order();
        let ranges = partition_sorted_keys(keys, threads.max(1));
        let probes: Vec<ShardProbe<'_>> = split_at_ranges(keys, &ranges)
            .into_iter()
            .map(|(from, to)| ShardProbe::new(&keys[from..to], &values[from..to]))
            .collect();
        join.execute_shards(&probes, threads)
    }

    /// The exact reference evaluation of the same aggregation (R-tree over
    /// region MBRs + exact point-in-polygon refinement). Used to validate
    /// the approximate answers and by the benchmark harness as the baseline.
    pub fn aggregate_by_region_exact(&self) -> JoinResult {
        RTreeExactJoin::build(&self.regions).execute(&self.points, &self.values)
    }

    /// The `WITHIN_DISTANCE(d)` semi-join over the loaded points and
    /// regions, served from the **same** distance-annotated frozen index
    /// as every containment query: bounded specs run the approximate join
    /// at the planned truncation level (no geometry consulted), exact
    /// specs run the filter-and-refine pipeline where only cells
    /// straddling the d-contour pay a counted exact segment-distance test.
    ///
    /// # Panics
    /// Panics if no regions were loaded.
    pub fn within_distance(&self, spec: &DistanceSpec) -> (QueryPlan, JoinResult) {
        self.join
            .as_ref()
            .expect("no regions loaded")
            .distance()
            .execute_spec(spec, &self.points, &self.values, &self.regions)
    }

    /// The brute-force exact within-distance baseline (every point tests
    /// every region with a counted exact distance evaluation). Used to
    /// validate [`within_distance`](Self::within_distance) and by the
    /// benchmark harness.
    pub fn within_distance_exact(&self, d: f64) -> JoinResult {
        BruteForceDistanceJoin::new(&self.regions).within(d, &self.points, &self.values)
    }

    /// The `k` nearest regions to a probe point with **guaranteed**
    /// distance intervals, best-first over the frozen index at its finest
    /// level — no exact geometry consulted.
    ///
    /// # Panics
    /// Panics if no regions were loaded.
    pub fn knn(&self, p: &Point, k: usize) -> Result<Vec<KnnNeighbor>, QueryError> {
        let join = self.join.as_ref().expect("no regions loaded");
        join.distance().knn(p, k, join.finest_level())
    }

    /// The exact `k` nearest regions: the best-first search narrows the
    /// frontier, which is then refined with counted exact distance tests.
    ///
    /// # Panics
    /// Panics if no regions were loaded.
    pub fn knn_exact(&self, p: &Point, k: usize) -> Result<Vec<KnnNeighbor>, QueryError> {
        self.join
            .as_ref()
            .expect("no regions loaded")
            .distance()
            .knn_refined(p, k, &self.regions)
            .map(|(neighbors, _)| neighbors)
    }

    /// Ad-hoc containment aggregate: counts and sums the points inside an
    /// arbitrary query polygon approximated with at most `cell_budget`
    /// hierarchical cells (Figure 4's query). Returns the aggregate and the
    /// number of cells used.
    pub fn aggregate_in_polygon(
        &self,
        polygon: &Polygon,
        cell_budget: usize,
    ) -> (RegionAggregate, usize) {
        self.table
            .aggregate_polygon(polygon, cell_budget, PointIndexVariant::RadixSpline)
    }

    /// Ad-hoc containment aggregate for any rasterizable region.
    pub fn aggregate_in_region<G: Rasterizable>(
        &self,
        region: &G,
        cell_budget: usize,
    ) -> (RegionAggregate, usize) {
        self.table
            .aggregate_polygon(region, cell_budget, PointIndexVariant::RadixSpline)
    }

    /// Exact containment count for validation.
    pub fn count_in_polygon_exact(&self, polygon: &Polygon) -> u64 {
        self.points
            .iter()
            .filter(|p| polygon.contains_point(p))
            .count() as u64
    }

    /// Guaranteed result ranges (Section 6) for the per-region counts of the
    /// approximate aggregation, at the build-time bound.
    pub fn count_ranges(&self) -> Vec<ResultRange> {
        self.aggregate_by_region()
            .regions
            .iter()
            .map(ResultRange::count_range)
            .collect()
    }

    /// [`count_ranges`](Self::count_ranges) under a per-query accuracy
    /// spec: looser bounds serve from coarser truncation levels (cheaper
    /// probes, wider ranges — more points match through boundary cells);
    /// [`QuerySpec::exact`] degenerates every range to its exact count.
    ///
    /// Range semantics follow the join's attribution policy: a point
    /// within the *served* bound of a boundary shared by two regions may
    /// be attributed to either side, so per-region ranges are guaranteed
    /// relative to that ε-admissible attribution — strict per-region
    /// coverage of the exact count holds when regions are separated by
    /// more than the served bound, and the *summed* range always covers
    /// the total exact count.
    ///
    /// # Panics
    /// Panics if no regions were loaded.
    pub fn count_ranges_spec(&self, spec: &QuerySpec) -> (QueryPlan, Vec<ResultRange>) {
        let (plan, result) = self.aggregate_by_region_spec(spec);
        let ranges = result
            .regions
            .iter()
            .map(ResultRange::count_range)
            .collect();
        (plan, ranges)
    }

    /// Access to the underlying linearized point table (for benchmarks that
    /// want to compare index variants directly).
    pub fn point_table(&self) -> &LinearizedPointTable {
        &self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbsa_datagen::{city_extent, PolygonSetGenerator, TaxiPointGenerator};

    fn build_engine(n_points: usize, n_regions: usize, eps: f64) -> ApproximateEngine {
        let taxi = TaxiPointGenerator::new(city_extent(), 3).generate(n_points);
        let points: Vec<Point> = taxi.iter().map(|t| t.location).collect();
        let values: Vec<f64> = taxi.iter().map(|t| t.fare).collect();
        let regions = PolygonSetGenerator::new(city_extent(), n_regions, 20, 7).generate();
        ApproximateEngine::builder()
            .distance_bound(DistanceBound::meters(eps))
            .extent(city_extent())
            .points(points, values)
            .regions(regions)
            .build()
    }

    #[test]
    fn engine_round_trip() {
        let engine = build_engine(5_000, 9, 10.0);
        let stats = engine.stats();
        assert_eq!(stats.points, 5_000);
        assert_eq!(stats.regions, 9);
        assert_eq!(stats.epsilon, 10.0);
        assert!(stats.region_raster_cells > 0);
        assert!(stats.region_trie_nodes > 0);
        assert!(stats.region_index_bytes > 0);
        assert!(stats.point_index_bytes > 0);
        assert_eq!(engine.regions().len(), 9);
        assert_eq!(engine.points().len(), 5_000);
    }

    #[test]
    fn approximate_aggregation_close_to_exact() {
        let engine = build_engine(8_000, 9, 5.0);
        let approx = engine.aggregate_by_region();
        let exact = engine.aggregate_by_region_exact();
        assert_eq!(approx.pip_tests, 0);
        assert!(exact.pip_tests > 0);
        let total_approx: u64 = approx.regions.iter().map(|r| r.count).sum();
        let total_exact: u64 = exact.regions.iter().map(|r| r.count).sum();
        // Totals are close (errors only near boundaries).
        let rel = (total_approx as f64 - total_exact as f64).abs() / total_exact.max(1) as f64;
        assert!(rel < 0.05, "relative error {rel}");
    }

    #[test]
    fn adhoc_polygon_aggregation_is_conservative() {
        let engine = build_engine(6_000, 4, 10.0);
        let query = Polygon::from_coords(&[
            (5_000.0, 5_000.0),
            (20_000.0, 6_000.0),
            (18_000.0, 22_000.0),
            (6_000.0, 20_000.0),
        ]);
        let exact = engine.count_in_polygon_exact(&query);
        let (agg, cells) = engine.aggregate_in_polygon(&query, 512);
        assert!(cells <= 512);
        assert!(
            agg.count >= exact,
            "conservative approximation cannot undercount"
        );
        assert!((agg.count as f64 - exact as f64) / exact.max(1) as f64 <= 0.1);
    }

    #[test]
    fn count_ranges_cover_exact_counts() {
        let engine = build_engine(4_000, 9, 20.0);
        let ranges = engine.count_ranges();
        let exact = engine.aggregate_by_region_exact();
        for (range, exact_agg) in ranges.iter().zip(&exact.regions) {
            assert!(
                range.contains(exact_agg.count as f64),
                "exact {} outside [{}, {}]",
                exact_agg.count,
                range.lower,
                range.upper
            );
        }
    }

    #[test]
    fn extent_is_inferred_when_not_provided() {
        let taxi = TaxiPointGenerator::new(city_extent(), 5).generate(500);
        let points: Vec<Point> = taxi.iter().map(|t| t.location).collect();
        let values = vec![1.0; points.len()];
        let engine = ApproximateEngine::builder()
            .distance_bound(DistanceBound::meters(5.0))
            .points(points.clone(), values)
            .build();
        // All points fall inside the inferred extent.
        for p in &points {
            assert!(engine.extent().contains(p));
        }
    }

    #[test]
    #[should_panic(expected = "distance bound is required")]
    fn builder_requires_a_bound() {
        let _ = ApproximateEngine::builder().extent(city_extent()).build();
    }

    #[test]
    #[should_panic(expected = "no regions loaded")]
    fn aggregation_without_regions_panics() {
        let engine = ApproximateEngine::builder()
            .distance_bound(DistanceBound::meters(5.0))
            .extent(city_extent())
            .build();
        let _ = engine.aggregate_by_region();
    }

    #[test]
    fn per_query_specs_trade_accuracy_for_speed_on_one_build() {
        let engine = build_engine(6_000, 9, 4.0);
        let finest = engine.plan_query(&QuerySpec::within_meters(4.0));
        let coarse = engine.plan_query(&QuerySpec::within_meters(64.0));
        assert!(coarse.level < finest.level);
        assert!(coarse.estimated_nodes < finest.estimated_nodes);
        assert!(coarse.guaranteed_bound <= 64.0);

        let (_, at_build) = engine.aggregate_by_region_spec(&QuerySpec::within_meters(4.0));
        // The build-bound spec reproduces the default path bit-for-bit.
        assert_eq!(at_build, engine.aggregate_by_region());

        // Exact spec equals the R-tree reference on every answer field.
        let (plan, exact) = engine.aggregate_by_region_spec(&QuerySpec::exact());
        assert!(plan.exact_refinement);
        let reference = engine.aggregate_by_region_exact();
        assert_eq!(exact.regions, reference.regions);
        assert_eq!(exact.unmatched, reference.unmatched);
        assert!(exact.pip_tests < reference.pip_tests);
    }

    #[test]
    fn count_ranges_spec_widens_with_looser_bounds() {
        let engine = build_engine(4_000, 9, 4.0);
        let (_, tight) = engine.count_ranges_spec(&QuerySpec::within_meters(4.0));
        let (_, loose) = engine.count_ranges_spec(&QuerySpec::within_meters(64.0));
        let width = |rs: &Vec<ResultRange>| -> f64 { rs.iter().map(|r| r.upper - r.lower).sum() };
        assert!(width(&loose) >= width(&tight));
        // The structural guarantee: the *summed* range covers the total
        // exact count at any served bound (interior matches are true
        // positives; the conservative covering can only over-match).
        // Per-region coverage additionally holds when regions are
        // separated by more than the served bound — not asserted here
        // because coarse truncation may attribute shared-subtree boundary
        // points to either adjacent region.
        let exact = engine.aggregate_by_region_exact();
        let total_exact: u64 = exact.regions.iter().map(|r| r.count).sum();
        for ranges in [&tight, &loose] {
            let lower: f64 = ranges.iter().map(|r| r.lower).sum();
            let upper: f64 = ranges.iter().map(|r| r.upper).sum();
            assert!(
                lower - 1e-9 <= total_exact as f64 && total_exact as f64 <= upper + 1e-9,
                "total {total_exact} outside summed range [{lower}, {upper}]"
            );
        }
    }

    #[test]
    fn within_distance_family_runs_on_the_containment_build() {
        let engine = build_engine(4_000, 9, 10.0);
        let d = 150.0;
        // Exact spec equals the brute-force baseline bit-for-bit.
        let (plan, exact) = engine.within_distance(&DistanceSpec::within(d).unwrap());
        assert!(plan.exact_refinement);
        let reference = engine.within_distance_exact(d);
        assert_eq!(exact.regions, reference.regions);
        assert_eq!(exact.unmatched, reference.unmatched);
        assert!(exact.dist_tests < reference.dist_tests);

        // Bounded spec: conservative (no false negatives), no geometry.
        let (plan, approx) =
            engine.within_distance(&DistanceSpec::within_bounded(d, 64.0).unwrap());
        assert!(!plan.exact_refinement);
        assert_eq!(approx.dist_tests, 0);
        assert!(approx.total_matched() >= reference.total_matched());
    }

    #[test]
    fn knn_intervals_cover_the_exact_answer() {
        let engine = build_engine(500, 9, 10.0);
        let p = engine.points()[17];
        let approx = engine.knn(&p, 3).unwrap();
        let exact = engine.knn_exact(&p, 3).unwrap();
        assert_eq!(approx.len(), 3);
        assert_eq!(exact.len(), 3);
        for e in &exact {
            assert_eq!(e.lo, e.hi, "refined intervals collapse");
        }
        // Every refined answer is covered by some approximate interval of
        // the same region, when that region was reported.
        for a in &approx {
            if let Some(e) = exact.iter().find(|e| e.region == a.region) {
                assert!(a.contains(e.lo));
            }
        }
        assert!(engine.knn(&p, 0).is_err());
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let engine = build_engine(6_000, 9, 10.0);
        let seq = engine.aggregate_by_region();
        let par = engine.aggregate_by_region_parallel(3);
        for (s, p) in seq.regions.iter().zip(&par.regions) {
            assert_eq!(s.count, p.count);
        }
    }
}

//! # dbsa — Distance-Bounded Spatial Approximations
//!
//! A reproduction of *"The Case for Distance-Bounded Spatial
//! Approximations"* (CIDR 2021): approximate spatial query processing that
//! answers queries **solely on fine-grained raster approximations** of the
//! geometries, with a user-controlled bound ε on the Hausdorff distance
//! between every geometry and its approximation. False positives and false
//! negatives can exist, but they are guaranteed to lie within ε of the true
//! geometry boundary — which is what makes the answers interpretable.
//!
//! ## Quick start
//!
//! ```
//! use dbsa::prelude::*;
//!
//! // A polygon and some points (in meters).
//! let region = Polygon::from_coords(&[(0.0, 0.0), (100.0, 0.0), (100.0, 80.0), (0.0, 80.0)]);
//! let points = vec![Point::new(10.0, 10.0), Point::new(50.0, 40.0), Point::new(200.0, 10.0)];
//! let values = vec![1.0, 2.0, 3.0];
//!
//! // Build an approximate engine with a 1 m distance bound.
//! let engine = ApproximateEngine::builder()
//!     .distance_bound(DistanceBound::meters(1.0))
//!     .extent(BoundingBox::from_bounds(0.0, 0.0, 256.0, 256.0))
//!     .points(points, values)
//!     .regions(vec![region.into()])
//!     .build();
//!
//! // Count the points per region without a single point-in-polygon test.
//! let result = engine.aggregate_by_region();
//! assert_eq!(result.regions[0].count, 2);
//! ```
//!
//! ## Crate map
//!
//! | module | contents |
//! |--------|----------|
//! | [`geom`] | geometry primitives, exact predicates, classic approximations (MBR, hull, …) |
//! | [`grid`] | hierarchical cell ids, Z-order / Hilbert curves |
//! | [`raster`] | distance-bounded uniform & hierarchical raster approximations |
//! | [`index`] | ACT, RadixSpline, R-tree, quadtree, k-d tree, B+-tree, shape index |
//! | [`canvas`] | rasterized canvas algebra, Bounded Raster Join, GPU-style baseline |
//! | [`query`] | containment queries, aggregation joins, result ranges, error metrics |
//! | [`datagen`] | synthetic NYC-like workloads (documented substitution for the TLC data) |
//! | [`engine`] | the high-level [`ApproximateEngine`] facade |
//! | [`sharded`] | the sharded, concurrently-servable [`ShardedEngine`] |
//! | [`serving`] | the [`QueryService`] concurrent serving tier (cross-query batching, admission control) |

pub use dbsa_canvas as canvas;
pub use dbsa_datagen as datagen;
pub use dbsa_geom as geom;
pub use dbsa_grid as grid;
pub use dbsa_index as index;
pub use dbsa_query as query;
pub use dbsa_raster as raster;

pub mod config;
pub mod engine;
pub mod persist;
pub mod serving;
pub mod sharded;

pub use config::ExperimentConfig;
pub use dbsa_index::snapshot::{SnapshotError, SnapshotFile, SnapshotWriter};
pub use engine::{ApproximateEngine, ApproximateEngineBuilder, EngineStats, ShardStats};
pub use serving::{
    CompletedQuery, DegradePolicy, FaultPlan, QueryKind, QueryRequest, QueryResponse, QueryService,
    ServingConfig, ServingStats, Ticket,
};
pub use sharded::{EngineShard, EngineSnapshot, ShardedEngine, ShardedEngineBuilder};

/// Convenient glob import for applications.
pub mod prelude {
    pub use crate::engine::{ApproximateEngine, ApproximateEngineBuilder, EngineStats, ShardStats};
    pub use crate::serving::{
        CompletedQuery, DegradePolicy, FaultPlan, QueryKind, QueryRequest, QueryResponse,
        QueryService, ServingConfig, ServingStats, Ticket,
    };
    pub use crate::sharded::{EngineShard, EngineSnapshot, ShardedEngine, ShardedEngineBuilder};
    pub use crate::SnapshotError;
    pub use dbsa_canvas::{BoundedRasterJoin, Canvas, GpuBaseline, SimulatedDevice};
    pub use dbsa_datagen::{
        city_extent, DatasetProfile, Figure2Example, PolygonSetGenerator, TaxiPointGenerator,
    };
    pub use dbsa_geom::{BoundingBox, MultiPolygon, Point, Polygon, Ring};
    pub use dbsa_grid::{CellId, CurveKind, GridExtent, KeyRange};
    pub use dbsa_index::{AdaptiveCellTrie, FrozenCellTrie, MemoryFootprint, RTree, RadixSpline};
    pub use dbsa_query::{
        AggregateKind, ApproximateCellJoin, BruteForceDistanceJoin, DistanceJoin, DistanceSpec,
        ErrorSummary, GuaranteedBound, JoinResult, KnnNeighbor, LinearizedPointTable,
        PointIndexVariant, QueryError, QueryMode, QueryPlan, QueryPlanner, QuerySpec,
        RTreeExactJoin, RegionAggregate, ResultRange, ShapeIndexExactJoin, ShardProbe,
        SpatialBaseline, SpatialBaselineKind,
    };
    pub use dbsa_raster::{
        BoundaryPolicy, DistanceBins, DistanceBound, HierarchicalRaster, UniformRaster,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_reexports_compile() {
        use crate::prelude::*;
        let bound = DistanceBound::meters(4.0);
        assert_eq!(bound.epsilon(), 4.0);
        let p = Point::new(1.0, 2.0);
        assert_eq!(p.x, 1.0);
    }
}

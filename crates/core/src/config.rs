//! Serializable experiment configuration.
//!
//! The benchmark harness and the report binaries describe their workloads
//! with this structure so that every number in EXPERIMENTS.md can be traced
//! back to an explicit, reproducible configuration (sizes, seeds, bounds).

use serde::{Deserialize, Serialize};

/// Configuration of one experiment run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Experiment identifier (e.g. "fig4a", "fig6", "fig7").
    pub experiment: String,
    /// Number of points in the synthetic taxi workload.
    pub points: usize,
    /// Number of query regions / polygons.
    pub regions: usize,
    /// Average vertices per region polygon.
    pub vertices_per_region: usize,
    /// Distance bounds (meters) to sweep, where applicable.
    pub distance_bounds: Vec<f64>,
    /// Cells-per-polygon precision levels to sweep (Figure 4).
    pub precision_levels: Vec<usize>,
    /// RNG seed so runs are reproducible.
    pub seed: u64,
}

impl ExperimentConfig {
    /// A small default configuration suitable for laptop-scale runs.
    pub fn laptop_default(experiment: &str) -> Self {
        ExperimentConfig {
            experiment: experiment.to_string(),
            points: 200_000,
            regions: 289,
            vertices_per_region: 31,
            distance_bounds: vec![10.0, 5.0, 2.5, 1.0],
            precision_levels: vec![32, 128, 512],
            seed: 2021,
        }
    }

    /// A fast configuration for CI / smoke runs.
    pub fn smoke(experiment: &str) -> Self {
        ExperimentConfig {
            points: 20_000,
            regions: 36,
            ..Self::laptop_default(experiment)
        }
    }

    /// Serializes the configuration as a single JSON line (used in report
    /// headers). The `serde` derives make the type usable with any serde
    /// format; this helper avoids pulling a JSON crate into the workspace
    /// just for the one-line report banner.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"experiment\":\"{}\",\"points\":{},\"regions\":{},\"vertices_per_region\":{},\"distance_bounds\":{:?},\"precision_levels\":{:?},\"seed\":{}}}",
            self.experiment,
            self.points,
            self.regions,
            self.vertices_per_region,
            self.distance_bounds,
            self.precision_levels,
            self.seed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let cfg = ExperimentConfig::laptop_default("fig4a");
        assert_eq!(cfg.experiment, "fig4a");
        assert!(cfg.points >= 100_000);
        assert_eq!(cfg.precision_levels, vec![32, 128, 512]);
        let smoke = ExperimentConfig::smoke("fig6");
        assert!(smoke.points < cfg.points);
        assert_eq!(smoke.seed, cfg.seed);
    }

    #[test]
    fn json_round_trips_key_fields() {
        let cfg = ExperimentConfig::smoke("fig7");
        let json = cfg.to_json();
        assert!(json.contains("\"experiment\":\"fig7\""));
        assert!(json.contains("\"seed\":2021"));
        assert!(json.contains("10.0"));
    }
}

//! Snapshot persistence for the sharded engine.
//!
//! Cold start without persistence re-rasterizes every region and re-freezes
//! the trie from scratch, even though the serving state is already flat,
//! immutable columns. This module dumps those columns into the framed
//! snapshot format of [`dbsa_index::snapshot`] and reconstitutes them with
//! one contiguous pass per column — no re-rasterize, no re-freeze, no
//! re-sort, no index rebuild. The loaded snapshot is bit-for-bit
//! query-identical to the one that was saved.
//!
//! Two file kinds share the format:
//!
//! * **Engine snapshots** ([`EngineSnapshot::save`] /
//!   [`EngineSnapshot::load`], threaded through
//!   [`ShardedEngine::save_snapshot`] / [`ShardedEngine::load_snapshot`]) —
//!   the full serving state: regions, the frozen region join, every base
//!   shard, and the delta shard if one is pending. The engine's compaction
//!   generation is recorded in the file header.
//! * **Single-shard files** ([`EngineShard::save`] / [`EngineShard::load`])
//!   — one shard's key range, point column, and linearized table. This is
//!   the distributed-handoff primitive: one process writes a shard file,
//!   another loads it, and the loader can demand a specific generation so
//!   a stale file is rejected ([`SnapshotError::StaleGeneration`]) instead
//!   of silently serving outdated data.

use crate::serving::{QueryService, ServingConfig, ServingCounters};
use crate::sharded::{DeltaBuffer, EngineShard, EngineSnapshot, ShardedEngine};
use bytes::BufMut;
use dbsa_index::snapshot::{self, SectionCursor, SnapshotError, SnapshotFile, SnapshotWriter};
use dbsa_query::{ApproximateCellJoin, LinearizedPointTable};
use dbsa_raster::DistanceBound;
use parking_lot::{Mutex, RwLock};
use std::path::Path;
use std::sync::Arc;

/// Section id: file kind, distance bound, extent, shard count.
pub const SECTION_META: u32 = 0;
/// Section id: engine rebuild parameters (spline config, target shards).
pub const SECTION_PARAMS: u32 = 1;
/// Section id: the exact region geometries.
pub const SECTION_REGIONS: u32 = 2;
/// Section id: the frozen region join (absent when there are no regions).
pub const SECTION_JOIN: u32 = 3;
/// Section id of base shard `i` is `SECTION_SHARD_BASE + i`.
pub const SECTION_SHARD_BASE: u32 = 1000;
/// Section id: the pending delta shard (absent when none is pending).
pub const SECTION_DELTA: u32 = 2000;

/// META file-kind tag: a full engine snapshot.
const KIND_ENGINE: u8 = 0;
/// META file-kind tag: a single shard (the handoff primitive).
const KIND_SHARD: u8 = 1;

fn write_shard_columns(out: &mut Vec<u8>, shard: &EngineShard) {
    out.put_slice(&shard.key_range.to_le_bytes());
    snapshot::put_points(out, &shard.points);
    shard.table.write_snapshot(out);
}

fn read_shard_columns(cur: &mut SectionCursor<'_>) -> Result<EngineShard, SnapshotError> {
    let mut range_bytes = [0u8; 16];
    range_bytes.copy_from_slice(cur.read_bytes(16)?);
    let key_range = dbsa_grid::KeyRange::from_le_bytes(range_bytes)
        .ok_or_else(|| cur.malformed("shard key range has lo > hi"))?;
    let points = snapshot::read_points(cur)?;
    let table = LinearizedPointTable::read_snapshot(cur)?;
    if table.len() != points.len() {
        return Err(cur.malformed("shard point column disagrees with its table"));
    }
    if let Some((lo, hi)) = table.key_range() {
        if !key_range.contains(lo) || !key_range.contains(hi) {
            return Err(cur.malformed("shard keys fall outside the shard's key range"));
        }
    }
    Ok(EngineShard {
        key_range,
        points,
        table,
    })
}

fn read_kind(file: &SnapshotFile) -> Result<(u8, SectionCursor<'_>), SnapshotError> {
    let mut meta = file.section(SECTION_META)?;
    let kind = meta.read_u8()?;
    Ok((kind, meta))
}

impl EngineShard {
    /// Writes this shard as a standalone handoff file carrying
    /// `generation` in its header, so the receiver can insist on a
    /// matching compaction generation.
    pub fn save(&self, path: &Path, generation: u64) -> Result<(), SnapshotError> {
        let mut w = SnapshotWriter::new(generation);
        w.section(SECTION_META).put_u8(KIND_SHARD);
        write_shard_columns(w.section(SECTION_SHARD_BASE), self);
        w.write_to(path)
    }

    /// Loads a shard file written by [`save`](Self::save), possibly by
    /// another process. When `expected_generation` is given, a file whose
    /// header generation differs is rejected as
    /// [`SnapshotError::StaleGeneration`].
    pub fn load(
        path: &Path,
        expected_generation: Option<u64>,
    ) -> Result<EngineShard, SnapshotError> {
        let file = SnapshotFile::open(path)?;
        if let Some(expected) = expected_generation {
            file.expect_generation(expected)?;
        }
        let (kind, meta) = read_kind(&file)?;
        if kind != KIND_SHARD {
            return Err(meta.malformed("not a shard file"));
        }
        let mut cur = file.section(SECTION_SHARD_BASE)?;
        let shard = read_shard_columns(&mut cur)?;
        cur.finish()?;
        Ok(shard)
    }
}

impl EngineSnapshot {
    /// Writes the full serving state to `path`. The snapshot's compaction
    /// generation goes into the file header; [`load`](Self::load) restores
    /// it, and [`ShardedEngine::load_snapshot`] continues counting from it.
    ///
    /// Engine rebuild parameters are stored with the paper's defaults;
    /// [`ShardedEngine::save_snapshot`] overrides them with the engine's
    /// actual configuration.
    pub fn save(&self, path: &Path) -> Result<(), SnapshotError> {
        self.save_with_params(path, 25, 32, self.shards().len().max(1))
    }

    pub(crate) fn save_with_params(
        &self,
        path: &Path,
        spline_radix_bits: u32,
        spline_error: usize,
        target_shards: usize,
    ) -> Result<(), SnapshotError> {
        let mut w = SnapshotWriter::new(self.generation);

        let meta = w.section(SECTION_META);
        meta.put_u8(KIND_ENGINE);
        meta.put_f64_le(self.bound.epsilon());
        snapshot::put_extent(meta, &self.extent);
        meta.put_u32_le(self.shards.len() as u32);

        let params = w.section(SECTION_PARAMS);
        params.put_u32_le(spline_radix_bits);
        params.put_u64_le(spline_error as u64);
        params.put_u64_le(target_shards as u64);

        snapshot::put_multipolygons(w.section(SECTION_REGIONS), &self.regions);
        if let Some(join) = &self.join {
            join.write_snapshot(w.section(SECTION_JOIN));
        }
        for (i, shard) in self.shards.iter().enumerate() {
            write_shard_columns(w.section(SECTION_SHARD_BASE + i as u32), shard);
        }
        if let Some(delta) = &self.delta {
            write_shard_columns(w.section(SECTION_DELTA), delta);
        }
        w.write_to(path)
    }

    /// Loads a snapshot written by [`save`](Self::save): validates the
    /// header, the endianness tag, and every section CRC, then
    /// reconstitutes each column. The result answers every query
    /// bit-for-bit identically to the snapshot that was saved.
    pub fn load(path: &Path) -> Result<EngineSnapshot, SnapshotError> {
        Ok(Self::load_with_params(path)?.0)
    }

    /// [`load`](Self::load), also returning the stored engine parameters
    /// `(spline_radix_bits, spline_error, target_shards)`.
    pub(crate) fn load_with_params(
        path: &Path,
    ) -> Result<(EngineSnapshot, (u32, usize, usize)), SnapshotError> {
        let file = SnapshotFile::open(path)?;
        let (kind, mut meta) = read_kind(&file)?;
        if kind != KIND_ENGINE {
            return Err(meta.malformed("not an engine snapshot file"));
        }
        let epsilon = meta.read_f64()?;
        if !(epsilon.is_finite() && epsilon > 0.0) {
            return Err(meta.malformed("distance bound must be positive and finite"));
        }
        let bound = DistanceBound::new(epsilon);
        let extent = snapshot::read_extent(&mut meta)?;
        let shard_count = meta.read_u32()? as usize;
        meta.finish()?;

        let mut params = file.section(SECTION_PARAMS)?;
        let spline_radix_bits = params.read_u32()?;
        if !(1..=30).contains(&spline_radix_bits) {
            return Err(params.malformed("spline radix bits out of range"));
        }
        let spline_error = params.read_u64()? as usize;
        if spline_error == 0 {
            return Err(params.malformed("spline error must be at least 1"));
        }
        let target_shards = params.read_u64()? as usize;
        if target_shards == 0 {
            return Err(params.malformed("target shard count must be at least 1"));
        }
        params.finish()?;

        let mut regions_cur = file.section(SECTION_REGIONS)?;
        let regions = snapshot::read_multipolygons(&mut regions_cur)?;
        regions_cur.finish()?;

        let join = if file.has_section(SECTION_JOIN) {
            let mut cur = file.section(SECTION_JOIN)?;
            let join = ApproximateCellJoin::read_snapshot(&mut cur)?;
            cur.finish()?;
            if join.region_count() != regions.len() {
                return Err(cur_region_mismatch());
            }
            Some(Arc::new(join))
        } else if regions.is_empty() {
            None
        } else {
            return Err(SnapshotError::MissingSection {
                section: SECTION_JOIN,
            });
        };

        let mut shards = Vec::with_capacity(shard_count);
        for i in 0..shard_count {
            let mut cur = file.section(SECTION_SHARD_BASE + i as u32)?;
            shards.push(Arc::new(read_shard_columns(&mut cur)?));
            cur.finish()?;
        }

        let delta = if file.has_section(SECTION_DELTA) {
            let mut cur = file.section(SECTION_DELTA)?;
            let shard = read_shard_columns(&mut cur)?;
            cur.finish()?;
            Some(Arc::new(shard))
        } else {
            None
        };

        let snapshot = EngineSnapshot {
            bound,
            extent,
            regions: Arc::new(regions),
            join,
            shards,
            delta,
            generation: file.generation(),
        };
        Ok((snapshot, (spline_radix_bits, spline_error, target_shards)))
    }
}

fn cur_region_mismatch() -> SnapshotError {
    SnapshotError::Malformed {
        section: SECTION_JOIN,
        what: "region join disagrees with the region geometry count",
    }
}

impl ShardedEngine {
    /// Persists the currently published snapshot together with this
    /// engine's rebuild parameters. The file header carries the snapshot's
    /// compaction generation.
    pub fn save_snapshot(&self, path: &Path) -> Result<(), SnapshotError> {
        self.snapshot().save_with_params(
            path,
            self.spline_radix_bits,
            self.spline_error,
            self.target_shards,
        )
    }

    /// Reconstitutes a serving engine from a snapshot file: the loaded
    /// snapshot is published as-is (same generation, same shards, same
    /// delta), and ingest/compaction continue from there. No rebuild work
    /// happens — cold start is bounded by file I/O.
    pub fn load_snapshot(path: &Path) -> Result<ShardedEngine, SnapshotError> {
        let (snapshot, (spline_radix_bits, spline_error, target_shards)) =
            EngineSnapshot::load_with_params(path)?;
        // The delta buffer is the authoritative pending-row store; the
        // snapshot's delta shard already holds those rows in key order, so
        // restore the buffer from it (order within the buffer is
        // irrelevant — every append re-sorts).
        let delta_buffer = match snapshot.delta_shard() {
            Some(shard) => DeltaBuffer {
                points: shard.points().to_vec(),
                values: shard.values().to_vec(),
            },
            None => DeltaBuffer::default(),
        };
        Ok(ShardedEngine {
            bound: snapshot.bound(),
            extent: *snapshot.extent(),
            regions: Arc::clone(&snapshot.regions),
            spline_radix_bits,
            spline_error,
            target_shards,
            snapshot: RwLock::new(Arc::new(snapshot)),
            delta: RwLock::new(delta_buffer),
            compaction: Mutex::new(()),
            serving: Arc::new(ServingCounters::default()),
        })
    }
}

impl QueryService {
    /// Starts a serving tier directly from a snapshot file — the cold-start
    /// path for a serving process: load, publish, serve, no rebuild.
    ///
    /// # Panics
    /// Panics when the snapshot holds no regions (same contract as
    /// [`ShardedEngine::serve`]).
    pub fn start_from_snapshot(
        path: &Path,
        config: ServingConfig,
    ) -> Result<QueryService, SnapshotError> {
        let engine = Arc::new(ShardedEngine::load_snapshot(path)?);
        Ok(QueryService::start(engine, config))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbsa_geom::{MultiPolygon, Point, Polygon};
    use dbsa_raster::DistanceBound;

    fn tiny_engine(shards: usize) -> ShardedEngine {
        let region = MultiPolygon::from(Polygon::from_coords(&[
            (10.0, 10.0),
            (200.0, 10.0),
            (200.0, 150.0),
            (10.0, 150.0),
        ]));
        let points: Vec<Point> = (0..500)
            .map(|i| Point::new((i % 50) as f64 * 5.0 + 1.0, (i / 50) as f64 * 20.0 + 1.0))
            .collect();
        let values: Vec<f64> = (0..500).map(|i| i as f64 * 0.25).collect();
        ShardedEngine::builder()
            .distance_bound(DistanceBound::meters(2.0))
            .extent(dbsa_geom::BoundingBox::from_bounds(0.0, 0.0, 256.0, 256.0))
            .points(points, values)
            .regions(vec![region])
            .shards(shards)
            .build()
    }

    #[test]
    fn engine_snapshot_round_trips_queries() {
        let dir = std::env::temp_dir().join("dbsa-persist-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("engine.snapshot");
        let engine = tiny_engine(4);
        engine.append_points(vec![Point::new(42.0, 42.0)], vec![7.0]);
        engine.save_snapshot(&path).expect("save");

        let loaded = ShardedEngine::load_snapshot(&path).expect("load");
        assert_eq!(
            loaded.snapshot().generation(),
            engine.snapshot().generation()
        );
        assert_eq!(loaded.pending_points(), engine.pending_points());
        assert_eq!(
            loaded.aggregate_by_region(),
            engine.aggregate_by_region(),
            "loaded snapshot must answer bit-for-bit identically"
        );
        // Ingest continues after a load.
        loaded.append_points(vec![Point::new(50.0, 50.0)], vec![1.0]);
        assert!(loaded.compact());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shard_handoff_respects_generation() {
        let dir = std::env::temp_dir().join("dbsa-persist-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("shard.snapshot");
        let engine = tiny_engine(2);
        let snapshot = engine.snapshot();
        let shard = &snapshot.shards()[0];
        shard.save(&path, snapshot.generation()).expect("save");

        let loaded = EngineShard::load(&path, Some(snapshot.generation())).expect("load");
        assert_eq!(loaded.key_range(), shard.key_range());
        assert_eq!(loaded.points(), shard.points());
        assert_eq!(loaded.values(), shard.values());

        let stale = EngineShard::load(&path, Some(snapshot.generation() + 1));
        assert!(matches!(stale, Err(SnapshotError::StaleGeneration { .. })));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn engine_file_is_not_a_shard_file() {
        let dir = std::env::temp_dir().join("dbsa-persist-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("kind.snapshot");
        tiny_engine(1).save_snapshot(&path).expect("save");
        assert!(matches!(
            EngineShard::load(&path, None),
            Err(SnapshotError::Malformed { .. })
        ));
        std::fs::remove_file(&path).ok();
    }
}

//! The distance query family: within-distance joins and approximate
//! k-nearest-neighbor queries over the **same** distance-annotated frozen
//! index the containment family probes.
//!
//! The paper's position is that one distance-bounded approximation should
//! serve *many* query types. PR 4 delivered the containment family
//! (point-in-polygon joins/aggregates at any per-query bound); this module
//! adds the distance family on top of the same build, following Abdelkader
//! & Mount's observation that per-cell distance annotations turn a coarse
//! cover into a certified distance oracle:
//!
//! * [`DistanceJoin`] — the `WITHIN_DISTANCE(d)` point–polygon semi-join.
//!   Every posting cell carries a conservative signed-distance interval
//!   (see `dbsa_raster::DistanceBins`), so cells entirely inside the
//!   d-dilation accept their points wholesale, cells entirely outside
//!   reject wholesale, and only cells *straddling* the d-contour pay one
//!   counted exact segment-distance test
//!   (`dbsa_raster::refine_distance`) in the refined mode — the
//!   filter-and-refine economics of the containment family, replayed for
//!   distance.
//! * [`DistanceJoin::knn`] / [`DistanceJoin::knn_refined`] — approximate
//!   k-nearest-polygon queries: a best-first search over the
//!   level-stacked frozen trie ordered by point-to-cell-box distance,
//!   using the frozen per-node min/max distance summaries
//!   (`FrozenCellTrie::subtree_distance`) to bound subtrees the descent
//!   truncates above. Every reported neighbor carries a guaranteed
//!   distance interval; the refined mode exact-refines only the frontier
//!   (candidates whose intervals overlap the k-th bound).
//!
//! Guarantees, with `slack(ℓ) = cell_diagonal(ℓ) + bin_width(ℓ)` (the
//! planner's budget for truncation level ℓ):
//!
//! * The approximate `within(d)` at level ℓ never misses a point that is
//!   within `d` of a region (no false negatives — the covering is
//!   conservative), and only accepts points within `d + slack(ℓ)`.
//! * The refined `within(d)` equals the brute-force exact baseline
//!   ([`BruteForceDistanceJoin`]) bit-for-bit on matched/unmatched sets
//!   and attribution (lowest-id accepting region).
//! * Every kNN interval `[lo, hi]` contains the exact point-to-region
//!   distance, with width at most `slack(ℓ)`.

use crate::error::QueryError;
use crate::join::{prunable, ApproximateCellJoin, JoinResult, ShardProbe};
use crate::plan::{DistanceSpec, QueryPlan};
use dbsa_geom::{BoundingBox, MultiPolygon, Point};
use dbsa_grid::{CellId, GridExtent, MAX_LEVEL};
use dbsa_index::{FrozenCellTrie, PolygonId};
use dbsa_raster::{refine_distance, CellClass};
use std::collections::BinaryHeap;

/// One reported nearest neighbor: a region and a **guaranteed** interval
/// around its exact point-to-region distance (`lo <= exact <= hi`; points
/// inside the region have exact distance 0). Refined queries collapse the
/// interval to the exact value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KnnNeighbor {
    /// The neighboring region.
    pub region: PolygonId,
    /// Guaranteed lower bound on the exact distance.
    pub lo: f64,
    /// Guaranteed upper bound on the exact distance (`f64::INFINITY` only
    /// when the index carries unannotated cells).
    pub hi: f64,
}

impl KnnNeighbor {
    /// Width of the guaranteed interval.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Whether `exact` lies inside the reported interval.
    pub fn contains(&self, exact: f64) -> bool {
        self.lo <= exact && exact <= self.hi
    }
}

/// Per-probe candidate accumulator: for every region touched by the
/// current search, the best (smallest) geometric cell distance seen (`lo`)
/// and the best upper bound (`hi`). Stamped so `begin` is O(1) across
/// probes.
struct CandidateSet {
    stamp: Vec<u32>,
    lo: Vec<f64>,
    hi: Vec<f64>,
    touched: Vec<PolygonId>,
    epoch: u32,
}

impl CandidateSet {
    fn new(regions: usize) -> Self {
        CandidateSet {
            stamp: vec![0; regions],
            lo: vec![0.0; regions],
            hi: vec![0.0; regions],
            touched: Vec::new(),
            epoch: 0,
        }
    }

    fn begin(&mut self) {
        self.epoch += 1;
        self.touched.clear();
    }

    fn offer(&mut self, region: PolygonId, lo: f64, hi: f64) {
        let idx = region as usize;
        if self.stamp[idx] != self.epoch {
            self.stamp[idx] = self.epoch;
            self.lo[idx] = lo;
            self.hi[idx] = hi;
            self.touched.push(region);
        } else {
            self.lo[idx] = self.lo[idx].min(lo);
            self.hi[idx] = self.hi[idx].min(hi);
        }
    }

    /// The k-th smallest upper bound among the touched candidates
    /// (`f64::INFINITY` while fewer than `k` candidates exist).
    fn kth_hi(&self, k: usize, scratch: &mut Vec<f64>) -> f64 {
        if self.touched.len() < k {
            return f64::INFINITY;
        }
        scratch.clear();
        scratch.extend(self.touched.iter().map(|&r| self.hi[r as usize]));
        scratch.select_nth_unstable_by(k - 1, |a, b| a.total_cmp(b));
        scratch[k - 1]
    }
}

/// Best-first heap entry ordered by ascending geometric distance (ties by
/// node index for determinism).
struct HeapEntry {
    g: f64,
    node: u32,
    cell: CellId,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we pop the smallest g first.
        other
            .g
            .total_cmp(&self.g)
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// The upper-bound slack a posting contributes on top of the geometric
/// cell distance: 0 for interior cells (their points *are* region points),
/// the annotated upper distance bound for boundary cells (their points lie
/// within it of the region boundary).
#[inline]
fn posting_slack(class: CellClass, hi_world: f64) -> f64 {
    match class {
        CellClass::Interior => 0.0,
        CellClass::Boundary => hi_world,
    }
}

/// Reusable scratch state of the per-probe searches.
struct SearchState {
    cands: CandidateSet,
    stack: Vec<(u32, CellId)>,
    heap: BinaryHeap<HeapEntry>,
    scratch: Vec<f64>,
    order: Vec<PolygonId>,
}

impl SearchState {
    fn new(regions: usize) -> Self {
        SearchState {
            cands: CandidateSet::new(regions),
            stack: Vec::new(),
            heap: BinaryHeap::new(),
            scratch: Vec::new(),
            order: Vec::new(),
        }
    }
}

/// The within-distance join and kNN views over one
/// [`ApproximateCellJoin`]'s frozen, distance-annotated index. Obtained
/// via [`ApproximateCellJoin::distance`]; borrows the index, builds
/// nothing.
pub struct DistanceJoin<'a> {
    join: &'a ApproximateCellJoin,
}

impl ApproximateCellJoin {
    /// The distance query family over this join's frozen index — the same
    /// one approximation, no rebuild.
    pub fn distance(&self) -> DistanceJoin<'_> {
        DistanceJoin { join: self }
    }
}

impl<'a> DistanceJoin<'a> {
    fn trie(&self) -> &'a FrozenCellTrie {
        &self.join.trie
    }

    fn extent(&self) -> &'a GridExtent {
        &self.join.extent
    }

    /// Plans a [`DistanceSpec`] onto a truncation level of the
    /// level-stacked trie (or the exact-refinement pipeline).
    pub fn plan(&self, spec: &DistanceSpec) -> QueryPlan {
        self.join.planner().plan_distance(spec)
    }

    /// Distance from `p` to the complement of the grid extent: how close
    /// the probe is to the edge of the indexed world (0 when outside).
    /// Region parts beyond the extent have no covering cells, so any such
    /// part is at least this far from an in-extent probe.
    fn border_distance(&self, p: &Point) -> f64 {
        let bbox = self.extent().bbox();
        if !bbox.contains_point(p) {
            return 0.0;
        }
        (p.x - bbox.min.x)
            .min(bbox.max.x - p.x)
            .min(p.y - bbox.min.y)
            .min(bbox.max.y - p.y)
            .max(0.0)
    }

    /// Offers every region whose geometry exits the grid extent as a
    /// conservative candidate when its out-of-extent part could lie within
    /// `limit` of `p`: such parts have no covering cells, so the covering
    /// can never rule them out. The lower bound is sound (the part lies
    /// inside the region's bbox *and* outside the extent), the upper bound
    /// is vacuous — refinement decides.
    fn offer_border_exits(&self, p: &Point, limit: f64, cands: &mut CandidateSet) {
        if self.join.border_exits.is_empty() {
            return;
        }
        let border = self.border_distance(p);
        if border > limit {
            return;
        }
        for &(region, bbox) in &self.join.border_exits {
            let lo = border.max(bbox.distance_to_point(p));
            if lo <= limit {
                cands.offer(region, lo, f64::INFINITY);
            }
        }
    }

    /// World-unit upper bound on the distance from `p` to the region of a
    /// folded subtree, through the subtree's best cell: the node box is at
    /// `g`, the cell lies within one diagonal of it, and the cell's points
    /// are within the subtree's minimum region-distance slack of the
    /// region.
    fn summary_upper(&self, g: f64, level: u8, slack_leaf: u64) -> f64 {
        if slack_leaf == u64::MAX {
            return f64::INFINITY;
        }
        let leaf_side = self.extent().cell_size(MAX_LEVEL);
        g + self.extent().cell_diagonal(level) + slack_leaf as f64 * leaf_side
    }

    /// Depth-first scan of the posting cells within `limit` of `p`,
    /// truncated at `level`: offers `(region, lo, hi)` candidates to
    /// `state.cands` such that the candidate set is a superset of every
    /// region within `limit` of `p`, each `lo` lower-bounds and each `hi`
    /// upper-bounds the exact point-to-region distance.
    ///
    /// Single-region subtrees are folded through the frozen per-node
    /// summaries as soon as the summary suffices — when it already proves
    /// the region within `limit`, when the region is already proven, or
    /// when the truncation level is reached — so interior chunks cost a
    /// handful of coarse nodes instead of thousands of fine ones.
    /// Multi-region subtrees always descend (a summary names only its
    /// first region and would hide the others).
    fn scan_within(&self, p: &Point, limit: f64, level: u8, state: &mut SearchState) {
        let trie = self.trie();
        let extent = self.extent();
        state.cands.begin();
        self.offer_border_exits(p, limit, &mut state.cands);
        state.stack.clear();
        state.stack.push((0, CellId::ROOT));
        while let Some((node, cell)) = state.stack.pop() {
            let bbox = extent.cell_id_bbox(cell);
            let g = bbox.distance_to_point(p);
            if g > limit {
                continue;
            }
            let lvl = cell.level();
            let bin = extent.cell_size(lvl);
            for posting in trie.postings_of(node) {
                let slack = posting_slack(posting.class, posting.dist.hi_world(bin));
                state.cands.offer(posting.polygon, g, g + slack);
            }
            if trie.subtree_single_region(node) {
                let Some(region) = trie.subtree_first_polygon(node) else {
                    continue; // childless or empty subtree
                };
                let upper = self.summary_upper(g, lvl, trie.subtree_distance(node).slack_leaf);
                let already_in = state.cands.stamp[region as usize] == state.cands.epoch
                    && state.cands.hi[region as usize] <= limit;
                if upper <= limit || already_in || lvl >= level {
                    // Fold: the summary proves the region within `limit`
                    // (or it is already proven, or the probe truncates
                    // here) — descending can change nothing the query
                    // observes. The box-based `lo` is recorded only when
                    // folding; a descended subtree contributes its cells'
                    // own (tighter) distances instead.
                    state.cands.offer(region, g, upper);
                    continue;
                }
            }
            // Multi-region subtrees descend even past the truncation
            // level: per-region bounds stay sound only if every region's
            // nearest cells remain visible.
            for (pos, child) in trie.children_of(node).into_iter().enumerate() {
                if let Some(child) = child {
                    state.stack.push((child, cell.children()[pos]));
                }
            }
        }
        // Deterministic candidate order: ascending region id.
        state.order.clear();
        state.order.extend_from_slice(&state.cands.touched);
        state.order.sort_unstable();
    }

    /// The approximate `WITHIN_DISTANCE(d)` semi-join at truncation level
    /// `level`: one aggregate per region over the points attributed to it,
    /// plus the unmatched count. No exact geometry is consulted.
    ///
    /// Acceptance is conservative (covering semantics): a point within `d`
    /// of a region is always matched; a matched point is within
    /// `d + slack(level)` of its region when the region lies fully inside
    /// the grid extent. Regions exiting the extent are accepted through
    /// their (looser) bounding-box proximity near the border — no false
    /// negatives ever, but the accept-side slack bound does not apply to
    /// them (use an exact [`DistanceSpec::within`] spec when it matters).
    /// Attribution follows the containment family's disjoint-region
    /// policy — the lowest-id accepting region — and the per-region
    /// `boundary_count` counts the matches that were *not* guaranteed
    /// within `d` (the uncertain frontier, which shrinks monotonically as
    /// the level refines).
    pub fn within_at(&self, d: f64, points: &[Point], values: &[f64], level: u8) -> JoinResult {
        assert_eq!(points.len(), values.len(), "one value per point required");
        let mut result = JoinResult::with_regions(self.join.region_count);
        let mut state = SearchState::new(self.join.region_count);
        for (p, v) in points.iter().zip(values) {
            match self.match_approx(p, d, level, &mut state) {
                Some((region, uncertain)) => result.regions[region as usize].add(*v, uncertain),
                None => result.unmatched += 1,
            }
        }
        result
    }

    fn match_approx(
        &self,
        p: &Point,
        d: f64,
        level: u8,
        state: &mut SearchState,
    ) -> Option<(PolygonId, bool)> {
        self.scan_within(p, d, level, state);
        let region = *state.order.first()?;
        let uncertain = state.cands.hi[region as usize] > d;
        Some((region, uncertain))
    }

    /// The **exact** `WITHIN_DISTANCE(d)` semi-join: the approximate
    /// filter runs at the finest built level, cells entirely inside the
    /// d-dilation accept their points wholesale, and only straddling
    /// candidates pay one counted exact segment-distance test each
    /// ([`refine_distance`]) — candidates in region-id order, first accept
    /// wins.
    ///
    /// **Determinism policy:** matched/unmatched sets and per-region
    /// attribution are bit-for-bit identical to
    /// [`BruteForceDistanceJoin::within`] over the same rows (same
    /// accepting region per point, same f64 summation order — the original
    /// point order). Only `dist_tests` differs: it counts the refinements
    /// this pipeline actually performed.
    pub fn within_refined(
        &self,
        d: f64,
        points: &[Point],
        values: &[f64],
        regions: &[MultiPolygon],
    ) -> JoinResult {
        assert_eq!(points.len(), values.len(), "one value per point required");
        assert_eq!(
            regions.len(),
            self.join.region_count,
            "refinement needs the exact geometry of every indexed region"
        );
        let mut result = JoinResult::with_regions(self.join.region_count);
        let mut state = SearchState::new(self.join.region_count);
        for (p, v) in points.iter().zip(values) {
            match self.match_refined(p, d, regions, &mut state, &mut result.dist_tests) {
                Some(region) => result.regions[region as usize].add(*v, false),
                None => result.unmatched += 1,
            }
        }
        result
    }

    fn match_refined(
        &self,
        p: &Point,
        d: f64,
        regions: &[MultiPolygon],
        state: &mut SearchState,
        dist_tests: &mut u64,
    ) -> Option<PolygonId> {
        // Full-depth scan: every region whose covering comes within d is a
        // candidate; regions never touched have dist(p, covering) > d and
        // hence exact distance > d — rejected without any geometry.
        self.scan_within(p, d, MAX_LEVEL, state);
        for i in 0..state.order.len() {
            let region = state.order[i];
            if state.cands.hi[region as usize] <= d {
                // Some covering cell places p within d of the region
                // wholesale — the exact test is guaranteed to accept.
                return Some(region);
            }
            if refine_distance(&regions[region as usize], p, dist_tests) <= d {
                return Some(region);
            }
        }
        None
    }

    /// Plans and executes a [`DistanceSpec`] end to end: bounded specs run
    /// the approximate join at the planned level, exact specs run the
    /// refined pipeline.
    pub fn execute_spec(
        &self,
        spec: &DistanceSpec,
        points: &[Point],
        values: &[f64],
        regions: &[MultiPolygon],
    ) -> (QueryPlan, JoinResult) {
        let plan = self.plan(spec);
        let result = if plan.exact_refinement {
            self.within_refined(spec.distance(), points, values, regions)
        } else {
            self.within_at(spec.distance(), points, values, plan.level)
        };
        (plan, result)
    }

    /// The sharded within-distance pipeline: each [`ShardProbe`] (which
    /// must carry its point column) is evaluated independently and the
    /// partials merge in shard index order — the same determinism policy
    /// as the containment family's sharded paths.
    ///
    /// **Shard pruning:** a shard is skipped when no point of it can be
    /// within `d` of any region: the shard's key span and the index's
    /// covered key range are both bounded by their Z-order common-ancestor
    /// cell boxes, and a box-to-box distance above `d` proves every
    /// shard point farther than `d` from every region (the covering is a
    /// conservative superset of the regions). Pruned shards contribute
    /// all-unmatched partials — which is their exact answer.
    pub fn execute_shards_spec(
        &self,
        spec: &DistanceSpec,
        shards: &[ShardProbe<'_>],
        regions: &[MultiPolygon],
        threads: usize,
    ) -> (QueryPlan, JoinResult) {
        let plan = self.plan(spec);
        let d = spec.distance();
        let covered = self.join.covered_key_range();
        let result = self.join.run_shards(shards, threads, |shard| {
            if self.prunable_beyond(covered, shard.key_span(), d) {
                self.join.pruned_partial(shard)
            } else {
                let points = shard
                    .points()
                    .expect("distance execution needs shard probes built with_points");
                if plan.exact_refinement {
                    self.within_refined(d, points, shard.values, regions)
                } else {
                    self.within_at(d, points, shard.values, plan.level)
                }
            }
        });
        (plan, result)
    }

    /// Whether a shard with key span `span` can be skipped for a
    /// within-`d` query against the covered key range `covered`. Regions
    /// exiting the grid extent have parts with no covering cells, so the
    /// covered range alone cannot rule them out — the shard must also
    /// clear every border-exit bounding box by more than `d`.
    pub(crate) fn prunable_beyond(
        &self,
        covered: Option<(u64, u64)>,
        span: Option<(u64, u64)>,
        d: f64,
    ) -> bool {
        let Some((slo, shi)) = span else {
            return true; // no shard points: nothing to match
        };
        let extent = self.extent();
        let span_box =
            extent.cell_id_bbox(CellId::from_raw(slo).common_ancestor(CellId::from_raw(shi)));
        // Shard points lie inside the span box; an out-of-extent region
        // part lies inside its region's bbox. A gap above d to every
        // border-exit bbox proves no shard point can match through an
        // unindexed part.
        for &(_, bbox) in &self.join.border_exits {
            if box_gap(&span_box, &bbox) <= d {
                return false;
            }
        }
        let Some((clo, chi)) = covered else {
            return true; // nothing indexed and no reachable exits
        };
        if !prunable(covered, span) {
            // Overlapping key spans: shard points can sit inside covered
            // cells — never prunable for a distance query.
            return false;
        }
        let covered_box =
            extent.cell_id_bbox(CellId::from_raw(clo).common_ancestor(CellId::from_raw(chi)));
        box_gap(&covered_box, &span_box) > d
    }

    /// Approximate k-nearest-regions for one probe point at truncation
    /// level `level`: a best-first search over the frozen trie ordered by
    /// point-to-cell-box distance, bounding truncated subtrees through the
    /// per-node distance summaries. Returns up to `k` neighbors (fewer
    /// when the index holds fewer regions), each with a guaranteed
    /// distance interval, ordered by ascending upper bound.
    ///
    /// For regions whose geometry lies entirely inside the grid extent the
    /// interval width is at most `cell_diagonal(level) +
    /// bin_width(level)`; regions exiting the extent keep sound but wider
    /// intervals (their out-of-extent parts have no covering cells to
    /// bound them with — use [`knn_refined`](Self::knn_refined) when they
    /// matter).
    pub fn knn(&self, p: &Point, k: usize, level: u8) -> Result<Vec<KnnNeighbor>, QueryError> {
        if k == 0 {
            return Err(QueryError::InvalidK);
        }
        let mut state = SearchState::new(self.join.region_count);
        self.knn_into(p, k, level, &mut state);
        Ok(self.collect_neighbors(k, &mut state))
    }

    /// Best-first search shared by the approximate and refined kNN paths.
    /// Fills `state.cands`; terminates once the heap's smallest geometric
    /// distance exceeds the k-th smallest candidate upper bound (no
    /// unvisited cell can then improve the top k).
    fn knn_into(&self, p: &Point, k: usize, level: u8, state: &mut SearchState) {
        let trie = self.trie();
        let extent = self.extent();
        state.cands.begin();
        // Regions exiting the extent stay candidates through their
        // out-of-extent lower bound — the covering alone cannot rule their
        // unindexed parts out.
        self.offer_border_exits(p, f64::INFINITY, &mut state.cands);
        state.heap.clear();
        state.heap.push(HeapEntry {
            g: extent.cell_id_bbox(CellId::ROOT).distance_to_point(p),
            node: 0,
            cell: CellId::ROOT,
        });
        while let Some(entry) = state.heap.pop() {
            let kth = state.cands.kth_hi(k, &mut state.scratch);
            if entry.g > kth {
                break;
            }
            let lvl = entry.cell.level();
            let bin = extent.cell_size(lvl);
            for posting in trie.postings_of(entry.node) {
                let slack = posting_slack(posting.class, posting.dist.hi_world(bin));
                state.cands.offer(posting.polygon, entry.g, entry.g + slack);
            }
            // Single-region subtrees fold through their summary; they
            // descend only while descending can still tighten the region's
            // upper bound and the truncation level allows it. The summary
            // is offered only when folding — a descended subtree
            // contributes its cells' own distances, so the loose box-based
            // `lo` never shadows them. Multi-region subtrees always
            // descend so each region keeps a valid lower bound.
            if trie.subtree_single_region(entry.node) {
                let Some(region) = trie.subtree_first_polygon(entry.node) else {
                    continue; // childless or empty subtree
                };
                let no_improvement = state.cands.stamp[region as usize] == state.cands.epoch
                    && state.cands.hi[region as usize] <= entry.g;
                if lvl >= level || no_improvement {
                    let upper = self.summary_upper(
                        entry.g,
                        lvl,
                        trie.subtree_distance(entry.node).slack_leaf,
                    );
                    state.cands.offer(region, entry.g, upper);
                    continue;
                }
            }
            // Recompute once after this node's offers; the candidate set
            // does not change while pushing children.
            let kth_now = state.cands.kth_hi(k, &mut state.scratch);
            for (pos, child) in trie.children_of(entry.node).into_iter().enumerate() {
                if let Some(child) = child {
                    let cell = entry.cell.children()[pos];
                    let g = extent.cell_id_bbox(cell).distance_to_point(p);
                    // A subtree farther than the k-th upper bound can
                    // neither join the top k nor tighten it: bounds only
                    // shrink, so the test stays valid later.
                    if g <= kth_now {
                        state.heap.push(HeapEntry {
                            g,
                            node: child,
                            cell,
                        });
                    }
                }
            }
        }
    }

    /// Ranks the candidate set and returns the top `k` by ascending upper
    /// bound (ties by lower bound, then region id — fully deterministic).
    fn collect_neighbors(&self, k: usize, state: &mut SearchState) -> Vec<KnnNeighbor> {
        let mut neighbors: Vec<KnnNeighbor> = state
            .cands
            .touched
            .iter()
            .map(|&r| KnnNeighbor {
                region: r,
                lo: state.cands.lo[r as usize],
                hi: state.cands.hi[r as usize],
            })
            .collect();
        neighbors.sort_unstable_by(|a, b| {
            a.hi.total_cmp(&b.hi)
                .then(a.lo.total_cmp(&b.lo))
                .then(a.region.cmp(&b.region))
        });
        neighbors.truncate(k);
        neighbors
    }

    /// Exact k-nearest-regions: the best-first search provides the
    /// candidate set and its guaranteed bounds, then **only the frontier**
    /// — candidates whose lower bound does not exceed the k-th smallest
    /// upper bound, i.e. the only regions that can appear in the true top
    /// k — pays a counted exact segment-distance test. Returns the exact
    /// top `k` (intervals collapsed to the exact distance, ascending) and
    /// the number of exact tests spent.
    pub fn knn_refined(
        &self,
        p: &Point,
        k: usize,
        regions: &[MultiPolygon],
    ) -> Result<(Vec<KnnNeighbor>, u64), QueryError> {
        if k == 0 {
            return Err(QueryError::InvalidK);
        }
        assert_eq!(
            regions.len(),
            self.join.region_count,
            "refinement needs the exact geometry of every indexed region"
        );
        let mut state = SearchState::new(self.join.region_count);
        self.knn_into(p, k, MAX_LEVEL, &mut state);
        let kth = state.cands.kth_hi(k, &mut state.scratch);
        let mut dist_tests = 0u64;
        let mut exact: Vec<KnnNeighbor> = Vec::new();
        for &r in &state.cands.touched {
            if state.cands.lo[r as usize] > kth {
                continue; // cannot beat the k-th upper bound
            }
            // Point-to-region distance: 0 inside, boundary distance outside.
            let sd = refine_distance(&regions[r as usize], p, &mut dist_tests).max(0.0);
            exact.push(KnnNeighbor {
                region: r,
                lo: sd,
                hi: sd,
            });
        }
        exact.sort_unstable_by(|a, b| a.lo.total_cmp(&b.lo).then(a.region.cmp(&b.region)));
        exact.truncate(k);
        Ok((exact, dist_tests))
    }
}

/// Minimum gap between two boxes (0 when they touch or overlap).
fn box_gap(a: &BoundingBox, b: &BoundingBox) -> f64 {
    let dx = (a.min.x - b.max.x).max(b.min.x - a.max.x).max(0.0);
    let dy = (a.min.y - b.max.y).max(b.min.y - a.max.y).max(0.0);
    (dx * dx + dy * dy).sqrt()
}

/// The brute-force exact `WITHIN_DISTANCE(d)` baseline: every point tests
/// every region with a counted exact segment-distance evaluation, in
/// region-id order, until one accepts. The reference the refined
/// [`DistanceJoin`] must reproduce bit-for-bit (and the cost yardstick its
/// `dist_tests` savings are measured against).
pub struct BruteForceDistanceJoin<'a> {
    regions: &'a [MultiPolygon],
}

impl<'a> BruteForceDistanceJoin<'a> {
    /// Borrows the region geometries (the baseline only reads them).
    pub fn new(regions: &'a [MultiPolygon]) -> Self {
        BruteForceDistanceJoin { regions }
    }

    /// Executes the exact within-distance semi-join.
    pub fn within(&self, d: f64, points: &[Point], values: &[f64]) -> JoinResult {
        assert_eq!(points.len(), values.len(), "one value per point required");
        let mut result = JoinResult::with_regions(self.regions.len());
        for (p, v) in points.iter().zip(values) {
            let mut matched = false;
            for (rid, region) in self.regions.iter().enumerate() {
                if refine_distance(region, p, &mut result.dist_tests) <= d {
                    result.regions[rid].add(*v, false);
                    matched = true;
                    break;
                }
            }
            if !matched {
                result.unmatched += 1;
            }
        }
        result
    }

    /// Exact k-nearest-regions by scanning every region (counted).
    pub fn knn(&self, p: &Point, k: usize, dist_tests: &mut u64) -> Vec<KnnNeighbor> {
        let mut all: Vec<KnnNeighbor> = self
            .regions
            .iter()
            .enumerate()
            .map(|(rid, region)| {
                let sd = refine_distance(region, p, dist_tests).max(0.0);
                KnnNeighbor {
                    region: rid as PolygonId,
                    lo: sd,
                    hi: sd,
                }
            })
            .collect();
        all.sort_unstable_by(|a, b| a.lo.total_cmp(&b.lo).then(a.region.cmp(&b.region)));
        all.truncate(k);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbsa_datagen::{city_extent, PolygonSetGenerator, TaxiPointGenerator};
    use dbsa_geom::Polygon;
    use dbsa_raster::DistanceBound;
    use proptest::prelude::*;

    fn workload(
        points: usize,
        regions: usize,
        seed: u64,
    ) -> (Vec<Point>, Vec<f64>, Vec<MultiPolygon>, GridExtent) {
        let taxi = TaxiPointGenerator::new(city_extent(), seed).generate(points);
        let pts: Vec<Point> = taxi.iter().map(|t| t.location).collect();
        let vals: Vec<f64> = taxi.iter().map(|t| t.fare).collect();
        let polys = PolygonSetGenerator::new(city_extent(), regions, 20, seed + 3).generate();
        (pts, vals, polys, GridExtent::covering(&city_extent()))
    }

    #[test]
    fn refined_within_equals_brute_force_bit_for_bit() {
        let (points, values, regions, extent) = workload(3_000, 9, 11);
        let join = ApproximateCellJoin::build(&regions, &extent, DistanceBound::meters(8.0));
        let brute = BruteForceDistanceJoin::new(&regions);
        for d in [0.0, 25.0, 400.0, 4_000.0] {
            let exact = brute.within(d, &points, &values);
            let refined = join
                .distance()
                .within_refined(d, &points, &values, &regions);
            assert_eq!(refined.regions, exact.regions, "d = {d}");
            assert_eq!(refined.unmatched, exact.unmatched, "d = {d}");
            assert!(
                refined.dist_tests < exact.dist_tests,
                "d = {d}: refinement must out-filter brute force ({} vs {})",
                refined.dist_tests,
                exact.dist_tests
            );
        }
    }

    #[test]
    fn approximate_within_is_conservative_and_tightens_with_level() {
        let (points, values, regions, extent) = workload(3_000, 9, 5);
        let join = ApproximateCellJoin::build(&regions, &extent, DistanceBound::meters(8.0));
        let d = 200.0;
        let exact = BruteForceDistanceJoin::new(&regions).within(d, &points, &values);
        let mut prev_matched = u64::MAX;
        // Sweep loose → tight: the conservative match total shrinks toward
        // the exact one as the tolerance (and hence the served truncation
        // level) tightens.
        for tolerance in [512.0, 64.0, 8.0] {
            let spec = DistanceSpec::within_bounded(d, tolerance).unwrap();
            let (plan, result) = join
                .distance()
                .execute_spec(&spec, &points, &values, &regions);
            assert!(!plan.exact_refinement);
            assert_eq!(result.dist_tests, 0, "bounded specs never refine");
            // Conservative: no false negatives at any level.
            assert!(result.total_matched() >= exact.total_matched());
            // The accept set only shrinks as the tolerance tightens (the
            // truncated covering is a superset of the finer one).
            assert!(result.total_matched() <= prev_matched, "tol {tolerance}");
            prev_matched = result.total_matched();
        }
    }

    /// An extent that fully contains every region, so the width guarantee
    /// applies to all of them (regions exiting the extent keep sound but
    /// unbounded-width intervals).
    fn covering_extent(regions: &[MultiPolygon]) -> GridExtent {
        let mut bbox = city_extent();
        for r in regions {
            bbox.expand_to_box(&r.bbox());
        }
        GridExtent::covering(&bbox)
    }

    #[test]
    fn knn_intervals_contain_exact_and_widths_respect_the_plan() {
        let (points, _, regions, _) = workload(120, 12, 23);
        let extent = covering_extent(&regions);
        let join = ApproximateCellJoin::build(&regions, &extent, DistanceBound::meters(8.0));
        let brute = BruteForceDistanceJoin::new(&regions);
        let k = 3;
        let mut prev_slack = f64::INFINITY;
        for level in [6u8, 9, join.finest_level()] {
            let slack = extent.cell_diagonal(level) + extent.cell_size(level);
            assert!(slack <= prev_slack);
            prev_slack = slack;
            for p in points.iter().take(40) {
                let neighbors = join.distance().knn(p, k, level).unwrap();
                assert!(!neighbors.is_empty());
                let mut scratch = 0u64;
                let exact = brute.knn(p, regions.len(), &mut scratch);
                for n in &neighbors {
                    let e = exact
                        .iter()
                        .find(|x| x.region == n.region)
                        .expect("every region exists");
                    assert!(
                        n.contains(e.lo),
                        "level {level}: exact {} outside [{}, {}] for region {}",
                        e.lo,
                        n.lo,
                        n.hi,
                        n.region
                    );
                    assert!(
                        n.width() <= slack + 1e-9,
                        "level {level}: width {} exceeds slack {slack}",
                        n.width()
                    );
                }
            }
        }
    }

    #[test]
    fn refined_knn_equals_the_brute_force_top_k() {
        let (points, _, regions, extent) = workload(200, 10, 31);
        let join = ApproximateCellJoin::build(&regions, &extent, DistanceBound::meters(8.0));
        let brute = BruteForceDistanceJoin::new(&regions);
        let mut total_refined_tests = 0u64;
        let mut total_brute_tests = 0u64;
        for p in points.iter().take(60) {
            let (got, tests) = join.distance().knn_refined(p, 3, &regions).unwrap();
            total_refined_tests += tests;
            let want = brute.knn(p, 3, &mut total_brute_tests);
            assert_eq!(got, want, "at {p:?}");
        }
        assert!(
            total_refined_tests < total_brute_tests,
            "frontier refinement must beat the full scan: {total_refined_tests} vs {total_brute_tests}"
        );
    }

    #[test]
    fn knn_rejects_zero_k_with_a_typed_error() {
        let (_, _, regions, extent) = workload(10, 4, 1);
        let join = ApproximateCellJoin::build(&regions, &extent, DistanceBound::meters(8.0));
        let p = Point::new(0.0, 0.0);
        assert_eq!(
            join.distance().knn(&p, 0, MAX_LEVEL).unwrap_err(),
            QueryError::InvalidK
        );
        assert_eq!(
            join.distance().knn_refined(&p, 0, &regions).unwrap_err(),
            QueryError::InvalidK
        );
    }

    #[test]
    fn sharded_distance_join_matches_unsharded_and_prunes_far_shards() {
        let (points, values, regions, extent) = workload(4_000, 9, 17);
        let join = ApproximateCellJoin::build(&regions, &extent, DistanceBound::meters(8.0));
        let d = 120.0;
        let spec = DistanceSpec::within(d).unwrap();
        let (_, seq) = join
            .distance()
            .execute_spec(&spec, &points, &values, &regions);

        // Shard-order rows.
        let mut rows: Vec<(u64, Point, f64)> = points
            .iter()
            .zip(&values)
            .map(|(p, v)| (extent.leaf_cell_id(p).raw(), *p, *v))
            .collect();
        rows.sort_unstable_by_key(|r| r.0);
        let keys: Vec<u64> = rows.iter().map(|r| r.0).collect();
        let pts: Vec<Point> = rows.iter().map(|r| r.1).collect();
        let vals: Vec<f64> = rows.iter().map(|r| r.2).collect();
        for shards in [1usize, 2, 8] {
            let ranges = dbsa_grid::partition_sorted_keys(&keys, shards);
            let bounds = dbsa_grid::split_at_ranges(&keys, &ranges);
            let probes: Vec<ShardProbe<'_>> = bounds
                .iter()
                .map(|&(a, b)| ShardProbe::with_points(&keys[a..b], &pts[a..b], &vals[a..b]))
                .collect();
            let (plan, sharded) = join
                .distance()
                .execute_shards_spec(&spec, &probes, &regions, 4);
            assert!(plan.exact_refinement);
            assert_eq!(sharded.unmatched, seq.unmatched, "{shards} shards");
            for (a, b) in sharded.regions.iter().zip(&seq.regions) {
                assert_eq!(a.count, b.count, "{shards} shards");
                assert!((a.sum - b.sum).abs() < 1e-6);
            }
        }

        // A far-away shard prunes: its partial is all-unmatched with no
        // distance tests at all.
        let far = Point::new(39_999.0, 39_999.0);
        let far_key = extent.leaf_cell_id(&far).raw();
        let far_keys = vec![far_key; 7];
        let far_pts = vec![far; 7];
        let far_vals = vec![1.0; 7];
        let probe = ShardProbe::with_points(&far_keys, &far_pts, &far_vals);
        let tight = DistanceSpec::within(2.0).unwrap();
        let (_, pruned) = join
            .distance()
            .execute_shards_spec(&tight, &[probe], &regions, 1);
        assert_eq!(pruned.unmatched, 7);
        assert_eq!(pruned.dist_tests, 0, "pruned shards never touch geometry");
    }

    #[test]
    fn sharded_pruning_never_hides_out_of_extent_regions() {
        // A region entirely beyond the grid extent produces zero covering
        // cells (covered key range = None), so only its border-exit bbox
        // can keep nearby shards alive. Pre-fix, such shards were pruned
        // to all-unmatched; the brute-force baseline disagrees.
        let extent = GridExtent::new(Point::new(0.0, 0.0), 1024.0);
        let outside = MultiPolygon::from(Polygon::from_coords(&[
            (1100.0, 0.0),
            (1200.0, 0.0),
            (1200.0, 100.0),
            (1100.0, 100.0),
        ]));
        let regions = vec![outside];
        let join = ApproximateCellJoin::build(&regions, &extent, DistanceBound::meters(4.0));
        assert_eq!(join.covered_key_range(), None, "no in-extent cells");

        let points = vec![Point::new(1000.0, 50.0), Point::new(10.0, 500.0)];
        let values = vec![1.0, 1.0];
        let d = 150.0; // first point is 100 m from the region, second far
        let exact = BruteForceDistanceJoin::new(&regions).within(d, &points, &values);
        assert_eq!(exact.total_matched(), 1);

        let mut rows: Vec<(u64, Point, f64)> = points
            .iter()
            .zip(&values)
            .map(|(p, v)| (extent.leaf_cell_id(p).raw(), *p, *v))
            .collect();
        rows.sort_unstable_by_key(|r| r.0);
        let keys: Vec<u64> = rows.iter().map(|r| r.0).collect();
        let pts: Vec<Point> = rows.iter().map(|r| r.1).collect();
        let vals: Vec<f64> = rows.iter().map(|r| r.2).collect();
        for shards in [1usize, 2] {
            let ranges = dbsa_grid::partition_sorted_keys(&keys, shards);
            let bounds = dbsa_grid::split_at_ranges(&keys, &ranges);
            let probes: Vec<ShardProbe<'_>> = bounds
                .iter()
                .map(|&(a, b)| ShardProbe::with_points(&keys[a..b], &pts[a..b], &vals[a..b]))
                .collect();
            let spec = DistanceSpec::within(d).unwrap();
            let (_, sharded) = join
                .distance()
                .execute_shards_spec(&spec, &probes, &regions, 2);
            assert_eq!(sharded.unmatched, exact.unmatched, "{shards} shards");
            assert_eq!(sharded.regions[0].count, exact.regions[0].count);
        }
        // A genuinely far query still prunes to all-unmatched.
        let tight = DistanceSpec::within(10.0).unwrap();
        let probe = ShardProbe::with_points(&keys, &pts, &vals);
        let (_, pruned) = join
            .distance()
            .execute_shards_spec(&tight, &[probe], &regions, 1);
        assert_eq!(pruned.total_matched(), 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Refined within(d) equals the brute-force baseline on random
        /// workloads, thresholds and shard counts.
        #[test]
        fn prop_refined_within_equals_brute_force(
            seed in 0u64..40,
            d in 0f64..2_000.0,
            shards in 1usize..5,
        ) {
            let (points, values, regions, extent) = workload(600, 6, seed);
            let join =
                ApproximateCellJoin::build(&regions, &extent, DistanceBound::meters(10.0));
            let exact = BruteForceDistanceJoin::new(&regions).within(d, &points, &values);
            let refined =
                join.distance().within_refined(d, &points, &values, &regions);
            prop_assert_eq!(&refined.regions, &exact.regions);
            prop_assert_eq!(refined.unmatched, exact.unmatched);

            // Sharded evaluation: counts identical, sums to rounding.
            let mut rows: Vec<(u64, Point, f64)> = points
                .iter()
                .zip(&values)
                .map(|(p, v)| (extent.leaf_cell_id(p).raw(), *p, *v))
                .collect();
            rows.sort_unstable_by_key(|r| r.0);
            let keys: Vec<u64> = rows.iter().map(|r| r.0).collect();
            let pts: Vec<Point> = rows.iter().map(|r| r.1).collect();
            let vals: Vec<f64> = rows.iter().map(|r| r.2).collect();
            let ranges = dbsa_grid::partition_sorted_keys(&keys, shards);
            let bounds = dbsa_grid::split_at_ranges(&keys, &ranges);
            let probes: Vec<ShardProbe<'_>> = bounds
                .iter()
                .map(|&(a, b)| ShardProbe::with_points(&keys[a..b], &pts[a..b], &vals[a..b]))
                .collect();
            let spec = DistanceSpec::within(d).unwrap();
            let (_, sharded) =
                join.distance().execute_shards_spec(&spec, &probes, &regions, 3);
            prop_assert_eq!(sharded.unmatched, exact.unmatched);
            for (a, b) in sharded.regions.iter().zip(&exact.regions) {
                prop_assert_eq!(a.count, b.count);
                prop_assert!((a.sum - b.sum).abs() < 1e-6);
            }
        }
    }
}

//! Result-range estimation (paper Section 6).
//!
//! With a **conservative** raster approximation, errors can only be false
//! positives and can only originate from boundary cells. If the approximate
//! count of a region is `α` and the portion of that count contributed by
//! boundary cells is `β`, the exact count is guaranteed to lie in
//! `[α − β, α]` with 100 % confidence (the worst case being that every
//! boundary-cell point is a false positive).

use crate::aggregate::RegionAggregate;

/// A guaranteed interval for an aggregate value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResultRange {
    /// Lower bound of the exact result.
    pub lower: f64,
    /// Upper bound of the exact result (the approximate answer itself for
    /// conservative approximations).
    pub upper: f64,
}

impl ResultRange {
    /// Builds the count range `[α − β, α]` from a conservative approximate
    /// aggregate.
    pub fn count_range(aggregate: &RegionAggregate) -> Self {
        let alpha = aggregate.count as f64;
        let beta = aggregate.boundary_count as f64;
        ResultRange {
            lower: (alpha - beta).max(0.0),
            upper: alpha,
        }
    }

    /// Builds the SUM range: in the worst case the entire boundary
    /// contribution is removed.
    pub fn sum_range(aggregate: &RegionAggregate, boundary_sum: f64) -> Self {
        ResultRange {
            lower: aggregate.sum - boundary_sum,
            upper: aggregate.sum,
        }
    }

    /// Width of the interval (the uncertainty of the answer).
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }

    /// Midpoint of the interval — a reasonable single-value estimate when
    /// the boundary distribution is assumed to be half-in / half-out.
    pub fn midpoint(&self) -> f64 {
        (self.lower + self.upper) * 0.5
    }

    /// Whether a (known, exact) value falls inside the guaranteed interval.
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lower - 1e-9 && value <= self.upper + 1e-9
    }

    /// Relative uncertainty: width divided by the upper bound (0 when empty).
    pub fn relative_width(&self) -> f64 {
        if self.upper == 0.0 {
            0.0
        } else {
            self.width() / self.upper
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::ApproximateCellJoin;
    use dbsa_datagen::{city_extent, PolygonSetGenerator, TaxiPointGenerator};
    use dbsa_geom::Point;
    use dbsa_grid::GridExtent;
    use dbsa_raster::DistanceBound;

    #[test]
    fn range_arithmetic() {
        let mut agg = RegionAggregate::default();
        for i in 0..10 {
            agg.add(1.0, i < 3); // 3 of 10 points via boundary cells
        }
        let range = ResultRange::count_range(&agg);
        assert_eq!(range.lower, 7.0);
        assert_eq!(range.upper, 10.0);
        assert_eq!(range.width(), 3.0);
        assert_eq!(range.midpoint(), 8.5);
        assert!(range.contains(8.0));
        assert!(!range.contains(6.0));
        assert!(!range.contains(11.0));
        assert!((range.relative_width() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn empty_aggregate_gives_zero_range() {
        let range = ResultRange::count_range(&RegionAggregate::default());
        assert_eq!(range.lower, 0.0);
        assert_eq!(range.upper, 0.0);
        assert_eq!(range.relative_width(), 0.0);
    }

    #[test]
    fn lower_bound_is_clamped_at_zero() {
        // boundary_count can exceed count only through misuse, but the range
        // must still be sane.
        let agg = RegionAggregate {
            count: 2,
            boundary_count: 5,
            ..Default::default()
        };
        let range = ResultRange::count_range(&agg);
        assert_eq!(range.lower, 0.0);
        assert_eq!(range.upper, 2.0);
    }

    #[test]
    fn sum_range_subtracts_boundary_contribution() {
        let mut agg = RegionAggregate::default();
        agg.add(10.0, false);
        agg.add(4.0, true);
        let range = ResultRange::sum_range(&agg, 4.0);
        assert_eq!(range.lower, 10.0);
        assert_eq!(range.upper, 14.0);
    }

    #[test]
    fn exact_counts_always_fall_inside_the_guaranteed_interval() {
        // End-to-end: run the conservative approximate join and check that
        // the exact per-region count lies in every region's interval —
        // the 100 % confidence claim of Section 6.
        let gen = TaxiPointGenerator::new(city_extent(), 21);
        let taxi = gen.generate(6_000);
        let points: Vec<Point> = taxi.iter().map(|t| t.location).collect();
        let values: Vec<f64> = taxi.iter().map(|t| t.fare).collect();
        let regions = PolygonSetGenerator::new(city_extent(), 16, 20, 4).generate();
        let extent = GridExtent::covering(&city_extent());
        let join = ApproximateCellJoin::build(&regions, &extent, DistanceBound::meters(20.0));
        let result = join.execute(&points, &values);

        for (i, region) in regions.iter().enumerate() {
            let exact = points.iter().filter(|p| region.contains_point(p)).count() as f64;
            let range = ResultRange::count_range(&result.regions[i]);
            assert!(
                range.contains(exact),
                "region {i}: exact {exact} outside guaranteed range [{}, {}]",
                range.lower,
                range.upper
            );
        }
    }

    #[test]
    fn tighter_bounds_give_narrower_intervals() {
        let gen = TaxiPointGenerator::new(city_extent(), 33);
        let taxi = gen.generate(4_000);
        let points: Vec<Point> = taxi.iter().map(|t| t.location).collect();
        let values: Vec<f64> = taxi.iter().map(|t| t.fare).collect();
        let regions = PolygonSetGenerator::new(city_extent(), 9, 20, 8).generate();
        let extent = GridExtent::covering(&city_extent());

        let mut last_width = f64::INFINITY;
        for eps in [80.0, 20.0, 5.0] {
            let join = ApproximateCellJoin::build(&regions, &extent, DistanceBound::meters(eps));
            let result = join.execute(&points, &values);
            let total_width: f64 = result
                .regions
                .iter()
                .map(|r| ResultRange::count_range(r).width())
                .sum();
            assert!(total_width <= last_width + 1e-9,
                "interval width should shrink with the bound (ε={eps}): {total_width} > {last_width}");
            last_width = total_width;
        }
    }
}

//! Error types and error metrics of the query layer.
//!
//! Two unrelated kinds of "error" live here:
//!
//! * **Typed failures** — [`QueryError`] (with its low-level
//!   [`SpecError`] source) is what the query APIs return instead of
//!   panicking when a caller hands them an invalid specification: a
//!   non-finite or negative distance bound, a negative within-distance
//!   threshold, a zero `k`. All of them implement [`std::error::Error`]
//!   with [`Display`](std::fmt::Display) and proper
//!   [`source`](std::error::Error::source) chaining, so they compose with
//!   `?`-based error handling and error-report crates.
//! * **Accuracy metrics** — the paper reports accuracy as relative errors
//!   over regions (e.g. "the median error is only about 0.15 %" for BRJ at
//!   a 10 m bound, Figure 7); [`relative_error`], [`median`] and
//!   [`ErrorSummary`] provide those metrics for the experiment reports.

/// What was wrong with a numeric specification parameter — the low-level
/// cause wrapped (and chained via `source`) by [`QueryError`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpecError {
    /// The failure category.
    pub kind: SpecErrorKind,
    /// The offending value as supplied by the caller.
    pub value: f64,
}

/// Categories of specification-parameter failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecErrorKind {
    /// The value was NaN or infinite.
    NonFinite,
    /// The value was negative where a non-negative one is required.
    Negative,
    /// The value was zero (or below) where a strictly positive one is
    /// required.
    NotPositive,
}

impl SpecError {
    /// Validates a distance bound ε: finite and strictly positive.
    pub fn check_bound(value: f64) -> Result<f64, SpecError> {
        if !value.is_finite() {
            Err(SpecError {
                kind: SpecErrorKind::NonFinite,
                value,
            })
        } else if value <= 0.0 {
            Err(SpecError {
                kind: SpecErrorKind::NotPositive,
                value,
            })
        } else {
            Ok(value)
        }
    }

    /// Validates a within-distance threshold: finite and non-negative
    /// (`within(0)` is the "touches or inside" query and is legal).
    pub fn check_distance(value: f64) -> Result<f64, SpecError> {
        if !value.is_finite() {
            Err(SpecError {
                kind: SpecErrorKind::NonFinite,
                value,
            })
        } else if value < 0.0 {
            Err(SpecError {
                kind: SpecErrorKind::Negative,
                value,
            })
        } else {
            Ok(value)
        }
    }
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            SpecErrorKind::NonFinite => {
                write!(f, "value {} is not finite", self.value)
            }
            SpecErrorKind::Negative => {
                write!(f, "value {} is negative", self.value)
            }
            SpecErrorKind::NotPositive => {
                write!(f, "value {} is not strictly positive", self.value)
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// Typed failure of a query-layer API. Returned instead of panicking when
/// a request specification cannot be honoured.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryError {
    /// A distance bound (accuracy tolerance) failed validation.
    InvalidBound {
        /// The underlying parameter failure.
        source: SpecError,
    },
    /// A within-distance threshold failed validation.
    InvalidDistance {
        /// The underlying parameter failure.
        source: SpecError,
    },
    /// A k-nearest-neighbor request asked for `k = 0`.
    InvalidK,
    /// The serving tier's admission queue was full: the query was rejected
    /// at submission, not silently dropped. Callers may retry after
    /// backing off.
    Overloaded {
        /// Queries already waiting when this one was rejected.
        queued: usize,
        /// The configured admission-queue capacity.
        capacity: usize,
    },
    /// The serving tier has been shut down: no further queries are
    /// admitted (already-admitted queries still drain to completion).
    ServiceStopped,
    /// The query's deadline expired before the serving tier could execute
    /// it (checked at admission, at batch formation, and between batch
    /// groups). A query that *starts* executing in time but finishes late
    /// still delivers its (late) result instead of this error.
    DeadlineExceeded {
        /// Time the query spent waiting in the admission queue.
        queued: std::time::Duration,
        /// Total time since submission when the miss was declared.
        elapsed: std::time::Duration,
    },
    /// The query failed inside the engine: its execution panicked and the
    /// panic was isolated to this query. The scheduler thread survives and
    /// other queries in the same batch are unaffected.
    Internal,
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::InvalidBound { .. } => {
                write!(f, "invalid distance bound in query spec")
            }
            QueryError::InvalidDistance { .. } => {
                write!(f, "invalid within-distance threshold in query spec")
            }
            QueryError::InvalidK => write!(f, "k must be at least 1"),
            QueryError::Overloaded { queued, capacity } => {
                write!(
                    f,
                    "serving queue full ({queued} queued of {capacity} capacity)"
                )
            }
            QueryError::ServiceStopped => write!(f, "query service stopped"),
            QueryError::DeadlineExceeded { queued, elapsed } => {
                write!(
                    f,
                    "deadline exceeded after {elapsed:?} ({queued:?} of it queued)"
                )
            }
            QueryError::Internal => {
                write!(f, "internal error: query execution panicked (isolated)")
            }
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::InvalidBound { source } | QueryError::InvalidDistance { source } => {
                Some(source)
            }
            QueryError::InvalidK
            | QueryError::Overloaded { .. }
            | QueryError::ServiceStopped
            | QueryError::DeadlineExceeded { .. }
            | QueryError::Internal => None,
        }
    }
}

/// Relative error `|approx - exact| / exact` (0 when both are 0, infinite
/// when only the exact value is 0).
pub fn relative_error(approx: f64, exact: f64) -> f64 {
    if exact == 0.0 {
        if approx == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (approx - exact).abs() / exact.abs()
    }
}

/// Median of a sample (NaN-free input assumed). Returns 0 for empty input.
pub fn median(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in error samples"));
    let mid = sorted.len() / 2;
    if sorted.len().is_multiple_of(2) {
        (sorted[mid - 1] + sorted[mid]) * 0.5
    } else {
        sorted[mid]
    }
}

/// Summary statistics of per-region relative errors.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ErrorSummary {
    /// Number of regions compared.
    pub regions: usize,
    /// Median relative error.
    pub median: f64,
    /// Mean relative error.
    pub mean: f64,
    /// Maximum relative error.
    pub max: f64,
}

impl ErrorSummary {
    /// Computes the summary from paired approximate/exact values, skipping
    /// regions where both are zero and treating exact-zero regions as 100 %
    /// error when the approximation reports something.
    pub fn from_pairs<I: IntoIterator<Item = (f64, f64)>>(pairs: I) -> Self {
        let mut errors: Vec<f64> = Vec::new();
        for (approx, exact) in pairs {
            if approx == 0.0 && exact == 0.0 {
                continue;
            }
            let e = if exact == 0.0 {
                1.0
            } else {
                relative_error(approx, exact)
            };
            errors.push(e);
        }
        if errors.is_empty() {
            return ErrorSummary::default();
        }
        let mean = errors.iter().sum::<f64>() / errors.len() as f64;
        let max = errors.iter().copied().fold(0.0, f64::max);
        ErrorSummary {
            regions: errors.len(),
            median: median(&errors),
            mean,
            max,
        }
    }
}

impl std::fmt::Display for ErrorSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "median {:.3}%, mean {:.3}%, max {:.3}% over {} regions",
            self.median * 100.0,
            self.mean * 100.0,
            self.max * 100.0,
            self.regions
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn relative_error_cases() {
        assert_eq!(relative_error(110.0, 100.0), 0.1);
        assert_eq!(relative_error(90.0, 100.0), 0.1);
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert!(relative_error(5.0, 0.0).is_infinite());
        assert_eq!(relative_error(100.0, 100.0), 0.0);
    }

    #[test]
    fn median_cases() {
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[3.0]), 3.0);
        assert_eq!(median(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), 2.5);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
    }

    #[test]
    fn summary_from_pairs() {
        let summary = ErrorSummary::from_pairs(vec![
            (100.0, 100.0), // 0 %
            (102.0, 100.0), // 2 %
            (110.0, 100.0), // 10 %
            (0.0, 0.0),     // skipped
            (5.0, 0.0),     // counted as 100 %
        ]);
        assert_eq!(summary.regions, 4);
        assert!((summary.median - 0.06).abs() < 1e-12);
        assert!((summary.max - 1.0).abs() < 1e-12);
        assert!(summary.mean > 0.0);
        let text = summary.to_string();
        assert!(text.contains("median"));
    }

    #[test]
    fn empty_summary() {
        let s = ErrorSummary::from_pairs(Vec::<(f64, f64)>::new());
        assert_eq!(s.regions, 0);
        assert_eq!(s.median, 0.0);
    }

    #[test]
    fn spec_errors_classify_and_display() {
        assert_eq!(SpecError::check_bound(4.0), Ok(4.0));
        assert_eq!(
            SpecError::check_bound(f64::NAN).unwrap_err().kind,
            SpecErrorKind::NonFinite
        );
        assert_eq!(
            SpecError::check_bound(0.0).unwrap_err().kind,
            SpecErrorKind::NotPositive
        );
        assert_eq!(SpecError::check_distance(0.0), Ok(0.0));
        assert_eq!(
            SpecError::check_distance(-1.0).unwrap_err().kind,
            SpecErrorKind::Negative
        );
        assert!(SpecError::check_distance(f64::INFINITY).is_err());
        assert!(SpecError::check_bound(-3.0)
            .unwrap_err()
            .to_string()
            .contains("-3"));
    }

    #[test]
    fn query_errors_chain_their_source() {
        use std::error::Error;
        let err = QueryError::InvalidBound {
            source: SpecError::check_bound(f64::NAN).unwrap_err(),
        };
        assert!(err.to_string().contains("distance bound"));
        let source = err.source().expect("bound errors chain a SpecError");
        assert!(source.to_string().contains("not finite"));
        assert!(QueryError::InvalidK.source().is_none());
        let dist = QueryError::InvalidDistance {
            source: SpecError::check_distance(-2.0).unwrap_err(),
        };
        assert!(dist.source().unwrap().to_string().contains("negative"));
        // The chain renders end-to-end like a real application would print it.
        let rendered = format!("{dist}: {}", dist.source().unwrap());
        assert!(rendered.contains("threshold") && rendered.contains("-2"));
    }

    #[test]
    fn serving_errors_display_and_have_no_source() {
        use std::error::Error;
        let err = QueryError::Overloaded {
            queued: 8,
            capacity: 8,
        };
        assert!(err.to_string().contains("queue full"));
        assert!(err.to_string().contains('8'));
        assert!(err.source().is_none());
        let stopped = QueryError::ServiceStopped;
        assert!(stopped.to_string().contains("stopped"));
        assert!(stopped.source().is_none());
    }

    #[test]
    fn fault_errors_display_and_have_no_source() {
        use std::error::Error;
        use std::time::Duration;
        let missed = QueryError::DeadlineExceeded {
            queued: Duration::from_millis(3),
            elapsed: Duration::from_millis(7),
        };
        assert!(missed.to_string().contains("deadline exceeded"));
        assert!(missed.to_string().contains("queued"));
        assert!(missed.source().is_none());
        let internal = QueryError::Internal;
        assert!(internal.to_string().contains("panicked"));
        assert!(internal.source().is_none());
    }

    proptest! {
        #[test]
        fn prop_relative_error_is_nonnegative_and_symmetric_in_magnitude(
            a in 0.1f64..1e6, e in 0.1f64..1e6,
        ) {
            let err = relative_error(a, e);
            prop_assert!(err >= 0.0);
            // Scaling both by the same factor leaves the error unchanged.
            prop_assert!((relative_error(a * 3.0, e * 3.0) - err).abs() < 1e-9);
        }

        #[test]
        fn prop_median_is_within_min_max(values in proptest::collection::vec(0f64..100.0, 1..50)) {
            let m = median(&values);
            let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = values.iter().copied().fold(0.0, f64::max);
            prop_assert!(m >= lo && m <= hi);
        }
    }
}

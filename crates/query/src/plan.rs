//! Per-query accuracy specification and the query planner.
//!
//! The paper's serving story is that the **query** carries the distance
//! bound: the same frozen region index answers one request at a loose 64 m
//! bound, the next at the 4 m bound it was built with, and a third exactly
//! — no rebuild anywhere. A [`QuerySpec`] states what the caller wants,
//! the [`QueryPlanner`] turns it into a [`QueryPlan`]: the truncation
//! level to probe the level-stacked frozen trie at, the bound that level
//! actually guarantees, and a probe-cost estimate, plus whether an exact
//! refinement stage runs after the approximate filter.
//!
//! Planning is a pure function of the frozen index's per-level metadata
//! (`FrozenCellTrie::nodes_at_or_above`, the extent's cell diagonals and
//! the finest built level); executing a plan never consults geometry
//! unless the plan requests exact refinement.

use crate::error::{QueryError, SpecError};
use dbsa_grid::{GridExtent, MAX_LEVEL};
use dbsa_index::FrozenCellTrie;
use dbsa_raster::DistanceBound;

/// What a query asks of the engine: an answer within a Hausdorff bound, or
/// the exact answer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryMode {
    /// Any answer whose error stays within the given distance bound.
    Bounded(DistanceBound),
    /// The exact answer: the approximate filter runs at the finest built
    /// level and boundary-cell matches are refined with exact
    /// point-in-polygon tests.
    Exact,
}

/// Per-query accuracy specification, carried by the request rather than
/// baked into the index build.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuerySpec {
    mode: QueryMode,
}

impl QuerySpec {
    /// Asks for an answer within `bound` of exact.
    pub fn within(bound: DistanceBound) -> Self {
        QuerySpec {
            mode: QueryMode::Bounded(bound),
        }
    }

    /// Convenience: [`within`](Self::within) a bound of `epsilon` meters.
    ///
    /// # Panics
    /// Panics when `epsilon` is not finite and strictly positive; use
    /// [`checked_within_meters`](Self::checked_within_meters) to get a
    /// typed error instead.
    pub fn within_meters(epsilon: f64) -> Self {
        Self::within(DistanceBound::meters(epsilon))
    }

    /// Validating twin of [`within_meters`](Self::within_meters): returns
    /// a typed [`QueryError`] (with the offending value chained as its
    /// source) instead of panicking on a non-finite or non-positive bound.
    pub fn checked_within_meters(epsilon: f64) -> Result<Self, QueryError> {
        let eps = SpecError::check_bound(epsilon)
            .map_err(|source| QueryError::InvalidBound { source })?;
        Ok(Self::within(DistanceBound::meters(eps)))
    }

    /// Asks for the exact answer (filter-and-refine over the same index).
    pub fn exact() -> Self {
        QuerySpec {
            mode: QueryMode::Exact,
        }
    }

    /// The requested mode.
    pub fn mode(&self) -> QueryMode {
        self.mode
    }

    /// Whether this spec requests exact refinement.
    pub fn is_exact(&self) -> bool {
        matches!(self.mode, QueryMode::Exact)
    }
}

impl std::fmt::Display for QuerySpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.mode {
            QueryMode::Bounded(b) => write!(f, "within {b}"),
            QueryMode::Exact => write!(f, "exact"),
        }
    }
}

/// Specification of a **distance query**: the threshold `d` of a
/// `WITHIN_DISTANCE(d)` join (or the scope of a kNN request), plus the
/// accuracy the caller wants from the answer — a tolerance on how far the
/// reported d-contour may deviate from the true one, or exactness.
///
/// Like [`QuerySpec`], the accuracy travels with the request: one frozen
/// distance-annotated index serves a sloppy dashboard `within(500 m)
/// ± 64 m` and an exact billing `within(500 m)` without rebuilding
/// anything.
///
/// Constructors validate their numeric inputs and return a typed
/// [`QueryError`] instead of panicking.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistanceSpec {
    within: f64,
    mode: QueryMode,
}

impl DistanceSpec {
    /// An **exact** within-distance query at threshold `d` (in world
    /// units). `d` must be finite and non-negative; `within(0)` asks for
    /// the points touching or inside the regions.
    pub fn within(d: f64) -> Result<Self, QueryError> {
        let d = SpecError::check_distance(d)
            .map_err(|source| QueryError::InvalidDistance { source })?;
        Ok(DistanceSpec {
            within: d,
            mode: QueryMode::Exact,
        })
    }

    /// A **bounded** within-distance query: the answer may misclassify
    /// only points within `tolerance` of the exact d-contour. The
    /// tolerance must be finite and strictly positive.
    pub fn within_bounded(d: f64, tolerance: f64) -> Result<Self, QueryError> {
        let d = SpecError::check_distance(d)
            .map_err(|source| QueryError::InvalidDistance { source })?;
        let tol = SpecError::check_bound(tolerance)
            .map_err(|source| QueryError::InvalidBound { source })?;
        Ok(DistanceSpec {
            within: d,
            mode: QueryMode::Bounded(DistanceBound::meters(tol)),
        })
    }

    /// The within-distance threshold `d`.
    pub fn distance(&self) -> f64 {
        self.within
    }

    /// The requested accuracy mode.
    pub fn mode(&self) -> QueryMode {
        self.mode
    }

    /// Whether this spec requests the exact answer.
    pub fn is_exact(&self) -> bool {
        matches!(self.mode, QueryMode::Exact)
    }
}

impl std::fmt::Display for DistanceSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.mode {
            QueryMode::Bounded(b) => write!(f, "within {} (±{})", self.within, b.epsilon()),
            QueryMode::Exact => write!(f, "within {} (exact)", self.within),
        }
    }
}

/// The accuracy contract a **degraded** answer still carries.
///
/// Under deadline pressure the serving tier may replace an exact request
/// with the approximate answer served from a (possibly coarser) truncation
/// level — the paper's core lever: one distance-bounded approximation can
/// answer any query with a guaranteed error bound. Degradation is never
/// silent: the response reports the bound the served level guarantees.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuaranteedBound {
    /// The Hausdorff bound (world units) the served level guarantees.
    pub epsilon: f64,
    /// The truncation level the degraded answer was served from.
    pub level: u8,
}

impl std::fmt::Display for GuaranteedBound {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ε ≤ {:.3} (level {})", self.epsilon, self.level)
    }
}

/// The planner's decision for one query: which truncation level of the
/// level-stacked frozen trie to probe, what that level guarantees, and what
/// it is expected to cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryPlan {
    /// Trie truncation level the probes run at.
    pub level: u8,
    /// The Hausdorff bound the chosen level guarantees (cell diagonal at
    /// `level`); `0.0` when exact refinement makes the answer exact.
    pub guaranteed_bound: f64,
    /// Whether an exact point-in-polygon refinement stage runs on
    /// boundary-cell matches after the approximate filter.
    pub exact_refinement: bool,
    /// Whether the plan satisfies the request. `false` only when a bounded
    /// request is tighter than the finest built level can guarantee — the
    /// plan then serves the finest level as a best effort, and
    /// `guaranteed_bound` reports what the caller actually gets.
    pub satisfies_request: bool,
    /// Number of trie nodes a probe at the chosen level can touch — the
    /// planner's probe-cost estimate (coarser level → smaller structure →
    /// cheaper probes).
    pub estimated_nodes: usize,
}

impl std::fmt::Display for QueryPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "level {} (ε ≤ {:.3}{}{}, ≤ {} nodes/probe)",
            self.level,
            self.guaranteed_bound,
            if self.exact_refinement {
                ", exact refinement"
            } else {
                ""
            },
            if self.satisfies_request {
                ""
            } else {
                ", best effort"
            },
            self.estimated_nodes,
        )
    }
}

/// Picks the cheapest truncation level of a level-stacked frozen trie that
/// satisfies a [`QuerySpec`].
///
/// The planner is deliberately tiny: levels are totally ordered by cost
/// (fewer nodes at coarser truncations) *and* by accuracy (smaller cell
/// diagonals at finer truncations), so "cheapest satisfying level" is just
/// the coarsest level whose diagonal is at or below the requested bound,
/// clamped to the finest level the index was built with.
#[derive(Debug, Clone, Copy)]
pub struct QueryPlanner<'a> {
    extent: &'a GridExtent,
    /// Finest truncation level the index can serve (the built boundary
    /// level).
    finest_level: u8,
    /// The level-stacked frozen trie, for per-level cost estimates.
    trie: &'a FrozenCellTrie,
}

impl<'a> QueryPlanner<'a> {
    /// Creates a planner over a level-stacked frozen trie. `finest_level`
    /// is the boundary level the index was built at — the deepest
    /// truncation that still answers with a meaningful bound.
    pub fn new(extent: &'a GridExtent, finest_level: u8, trie: &'a FrozenCellTrie) -> Self {
        QueryPlanner {
            extent,
            finest_level,
            trie,
        }
    }

    /// The finest level this planner can schedule.
    pub fn finest_level(&self) -> u8 {
        self.finest_level
    }

    /// Plans one **distance query**.
    ///
    /// A probe at truncation level ℓ answers a distance question with a
    /// slack of at most one cell diagonal (the geometric uncertainty of
    /// the covering at ℓ) **plus** one distance bin (the quantization
    /// granularity of the cell annotations at ℓ), so the planner picks the
    /// coarsest level whose `cell_diagonal + bin_width` fits the requested
    /// tolerance, clamped to the finest built level. Exact requests run at
    /// the finest level with exact segment-distance refinement of
    /// straddling cells.
    pub fn plan_distance(&self, spec: &DistanceSpec) -> QueryPlan {
        match spec.mode() {
            QueryMode::Exact => QueryPlan {
                level: self.finest_level,
                guaranteed_bound: 0.0,
                exact_refinement: true,
                satisfies_request: true,
                estimated_nodes: self.trie.nodes_at_or_above(self.finest_level),
            },
            QueryMode::Bounded(tolerance) => {
                let slack =
                    |level: u8| self.extent.cell_diagonal(level) + self.extent.cell_size(level);
                let wanted = (0..=MAX_LEVEL)
                    .find(|&level| slack(level) <= tolerance.epsilon())
                    .unwrap_or(MAX_LEVEL);
                let level = wanted.min(self.finest_level);
                let guaranteed = slack(level);
                QueryPlan {
                    level,
                    guaranteed_bound: guaranteed,
                    exact_refinement: false,
                    satisfies_request: guaranteed <= tolerance.epsilon(),
                    estimated_nodes: self.trie.nodes_at_or_above(level),
                }
            }
        }
    }

    /// Plans a bounded aggregate **pinned** at `level` (clamped to the
    /// finest built level) — the degradation path: the serving tier uses
    /// this to re-plan an exact request to whatever level its remaining
    /// deadline budget affords. The plan reports `satisfies_request =
    /// false` because the original request asked for more accuracy than it
    /// gets; `guaranteed_bound` states what the answer still guarantees.
    pub fn plan_at_level(&self, level: u8) -> QueryPlan {
        let level = level.min(self.finest_level);
        QueryPlan {
            level,
            guaranteed_bound: self.extent.cell_diagonal(level),
            exact_refinement: false,
            satisfies_request: false,
            estimated_nodes: self.trie.nodes_at_or_above(level),
        }
    }

    /// Distance twin of [`plan_at_level`](Self::plan_at_level): a bounded
    /// within-distance plan pinned at `level`, guaranteeing one cell
    /// diagonal plus one distance bin of slack at that level.
    pub fn plan_distance_at_level(&self, level: u8) -> QueryPlan {
        let level = level.min(self.finest_level);
        QueryPlan {
            level,
            guaranteed_bound: self.extent.cell_diagonal(level) + self.extent.cell_size(level),
            exact_refinement: false,
            satisfies_request: false,
            estimated_nodes: self.trie.nodes_at_or_above(level),
        }
    }

    /// Plans one query.
    pub fn plan(&self, spec: &QuerySpec) -> QueryPlan {
        match spec.mode() {
            QueryMode::Exact => QueryPlan {
                level: self.finest_level,
                guaranteed_bound: 0.0,
                exact_refinement: true,
                satisfies_request: true,
                estimated_nodes: self.trie.nodes_at_or_above(self.finest_level),
            },
            QueryMode::Bounded(bound) => {
                // The coarsest level whose cell diagonal satisfies the
                // bound; tighter-than-built requests clamp to the finest
                // built level and report what they actually get.
                let wanted = bound.level_on(self.extent).unwrap_or(MAX_LEVEL);
                let level = wanted.min(self.finest_level);
                let guaranteed = self.extent.cell_diagonal(level);
                QueryPlan {
                    level,
                    guaranteed_bound: guaranteed,
                    exact_refinement: false,
                    satisfies_request: guaranteed <= bound.epsilon(),
                    estimated_nodes: self.trie.nodes_at_or_above(level),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbsa_geom::{Point, Polygon};
    use dbsa_index::AdaptiveCellTrie;
    use dbsa_raster::{BoundaryPolicy, HierarchicalRaster};

    /// A small frozen trie over one square, refined to level 8 on a 1024 m
    /// extent (level ℓ cells have side 1024 / 2^ℓ).
    fn planner_fixture() -> (GridExtent, FrozenCellTrie) {
        let extent = GridExtent::new(Point::new(0.0, 0.0), 1024.0);
        let square = Polygon::from_coords(&[
            (100.0, 100.0),
            (420.0, 100.0),
            (420.0, 420.0),
            (100.0, 420.0),
        ]);
        let raster = HierarchicalRaster::with_boundary_level(
            &square,
            &extent,
            8,
            BoundaryPolicy::Conservative,
        );
        (extent, AdaptiveCellTrie::build(&[raster]).freeze())
    }

    #[test]
    fn bounded_specs_pick_the_coarsest_satisfying_level() {
        let (extent, trie) = planner_fixture();
        let planner = QueryPlanner::new(&extent, 8, &trie);
        assert_eq!(planner.finest_level(), 8);

        let loose = planner.plan(&QuerySpec::within_meters(512.0));
        let mid = planner.plan(&QuerySpec::within_meters(64.0));
        let tight = planner.plan(&QuerySpec::within_meters(8.0));
        assert!(loose.level < mid.level && mid.level < tight.level);
        for plan in [loose, mid, tight] {
            assert!(plan.satisfies_request);
            assert!(!plan.exact_refinement);
            assert!(plan.guaranteed_bound <= extent.cell_diagonal(plan.level) + 1e-12);
        }
        // Coarser levels are estimated cheaper.
        assert!(loose.estimated_nodes < mid.estimated_nodes);
        assert!(mid.estimated_nodes < tight.estimated_nodes);
    }

    #[test]
    fn tighter_than_built_requests_clamp_and_report_best_effort() {
        let (extent, trie) = planner_fixture();
        let planner = QueryPlanner::new(&extent, 6, &trie);
        let plan = planner.plan(&QuerySpec::within_meters(0.001));
        assert_eq!(plan.level, 6);
        assert!(!plan.satisfies_request);
        assert_eq!(plan.guaranteed_bound, extent.cell_diagonal(6));
    }

    #[test]
    fn exact_specs_run_refinement_at_the_finest_level() {
        let (extent, trie) = planner_fixture();
        let planner = QueryPlanner::new(&extent, 7, &trie);
        let spec = QuerySpec::exact();
        assert!(spec.is_exact());
        let plan = planner.plan(&spec);
        assert_eq!(plan.level, 7);
        assert!(plan.exact_refinement);
        assert!(plan.satisfies_request);
        assert_eq!(plan.guaranteed_bound, 0.0);
    }

    #[test]
    fn specs_and_plans_display() {
        assert_eq!(QuerySpec::exact().to_string(), "exact");
        assert!(QuerySpec::within_meters(4.0).to_string().contains("ε = 4"));
        let (extent, trie) = planner_fixture();
        let plan = QueryPlanner::new(&extent, 8, &trie).plan(&QuerySpec::exact());
        let s = plan.to_string();
        assert!(s.contains("level 8"));
        assert!(s.contains("exact refinement"));
    }

    #[test]
    fn invalid_specs_return_typed_errors_instead_of_panicking() {
        use crate::error::QueryError;
        use std::error::Error;
        for bad in [f64::NAN, f64::INFINITY, 0.0, -4.0] {
            let err = QuerySpec::checked_within_meters(bad).unwrap_err();
            assert!(matches!(err, QueryError::InvalidBound { .. }), "{bad}");
            assert!(err.source().is_some(), "bound errors chain their cause");
        }
        assert!(QuerySpec::checked_within_meters(4.0).is_ok());

        assert!(matches!(
            DistanceSpec::within(f64::NAN).unwrap_err(),
            QueryError::InvalidDistance { .. }
        ));
        assert!(matches!(
            DistanceSpec::within(-1.0).unwrap_err(),
            QueryError::InvalidDistance { .. }
        ));
        assert!(DistanceSpec::within(0.0).is_ok(), "within(0) is legal");
        assert!(matches!(
            DistanceSpec::within_bounded(10.0, 0.0).unwrap_err(),
            QueryError::InvalidBound { .. }
        ));
        assert!(matches!(
            DistanceSpec::within_bounded(-10.0, 4.0).unwrap_err(),
            QueryError::InvalidDistance { .. }
        ));
    }

    #[test]
    fn distance_plans_budget_diagonal_plus_bin() {
        let (extent, trie) = planner_fixture();
        let planner = QueryPlanner::new(&extent, 8, &trie);

        let exact = planner.plan_distance(&DistanceSpec::within(50.0).unwrap());
        assert!(exact.exact_refinement);
        assert_eq!(exact.level, 8);
        assert_eq!(exact.guaranteed_bound, 0.0);

        let loose = planner.plan_distance(&DistanceSpec::within_bounded(50.0, 600.0).unwrap());
        let tight = planner.plan_distance(&DistanceSpec::within_bounded(50.0, 20.0).unwrap());
        assert!(loose.level < tight.level);
        for plan in [loose, tight] {
            assert!(plan.satisfies_request);
            assert!(!plan.exact_refinement);
            // The guarantee is diagonal + bin width of the chosen level.
            let slack = extent.cell_diagonal(plan.level) + extent.cell_size(plan.level);
            assert_eq!(plan.guaranteed_bound, slack);
        }
        // The chosen level is the coarsest satisfying one.
        assert!(extent.cell_diagonal(loose.level - 1) + extent.cell_size(loose.level - 1) > 600.0);

        // Tighter than the built level: clamp + best effort.
        let clamped = planner.plan_distance(&DistanceSpec::within_bounded(50.0, 0.01).unwrap());
        assert_eq!(clamped.level, 8);
        assert!(!clamped.satisfies_request);

        let spec = DistanceSpec::within_bounded(50.0, 16.0).unwrap();
        assert_eq!(spec.distance(), 50.0);
        assert!(!spec.is_exact());
        assert!(spec.to_string().contains("within 50"));
        assert!(DistanceSpec::within(2.0)
            .unwrap()
            .to_string()
            .contains("exact"));
    }

    #[test]
    fn pinned_level_plans_report_best_effort_with_their_bound() {
        let (extent, trie) = planner_fixture();
        let planner = QueryPlanner::new(&extent, 8, &trie);

        let pinned = planner.plan_at_level(5);
        assert_eq!(pinned.level, 5);
        assert!(!pinned.exact_refinement);
        assert!(!pinned.satisfies_request);
        assert_eq!(pinned.guaranteed_bound, extent.cell_diagonal(5));

        // Deeper than built clamps to the finest level.
        let clamped = planner.plan_at_level(30);
        assert_eq!(clamped.level, 8);

        let dist = planner.plan_distance_at_level(5);
        assert_eq!(
            dist.guaranteed_bound,
            extent.cell_diagonal(5) + extent.cell_size(5)
        );
        assert!(!dist.satisfies_request);

        let marker = GuaranteedBound {
            epsilon: pinned.guaranteed_bound,
            level: pinned.level,
        };
        assert!(marker.to_string().contains("level 5"));
    }

    #[test]
    fn query_mode_round_trips() {
        let b = DistanceBound::meters(10.0);
        match QuerySpec::within(b).mode() {
            QueryMode::Bounded(got) => assert_eq!(got.epsilon(), 10.0),
            QueryMode::Exact => panic!("expected bounded"),
        }
        assert!(!QuerySpec::within(b).is_exact());
    }
}

//! Point–polygon containment and aggregation over linearized point tables
//! (paper Section 3, Figure 4).
//!
//! The distance-bounded plan: approximate the query polygon with
//! hierarchical raster cells, then turn every cell into a 1-D range lookup
//! against the sorted linearized point keys. COUNT/SUM aggregates come from
//! a prefix-sum array, so each query cell costs two bound searches — the
//! operation the RadixSpline accelerates. No point-in-polygon test is ever
//! executed, which is why the answer is approximate (but distance-bounded).
//!
//! The classic baselines index the raw coordinates, filter with the query
//! polygon's MBR and refine every candidate with an exact PIP test.

use crate::aggregate::RegionAggregate;
use dbsa_geom::{MultiPolygon, Point, Polygon};
use dbsa_grid::{CurveKind, GridExtent};
use dbsa_index::sorted_array::{PrefixSumArray, RangeMinMax};
use dbsa_index::{
    BPlusTree, KdTree, MemoryFootprint, PointQuadtree, RTree, RTreeEntry, RadixSpline,
    RadixSplineBuilder, SortedKeyArray,
};
use dbsa_raster::{
    refine_contains, BoundaryPolicy, CellClass, HierarchicalRaster, RasterCell, Rasterizable,
};

/// Which 1-D search structure answers the range lookups over the linearized
/// point keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PointIndexVariant {
    /// Plain binary search on the sorted key array (the "BS" baseline).
    BinarySearch,
    /// B+-tree over the keys.
    BPlusTree,
    /// RadixSpline learned index (the paper's proposal).
    RadixSpline,
}

/// A linearized point table: points mapped to leaf-cell keys, sorted, with
/// the attribute column's prefix sums and range-min/max tables aligned to
/// key order. Every per-cell aggregate (`COUNT`, `SUM`, `MIN`, `MAX`) is
/// O(1) after the two bound lookups — no per-element scan anywhere.
#[derive(Debug)]
pub struct LinearizedPointTable {
    extent: GridExtent,
    keys: SortedKeyArray,
    prefix: PrefixSumArray,
    /// Sparse-table RMQ over the value column (in key order) for O(1)
    /// `MIN`/`MAX` per cell regardless of the range width. Also the owner
    /// of the key-ordered value column itself, which the sharded join
    /// walks as a precomputed probe schedule (keys are already sorted, so
    /// no per-query sort or scatter is needed).
    minmax: RangeMinMax,
    spline: RadixSpline,
    btree: BPlusTree,
}

impl LinearizedPointTable {
    /// Builds the table from points and their attribute values.
    ///
    /// The linearization always uses the hierarchical Z-order leaf id so the
    /// descendant ranges of query cells are contiguous key ranges; see
    /// [`CurveKind`] for the flat alternatives offered elsewhere.
    pub fn build(points: &[Point], values: &[f64], extent: &GridExtent) -> Self {
        Self::build_with_spline_params(points, values, extent, 25, 32)
    }

    /// Builds the table with explicit RadixSpline parameters (radix bits and
    /// spline error — the paper uses 25 and 32).
    pub fn build_with_spline_params(
        points: &[Point],
        values: &[f64],
        extent: &GridExtent,
        radix_bits: u32,
        spline_error: usize,
    ) -> Self {
        assert_eq!(points.len(), values.len(), "one value per point required");
        let mut pairs: Vec<(u64, f64)> = points
            .iter()
            .zip(values)
            .map(|(p, v)| (extent.leaf_cell_id(p).raw(), *v))
            .collect();
        pairs.sort_unstable_by_key(|(k, _)| *k);
        let keys: Vec<u64> = pairs.iter().map(|(k, _)| *k).collect();
        let sorted_values: Vec<f64> = pairs.iter().map(|(_, v)| *v).collect();
        Self::from_sorted_rows(keys, sorted_values, extent, radix_bits, spline_error)
    }

    /// Builds the table from rows already sorted by key (ascending), with
    /// values aligned to the keys. The sharded engine sorts each shard's
    /// rows once and hands the aligned columns here, so points, keys and
    /// values stay consistently paired through one sort.
    ///
    /// # Panics
    /// Panics if the columns differ in length or the keys are not sorted.
    pub fn from_sorted_rows(
        keys: Vec<u64>,
        values: Vec<f64>,
        extent: &GridExtent,
        radix_bits: u32,
        spline_error: usize,
    ) -> Self {
        assert_eq!(keys.len(), values.len(), "one value per key required");
        assert!(
            keys.windows(2).all(|w| w[0] <= w[1]),
            "from_sorted_rows requires keys sorted ascending"
        );
        let prefix = PrefixSumArray::new(&values);
        let minmax = RangeMinMax::new(&values);
        let spline = RadixSplineBuilder::new()
            .radix_bits(radix_bits)
            .spline_error(spline_error)
            .build(&keys);
        let btree = BPlusTree::new(keys.clone());
        LinearizedPointTable {
            extent: *extent,
            keys: SortedKeyArray::from_sorted(keys),
            prefix,
            minmax,
            spline,
            btree,
        }
    }

    /// Appends every column — keys, prefix sums, min/max tables, spline,
    /// B+-tree — to a snapshot section in its built form, so loading is
    /// pure column reconstitution with none of the derivation
    /// [`from_sorted_rows`](Self::from_sorted_rows) performs.
    pub fn write_snapshot(&self, out: &mut Vec<u8>) {
        dbsa_index::snapshot::put_extent(out, &self.extent);
        self.keys.write_snapshot(out);
        self.prefix.write_snapshot(out);
        self.minmax.write_snapshot(out);
        self.spline.write_snapshot(out);
        self.btree.write_snapshot(out);
    }

    /// Reads a table written by [`write_snapshot`](Self::write_snapshot).
    pub fn read_snapshot(
        cur: &mut dbsa_index::SectionCursor<'_>,
    ) -> Result<Self, dbsa_index::SnapshotError> {
        let extent = dbsa_index::snapshot::read_extent(cur)?;
        let keys = SortedKeyArray::read_snapshot(cur)?;
        let prefix = PrefixSumArray::read_snapshot(cur)?;
        let minmax = RangeMinMax::read_snapshot(cur)?;
        let spline = RadixSpline::read_snapshot(cur)?;
        let btree = BPlusTree::read_snapshot(cur)?;
        let n = keys.len();
        if prefix.len() != n || minmax.len() != n || btree.len() != n {
            return Err(cur.malformed("point-table columns disagree on row count"));
        }
        Ok(LinearizedPointTable {
            extent,
            keys,
            prefix,
            minmax,
            spline,
            btree,
        })
    }

    /// Number of points in the table.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The grid extent used for linearization.
    pub fn extent(&self) -> &GridExtent {
        &self.extent
    }

    /// The sorted leaf keys — a ready-made sorted probe schedule for the
    /// batched join paths.
    pub fn keys(&self) -> &[u64] {
        self.keys.keys()
    }

    /// The attribute column aligned with [`keys`](Self::keys) (borrowed
    /// from the RMQ structure, which stores the column for edge scans).
    pub fn values_in_key_order(&self) -> &[f64] {
        self.minmax.values()
    }

    /// Inclusive span `[lo, hi]` of the stored keys (`None` when empty) —
    /// the key-range metadata shard pruning intersects against query cells.
    pub fn key_range(&self) -> Option<(u64, u64)> {
        let keys = self.keys.keys();
        Some((*keys.first()?, *keys.last()?))
    }

    /// Memory footprint of the chosen index variant (keys + search structure).
    pub fn index_memory_bytes(&self, variant: PointIndexVariant) -> usize {
        let base = self.keys.memory_bytes();
        match variant {
            PointIndexVariant::BinarySearch => base,
            PointIndexVariant::BPlusTree => self.btree.memory_bytes(),
            PointIndexVariant::RadixSpline => base + self.spline.memory_bytes(),
        }
    }

    /// Lower/upper bound positions of a key range under the given variant.
    fn range_positions(&self, lo: u64, hi: u64, variant: PointIndexVariant) -> (usize, usize) {
        match variant {
            PointIndexVariant::BinarySearch => {
                (self.keys.lower_bound(lo), self.keys.upper_bound(hi))
            }
            PointIndexVariant::BPlusTree => {
                (self.btree.lower_bound(lo), self.btree.upper_bound(hi))
            }
            PointIndexVariant::RadixSpline => (
                self.spline.lower_bound(self.keys.keys(), lo),
                self.spline.upper_bound(self.keys.keys(), hi),
            ),
        }
    }

    /// Aggregates all points falling into the given raster cells.
    ///
    /// Each cell turns into one key-range lookup; counts and sums come from
    /// position arithmetic and the prefix-sum array.
    pub fn aggregate_cells(
        &self,
        cells: &[RasterCell],
        variant: PointIndexVariant,
    ) -> RegionAggregate {
        let mut agg = RegionAggregate::default();
        for cell in cells {
            let lo = cell.id.range_min().raw();
            let hi = cell.id.range_max().raw();
            let (from, to) = self.range_positions(lo, hi, variant);
            if to > from {
                let sum = self.prefix.range_sum(from, to);
                agg.add_batch((to - from) as u64, sum, cell.class == CellClass::Boundary);
                // MIN/MAX come from the sparse-table RMQ: O(1) per cell
                // regardless of how many points the range covers.
                agg.min = agg.min.min(self.minmax.range_min(from, to));
                agg.max = agg.max.max(self.minmax.range_max(from, to));
            }
        }
        agg
    }

    /// Approximates the query polygon with at most `cell_budget` hierarchical
    /// cells and aggregates the matching points (the Figure 4 query).
    ///
    /// Returns the aggregate and the number of cells actually used.
    pub fn aggregate_polygon<G: Rasterizable>(
        &self,
        polygon: &G,
        cell_budget: usize,
        variant: PointIndexVariant,
    ) -> (RegionAggregate, usize) {
        let raster = HierarchicalRaster::with_cell_budget(
            polygon,
            &self.extent,
            cell_budget,
            BoundaryPolicy::Conservative,
        );
        let agg = self.aggregate_cells(raster.cells(), variant);
        (agg, raster.cell_count())
    }

    /// Linearizes a point to its key with an alternative curve at a fixed
    /// level (exposed for the linearization ablation benchmark).
    pub fn linearize_with(&self, p: &Point, level: u8, curve: CurveKind) -> u64 {
        self.extent.linearize(p, level, curve)
    }
}

impl MemoryFootprint for LinearizedPointTable {
    /// True heap bytes of the whole table: the sorted key column plus every
    /// aligned search/aggregation structure (prefix sums, range-min/max,
    /// spline, B+-tree). [`index_memory_bytes`](Self::index_memory_bytes)
    /// reports the per-variant *index* cost instead; this is the resident
    /// total the serving tier pays per shard.
    fn memory_bytes(&self) -> usize {
        self.keys.memory_bytes()
            + self.prefix.memory_bytes()
            + self.minmax.memory_bytes()
            + self.spline.memory_bytes()
            + self.btree.memory_bytes()
    }
}

/// Which classic spatial index serves as the MBR-filtering baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpatialBaselineKind {
    /// Incrementally built R-tree (stand-in for the Boost R\*-tree).
    RTree,
    /// STR bulk-loaded R-tree.
    StrRTree,
    /// Bucket PR quadtree.
    Quadtree,
    /// k-d tree.
    KdTree,
}

impl SpatialBaselineKind {
    /// All baselines, in the order Figure 4 lists them.
    pub const ALL: [SpatialBaselineKind; 4] = [
        SpatialBaselineKind::RTree,
        SpatialBaselineKind::StrRTree,
        SpatialBaselineKind::Quadtree,
        SpatialBaselineKind::KdTree,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            SpatialBaselineKind::RTree => "R*-tree",
            SpatialBaselineKind::StrRTree => "STR R-tree",
            SpatialBaselineKind::Quadtree => "Quadtree",
            SpatialBaselineKind::KdTree => "Kd-tree",
        }
    }
}

enum BaselineIndex {
    RTree(RTree),
    Quadtree(PointQuadtree),
    KdTree(KdTree),
}

/// A classic spatial index over the raw points, used with MBR filtering and
/// exact point-in-polygon refinement.
pub struct SpatialBaseline {
    kind: SpatialBaselineKind,
    index: BaselineIndex,
    points: Vec<Point>,
    values: Vec<f64>,
}

impl SpatialBaseline {
    /// Builds the baseline index over the points.
    pub fn build(kind: SpatialBaselineKind, points: &[Point], values: &[f64]) -> Self {
        assert_eq!(points.len(), values.len(), "one value per point required");
        let index = match kind {
            SpatialBaselineKind::RTree => {
                let mut tree = RTree::new();
                for (i, p) in points.iter().enumerate() {
                    tree.insert(RTreeEntry::point(*p, i as u64));
                }
                BaselineIndex::RTree(tree)
            }
            SpatialBaselineKind::StrRTree => {
                let entries = points
                    .iter()
                    .enumerate()
                    .map(|(i, p)| RTreeEntry::point(*p, i as u64))
                    .collect();
                BaselineIndex::RTree(RTree::bulk_load_str(entries, RTree::DEFAULT_CAPACITY))
            }
            SpatialBaselineKind::Quadtree => {
                let bounds = dbsa_geom::BoundingBox::from_points(points.iter());
                let bounds = if bounds.is_empty() {
                    dbsa_geom::BoundingBox::from_bounds(0.0, 0.0, 1.0, 1.0)
                } else {
                    bounds.inflated(1.0)
                };
                BaselineIndex::Quadtree(PointQuadtree::build(bounds, points))
            }
            SpatialBaselineKind::KdTree => BaselineIndex::KdTree(KdTree::build(points)),
        };
        SpatialBaseline {
            kind,
            index,
            points: points.to_vec(),
            values: values.to_vec(),
        }
    }

    /// The baseline's kind.
    pub fn kind(&self) -> SpatialBaselineKind {
        self.kind
    }

    /// Memory footprint of the index structure.
    pub fn memory_bytes(&self) -> usize {
        match &self.index {
            BaselineIndex::RTree(t) => t.memory_bytes(),
            BaselineIndex::Quadtree(t) => t.memory_bytes(),
            BaselineIndex::KdTree(t) => t.memory_bytes(),
        }
    }

    /// Ids of the points passing the MBR filter for the query polygon.
    fn filter_candidates(&self, polygon: &Polygon) -> Vec<u64> {
        let mbr = polygon.bbox();
        match &self.index {
            BaselineIndex::RTree(t) => t.query_bbox(&mbr),
            BaselineIndex::Quadtree(t) => t.query_bbox(&mbr),
            BaselineIndex::KdTree(t) => t.query_bbox(&mbr),
        }
    }

    /// Refines MBR-filter candidates with one counted PIP test each
    /// (`dbsa_raster::refine_contains` — the shared refinement primitive)
    /// and aggregates the survivors. Every candidate is refined, so the
    /// PIP-test count equals the qualifying count the filter produced.
    fn refine_candidates<G: Rasterizable>(
        &self,
        region: &G,
        candidates: Vec<u64>,
    ) -> (RegionAggregate, u64) {
        let mut pip_tests = 0u64;
        let mut agg = RegionAggregate::default();
        for id in candidates {
            let p = &self.points[id as usize];
            if refine_contains(region, p, &mut pip_tests) {
                agg.add(self.values[id as usize], false);
            }
        }
        (agg, pip_tests)
    }

    /// Evaluates the containment aggregation exactly: MBR filter, then a
    /// PIP test per candidate.
    ///
    /// Returns the exact aggregate and the number of *qualifying* points the
    /// filter produced (the Figure 4(b) metric: how many points the index
    /// deems relevant before refinement).
    pub fn aggregate_polygon(&self, polygon: &Polygon) -> (RegionAggregate, u64) {
        let candidates = self.filter_candidates(polygon);
        self.refine_candidates(polygon, candidates)
    }

    /// Same as [`aggregate_polygon`](Self::aggregate_polygon) for
    /// multi-polygon query regions.
    pub fn aggregate_multipolygon(&self, region: &MultiPolygon) -> (RegionAggregate, u64) {
        let mbr = region.bbox();
        let candidates = match &self.index {
            BaselineIndex::RTree(t) => t.query_bbox(&mbr),
            BaselineIndex::Quadtree(t) => t.query_bbox(&mbr),
            BaselineIndex::KdTree(t) => t.query_bbox(&mbr),
        };
        self.refine_candidates(region, candidates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbsa_datagen::{city_extent, TaxiPointGenerator};
    use dbsa_geom::BoundingBox;
    use proptest::prelude::*;

    fn setup(n: usize) -> (Vec<Point>, Vec<f64>, GridExtent) {
        let gen = TaxiPointGenerator::new(city_extent(), 11);
        let taxi = gen.generate(n);
        let points: Vec<Point> = taxi.iter().map(|t| t.location).collect();
        let values: Vec<f64> = taxi.iter().map(|t| t.fare).collect();
        let extent = GridExtent::covering(&city_extent());
        (points, values, extent)
    }

    fn query_polygon() -> Polygon {
        Polygon::from_coords(&[
            (8_000.0, 8_000.0),
            (22_000.0, 9_000.0),
            (20_000.0, 24_000.0),
            (9_000.0, 21_000.0),
        ])
    }

    fn exact(points: &[Point], values: &[f64], poly: &Polygon) -> RegionAggregate {
        let mut agg = RegionAggregate::default();
        for (p, v) in points.iter().zip(values) {
            if poly.contains_point(p) {
                agg.add(*v, false);
            }
        }
        agg
    }

    #[test]
    fn linearized_variants_agree_with_each_other() {
        let (points, values, extent) = setup(20_000);
        let table = LinearizedPointTable::build(&points, &values, &extent);
        assert_eq!(table.len(), 20_000);
        let poly = query_polygon();
        let (bs, cells_bs) = table.aggregate_polygon(&poly, 256, PointIndexVariant::BinarySearch);
        let (bt, _) = table.aggregate_polygon(&poly, 256, PointIndexVariant::BPlusTree);
        let (rs, cells_rs) = table.aggregate_polygon(&poly, 256, PointIndexVariant::RadixSpline);
        // All three structures answer identical range queries.
        assert_eq!(bs.count, bt.count);
        assert_eq!(bs.count, rs.count);
        assert!((bs.sum - rs.sum).abs() < 1e-6);
        assert_eq!(cells_bs, cells_rs);
        assert!(cells_bs <= 256);
    }

    #[test]
    fn approximate_count_converges_to_exact_with_precision() {
        let (points, values, extent) = setup(30_000);
        let table = LinearizedPointTable::build(&points, &values, &extent);
        let poly = query_polygon();
        let exact_agg = exact(&points, &values, &poly);

        let mut last_err = f64::INFINITY;
        for budget in [32usize, 128, 512, 2048] {
            let (agg, _) = table.aggregate_polygon(&poly, budget, PointIndexVariant::RadixSpline);
            // Conservative approximation can only over-count.
            assert!(
                agg.count >= exact_agg.count,
                "budget {budget}: approximate {} below exact {}",
                agg.count,
                exact_agg.count
            );
            let err = agg.count as f64 - exact_agg.count as f64;
            assert!(err <= last_err + 1e-9, "error must shrink with precision");
            last_err = err;
        }
        // At the finest budget the overcount is small (well under 5 %).
        assert!(
            last_err / exact_agg.count.max(1) as f64 <= 0.05,
            "residual error too large: {last_err}"
        );
    }

    #[test]
    fn spatial_baselines_are_exact_and_report_qualifying_counts() {
        let (points, values, _) = setup(15_000);
        let poly = query_polygon();
        let exact_agg = exact(&points, &values, &poly);
        for kind in SpatialBaselineKind::ALL {
            let baseline = SpatialBaseline::build(kind, &points, &values);
            assert_eq!(baseline.kind(), kind);
            assert!(baseline.memory_bytes() > 0);
            let (agg, qualifying) = baseline.aggregate_polygon(&poly);
            assert_eq!(agg.count, exact_agg.count, "{}", kind.name());
            assert!((agg.sum - exact_agg.sum).abs() < 1e-6);
            // The MBR filter admits at least as many points as qualify exactly.
            assert!(qualifying >= agg.count);
        }
    }

    #[test]
    fn raster_filter_is_tighter_than_mbr_filter() {
        // Figure 4(b): the RS-based variants find far fewer "qualifying"
        // points than MBR filtering, and approach the exact count.
        let (points, values, extent) = setup(25_000);
        let table = LinearizedPointTable::build(&points, &values, &extent);
        let poly = query_polygon();
        let exact_count = exact(&points, &values, &poly).count;

        let (approx, _) = table.aggregate_polygon(&poly, 512, PointIndexVariant::RadixSpline);
        let baseline = SpatialBaseline::build(SpatialBaselineKind::KdTree, &points, &values);
        let (_, mbr_qualifying) = baseline.aggregate_polygon(&poly);

        assert!(
            approx.count < mbr_qualifying,
            "raster qualifying {} should be below MBR qualifying {mbr_qualifying}",
            approx.count
        );
        assert!(approx.count >= exact_count);
    }

    #[test]
    fn aggregate_cells_respects_boundary_classification() {
        let (points, values, extent) = setup(5_000);
        let table = LinearizedPointTable::build(&points, &values, &extent);
        let poly = query_polygon();
        let raster =
            HierarchicalRaster::with_cell_budget(&poly, &extent, 128, BoundaryPolicy::Conservative);
        let agg = table.aggregate_cells(raster.cells(), PointIndexVariant::BinarySearch);
        assert!(agg.boundary_count <= agg.count);
        assert!(
            agg.boundary_count > 0,
            "a realistic polygon has points in boundary cells"
        );
        assert!(agg.min <= agg.max);
    }

    #[test]
    fn aggregate_cells_min_max_match_the_naive_scan() {
        let (points, values, extent) = setup(4_000);
        let table = LinearizedPointTable::build(&points, &values, &extent);
        let poly = query_polygon();
        let raster =
            HierarchicalRaster::with_cell_budget(&poly, &extent, 96, BoundaryPolicy::Conservative);
        let agg = table.aggregate_cells(raster.cells(), PointIndexVariant::BinarySearch);

        // Naive reference: scan every point against every cell range.
        let mut naive_min = f64::INFINITY;
        let mut naive_max = f64::NEG_INFINITY;
        for (p, v) in points.iter().zip(&values) {
            let key = extent.leaf_cell_id(p).raw();
            let covered = raster
                .cells()
                .iter()
                .any(|c| c.id.range_min().raw() <= key && key <= c.id.range_max().raw());
            if covered {
                naive_min = naive_min.min(*v);
                naive_max = naive_max.max(*v);
            }
        }
        assert_eq!(agg.min, naive_min);
        assert_eq!(agg.max, naive_max);
    }

    #[test]
    fn empty_table_and_empty_polygon() {
        let extent = GridExtent::covering(&city_extent());
        let table = LinearizedPointTable::build(&[], &[], &extent);
        assert!(table.is_empty());
        let (agg, _) =
            table.aggregate_polygon(&query_polygon(), 64, PointIndexVariant::RadixSpline);
        assert_eq!(agg.count, 0);

        // A polygon outside the populated area matches nothing.
        let (points, values, extent) = setup(2_000);
        let table = LinearizedPointTable::build(&points, &values, &extent);
        let far = Polygon::from_coords(&[
            (39_000.0, 39_000.0),
            (39_500.0, 39_000.0),
            (39_500.0, 39_500.0),
        ]);
        let near_nothing = exact(&points, &values, &far).count;
        let (agg, _) = table.aggregate_polygon(&far, 64, PointIndexVariant::BinarySearch);
        assert!(agg.count as i64 - near_nothing as i64 >= 0);
    }

    #[test]
    fn sorted_row_accessors_expose_the_probe_schedule() {
        let (points, values, extent) = setup(3_000);
        let table = LinearizedPointTable::build(&points, &values, &extent);
        let keys = table.keys();
        assert_eq!(keys.len(), 3_000);
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(table.values_in_key_order().len(), 3_000);
        let (lo, hi) = table.key_range().unwrap();
        assert_eq!((lo, hi), (keys[0], *keys.last().unwrap()));
        // The value multiset is preserved through the key sort.
        let mut sorted_in: Vec<f64> = values.clone();
        let mut sorted_out: Vec<f64> = table.values_in_key_order().to_vec();
        sorted_in.sort_by(f64::total_cmp);
        sorted_out.sort_by(f64::total_cmp);
        assert_eq!(sorted_in, sorted_out);
        // Empty tables expose no key range.
        let empty = LinearizedPointTable::build(&[], &[], &extent);
        assert_eq!(empty.key_range(), None);
        assert!(empty.keys().is_empty());
    }

    #[test]
    fn from_sorted_rows_matches_build() {
        let (points, values, extent) = setup(2_000);
        let built = LinearizedPointTable::build(&points, &values, &extent);
        let rebuilt = LinearizedPointTable::from_sorted_rows(
            built.keys().to_vec(),
            built.values_in_key_order().to_vec(),
            &extent,
            25,
            32,
        );
        let poly = query_polygon();
        let (a, ca) = built.aggregate_polygon(&poly, 256, PointIndexVariant::RadixSpline);
        let (b, cb) = rebuilt.aggregate_polygon(&poly, 256, PointIndexVariant::RadixSpline);
        assert_eq!(a.count, b.count);
        assert_eq!(a.sum, b.sum);
        assert_eq!(ca, cb);
    }

    #[test]
    #[should_panic(expected = "sorted ascending")]
    fn from_sorted_rows_rejects_unsorted_keys() {
        let extent = GridExtent::covering(&city_extent());
        let _ = LinearizedPointTable::from_sorted_rows(vec![5, 3], vec![1.0, 2.0], &extent, 25, 32);
    }

    #[test]
    fn memory_footprints_are_ordered_sensibly() {
        let (points, values, extent) = setup(10_000);
        let table = LinearizedPointTable::build(&points, &values, &extent);
        let bs = table.index_memory_bytes(PointIndexVariant::BinarySearch);
        let rs = table.index_memory_bytes(PointIndexVariant::RadixSpline);
        let bt = table.index_memory_bytes(PointIndexVariant::BPlusTree);
        // The spline adds a small overhead on top of the key array; the
        // B+-tree stores separators on top of the keys.
        assert!(rs >= bs);
        assert!(bt >= bs);
        assert!(rs < bs * 2, "learned index overhead should be small");
    }

    #[test]
    fn multipolygon_queries_work() {
        let (points, values, _) = setup(8_000);
        let region = MultiPolygon::new(vec![
            Polygon::from_coords(&[
                (1_000.0, 1_000.0),
                (5_000.0, 1_000.0),
                (5_000.0, 5_000.0),
                (1_000.0, 5_000.0),
            ]),
            Polygon::from_coords(&[
                (30_000.0, 30_000.0),
                (35_000.0, 30_000.0),
                (35_000.0, 35_000.0),
                (30_000.0, 35_000.0),
            ]),
        ]);
        let baseline = SpatialBaseline::build(SpatialBaselineKind::StrRTree, &points, &values);
        let (agg, qualifying) = baseline.aggregate_multipolygon(&region);
        let mut expected = 0u64;
        for p in &points {
            if region.contains_point(p) {
                expected += 1;
            }
        }
        assert_eq!(agg.count, expected);
        assert!(qualifying >= agg.count);
    }

    #[test]
    fn linearize_with_exposes_curves() {
        let (points, values, extent) = setup(10);
        let table = LinearizedPointTable::build(&points, &values, &extent);
        let p = Point::new(1_000.0, 2_000.0);
        let m = table.linearize_with(&p, 16, CurveKind::Morton);
        let h = table.linearize_with(&p, 16, CurveKind::Hilbert);
        assert_ne!(
            m, h,
            "different curves should generally give different keys"
        );
    }

    #[test]
    #[should_panic(expected = "one value per point")]
    fn build_rejects_mismatched_values() {
        let extent = GridExtent::covering(&BoundingBox::from_bounds(0.0, 0.0, 1.0, 1.0));
        let _ = LinearizedPointTable::build(&[Point::ORIGIN], &[], &extent);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn prop_conservative_aggregation_never_undercounts(seed in 0u64..200) {
            let gen = TaxiPointGenerator::new(city_extent(), seed);
            let taxi = gen.generate(3_000);
            let points: Vec<Point> = taxi.iter().map(|t| t.location).collect();
            let values: Vec<f64> = taxi.iter().map(|t| t.fare).collect();
            let extent = GridExtent::covering(&city_extent());
            let table = LinearizedPointTable::build(&points, &values, &extent);
            let poly = query_polygon();
            let exact_agg = exact(&points, &values, &poly);
            let (agg, _) = table.aggregate_polygon(&poly, 256, PointIndexVariant::RadixSpline);
            prop_assert!(agg.count >= exact_agg.count);
            prop_assert!(agg.sum >= exact_agg.sum - 1e-9);
        }
    }
}

//! Spatial aggregation joins (paper Section 5.1, Figure 6).
//!
//! The query:
//!
//! ```sql
//! SELECT AGG(a_i) FROM P, R
//! WHERE P.loc INSIDE R.geometry
//! GROUP BY R.id
//! ```
//!
//! Three evaluation strategies are provided:
//!
//! * [`ApproximateCellJoin`] — the paper's proposal: polygons are
//!   approximated by distance-bounded hierarchical rasters, indexed in the
//!   Adaptive Cell Trie, and every point is answered by a trie lookup; no
//!   exact geometry is ever consulted (index-nested-loop join fused with the
//!   aggregation). The frozen trie is **level-stacked**, so one build serves
//!   any distance bound at or above the built one: a
//!   [`QuerySpec`] is planned onto a truncation
//!   level ([`ApproximateCellJoin::plan`]) and executed there
//!   ([`ApproximateCellJoin::execute_at`]), or refined to the **exact**
//!   answer ([`ApproximateCellJoin::execute_refined`]): interior-cell
//!   matches are accepted wholesale, only boundary-cell matches pay a
//!   counted point-in-polygon test.
//! * [`RTreeExactJoin`] — the classic baseline: R-tree over the polygon
//!   MBRs, every point probes the tree and every candidate polygon is
//!   verified with an exact point-in-polygon test.
//! * [`ShapeIndexExactJoin`] — the S2ShapeIndex-like baseline: coarse cell
//!   coverings with exact refinement only for boundary cells.
//!
//! All paths share the [`JoinResult`] output so the harness can compare
//! counts, errors, timings and memory footprints directly.

use crate::aggregate::RegionAggregate;
use crate::plan::{QueryPlan, QueryPlanner, QuerySpec};
use dbsa_geom::{MultiPolygon, Point};
use dbsa_grid::{CellId, GridExtent, MAX_LEVEL};
use dbsa_index::{
    ActStats, AdaptiveCellTrie, CellPosting, FrozenCellTrie, MemoryFootprint, PolygonId, RTree,
    RTreeEntry, ShapeIndex,
};
use dbsa_raster::{refine_contains, BoundaryPolicy, CellClass, DistanceBound, HierarchicalRaster};

/// Output of a spatial aggregation join: one aggregate per region.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct JoinResult {
    /// Per-region aggregates, indexed by region id.
    pub regions: Vec<RegionAggregate>,
    /// Number of points that matched no region.
    pub unmatched: u64,
    /// Number of exact point-in-polygon tests performed (0 for the
    /// approximate join — that is the whole point).
    pub pip_tests: u64,
    /// Number of exact point-to-boundary distance tests performed (0 for
    /// every containment path; counted by the distance query family's
    /// refinement stage and by the brute-force distance baseline).
    pub dist_tests: u64,
}

impl JoinResult {
    pub(crate) fn with_regions(n: usize) -> Self {
        JoinResult {
            regions: vec![RegionAggregate::default(); n],
            unmatched: 0,
            pip_tests: 0,
            dist_tests: 0,
        }
    }

    /// Total number of matched points across all regions.
    pub fn total_matched(&self) -> u64 {
        self.regions.iter().map(|r| r.count).sum()
    }

    /// Merges a partial result produced over a disjoint subset of the points.
    pub fn merge(&mut self, other: &JoinResult) {
        assert_eq!(
            self.regions.len(),
            other.regions.len(),
            "region counts must match"
        );
        for (a, b) in self.regions.iter_mut().zip(&other.regions) {
            a.merge(b);
        }
        self.unmatched += other.unmatched;
        self.pip_tests += other.pip_tests;
        self.dist_tests += other.dist_tests;
    }
}

/// Probe schedule shared by the batched join paths: every point's leaf cell
/// key paired with its original index, sorted by key so consecutive probes
/// share Z-order prefixes (trie descents) or neighboring cell ranges
/// (shape-index stabbing scans).
fn sorted_probe_order(points: &[Point], extent: &GridExtent) -> Vec<(CellId, u32)> {
    assert!(
        points.len() <= u32::MAX as usize,
        "probe batch exceeds u32 index space ({} points)",
        points.len()
    );
    let mut order: Vec<(CellId, u32)> = points
        .iter()
        .enumerate()
        .map(|(i, p)| (extent.leaf_cell_id(p), i as u32))
        .collect();
    order.sort_unstable();
    order
}

/// The approximate index-nested-loop join over ACT.
///
/// The polygon index is built with the mutable pointer-trie
/// [`AdaptiveCellTrie`] and then frozen into the cache-conscious
/// [`FrozenCellTrie`]; query execution probes the frozen form. `execute`
/// sorts the probe points by leaf cell key and walks the trie with a
/// prefix-sharing cursor, so consecutive probes touch only the levels where
/// their keys diverge.
pub struct ApproximateCellJoin {
    pub(crate) trie: FrozenCellTrie,
    pub(crate) extent: GridExtent,
    pub(crate) region_count: usize,
    bound: DistanceBound,
    /// Boundary level the rasters were refined to — the finest truncation
    /// level of the level-stacked trie, serving the built bound.
    finest_level: u8,
    raster_cells: usize,
    /// Regions whose bounding box is not fully contained in the grid
    /// extent, with their boxes. The rasterizer cannot emit cells outside
    /// the extent, so the covering of these regions is incomplete there —
    /// the distance query family treats them as conservative candidates
    /// for probes near the extent border (see `dbsa_query::distance`).
    pub(crate) border_exits: Vec<(PolygonId, dbsa_geom::BoundingBox)>,
}

impl ApproximateCellJoin {
    /// Builds the join's polygon index: a distance-bounded hierarchical
    /// raster per region, all inserted into one Adaptive Cell Trie, which is
    /// then frozen for querying.
    pub fn build(regions: &[MultiPolygon], extent: &GridExtent, bound: DistanceBound) -> Self {
        let finest_level = bound
            .level_on(extent)
            .expect("distance bound too small for this extent");
        let rasters: Vec<HierarchicalRaster> = regions
            .iter()
            .map(|r| HierarchicalRaster::with_bound(r, extent, bound, BoundaryPolicy::Conservative))
            .collect();
        let raster_cells = rasters.iter().map(|r| r.cell_count()).sum();
        let trie = AdaptiveCellTrie::build(&rasters).freeze();
        let extent_box = extent.bbox();
        let border_exits = regions
            .iter()
            .enumerate()
            .filter_map(|(i, r)| {
                let bbox = r.bbox();
                (!extent_box.contains_box(&bbox)).then_some((i as PolygonId, bbox))
            })
            .collect();
        ApproximateCellJoin {
            trie,
            extent: *extent,
            region_count: regions.len(),
            bound,
            finest_level,
            raster_cells,
            border_exits,
        }
    }

    /// Appends the frozen trie and the join's scalar state to a snapshot
    /// section — loading skips rasterization and the freeze entirely.
    pub fn write_snapshot(&self, out: &mut Vec<u8>) {
        use bytes::BufMut;
        use dbsa_index::snapshot::{put_f64s, put_u32s};
        dbsa_index::snapshot::put_extent(out, &self.extent);
        out.put_u64_le(self.region_count as u64);
        out.put_f64_le(self.bound.epsilon());
        out.put_u8(self.finest_level);
        out.put_u64_le(self.raster_cells as u64);
        put_u32s(
            out,
            &self
                .border_exits
                .iter()
                .map(|&(p, _)| p)
                .collect::<Vec<_>>(),
        );
        let mut corners = Vec::with_capacity(self.border_exits.len() * 4);
        for (_, bbox) in &self.border_exits {
            corners.extend([bbox.min.x, bbox.min.y, bbox.max.x, bbox.max.y]);
        }
        put_f64s(out, &corners);
        self.trie.write_snapshot(out);
    }

    /// Reads a join written by [`write_snapshot`](Self::write_snapshot).
    pub fn read_snapshot(
        cur: &mut dbsa_index::SectionCursor<'_>,
    ) -> Result<Self, dbsa_index::SnapshotError> {
        let extent = dbsa_index::snapshot::read_extent(cur)?;
        let region_count = cur.read_u64()? as usize;
        let epsilon = cur.read_f64()?;
        if !(epsilon.is_finite() && epsilon > 0.0) {
            return Err(cur.malformed("distance bound must be positive and finite"));
        }
        let bound = DistanceBound::new(epsilon);
        let finest_level = cur.read_u8()?;
        if finest_level > MAX_LEVEL {
            return Err(cur.malformed("finest level exceeds the grid's finest level"));
        }
        let raster_cells = cur.read_u64()? as usize;
        let exit_polygons = cur.read_u32s()?;
        let corners = cur.read_f64s()?;
        if corners.len() != exit_polygons.len() * 4 {
            return Err(cur.malformed("border-exit columns disagree on length"));
        }
        let border_exits: Vec<(PolygonId, dbsa_geom::BoundingBox)> = exit_polygons
            .into_iter()
            .zip(corners.chunks_exact(4))
            .map(|(p, c)| {
                (
                    p,
                    dbsa_geom::BoundingBox::new(Point::new(c[0], c[1]), Point::new(c[2], c[3])),
                )
            })
            .collect();
        let trie = FrozenCellTrie::read_snapshot(cur)?;
        if trie.polygon_count() > region_count {
            return Err(cur.malformed("trie indexes more polygons than the join has regions"));
        }
        Ok(ApproximateCellJoin {
            trie,
            extent,
            region_count,
            bound,
            finest_level,
            raster_cells,
            border_exits,
        })
    }

    /// The distance bound the join guarantees at its finest level (the
    /// build-time bound; per-query specs can only loosen it, or request
    /// exactness through refinement).
    pub fn bound(&self) -> DistanceBound {
        self.bound
    }

    /// The grid extent the index linearizes against.
    pub fn extent(&self) -> &GridExtent {
        &self.extent
    }

    /// Number of regions the join groups by (indexed or not).
    pub fn region_count(&self) -> usize {
        self.region_count
    }

    /// The finest truncation level of the level-stacked trie (the boundary
    /// level the rasters were built at).
    pub fn finest_level(&self) -> u8 {
        self.finest_level
    }

    /// A planner over this index's level stack.
    pub fn planner(&self) -> QueryPlanner<'_> {
        QueryPlanner::new(&self.extent, self.finest_level, &self.trie)
    }

    /// Plans one query spec onto a truncation level (plus an optional exact
    /// refinement stage) without executing it.
    pub fn plan(&self, spec: &QuerySpec) -> QueryPlan {
        self.planner().plan(spec)
    }

    /// Total number of raster cells indexed (the paper reports 13.2 M cells
    /// for the Neighborhoods dataset at a 4 m bound).
    pub fn raster_cell_count(&self) -> usize {
        self.raster_cells
    }

    /// Memory footprint of the join structure — the succinct frozen trie
    /// plus the border-exit boxes, as true heap bytes (capacities, not
    /// lengths). Exact, O(1).
    pub fn memory_bytes(&self) -> usize {
        self.trie.memory_bytes()
            + self.border_exits.capacity()
                * std::mem::size_of::<(PolygonId, dbsa_geom::BoundingBox)>()
    }

    /// Inclusive span of leaf keys covered by any indexed region cell
    /// (`None` when no region produced postings). Point shards whose key
    /// range lies outside the span can be pruned: every one of their
    /// points is unmatched.
    pub fn covered_key_range(&self) -> Option<(u64, u64)> {
        self.trie.covered_key_range()
    }

    /// The frozen trie the join probes (exposed for benchmarks and stats).
    pub fn trie(&self) -> &FrozenCellTrie {
        &self.trie
    }

    /// Structural statistics of the frozen trie.
    pub fn trie_stats(&self) -> ActStats {
        self.trie.stats()
    }

    /// Batched lookup: the first (coarsest) covering posting per point, in
    /// the *original* point order.
    ///
    /// Probes are sorted by leaf cell key once and answered with a
    /// prefix-sharing cursor over the frozen trie, so consecutive probes
    /// re-descend only below the level where their Z-order keys diverge.
    pub fn lookup_batch(&self, points: &[Point]) -> Vec<Option<CellPosting>> {
        self.lookup_batch_at(points, MAX_LEVEL)
    }

    /// [`lookup_batch`](Self::lookup_batch) against the **level-`level`
    /// truncation** of the index: probes that would resolve below `level`
    /// come back as `Boundary`-class summaries of the coarser covering.
    pub fn lookup_batch_at(&self, points: &[Point], level: u8) -> Vec<Option<CellPosting>> {
        let order = sorted_probe_order(points, &self.extent);
        let mut matches = vec![None; points.len()];
        let mut cursor = self.trie.cursor_at(level);
        for &(leaf, idx) in &order {
            matches[idx as usize] = cursor.first_posting(leaf);
        }
        matches
    }

    /// Executes the join single-threaded (batched sorted-probe path) at the
    /// finest built level — the build-time distance bound.
    pub fn execute(&self, points: &[Point], values: &[f64]) -> JoinResult {
        self.execute_at(points, values, MAX_LEVEL)
    }

    /// Executes the join against the level-`level` truncation of the index:
    /// the same probe schedule, walked over the coarser covering the
    /// planner selected for a looser per-query bound. `level >= max_depth`
    /// reproduces [`execute`](Self::execute) bit-for-bit.
    pub fn execute_at(&self, points: &[Point], values: &[f64], level: u8) -> JoinResult {
        assert_eq!(points.len(), values.len(), "one value per point required");
        let mut result = JoinResult::with_regions(self.region_count);
        let matches = self.lookup_batch_at(points, level);
        // Aggregate in the original point order so the result — including
        // the f64 summation order — is bit-for-bit identical to the scalar
        // probe loop.
        for (m, v) in matches.iter().zip(values) {
            match m {
                Some(posting) => Self::accumulate(&mut result, *posting, *v),
                None => result.unmatched += 1,
            }
        }
        result
    }

    /// Executes the query spec end to end: plans it, runs the approximate
    /// filter at the chosen level, and — for [`QuerySpec::exact`] — refines
    /// boundary-cell matches with exact point-in-polygon tests against
    /// `regions` (the indexed geometries, in index order).
    pub fn execute_spec(
        &self,
        spec: &QuerySpec,
        points: &[Point],
        values: &[f64],
        regions: &[MultiPolygon],
    ) -> (QueryPlan, JoinResult) {
        let plan = self.plan(spec);
        let result = if plan.exact_refinement {
            self.execute_refined(points, values, regions)
        } else {
            self.execute_at(points, values, plan.level)
        };
        (plan, result)
    }

    /// The exact filter-and-refine pipeline: probes run at the finest built
    /// level; points matched through **interior** cells are accepted
    /// wholesale (the cell is fully inside its region — no geometry test
    /// needed), points matched through **boundary** cells are resolved with
    /// exact point-in-polygon tests, candidates in coarsest-first posting
    /// order.
    ///
    /// **Determinism policy:** for **disjoint region sets** (the
    /// administrative-partition workloads this engine targets — a point
    /// lies in at most one region, so attribution order cannot matter),
    /// the per-region aggregates and the unmatched count are bit-for-bit
    /// identical to [`RTreeExactJoin::execute`] over the same rows (same
    /// matches, same f64 summation order — the original point order).
    /// With overlapping regions both pipelines remain exact per point but
    /// may attribute a multiply-contained point to different regions
    /// (first-accepting candidate in different candidate orders). Only
    /// `pip_tests` differs: it counts the refinements this pipeline
    /// actually performed, which is the point — the approximate filter
    /// eliminates most of the R-tree join's candidate tests.
    pub fn execute_refined(
        &self,
        points: &[Point],
        values: &[f64],
        regions: &[MultiPolygon],
    ) -> JoinResult {
        assert_eq!(points.len(), values.len(), "one value per point required");
        assert_eq!(
            regions.len(),
            self.region_count,
            "refinement needs the exact geometry of every indexed region"
        );
        let order = sorted_probe_order(points, &self.extent);
        let mut matches: Vec<Option<PolygonId>> = vec![None; points.len()];
        let mut postings: Vec<CellPosting> = Vec::new();
        let mut pip_tests = 0u64;
        for &(leaf, idx) in &order {
            self.trie.lookup_leaf_into(leaf, &mut postings);
            matches[idx as usize] =
                resolve_exact(&postings, &points[idx as usize], regions, &mut pip_tests);
        }
        let mut result = JoinResult::with_regions(self.region_count);
        result.pip_tests = pip_tests;
        for (m, v) in matches.iter().zip(values) {
            match m {
                Some(rid) => result.regions[*rid as usize].add(*v, false),
                None => result.unmatched += 1,
            }
        }
        result
    }

    /// Executes the join with one scalar trie descent per point, reusing a
    /// single postings buffer across probes (no sort, no per-probe
    /// allocation). Kept for comparison benchmarks; produces bit-for-bit the
    /// same [`JoinResult`] as [`execute`](Self::execute).
    pub fn execute_scalar(&self, points: &[Point], values: &[f64]) -> JoinResult {
        assert_eq!(points.len(), values.len(), "one value per point required");
        let mut result = JoinResult::with_regions(self.region_count);
        let mut postings: Vec<CellPosting> = Vec::new();
        for (p, v) in points.iter().zip(values) {
            let leaf = self.extent.leaf_cell_id(p);
            self.trie.lookup_leaf_into(leaf, &mut postings);
            match postings.first() {
                Some(posting) => Self::accumulate(&mut result, *posting, *v),
                None => result.unmatched += 1,
            }
        }
        result
    }

    #[inline]
    pub(crate) fn accumulate(result: &mut JoinResult, posting: CellPosting, value: f64) {
        // Administrative regions are disjoint: a point falls in at most
        // one region except within the bound of shared boundaries, where
        // the first (coarsest) posting wins — any such point is within ε
        // of the boundary, so either attribution is admissible.
        result.regions[posting.polygon as usize].add(value, posting.class == CellClass::Boundary);
    }

    /// Executes the join over a **precomputed probe schedule**: leaf keys
    /// sorted ascending with the attribute column aligned. This is the
    /// per-shard hot path of the sharded engine — no per-query leaf-id
    /// computation, no sort, no match scatter; one cursor walk straight
    /// over the schedule, accumulating in key order.
    ///
    /// Matching is per-key identical to [`execute`](Self::execute) /
    /// [`execute_scalar`](Self::execute_scalar); only the f64 summation
    /// order differs (key order instead of original point order), so
    /// counts are exactly equal and sums agree up to rounding.
    pub fn execute_keys(&self, keys: &[u64], values: &[f64]) -> JoinResult {
        self.execute_keys_at(keys, values, MAX_LEVEL)
    }

    /// [`execute_keys`](Self::execute_keys) against the level-`level`
    /// truncation of the index (the sharded hot path of a planned
    /// coarse-bound query).
    pub fn execute_keys_at(&self, keys: &[u64], values: &[f64], level: u8) -> JoinResult {
        assert_eq!(keys.len(), values.len(), "one value per key required");
        debug_assert!(
            keys.windows(2).all(|w| w[0] <= w[1]),
            "execute_keys expects keys sorted ascending"
        );
        let mut result = JoinResult::with_regions(self.region_count);
        let mut cursor = self.trie.cursor_at(level);
        for (k, v) in keys.iter().zip(values) {
            match cursor.first_posting(CellId::from_raw(*k)) {
                Some(posting) => Self::accumulate(&mut result, posting, *v),
                None => result.unmatched += 1,
            }
        }
        result
    }

    /// The per-shard exact filter-and-refine path: like
    /// [`execute_refined`](Self::execute_refined) but over a precomputed
    /// probe schedule (sorted keys with the point and value columns
    /// aligned), accumulating in key order — the summation order of the
    /// sharded engine's row layout.
    pub fn execute_keys_refined(
        &self,
        keys: &[u64],
        points: &[Point],
        values: &[f64],
        regions: &[MultiPolygon],
    ) -> JoinResult {
        assert_eq!(keys.len(), values.len(), "one value per key required");
        assert_eq!(keys.len(), points.len(), "one point per key required");
        assert_eq!(
            regions.len(),
            self.region_count,
            "refinement needs the exact geometry of every indexed region"
        );
        debug_assert!(
            keys.windows(2).all(|w| w[0] <= w[1]),
            "execute_keys_refined expects keys sorted ascending"
        );
        let mut result = JoinResult::with_regions(self.region_count);
        let mut postings: Vec<CellPosting> = Vec::new();
        for ((k, p), v) in keys.iter().zip(points).zip(values) {
            self.trie
                .lookup_leaf_into(CellId::from_raw(*k), &mut postings);
            match resolve_exact(&postings, p, regions, &mut result.pip_tests) {
                Some(rid) => result.regions[rid as usize].add(*v, false),
                None => result.unmatched += 1,
            }
        }
        result
    }

    /// Executes the join shard-by-shard with up to `threads` workers, at the
    /// finest built level.
    ///
    /// Each [`ShardProbe`] is one shard's probe schedule. Shards whose key
    /// span does not intersect [`covered_key_range`](Self::covered_key_range)
    /// are pruned: their points are all unmatched and no probe runs.
    ///
    /// **Determinism policy:** shard partials are produced independently
    /// (each accumulated in its shard's key order) and merged in shard
    /// index order via [`JoinResult::merge`] — the one merge
    /// implementation every parallel path shares. For a fixed shard
    /// layout the result is therefore bit-for-bit reproducible regardless
    /// of `threads`; across different shard layouts, counts and unmatched
    /// totals are identical and only f64 sums may differ in final-bit
    /// rounding (different summation order).
    pub fn execute_shards(&self, shards: &[ShardProbe<'_>], threads: usize) -> JoinResult {
        self.execute_shards_at(shards, threads, MAX_LEVEL)
    }

    /// [`execute_shards`](Self::execute_shards) against the level-`level`
    /// truncation of the index. Shard pruning intersects against the
    /// **chosen level's** covered key range
    /// ([`FrozenCellTrie::covered_key_range_at`]) — the truncated covering
    /// is a superset of the exact one, so the coarser the level, the wider
    /// the range a shard must clear to be pruned.
    pub fn execute_shards_at(
        &self,
        shards: &[ShardProbe<'_>],
        threads: usize,
        level: u8,
    ) -> JoinResult {
        let covered = self.trie.covered_key_range_at(level);
        self.run_shards(shards, threads, |shard| {
            if prunable(covered, shard.key_span()) {
                self.pruned_partial(shard)
            } else {
                self.execute_keys_at(shard.keys, shard.values, level)
            }
        })
    }

    /// The sharded exact filter-and-refine pipeline. Probe schedules must
    /// carry their point column ([`ShardProbe::with_points`]); shards
    /// outside the exact covered key range are pruned — their points lie
    /// outside every region (the covering is conservative), so "all
    /// unmatched" is the exact answer.
    ///
    /// **Determinism policy:** as with [`execute_shards`](Self::execute_shards),
    /// partials merge in shard index order, so for a fixed shard layout the
    /// result is bit-for-bit reproducible regardless of `threads`. Against
    /// [`RTreeExactJoin::execute`] over the same rows, every *count*, the
    /// unmatched total and min/max are identical for any shard layout (the
    /// matches are the same point-by-point); f64 sums are bit-for-bit for a
    /// single shard and agree up to summation-order rounding across shard
    /// merges (partial sums re-associate). `pip_tests` counts this
    /// pipeline's own (far fewer) refinements.
    pub fn execute_shards_refined(
        &self,
        shards: &[ShardProbe<'_>],
        regions: &[MultiPolygon],
        threads: usize,
    ) -> JoinResult {
        assert_eq!(
            regions.len(),
            self.region_count,
            "refinement needs the exact geometry of every indexed region"
        );
        let covered = self.covered_key_range();
        self.run_shards(shards, threads, |shard| {
            if prunable(covered, shard.key_span()) {
                self.pruned_partial(shard)
            } else {
                let points = shard
                    .points()
                    .expect("refined execution needs shard probes built with_points");
                self.execute_keys_refined(shard.keys, points, shard.values, regions)
            }
        })
    }

    /// Plans and executes a query spec over shard probe schedules: the
    /// sharded twin of [`execute_spec`](Self::execute_spec). Exact specs
    /// require probes built with [`ShardProbe::with_points`].
    pub fn execute_shards_spec(
        &self,
        spec: &QuerySpec,
        shards: &[ShardProbe<'_>],
        regions: &[MultiPolygon],
        threads: usize,
    ) -> (QueryPlan, JoinResult) {
        let plan = self.plan(spec);
        let result = if plan.exact_refinement {
            self.execute_shards_refined(shards, regions, threads)
        } else {
            self.execute_shards_at(shards, threads, plan.level)
        };
        (plan, result)
    }

    /// The partial result of a pruned shard: every point unmatched.
    pub(crate) fn pruned_partial(&self, shard: &ShardProbe<'_>) -> JoinResult {
        let mut partial = JoinResult::with_regions(self.region_count);
        partial.unmatched = shard.len() as u64;
        partial
    }

    /// Shared worker scaffolding of every sharded path: runs `run_shard`
    /// over the shards with up to `threads` workers (round-robin shard
    /// assignment) and merges the partials in shard index order.
    pub(crate) fn run_shards<F>(
        &self,
        shards: &[ShardProbe<'_>],
        threads: usize,
        run_shard: F,
    ) -> JoinResult
    where
        F: Fn(&ShardProbe<'_>) -> JoinResult + Sync,
    {
        let workers = threads.max(1).min(shards.len().max(1));
        let mut partials: Vec<JoinResult>;
        if workers <= 1 {
            partials = shards.iter().map(&run_shard).collect();
        } else {
            partials = vec![JoinResult::default(); shards.len()];
            crossbeam::scope(|scope| {
                let mut handles = Vec::new();
                // Round-robin shard assignment: worker w owns shards
                // w, w + workers, …; partials land at their shard index.
                for w in 0..workers {
                    let run_shard = &run_shard;
                    handles.push(scope.spawn(move |_| {
                        (w..shards.len())
                            .step_by(workers)
                            .map(|i| (i, run_shard(&shards[i])))
                            .collect::<Vec<_>>()
                    }));
                }
                for h in handles {
                    for (i, partial) in h.join().expect("join worker panicked") {
                        partials[i] = partial;
                    }
                }
            })
            .expect("crossbeam scope failed");
        }

        // One merge implementation for every parallel path, applied in
        // shard index order.
        let mut result = JoinResult::with_regions(self.region_count);
        for p in &partials {
            result.merge(p);
        }
        result
    }
}

/// Whether a shard whose keys span `span` can be skipped against the
/// covered key range `covered`: empty shards, index-less queries and
/// disjoint intervals all prune.
pub(crate) fn prunable(covered: Option<(u64, u64)>, span: Option<(u64, u64)>) -> bool {
    match (covered, span) {
        (_, None) => true,
        (None, _) => true,
        (Some((clo, chi)), Some((lo, hi))) => hi < clo || chi < lo,
    }
}

/// Resolves one probe exactly: interior-cell postings accept their polygon
/// outright (an interior cell is fully inside its region), boundary-cell
/// postings pay one counted point-in-polygon test each, in coarsest-first
/// posting order, until one accepts.
fn resolve_exact(
    postings: &[CellPosting],
    p: &Point,
    regions: &[MultiPolygon],
    pip_tests: &mut u64,
) -> Option<PolygonId> {
    for posting in postings {
        match posting.class {
            CellClass::Interior => return Some(posting.polygon),
            CellClass::Boundary => {
                if refine_contains(&regions[posting.polygon as usize], p, pip_tests) {
                    return Some(posting.polygon);
                }
            }
        }
    }
    None
}

/// One shard's probe schedule for [`ApproximateCellJoin::execute_shards`]:
/// leaf keys sorted ascending, attribute values aligned, and (for exact
/// refinement) the point column aligned as well.
#[derive(Debug, Clone, Copy)]
pub struct ShardProbe<'a> {
    /// Sorted raw leaf keys of the shard's points.
    pub keys: &'a [u64],
    /// Attribute values aligned with `keys`.
    pub values: &'a [f64],
    /// The shard's points aligned with `keys`, required by the exact
    /// refinement path (boundary-cell matches need the coordinates for
    /// their point-in-polygon tests).
    points: Option<&'a [Point]>,
}

impl<'a> ShardProbe<'a> {
    /// Creates a probe schedule; the columns must be equally long and the
    /// keys sorted ascending (checked in debug builds). The resulting probe
    /// serves bounded queries only — use
    /// [`with_points`](Self::with_points) to enable exact refinement.
    pub fn new(keys: &'a [u64], values: &'a [f64]) -> Self {
        assert_eq!(keys.len(), values.len(), "one value per key required");
        debug_assert!(
            keys.windows(2).all(|w| w[0] <= w[1]),
            "shard probe keys must be sorted ascending"
        );
        ShardProbe {
            keys,
            values,
            points: None,
        }
    }

    /// Creates a probe schedule carrying the aligned point column, enabling
    /// the exact refinement path.
    pub fn with_points(keys: &'a [u64], points: &'a [Point], values: &'a [f64]) -> Self {
        assert_eq!(keys.len(), points.len(), "one point per key required");
        let mut probe = Self::new(keys, values);
        probe.points = Some(points);
        probe
    }

    /// The aligned point column, when the probe was built
    /// [`with_points`](Self::with_points).
    pub fn points(&self) -> Option<&'a [Point]> {
        self.points
    }

    /// Number of points in the shard.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the shard is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Inclusive `[lo, hi]` span of the shard's keys (`None` when empty).
    pub fn key_span(&self) -> Option<(u64, u64)> {
        Some((*self.keys.first()?, *self.keys.last()?))
    }
}

/// Exact join through an R-tree over region MBRs.
pub struct RTreeExactJoin {
    tree: RTree,
    regions: Vec<MultiPolygon>,
}

impl RTreeExactJoin {
    /// Builds the R-tree over the regions' MBRs (STR bulk load).
    pub fn build(regions: &[MultiPolygon]) -> Self {
        let entries: Vec<RTreeEntry> = regions
            .iter()
            .enumerate()
            .map(|(i, r)| RTreeEntry::new(r.bbox(), i as u64))
            .collect();
        RTreeExactJoin {
            tree: RTree::bulk_load_str(entries, RTree::DEFAULT_CAPACITY),
            regions: regions.to_vec(),
        }
    }

    /// Memory footprint of the R-tree (MBRs only, matching the paper's
    /// 27.9 KB figure's convention).
    pub fn memory_bytes(&self) -> usize {
        self.tree.memory_bytes()
    }

    /// Executes the exact join: every point probes the tree, every candidate
    /// region is verified with an exact point-in-polygon test.
    pub fn execute(&self, points: &[Point], values: &[f64]) -> JoinResult {
        assert_eq!(points.len(), values.len(), "one value per point required");
        let mut result = JoinResult::with_regions(self.regions.len());
        for (p, v) in points.iter().zip(values) {
            let candidates = self.tree.query_point(p);
            let mut matched = false;
            for rid in candidates {
                if refine_contains(&self.regions[rid as usize], p, &mut result.pip_tests) {
                    result.regions[rid as usize].add(*v, false);
                    matched = true;
                    break;
                }
            }
            if !matched {
                result.unmatched += 1;
            }
        }
        result
    }
}

/// Exact join through the S2ShapeIndex-like coarse-cell index.
pub struct ShapeIndexExactJoin {
    index: ShapeIndex,
    region_count: usize,
}

impl ShapeIndexExactJoin {
    /// Covering budget per region. S2ShapeIndex subdivides cells until few
    /// edges remain per cell, which for city-sized regions lands at a much
    /// finer covering than an MBR but far coarser than a distance-bounded
    /// raster; 64 cells per region reproduces that middle ground.
    pub const CELLS_PER_REGION: usize = 64;

    /// Builds the shape index over the regions.
    pub fn build(regions: &[MultiPolygon], extent: &GridExtent) -> Self {
        ShapeIndexExactJoin {
            index: ShapeIndex::with_cells_per_polygon(regions, extent, Self::CELLS_PER_REGION),
            region_count: regions.len(),
        }
    }

    /// Memory footprint of the coarse coverings.
    pub fn memory_bytes(&self) -> usize {
        self.index.memory_bytes()
    }

    /// Executes the exact join.
    ///
    /// Probes run in leaf-key order (the index's covering cells are sorted
    /// by cell range, so key-ordered probes walk its stabbing scan almost
    /// sequentially) with one reused hit buffer; the aggregation then runs
    /// in the original point order, so the result is bit-for-bit identical
    /// to a point-at-a-time loop.
    pub fn execute(&self, points: &[Point], values: &[f64]) -> JoinResult {
        assert_eq!(points.len(), values.len(), "one value per point required");
        let mut result = JoinResult::with_regions(self.region_count);
        let order = sorted_probe_order(points, self.index.extent());
        let mut matches: Vec<Option<PolygonId>> = vec![None; points.len()];
        let mut hits: Vec<PolygonId> = Vec::new();
        let mut refinements = 0u64;
        for &(_, idx) in &order {
            self.index
                .lookup_counting_into(&points[idx as usize], &mut refinements, &mut hits);
            matches[idx as usize] = hits.first().copied();
        }
        result.pip_tests += refinements;
        for (m, v) in matches.iter().zip(values) {
            match m {
                Some(rid) => result.regions[*rid as usize].add(*v, false),
                None => result.unmatched += 1,
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbsa_datagen::{city_extent, DatasetProfile, PolygonSetGenerator, TaxiPointGenerator};
    use proptest::prelude::*;

    fn workload(
        points: usize,
        regions: usize,
    ) -> (Vec<Point>, Vec<f64>, Vec<MultiPolygon>, GridExtent) {
        let gen = TaxiPointGenerator::new(city_extent(), 5);
        let taxi = gen.generate(points);
        let pts: Vec<Point> = taxi.iter().map(|t| t.location).collect();
        let vals: Vec<f64> = taxi.iter().map(|t| t.fare).collect();
        let polys = PolygonSetGenerator::new(city_extent(), regions, 24, 9).generate();
        let extent = GridExtent::covering(&city_extent());
        (pts, vals, polys, extent)
    }

    fn exact_reference(
        points: &[Point],
        values: &[f64],
        regions: &[MultiPolygon],
    ) -> Vec<RegionAggregate> {
        let mut out = vec![RegionAggregate::default(); regions.len()];
        for (p, v) in points.iter().zip(values) {
            for (i, r) in regions.iter().enumerate() {
                if r.contains_point(p) {
                    out[i].add(*v, false);
                    break;
                }
            }
        }
        out
    }

    #[test]
    fn exact_joins_match_the_reference() {
        let (points, values, regions, extent) = workload(8_000, 16);
        let reference = exact_reference(&points, &values, &regions);

        let rtree = RTreeExactJoin::build(&regions).execute(&points, &values);
        let shape = ShapeIndexExactJoin::build(&regions, &extent).execute(&points, &values);
        for (i, expected) in reference.iter().enumerate().take(regions.len()) {
            assert_eq!(rtree.regions[i].count, expected.count, "rtree region {i}");
            assert_eq!(shape.regions[i].count, expected.count, "shape region {i}");
            assert!((rtree.regions[i].sum - expected.sum).abs() < 1e-6);
            assert!((shape.regions[i].sum - expected.sum).abs() < 1e-6);
        }
        assert!(rtree.pip_tests > 0);
        // The shape index refines only near boundaries, so it needs fewer
        // PIP tests than the MBR-filtered R-tree join.
        assert!(
            shape.pip_tests < rtree.pip_tests,
            "shape index should refine less: {} vs {}",
            shape.pip_tests,
            rtree.pip_tests
        );
    }

    #[test]
    fn approximate_join_never_does_pip_tests_and_stays_within_bound() {
        let (points, values, regions, extent) = workload(8_000, 16);
        let bound = DistanceBound::meters(8.0);
        let join = ApproximateCellJoin::build(&regions, &extent, bound);
        let result = join.execute(&points, &values);
        assert_eq!(result.pip_tests, 0, "the approximate join must not refine");
        assert_eq!(result.regions.len(), 16);
        assert!(join.raster_cell_count() > 0);
        assert!(join.memory_bytes() > 0);
        assert_eq!(join.bound().epsilon(), 8.0);

        // Per-region error is bounded by the number of points within ε of
        // that region's boundary.
        let reference = exact_reference(&points, &values, &regions);
        for (i, region) in regions.iter().enumerate() {
            let near_boundary = points
                .iter()
                .filter(|p| region.boundary_distance(p) <= bound.epsilon())
                .count() as i64;
            let err = (result.regions[i].count as i64 - reference[i].count as i64).abs();
            assert!(
                err <= near_boundary,
                "region {i}: error {err} exceeds near-boundary point count {near_boundary}"
            );
        }
    }

    #[test]
    fn tighter_bounds_reduce_join_error_and_increase_memory() {
        let (points, values, regions, extent) = workload(6_000, 9);
        let reference = exact_reference(&points, &values, &regions);
        let mut last_total_err = u64::MAX;
        let mut last_memory = 0usize;
        for eps in [64.0, 16.0, 4.0] {
            let join = ApproximateCellJoin::build(&regions, &extent, DistanceBound::meters(eps));
            let result = join.execute(&points, &values);
            let total_err: u64 = result
                .regions
                .iter()
                .zip(&reference)
                .map(|(a, e)| a.count.abs_diff(e.count))
                .sum();
            assert!(
                total_err <= last_total_err,
                "error should not grow as ε shrinks"
            );
            assert!(
                join.memory_bytes() >= last_memory,
                "memory should grow as ε shrinks"
            );
            last_total_err = total_err;
            last_memory = join.memory_bytes();
        }
    }

    /// Sorts the workload rows by leaf key and splits them into contiguous
    /// shard probe schedules along weighted Morton key ranges.
    fn shard_schedules(
        points: &[Point],
        values: &[f64],
        extent: &GridExtent,
        shards: usize,
    ) -> (Vec<u64>, Vec<f64>, Vec<(usize, usize)>) {
        let mut rows: Vec<(u64, f64)> = points
            .iter()
            .zip(values)
            .map(|(p, v)| (extent.leaf_cell_id(p).raw(), *v))
            .collect();
        rows.sort_unstable_by_key(|(k, _)| *k);
        let keys: Vec<u64> = rows.iter().map(|(k, _)| *k).collect();
        let vals: Vec<f64> = rows.iter().map(|(_, v)| *v).collect();
        let ranges = dbsa_grid::partition_sorted_keys(&keys, shards);
        let bounds = dbsa_grid::split_at_ranges(&keys, &ranges);
        (keys, vals, bounds)
    }

    #[test]
    fn sharded_execution_matches_sequential_and_is_deterministic() {
        let (points, values, regions, extent) = workload(10_000, 9);
        let join = ApproximateCellJoin::build(&regions, &extent, DistanceBound::meters(10.0));
        let seq = join.execute(&points, &values);
        for shards in [1usize, 3, 8] {
            let (keys, vals, bounds) = shard_schedules(&points, &values, &extent, shards);
            let probes: Vec<ShardProbe<'_>> = bounds
                .iter()
                .map(|&(a, b)| ShardProbe::new(&keys[a..b], &vals[a..b]))
                .collect();
            let threaded = join.execute_shards(&probes, 4);
            let single = join.execute_shards(&probes, 1);
            // For a fixed shard layout the result is bit-for-bit
            // reproducible regardless of the worker count.
            assert_eq!(threaded, single, "{shards} shards");
            // Counts and unmatched match the unsharded join exactly; sums
            // agree up to summation-order rounding.
            assert_eq!(threaded.unmatched, seq.unmatched);
            assert_eq!(threaded.pip_tests, 0);
            for (s, p) in seq.regions.iter().zip(&threaded.regions) {
                assert_eq!(s.count, p.count);
                assert_eq!(s.boundary_count, p.boundary_count);
                assert_eq!(s.min, p.min);
                assert_eq!(s.max, p.max);
                assert!((s.sum - p.sum).abs() < 1e-6);
            }
        }
        // No shards at all: a well-formed empty result.
        let empty = join.execute_shards(&[], 4);
        assert_eq!(empty.regions.len(), 9);
        assert_eq!(empty.total_matched(), 0);
    }

    #[test]
    fn execute_keys_walks_a_precomputed_schedule() {
        let (points, values, regions, extent) = workload(4_000, 9);
        let join = ApproximateCellJoin::build(&regions, &extent, DistanceBound::meters(8.0));
        let (keys, vals, _) = shard_schedules(&points, &values, &extent, 1);
        let by_keys = join.execute_keys(&keys, &vals);
        let by_points = join.execute(&points, &values);
        assert_eq!(by_keys.unmatched, by_points.unmatched);
        for (a, b) in by_keys.regions.iter().zip(&by_points.regions) {
            assert_eq!(a.count, b.count);
            assert!((a.sum - b.sum).abs() < 1e-6);
        }
    }

    #[test]
    fn shards_outside_the_covered_range_are_pruned() {
        let (_, _, regions, extent) = workload(10, 4);
        let join = ApproximateCellJoin::build(&regions, &extent, DistanceBound::meters(8.0));
        let (lo, hi) = join.covered_key_range().expect("regions have postings");
        assert!(lo <= hi);
        // A shard entirely above the covered span: every point unmatched,
        // bit-for-bit the same as actually probing it.
        let far = Point::new(39_999.0, 39_999.0);
        let far_key = extent.leaf_cell_id(&far).raw();
        assert!(far_key > hi, "test point must sit outside every region");
        let keys = vec![far_key; 5];
        let vals = vec![1.0; 5];
        let probe = ShardProbe::new(&keys, &vals);
        let pruned = join.execute_shards(&[probe], 1);
        assert_eq!(pruned.unmatched, 5);
        assert_eq!(pruned.total_matched(), 0);
        assert_eq!(pruned, join.execute_keys(&keys, &vals));
    }

    /// The seed's pointer-trie scalar probe loop, kept as the reference the
    /// frozen/batched paths must reproduce bit-for-bit.
    fn pointer_trie_scalar_join(
        regions: &[MultiPolygon],
        extent: &GridExtent,
        bound: DistanceBound,
        points: &[Point],
        values: &[f64],
    ) -> JoinResult {
        let rasters: Vec<HierarchicalRaster> = regions
            .iter()
            .map(|r| HierarchicalRaster::with_bound(r, extent, bound, BoundaryPolicy::Conservative))
            .collect();
        let trie = AdaptiveCellTrie::build(&rasters);
        let mut result = JoinResult::with_regions(regions.len());
        for (p, v) in points.iter().zip(values) {
            let postings = trie.lookup_leaf(extent.leaf_cell_id(p));
            match postings.first() {
                Some(posting) => result.regions[posting.polygon as usize]
                    .add(*v, posting.class == CellClass::Boundary),
                None => result.unmatched += 1,
            }
        }
        result
    }

    #[test]
    fn batched_and_scalar_paths_match_the_pointer_trie_bit_for_bit() {
        let (points, values, regions, extent) = workload(12_000, 16);
        let bound = DistanceBound::meters(6.0);
        let join = ApproximateCellJoin::build(&regions, &extent, bound);
        let reference = pointer_trie_scalar_join(&regions, &extent, bound, &points, &values);
        assert_eq!(join.execute(&points, &values), reference);
        assert_eq!(join.execute_scalar(&points, &values), reference);
        assert_eq!(join.trie_stats().postings, join.trie().posting_count());
    }

    #[test]
    fn lookup_batch_returns_original_point_order() {
        let (points, values, regions, extent) = workload(2_000, 9);
        let _ = values;
        let join = ApproximateCellJoin::build(&regions, &extent, DistanceBound::meters(8.0));
        let matches = join.lookup_batch(&points);
        assert_eq!(matches.len(), points.len());
        for (p, m) in points.iter().zip(&matches) {
            let leaf = extent.leaf_cell_id(p);
            assert_eq!(*m, join.trie().first_posting(leaf));
        }
    }

    #[test]
    fn one_build_serves_coarser_bounds_with_monotone_uncertainty() {
        let (points, values, regions, extent) = workload(8_000, 9);
        let join = ApproximateCellJoin::build(&regions, &extent, DistanceBound::meters(4.0));
        let mut prev_boundary = u64::MAX;
        let mut prev_matched = u64::MAX;
        let mut levels = Vec::new();
        for eps in [4.0, 16.0, 64.0] {
            let spec = QuerySpec::within_meters(eps);
            let (plan, result) = join.execute_spec(&spec, &points, &values, &regions);
            assert!(plan.satisfies_request);
            assert!(plan.guaranteed_bound <= eps);
            assert_eq!(result.pip_tests, 0, "bounded specs never refine");
            assert_eq!(
                result.total_matched() + result.unmatched,
                points.len() as u64
            );
            let boundary: u64 = result.regions.iter().map(|r| r.boundary_count).sum();
            // Sweeping tight→loose: the uncertain (boundary-matched) count
            // and the conservative match total can only grow as the bound
            // loosens — i.e. tightening the bound monotonically shrinks
            // them.
            if prev_boundary != u64::MAX {
                assert!(boundary >= prev_boundary, "eps {eps}");
                assert!(result.total_matched() >= prev_matched, "eps {eps}");
            }
            prev_boundary = boundary;
            prev_matched = result.total_matched();
            levels.push(plan.level);
        }
        // Three distinct bounds map to three distinct levels of one build.
        assert!(levels[0] > levels[1] && levels[1] > levels[2], "{levels:?}");
    }

    #[test]
    fn refined_execution_equals_rtree_exact_join() {
        let (points, values, regions, extent) = workload(9_000, 12);
        let join = ApproximateCellJoin::build(&regions, &extent, DistanceBound::meters(8.0));
        let reference = RTreeExactJoin::build(&regions).execute(&points, &values);
        let (plan, refined) = join.execute_spec(&QuerySpec::exact(), &points, &values, &regions);
        assert!(plan.exact_refinement);
        assert_eq!(plan.guaranteed_bound, 0.0);
        // Bit-for-bit on the answer fields; pip_tests is a work counter and
        // the whole point is that refinement does far fewer of them.
        assert_eq!(refined.regions, reference.regions);
        assert_eq!(refined.unmatched, reference.unmatched);
        assert!(
            refined.pip_tests < reference.pip_tests,
            "refinement must out-filter the R-tree: {} vs {}",
            refined.pip_tests,
            reference.pip_tests
        );
        assert!(refined.pip_tests > 0, "boundary points still refine");
    }

    #[test]
    fn coarse_level_sharded_execution_matches_unsharded() {
        let (points, values, regions, extent) = workload(8_000, 9);
        let join = ApproximateCellJoin::build(&regions, &extent, DistanceBound::meters(4.0));
        let plan = join.plan(&QuerySpec::within_meters(64.0));
        assert!(plan.level < join.finest_level());
        let seq = join.execute_at(&points, &values, plan.level);
        for shards in [1usize, 3, 8] {
            let (keys, vals, bounds) = shard_schedules(&points, &values, &extent, shards);
            let probes: Vec<ShardProbe<'_>> = bounds
                .iter()
                .map(|&(a, b)| ShardProbe::new(&keys[a..b], &vals[a..b]))
                .collect();
            let sharded = join.execute_shards_at(&probes, 4, plan.level);
            assert_eq!(sharded.unmatched, seq.unmatched, "{shards} shards");
            for (s, p) in seq.regions.iter().zip(&sharded.regions) {
                assert_eq!(s.count, p.count);
                assert_eq!(s.boundary_count, p.boundary_count);
                assert!((s.sum - p.sum).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn sharded_refined_execution_equals_rtree_on_shard_order_rows() {
        let (points, values, regions, extent) = workload(6_000, 9);
        let join = ApproximateCellJoin::build(&regions, &extent, DistanceBound::meters(8.0));
        // Shard-order rows: keys sorted, points and values aligned.
        let mut rows: Vec<(u64, Point, f64)> = points
            .iter()
            .zip(&values)
            .map(|(p, v)| (extent.leaf_cell_id(p).raw(), *p, *v))
            .collect();
        rows.sort_unstable_by_key(|r| r.0);
        let keys: Vec<u64> = rows.iter().map(|r| r.0).collect();
        let pts: Vec<Point> = rows.iter().map(|r| r.1).collect();
        let vals: Vec<f64> = rows.iter().map(|r| r.2).collect();
        let reference = RTreeExactJoin::build(&regions).execute(&pts, &vals);
        for shards in [1usize, 2, 8] {
            let ranges = dbsa_grid::partition_sorted_keys(&keys, shards);
            let bounds = dbsa_grid::split_at_ranges(&keys, &ranges);
            let probes: Vec<ShardProbe<'_>> = bounds
                .iter()
                .map(|&(a, b)| ShardProbe::with_points(&keys[a..b], &pts[a..b], &vals[a..b]))
                .collect();
            let (plan, refined) =
                join.execute_shards_spec(&QuerySpec::exact(), &probes, &regions, 4);
            assert!(plan.exact_refinement);
            // One shard: fully bit-for-bit (same matches, same summation
            // order). Across shard merges, sums re-associate: counts,
            // min/max and unmatched stay identical, sums agree to rounding.
            if shards == 1 {
                assert_eq!(refined.regions, reference.regions);
            }
            for (a, b) in refined.regions.iter().zip(&reference.regions) {
                assert_eq!(a.count, b.count, "{shards} shards");
                assert_eq!(a.boundary_count, b.boundary_count);
                assert_eq!(a.min, b.min);
                assert_eq!(a.max, b.max);
                assert!((a.sum - b.sum).abs() < 1e-6);
            }
            assert_eq!(refined.unmatched, reference.unmatched);
            assert!(refined.pip_tests < reference.pip_tests);
        }
    }

    #[test]
    #[should_panic(expected = "with_points")]
    fn refined_shards_require_the_point_column() {
        let (points, values, regions, extent) = workload(200, 4);
        let join = ApproximateCellJoin::build(&regions, &extent, DistanceBound::meters(8.0));
        let (keys, vals, _) = shard_schedules(&points, &values, &extent, 1);
        let probe = ShardProbe::new(&keys, &vals);
        let _ = join.execute_shards_refined(&[probe], &regions, 1);
    }

    #[test]
    fn join_result_merge_checks_region_counts() {
        let mut a = JoinResult::with_regions(3);
        let b = JoinResult::with_regions(3);
        a.merge(&b);
        assert_eq!(a.total_matched(), 0);
    }

    #[test]
    #[should_panic(expected = "region counts must match")]
    fn join_result_merge_rejects_mismatch() {
        let mut a = JoinResult::with_regions(3);
        let b = JoinResult::with_regions(4);
        a.merge(&b);
    }

    #[test]
    fn memory_footprint_ordering_matches_the_paper() {
        // ACT (fine cells) >> ShapeIndex (coarse cells) >> R-tree (MBRs only),
        // the ordering behind the paper's 143 MB / 1.2 MB / 27.9 KB figures.
        let (_, _, _, extent) = workload(10, 1);
        let regions = PolygonSetGenerator::from_profile(city_extent(), DatasetProfile::Boroughs, 3)
            .generate();
        let act = ApproximateCellJoin::build(&regions, &extent, DistanceBound::meters(16.0));
        let shape = ShapeIndexExactJoin::build(&regions, &extent);
        let rtree = RTreeExactJoin::build(&regions);
        assert!(
            act.memory_bytes() > shape.memory_bytes(),
            "ACT {} should out-weigh SI {}",
            act.memory_bytes(),
            shape.memory_bytes()
        );
        assert!(
            shape.memory_bytes() > rtree.memory_bytes(),
            "SI {} should out-weigh the R-tree {}",
            shape.memory_bytes(),
            rtree.memory_bytes()
        );
    }

    #[test]
    fn unmatched_points_are_counted() {
        let (_, _, regions, extent) = workload(10, 4);
        let join = ApproximateCellJoin::build(&regions, &extent, DistanceBound::meters(8.0));
        // Points in the street gaps / far corner match nothing.
        let stray = vec![Point::new(39_999.0, 39_999.0)];
        let result = join.execute(&stray, &[1.0]);
        assert_eq!(result.total_matched() + result.unmatched, 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// Randomly generated polygon sets and point clouds: the frozen
        /// batched sorted-probe join and the frozen scalar join must equal
        /// the seed pointer-trie scalar join bit-for-bit (f64 fields
        /// included — identical probe answers, identical summation order).
        #[test]
        fn prop_frozen_paths_equal_pointer_path_bit_for_bit(
            seed in 0u64..60,
            n_regions in 4usize..16,
            eps in 4.0f64..32.0,
        ) {
            let gen = TaxiPointGenerator::new(city_extent(), seed);
            let taxi = gen.generate(1_500);
            let points: Vec<Point> = taxi.iter().map(|t| t.location).collect();
            let values: Vec<f64> = taxi.iter().map(|t| t.fare).collect();
            let regions =
                PolygonSetGenerator::new(city_extent(), n_regions, 18, seed + 7).generate();
            let extent = GridExtent::covering(&city_extent());
            let bound = DistanceBound::meters(eps);
            let join = ApproximateCellJoin::build(&regions, &extent, bound);
            let reference =
                pointer_trie_scalar_join(&regions, &extent, bound, &points, &values);
            prop_assert_eq!(join.execute(&points, &values), reference.clone());
            prop_assert_eq!(join.execute_scalar(&points, &values), reference);
        }

        #[test]
        fn prop_total_points_are_conserved(seed in 0u64..100) {
            let gen = TaxiPointGenerator::new(city_extent(), seed);
            let taxi = gen.generate(2_000);
            let points: Vec<Point> = taxi.iter().map(|t| t.location).collect();
            let values: Vec<f64> = taxi.iter().map(|t| t.fare).collect();
            let regions = PolygonSetGenerator::new(city_extent(), 9, 16, seed).generate();
            let extent = GridExtent::covering(&city_extent());
            let join = ApproximateCellJoin::build(&regions, &extent, DistanceBound::meters(10.0));
            let result = join.execute(&points, &values);
            prop_assert_eq!(result.total_matched() + result.unmatched, points.len() as u64);
        }
    }
}

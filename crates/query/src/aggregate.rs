//! Aggregate functions and per-region aggregate accumulators.

/// The aggregation function of the spatial aggregation query
/// (`SELECT AGG(a) FROM P, R WHERE P.loc INSIDE R.geometry GROUP BY R.id`).
///
/// All of these are distributive or algebraic, so they can be computed from
/// per-cell / per-partition partial aggregates — the property Section 2.3 of
/// the paper points out makes cell-level evaluation efficient.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggregateKind {
    /// `COUNT(*)`
    Count,
    /// `SUM(a)`
    Sum,
    /// `AVG(a)` (algebraic: SUM / COUNT)
    Avg,
    /// `MIN(a)`
    Min,
    /// `MAX(a)`
    Max,
}

/// Partial aggregate for one region (one `GROUP BY R.id` group).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionAggregate {
    /// Number of points assigned to the region.
    pub count: u64,
    /// Sum of the aggregated attribute.
    pub sum: f64,
    /// Minimum of the aggregated attribute (`+inf` when empty).
    pub min: f64,
    /// Maximum of the aggregated attribute (`-inf` when empty).
    pub max: f64,
    /// How many of the counted points were matched through *boundary* cells
    /// of the approximation (0 for exact evaluation). This feeds the
    /// result-range estimation of Section 6.
    pub boundary_count: u64,
}

impl Default for RegionAggregate {
    fn default() -> Self {
        RegionAggregate {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            boundary_count: 0,
        }
    }
}

impl RegionAggregate {
    /// Adds one point with attribute `value`, matched through an interior
    /// (`boundary = false`) or boundary (`boundary = true`) cell.
    pub fn add(&mut self, value: f64, boundary: bool) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        if boundary {
            self.boundary_count += 1;
        }
    }

    /// Adds a batch of `count` points with a pre-aggregated sum (used by the
    /// prefix-sum range lookups where individual values are not visited).
    pub fn add_batch(&mut self, count: u64, sum: f64, boundary: bool) {
        self.count += count;
        self.sum += sum;
        if boundary {
            self.boundary_count += count;
        }
    }

    /// Merges another partial aggregate (associative and commutative).
    pub fn merge(&mut self, other: &RegionAggregate) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.boundary_count += other.boundary_count;
    }

    /// Average of the attribute (`None` when the region is empty).
    pub fn avg(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }

    /// Extracts the requested aggregate value (`None` for empty regions on
    /// AVG / MIN / MAX).
    pub fn value(&self, kind: AggregateKind) -> Option<f64> {
        match kind {
            AggregateKind::Count => Some(self.count as f64),
            AggregateKind::Sum => Some(self.sum),
            AggregateKind::Avg => self.avg(),
            AggregateKind::Min => (self.count > 0).then_some(self.min),
            AggregateKind::Max => (self.count > 0).then_some(self.max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_extract() {
        let mut agg = RegionAggregate::default();
        agg.add(10.0, false);
        agg.add(20.0, true);
        agg.add(5.0, false);
        assert_eq!(agg.count, 3);
        assert_eq!(agg.sum, 35.0);
        assert_eq!(agg.min, 5.0);
        assert_eq!(agg.max, 20.0);
        assert_eq!(agg.boundary_count, 1);
        assert_eq!(agg.value(AggregateKind::Count), Some(3.0));
        assert_eq!(agg.value(AggregateKind::Sum), Some(35.0));
        assert_eq!(agg.value(AggregateKind::Avg), Some(35.0 / 3.0));
        assert_eq!(agg.value(AggregateKind::Min), Some(5.0));
        assert_eq!(agg.value(AggregateKind::Max), Some(20.0));
    }

    #[test]
    fn empty_region_semantics() {
        let agg = RegionAggregate::default();
        assert_eq!(agg.value(AggregateKind::Count), Some(0.0));
        assert_eq!(agg.value(AggregateKind::Sum), Some(0.0));
        assert_eq!(agg.value(AggregateKind::Avg), None);
        assert_eq!(agg.value(AggregateKind::Min), None);
        assert_eq!(agg.value(AggregateKind::Max), None);
    }

    #[test]
    fn merge_is_associative_on_observed_fields() {
        let mut a = RegionAggregate::default();
        a.add(1.0, false);
        a.add(2.0, true);
        let mut b = RegionAggregate::default();
        b.add(10.0, false);

        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count, 3);
        assert_eq!(ab.sum, 13.0);
        assert_eq!(ab.boundary_count, 1);
    }

    #[test]
    fn add_batch_matches_individual_adds_for_count_and_sum() {
        let mut individual = RegionAggregate::default();
        individual.add(3.0, true);
        individual.add(4.0, true);
        let mut batch = RegionAggregate::default();
        batch.add_batch(2, 7.0, true);
        assert_eq!(batch.count, individual.count);
        assert_eq!(batch.sum, individual.sum);
        assert_eq!(batch.boundary_count, individual.boundary_count);
    }
}
